//! Static CPI bounds: an abstract interpretation over the kernel IR that
//! brackets, per (kernel, configuration), the CPI the timing models can
//! produce — before any simulation runs.
//!
//! The pass works in two stages so a 40-kernel suite can be bounded
//! against thousands of configurations cheaply:
//!
//! 1. **Config-independent summary** ([`KernelBounds::build`]): walk the
//!    [`KernelIr`] once, weighting each reachable block by the product of
//!    its enclosing loops' trip intervals (`[T, T]` for the recognised
//!    `counted_loop` idiom, `[1, trip_budget]` otherwise). This yields a
//!    dynamic-instruction interval per timing class, the memory/code
//!    footprints, and every *loop-carried dependence chain* — an
//!    instruction whose destination feeds its own next execution and that
//!    nothing else in the loop redefines.
//! 2. **Config evaluation** ([`KernelBounds::cpi_interval`]): fold an
//!    applied [`Platform`] over the summary. The lower bound is the max
//!    of sound throughput and latency arguments (issue-width floor,
//!    per-port occupancy, blocking-divider serialisation, dependence
//!    chains × execution latency); the upper bound serialises the worst
//!    per-instruction cost (full miss chains, mispredict refills) plus
//!    amortised cold misses.
//!
//! **Soundness domain.** Trip counts are trusted exactly where
//! [`crate::ir`] resolves them — the single-entry `counted_loop` idiom the
//! kernel generators emit. Traces are never truncated (the emulator
//! errors instead of clipping at its instruction limit), so every
//! simulated stream is the whole program and the ratio-form bounds apply
//! as computed. [`LazySuiteCost`]'s debug assertion and the proptest in
//! `crates/core/tests` hold every simulated CPI inside its interval.
//!
//! [`LazySuiteCost`]: ../../racesim_core/index.html

use crate::diag::{Diagnostic, Lint};
use crate::interval::Interval;
use crate::ir::{Flow, KernelIr};
use racesim_isa::{InstClass, Program, INST_BYTES};
use racesim_mem::{CacheConfig, HierarchyConfig, PrefetchWhere, PrefetcherConfig, TagAccess};
use racesim_race::{Configuration, Domain, ParamSpace, Value};
use racesim_sim::Platform;
use racesim_uarch::CoreKind;

/// Hard ceiling on reported CPI upper bounds, so unknown-trip loops keep
/// JSON output finite.
pub const CPI_CAP: f64 = 1e18;

/// Relative slack applied to the final interval: covers f64 summation
/// rounding, nothing structural.
const REL_SLACK: f64 = 1e-6;

/// Extra cycles folded into every worst-case miss chain for queueing and
/// hand-off effects the closed-form chain does not enumerate.
const CHAIN_SLOP: f64 = 16.0;

/// Tuning knobs for the bounds pass.
#[derive(Debug, Clone, Copy)]
pub struct BoundsOptions {
    /// Trip-count interval `[1, trip_budget]` assumed for loops the IR
    /// cannot resolve statically.
    pub trip_budget: u64,
}

impl Default for BoundsOptions {
    fn default() -> BoundsOptions {
        BoundsOptions {
            trip_budget: 1 << 20,
        }
    }
}

/// A loop-carried dependence chain: one instruction whose destination is
/// among its own sources and is redefined by nothing else inside the
/// chain's loops, so consecutive executions are at least one execution
/// latency apart in *both* core models. A chained load (pointer chase)
/// serialises through the memory system instead: every hop costs at
/// least the L1D hit latency — or, on an out-of-order core whose kernel
/// also stores, the store-to-load forwarding latency if that is lower.
#[derive(Debug, Clone, Copy)]
pub struct ChainSite {
    /// Timing class of the chained instruction (never store or branch).
    pub class: InstClass,
    /// Guaranteed serialised repetitions minus the pipelined first one:
    /// `outer_trips.lo * (chained_trips.lo - 1)`.
    pub reps: f64,
}

/// One loop-carried dependence *cycle* threading several registers: a
/// closed walk in a loop body's register dataflow graph (`x2 → v0 → v1 →
/// x3 → x2`-style recurrences a single [`ChainSite`] cannot see). Every
/// edge is a sole-writer register def-use, so one traversal of the cycle
/// costs the sum of its nodes' completion latencies and advances exactly
/// [`crossings`](RecurrenceCycle::crossings) loop iterations — the
/// classic critical-recurrence lower bound on the loop's initiation
/// interval.
#[derive(Debug, Clone)]
pub struct RecurrenceCycle {
    /// Timing classes on the cycle with multiplicity.
    pub counts: Vec<(InstClass, u32)>,
    /// Iteration boundaries one traversal crosses (edges whose reader
    /// sits at or before its writer in program order); always ≥ 1.
    pub crossings: u32,
    /// Guaranteed activations of the owning loop (product of ancestor
    /// trip lower bounds).
    pub outer: f64,
    /// The owning loop's own guaranteed trip count.
    pub span: f64,
}

/// The config-independent bounds summary of one kernel.
#[derive(Debug, Clone)]
pub struct KernelBounds {
    /// Kernel name.
    pub name: String,
    /// Dynamic instruction count interval, `Halt` excluded (the timing
    /// models never see it).
    pub dyn_insts: Interval,
    /// Data footprint in bytes (data images plus reserved regions).
    pub data_bytes: u64,
    /// Code footprint in bytes.
    pub code_bytes: u64,
    /// Loop-carried dependence chains found.
    pub chains: Vec<ChainSite>,
    /// Multi-instruction loop-carried dependence cycles found.
    pub cycles: Vec<RecurrenceCycle>,
    /// Trip-weighted dynamic count interval per timing class.
    class_counts: [Interval; InstClass::COUNT],
}

/// Caps on the cycle enumeration so a pathological loop body cannot blow
/// up the build pass; dropping cycles only weakens the bound, never
/// breaks soundness.
const MAX_CYCLES_PER_LOOP: usize = 64;
const MAX_CYCLE_DFS_STEPS: usize = 20_000;

/// Enumerates the simple cycles of a small digraph, each rooted at (and
/// reported starting from) its minimal node so no cycle appears twice.
fn enumerate_cycles(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    fn dfs(
        u: usize,
        root: usize,
        adj: &[Vec<usize>],
        on_path: &mut [bool],
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        steps: &mut usize,
    ) {
        for &v in &adj[u] {
            *steps += 1;
            if *steps > MAX_CYCLE_DFS_STEPS || out.len() >= MAX_CYCLES_PER_LOOP {
                return;
            }
            if v == root {
                out.push(path.clone());
            } else if v > root && !on_path[v] {
                on_path[v] = true;
                path.push(v);
                dfs(v, root, adj, on_path, path, out, steps);
                path.pop();
                on_path[v] = false;
            }
        }
    }
    let mut out = Vec::new();
    let mut steps = 0usize;
    for root in 0..adj.len() {
        let mut on_path = vec![false; adj.len()];
        on_path[root] = true;
        dfs(
            root,
            root,
            adj,
            &mut on_path,
            &mut vec![root],
            &mut out,
            &mut steps,
        );
    }
    out
}

/// How the static working-set estimate classifies this kernel's loads
/// against one configuration's cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResidency {
    /// Footprint provably fits L1D under any set mapping.
    L1Resident,
    /// Footprint provably fits L2 under any set mapping.
    L2Resident,
    /// No residency guarantee: every access may go to DRAM.
    DramBound,
}

impl KernelBounds {
    /// Builds the summary by one pass over the kernel IR.
    pub fn build(name: &str, prog: &Program, opts: &BoundsOptions) -> KernelBounds {
        let flow = Flow::new(prog);
        let ir = KernelIr::build(prog);
        let nb = ir.blocks.len();

        // Trip interval per loop: exact for the counted idiom, the
        // conservative budget otherwise.
        let trips: Vec<Interval> = ir
            .loops
            .iter()
            .map(|l| match l.static_trip {
                Some(t) => Interval::point(t as f64),
                None => Interval::new(1.0, opts.trip_budget as f64),
            })
            .collect();

        // The unconditional prefix: blocks reached from the entry through
        // single-successor edges only. A natural loop is entered through
        // its header, so a prefix block inside a loop body executes on
        // every iteration — its count is the full product of enclosing
        // trip counts. Everything else may be branched around: lower
        // count 0.
        let mut on_prefix = vec![false; nb];
        if nb > 0 {
            let mut b = 0usize;
            loop {
                on_prefix[b] = true;
                match ir.blocks[b].succs.as_slice() {
                    [s] if !on_prefix[*s] => b = *s,
                    _ => break,
                }
            }
        }

        let weight_of = |b: usize| -> Interval {
            let mut w = Interval::point(1.0);
            for (li, l) in ir.loops.iter().enumerate() {
                if l.body.contains(&b) {
                    w = w * trips[li];
                }
            }
            if !on_prefix[b] {
                w.lo = 0.0;
            }
            w
        };

        let mut class_counts = [Interval::zero(); InstClass::COUNT];
        for (b, blk) in ir.blocks.iter().enumerate() {
            if !ir.reachable[b] {
                continue;
            }
            let w = weight_of(b);
            for idx in blk.start..blk.end {
                if let Some(inst) = flow.insts[idx].as_ref() {
                    if inst.class != InstClass::Halt {
                        class_counts[inst.class.index()] = class_counts[inst.class.index()] + w;
                    }
                }
            }
        }
        let dyn_insts = class_counts
            .iter()
            .fold(Interval::zero(), |acc, &c| acc + c);

        // Reachable definition sites per register, for the sole-writer
        // test below.
        let mut def_blocks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); racesim_isa::Reg::COUNT];
        for (b, blk) in ir.blocks.iter().enumerate() {
            if !ir.reachable[b] {
                continue;
            }
            for idx in blk.start..blk.end {
                if let Some(inst) = flow.insts[idx].as_ref() {
                    for r in inst.dests() {
                        def_blocks[r.index()].push((idx, b));
                    }
                }
            }
        }

        // Dependence chains. For an instruction on the unconditional
        // prefix whose destination feeds itself, split its enclosing
        // loops into those where it is the register's only writer (the
        // chain runs across all their iterations) and the rest (each
        // entry restarts the chain): the serialised repetition count is
        // outer.lo * (inner.lo - 1).
        let mut chains = Vec::new();
        for (b, blk) in ir.blocks.iter().enumerate() {
            if !on_prefix[b] || !ir.reachable[b] {
                continue;
            }
            let enclosing: Vec<usize> = (0..ir.loops.len())
                .filter(|&li| ir.loops[li].body.contains(&b))
                .collect();
            if enclosing.is_empty() {
                continue;
            }
            for idx in blk.start..blk.end {
                let Some(inst) = flow.insts[idx].as_ref() else {
                    continue;
                };
                let c = inst.class;
                if matches!(c, InstClass::Store | InstClass::Halt) || c.is_branch() {
                    continue;
                }
                for d in inst.dests() {
                    if d.is_zero() || !inst.sources().contains(d) {
                        continue;
                    }
                    let mut inner = 1.0f64;
                    let mut outer = 1.0f64;
                    for &li in &enclosing {
                        let sole = def_blocks[d.index()]
                            .iter()
                            .all(|&(j, jb)| j == idx || !ir.loops[li].body.contains(&jb));
                        if sole {
                            inner *= trips[li].lo;
                        } else {
                            outer *= trips[li].lo;
                        }
                    }
                    let reps = outer * (inner - 1.0);
                    if reps > 0.0 {
                        chains.push(ChainSite { class: c, reps });
                    }
                }
            }
        }

        // Dependence cycles threading several registers. Per loop, build
        // the register dataflow graph over the instructions guaranteed to
        // run on every iteration (prefix blocks whose innermost loop is
        // this one); an edge is a sole-writer def-use, so a consumer's
        // issue always waits for that producer's completion. Each simple
        // cycle of the graph is a loop recurrence: one traversal costs the
        // sum of the cycle's completion latencies and advances as many
        // iterations as it has program-order back edges.
        let innermost: Vec<Option<usize>> = (0..nb)
            .map(|b| {
                (0..ir.loops.len())
                    .filter(|&li| ir.loops[li].body.contains(&b))
                    .min_by_key(|&li| ir.loops[li].body.len())
            })
            .collect();
        let mut cycles = Vec::new();
        for li in 0..ir.loops.len() {
            let mut nodes: Vec<(usize, usize)> = Vec::new();
            for (b, blk) in ir.blocks.iter().enumerate() {
                if !on_prefix[b] || !ir.reachable[b] || innermost[b] != Some(li) {
                    continue;
                }
                for idx in blk.start..blk.end {
                    if let Some(inst) = flow.insts[idx].as_ref() {
                        let c = inst.class;
                        if matches!(c, InstClass::Store | InstClass::Halt) || c.is_branch() {
                            continue;
                        }
                        nodes.push((idx, b));
                    }
                }
            }
            if nodes.is_empty() {
                continue;
            }
            // Reaching definitions, register by register. The nodes are
            // straight-line prefix code executed in program order every
            // iteration, so if *all* of a register's in-loop writers are
            // nodes, the definition reaching a use is exactly the last
            // prior writer — or, at the top of the body, the last writer
            // of the previous iteration (an iteration-crossing edge).
            // Any writer outside the node set (a conditional block, an
            // excluded class) makes the reaching definition uncertain
            // and drops that register's edges entirely.
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
            for (d, defs) in def_blocks.iter().enumerate() {
                let writers: Vec<usize> = defs
                    .iter()
                    .filter(|&&(_, jb)| ir.loops[li].body.contains(&jb))
                    .map(|&(j, _)| j)
                    .collect();
                if writers.is_empty() {
                    continue;
                }
                let writer_nodes: Option<Vec<usize>> = writers
                    .iter()
                    .map(|&j| nodes.iter().position(|&(idx, _)| idx == j))
                    .collect();
                let Some(mut writer_nodes) = writer_nodes else {
                    continue;
                };
                writer_nodes.sort_by_key(|&u| nodes[u].0);
                for (v, &(iv, _)) in nodes.iter().enumerate() {
                    let inst_v = flow.insts[iv].as_ref().expect("node instructions decode");
                    if !inst_v.sources().iter().any(|r| r.index() == d) {
                        continue;
                    }
                    let producer = writer_nodes
                        .iter()
                        .rev()
                        .find(|&&u| nodes[u].0 < iv)
                        .or(writer_nodes.last())
                        .copied()
                        .expect("writer list is non-empty");
                    if !adj[producer].contains(&v) {
                        adj[producer].push(v);
                    }
                }
            }
            let outer: f64 = (0..ir.loops.len())
                .filter(|&lj| lj != li && ir.loops[lj].body.contains(&nodes[0].1))
                .map(|lj| trips[lj].lo)
                .product();
            let span = trips[li].lo;
            for path in enumerate_cycles(&adj) {
                let mut counts = [0u32; InstClass::COUNT];
                let mut crossings = 0u32;
                for (k, &u) in path.iter().enumerate() {
                    let v = path[(k + 1) % path.len()];
                    // An edge whose reader sits at or before its writer
                    // reads the previous iteration's value.
                    if nodes[v].0 <= nodes[u].0 {
                        crossings += 1;
                    }
                    let class = flow.insts[nodes[u].0]
                        .as_ref()
                        .expect("node instructions decode")
                        .class;
                    counts[class.index()] += 1;
                }
                debug_assert!(crossings >= 1, "a dataflow cycle must cross an iteration");
                cycles.push(RecurrenceCycle {
                    counts: InstClass::ALL
                        .iter()
                        .copied()
                        .filter(|c| counts[c.index()] > 0)
                        .map(|c| (c, counts[c.index()]))
                        .collect(),
                    crossings: crossings.max(1),
                    outer,
                    span,
                });
            }
        }

        let data_bytes = prog.data.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
            + prog.reserved.iter().map(|r| r.len).sum::<u64>();
        KernelBounds {
            name: name.to_string(),
            dyn_insts,
            data_bytes,
            code_bytes: prog.code_bytes(),
            chains,
            cycles,
            class_counts,
        }
    }

    /// Dynamic count interval of one timing class.
    pub fn class_count(&self, c: InstClass) -> Interval {
        self.class_counts[c.index()]
    }

    /// Classifies this kernel's loads against a cache hierarchy: a
    /// residency guarantee holds only when the footprint fits the level's
    /// associativity (so no set can overflow under *any* index hash) and
    /// no prefetcher can pollute that level.
    pub fn residency(&self, mem: &HierarchyConfig) -> MemResidency {
        let lines = |c: &CacheConfig| self.data_bytes.div_ceil(c.line_bytes as u64);
        let l1_safe = matches!(mem.prefetcher, PrefetcherConfig::None)
            || mem.prefetch_where == PrefetchWhere::L2;
        if lines(&mem.l1d) <= mem.l1d.assoc as u64 && l1_safe {
            MemResidency::L1Resident
        } else if lines(&mem.l2) <= mem.l2.assoc as u64
            && matches!(mem.prefetcher, PrefetcherConfig::None)
        {
            MemResidency::L2Resident
        } else {
            MemResidency::DramBound
        }
    }

    /// The CPI interval of this kernel on an applied platform.
    pub fn cpi_interval(&self, p: &Platform) -> Interval {
        let n = self.dyn_insts;
        if n.lo < 1.0 {
            return Interval::new(0.0, CPI_CAP);
        }
        let lo = self.cpi_lower(p);
        let hi = self.cpi_upper(p).min(CPI_CAP);
        Interval::new(lo, hi).widen_relative(REL_SLACK)
    }

    /// The trivial throughput floor every core shape obeys: one over the
    /// narrowest pipeline stage.
    pub fn trivial_floor(p: &Platform) -> f64 {
        let w = match p.core.kind {
            CoreKind::InOrder => p.core.inorder.issue_width as f64,
            CoreKind::OutOfOrder => (p.core.frontend.fetch_width as f64)
                .min(p.core.ooo.dispatch_width as f64)
                .min(p.core.ooo.retire_width as f64),
        };
        1.0 / w.max(1.0)
    }

    fn cpi_lower(&self, p: &Platform) -> f64 {
        let n = self.dyn_insts;
        let lat = &p.core.lat;
        let frac = |c: InstClass| self.class_counts[c.index()].fraction_of(n).lo;
        let fp_classes = InstClass::ALL.iter().copied().filter(|c| c.is_fp_or_simd());
        let branch_classes = InstClass::ALL.iter().copied().filter(|c| c.is_branch());

        let mut best = Self::trivial_floor(p);
        let mut push = |t: f64| {
            if t > best {
                best = t;
            }
        };

        match p.core.kind {
            CoreKind::InOrder => {
                let io = &p.core.inorder;
                push((frac(InstClass::Load) + frac(InstClass::Store)) / io.mem_per_cycle as f64);
                push(branch_classes.clone().map(frac).sum::<f64>());
                push(frac(InstClass::IntMul) + frac(InstClass::IntDiv));
                push(fp_classes.clone().map(frac).sum::<f64>() / (io.fp_units as f64).max(1.0));
                push(frac(InstClass::IntAlu) / (io.int_alu_units as f64).max(1.0));
                if io.div_blocking {
                    push(frac(InstClass::IntDiv) * lat.int_div as f64);
                    push(
                        frac(InstClass::FpDiv) * lat.fp_div as f64
                            + frac(InstClass::FpSqrt) * lat.fp_sqrt as f64,
                    );
                }
            }
            CoreKind::OutOfOrder => {
                let ports = &p.core.ooo.ports;
                push(frac(InstClass::Load) / (ports.load as f64).max(1.0));
                push(frac(InstClass::Store) / (ports.store as f64).max(1.0));
                push(
                    branch_classes.clone().map(frac).sum::<f64>() / (ports.branch as f64).max(1.0),
                );
                push(frac(InstClass::IntAlu) / (ports.int_alu as f64).max(1.0));
                let (div_occ, fp_div_occ) = if p.core.ooo.div_blocking {
                    (lat.int_div as f64, true)
                } else {
                    (1.0, false)
                };
                push(
                    (frac(InstClass::IntMul) + frac(InstClass::IntDiv) * div_occ)
                        / (ports.int_mul as f64).max(1.0),
                );
                let fp_occ: f64 = fp_classes
                    .clone()
                    .map(|c| {
                        let per = if fp_div_occ {
                            match c {
                                InstClass::FpDiv => lat.fp_div as f64,
                                InstClass::FpSqrt => lat.fp_sqrt as f64,
                                _ => 1.0,
                            }
                        } else {
                            1.0
                        };
                        frac(c) * per
                    })
                    .sum();
                push(fp_occ / (ports.fp as f64).max(1.0));
            }
        }

        // Dependence chains serialise at full execution latency in both
        // models: the consumer's issue waits for the producer's complete.
        // A chained load's "execution latency" is the memory system's
        // cheapest completion path — every load pays at least the L1D hit
        // latency ([`MemoryHierarchy::access`] has no faster path), except
        // that an out-of-order core can forward from a pending store at
        // `stlf_latency`; kernels with no stores cannot hit that path.
        let load_hop = {
            let l1 = p.mem.l1d.latency as f64;
            match p.core.kind {
                CoreKind::InOrder => l1,
                CoreKind::OutOfOrder => {
                    if self.class_counts[InstClass::Store.index()].hi > 0.0 {
                        l1.min(p.core.ooo.stlf_latency.max(1) as f64)
                    } else {
                        l1
                    }
                }
            }
        };
        for ch in &self.chains {
            let hop = if ch.class == InstClass::Load {
                load_hop
            } else {
                lat.of(ch.class) as f64
            };
            push(ch.reps * hop / n.hi);
        }
        // Multi-register recurrence cycles: each full traversal costs the
        // cycle's summed completion latencies and advances `crossings`
        // iterations, so a loop spanning `span` iterations admits
        // `floor((span - 1) / crossings)` guaranteed traversals per
        // activation.
        for cy in &self.cycles {
            let w: f64 = cy
                .counts
                .iter()
                .map(|&(c, k)| {
                    let hop = if c == InstClass::Load {
                        load_hop
                    } else {
                        lat.of(c) as f64
                    };
                    hop * f64::from(k)
                })
                .sum();
            let traversals = ((cy.span - 1.0) / f64::from(cy.crossings)).floor();
            if traversals > 0.0 {
                push(cy.outer * traversals * w / n.hi);
            }
        }
        best
    }

    fn cpi_upper(&self, p: &Platform) -> f64 {
        let n = self.dyn_insts;
        let lat = &p.core.lat;
        let mem = &p.mem;
        let cnt = |c: InstClass| self.class_counts[c.index()].hi;
        let serial = |c: &CacheConfig| match c.tag_access {
            TagAccess::Serial => 2.0,
            TagAccess::Parallel => 0.0,
        };
        let tlb_pen = mem.tlb.map(|t| t.miss_penalty as f64).unwrap_or(0.0);
        let pages_fit = mem
            .tlb
            .map(|t| self.data_bytes.div_ceil(t.page_bytes as u64) <= t.entries as u64)
            .unwrap_or(true);
        let per_access_tlb = if pages_fit { 0.0 } else { tlb_pen };
        let line = mem.l1d.line_bytes.max(mem.l2.line_bytes) as f64;
        let transfer = (line / (mem.dram.bytes_per_cycle as f64).max(1.0)).ceil();
        let pf_degree = match mem.prefetcher {
            PrefetcherConfig::None => 0.0,
            PrefetcherConfig::NextLine => 1.0,
            PrefetcherConfig::Stride { degree, .. } => degree as f64,
            PrefetcherConfig::Ghb { degree, .. } => degree as f64,
        };
        let dram_chain = mem.l1d.latency as f64
            + serial(&mem.l1d)
            + mem.l2.latency as f64
            + serial(&mem.l2)
            + mem.dram.latency as f64
            + (1.0 + pf_degree) * transfer
            + CHAIN_SLOP;

        let stlf = match p.core.kind {
            CoreKind::InOrder => 0.0,
            CoreKind::OutOfOrder => (p.core.ooo.stlf_latency as f64).max(2.0),
        };
        let load_worst = per_access_tlb
            + match self.residency(mem) {
                MemResidency::L1Resident => {
                    (mem.l1d.latency as f64 + serial(&mem.l1d)).max(stlf) + 2.0
                }
                MemResidency::L2Resident => {
                    mem.l1d.latency as f64
                        + serial(&mem.l1d)
                        + mem.l2.latency as f64
                        + serial(&mem.l2)
                        + 4.0
                }
                MemResidency::DramBound => dram_chain,
            };
        // Stores drain through the full hierarchy whatever the residency
        // class (write-allocate may be off), and a full store buffer
        // passes that drain latency on to whoever issues next.
        let store_worst = 1.0 + tlb_pen + dram_chain;
        let branch_worst = 1.0
            + p.core.branch.mispredict_penalty as f64
            + p.core.branch.btb_miss_penalty as f64
            + p.core.frontend.depth as f64;
        let sb_cap = match p.core.kind {
            CoreKind::InOrder => p.core.inorder.store_buffer as f64,
            CoreKind::OutOfOrder => p.core.ooo.sq_entries as f64,
        };
        let barrier_worst = 1.0 + sb_cap * dram_chain;

        let mut cycles = 0.0f64;
        for c in InstClass::ALL {
            let k = cnt(c);
            if k == 0.0 {
                continue;
            }
            let worst = match c {
                InstClass::Load => load_worst,
                InstClass::Store => store_worst,
                InstClass::Barrier => barrier_worst,
                InstClass::Halt => 0.0,
                _ if c.is_branch() => branch_worst,
                _ => lat.of(c) as f64,
            };
            cycles += k * worst;
        }

        // Instruction fetch: cold-only when the code provably fits L1I in
        // every set; otherwise one worst-case refill per line visit
        // (sequential crossings plus every branch).
        let icache_chain = tlb_pen
            + mem.l1i.latency as f64
            + serial(&mem.l1i)
            + mem.l2.latency as f64
            + serial(&mem.l2)
            + mem.dram.latency as f64
            + transfer
            + CHAIN_SLOP;
        let code_lines = self.code_bytes.div_ceil(mem.l1i.line_bytes as u64) as f64;
        let insts_per_line = (mem.l1i.line_bytes as f64 / INST_BYTES as f64).max(1.0);
        let branches: f64 = InstClass::ALL
            .iter()
            .filter(|c| c.is_branch())
            .map(|&c| cnt(c))
            .sum();
        cycles += if code_lines <= mem.l1i.assoc as f64 {
            code_lines * icache_chain
        } else {
            (n.hi / insts_per_line + branches + code_lines) * icache_chain
        };

        // Amortised cold data misses and page walks (already per-access
        // for the DRAM-bound class; charged again here for simplicity —
        // it only loosens the bound).
        let data_lines = self.data_bytes.div_ceil(mem.l1d.line_bytes as u64) as f64;
        cycles += data_lines * dram_chain;
        if let Some(t) = mem.tlb {
            cycles += (self.data_bytes.div_ceil(t.page_bytes as u64) as f64) * tlb_pen;
        }
        cycles += p.core.frontend.depth as f64;

        cycles / n.lo
    }
}

/// Bounds summaries for a whole campaign suite, in instance order.
#[derive(Debug, Clone, Default)]
pub struct SuiteBounds {
    /// One summary per kernel.
    pub kernels: Vec<KernelBounds>,
}

impl SuiteBounds {
    /// Builds summaries for `(name, program)` pairs in order.
    pub fn build<'a, I>(programs: I, opts: &BoundsOptions) -> SuiteBounds
    where
        I: IntoIterator<Item = (&'a str, &'a Program)>,
    {
        SuiteBounds {
            kernels: programs
                .into_iter()
                .map(|(name, prog)| KernelBounds::build(name, prog, opts))
                .collect(),
        }
    }
}

/// Caps per-site RA602 diagnostics before the summary entry, mirroring
/// the RA401 convention.
const INVERSION_CAP: usize = 4;
/// Caps per-parameter RA603 diagnostics before the summary entry.
const INSENSITIVE_CAP: usize = 6;

/// Runs the RA6xx suite lints: RA601 (a kernel whose lower bound never
/// beats the trivial issue-width floor), RA602 (an inverted interval at
/// any probed configuration) and RA603 (a tuned parameter no kernel's
/// bounds can distinguish). `apply` maps a configuration onto a full
/// platform, exactly as the tuner will.
pub fn check_suite_bounds(
    bounds: &[KernelBounds],
    space: &ParamSpace,
    apply: &dyn Fn(&Configuration) -> Platform,
    out: &mut Vec<Diagnostic>,
) {
    let default_cfg = space.default_configuration();
    let base = apply(&default_cfg);
    let floor = KernelBounds::trivial_floor(&base);
    let at_default: Vec<Interval> = bounds.iter().map(|kb| kb.cpi_interval(&base)).collect();

    let mut inversions: Vec<(String, String)> = Vec::new();
    for (kb, iv) in bounds.iter().zip(&at_default) {
        if iv.is_inverted() {
            inversions.push((kb.name.clone(), "default".to_string()));
            continue;
        }
        if iv.lo <= floor * (1.0 + 1e-9) {
            out.push(
                Diagnostic::new(
                    Lint::BoundVacuous,
                    "static CPI lower bound never exceeds the trivial \
                     issue-width floor: the bounds engine cannot eliminate \
                     any configuration for this kernel",
                )
                .with("kernel", kb.name.clone())
                .with("lower_bound", format!("{:.4}", iv.lo))
                .with("floor", format!("{floor:.4}")),
            );
        }
    }

    // One-at-a-time sweep: vary each parameter across its domain with the
    // rest at defaults. A parameter is suite-insensitive when no kernel's
    // interval moves for any candidate value.
    let mut insensitive: Vec<String> = Vec::new();
    for (pi, param) in space.params().iter().enumerate() {
        let values: Vec<Value> = match &param.domain {
            Domain::Categorical(opts) => (0..opts.len() as u16).map(Value::Cat).collect(),
            Domain::Integer(vs) => (0..vs.len() as u16).map(Value::Int).collect(),
            Domain::Bool => vec![Value::Flag(false), Value::Flag(true)],
        };
        if values.len() < 2 {
            continue;
        }
        let mut sensitive = false;
        for v in values {
            let mut cfg = default_cfg.clone();
            cfg.set_value(pi, v);
            let plat = apply(&cfg);
            for (kb, default_iv) in bounds.iter().zip(&at_default) {
                let iv = kb.cpi_interval(&plat);
                if iv.is_inverted() {
                    inversions.push((kb.name.clone(), param.name.clone()));
                }
                if iv != *default_iv {
                    sensitive = true;
                }
            }
        }
        if !sensitive {
            insensitive.push(param.name.clone());
        }
    }

    inversions.sort();
    inversions.dedup();
    let shown = inversions.len().min(INVERSION_CAP);
    for (kernel, at) in &inversions[..shown] {
        out.push(
            Diagnostic::new(
                Lint::BoundInversion,
                "static CPI interval is inverted (lower bound exceeds upper \
                 bound): the bounds lattice is unsound for this kernel",
            )
            .with("kernel", kernel.clone())
            .with("varied", at.clone()),
        );
    }
    if inversions.len() > shown {
        out.push(
            Diagnostic::new(
                Lint::BoundInversion,
                "further inverted static CPI intervals (first sites listed \
                 individually above)",
            )
            .with("total_sites", inversions.len()),
        );
    }

    let shown = insensitive.len().min(INSENSITIVE_CAP);
    for name in &insensitive[..shown] {
        out.push(
            Diagnostic::new(
                Lint::BoundInsensitiveParameter,
                "no kernel's static CPI interval responds to this parameter: \
                 the bounds engine treats all its candidates alike",
            )
            .with("param", name.clone()),
        );
    }
    if insensitive.len() > shown {
        out.push(
            Diagnostic::new(
                Lint::BoundInsensitiveParameter,
                "further bounds-insensitive parameters (first listed \
                 individually above)",
            )
            .with("total_params", insensitive.len()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::asm::Asm;
    use racesim_isa::Reg;
    use racesim_kernels::emu::record_trace;
    use racesim_sim::Simulator;

    fn counted_fp_div_kernel(trips: u64) -> Program {
        let mut a = Asm::new();
        a.movz(Reg::x(28), trips as i64);
        let top = a.here();
        a.fdiv(Reg::v(0), Reg::v(0), Reg::v(1));
        a.subi(Reg::x(28), Reg::x(28), 1);
        a.cbnz(Reg::x(28), top);
        a.halt();
        a.finish()
    }

    #[test]
    fn counts_and_chains_are_trip_weighted() {
        let kb = KernelBounds::build(
            "fp-div-chain",
            &counted_fp_div_kernel(100),
            &BoundsOptions::default(),
        );
        // 1 setup + 3 × 100 loop body; Halt excluded.
        assert_eq!(kb.dyn_insts, Interval::point(301.0));
        assert_eq!(kb.class_count(InstClass::FpDiv), Interval::point(100.0));
        assert_eq!(kb.class_count(InstClass::Halt), Interval::zero());
        // Two chains: the fdiv accumulator and the subi counter.
        let mut classes: Vec<InstClass> = kb.chains.iter().map(|c| c.class).collect();
        classes.sort();
        assert_eq!(classes, vec![InstClass::IntAlu, InstClass::FpDiv]);
        for ch in &kb.chains {
            assert_eq!(ch.reps, 99.0);
        }
    }

    #[test]
    fn unknown_loops_fall_back_to_the_budget() {
        // Loop guarded by a comparison the idiom matcher cannot resolve:
        // decrements by a register, not an immediate.
        let mut a = Asm::new();
        a.movz(Reg::x(1), 7);
        a.movz(Reg::x(2), 1);
        let top = a.here();
        a.sub(Reg::x(1), Reg::x(1), Reg::x(2));
        a.cbnz(Reg::x(1), top);
        a.halt();
        let kb = KernelBounds::build("mystery", &a.finish(), &BoundsOptions { trip_budget: 64 });
        assert_eq!(kb.dyn_insts, Interval::new(2.0 + 2.0, 2.0 + 2.0 * 64.0));
    }

    #[test]
    fn chain_lower_bound_tracks_divider_latency() {
        let kb = KernelBounds::build(
            "fp-div-chain",
            &counted_fp_div_kernel(1000),
            &BoundsOptions::default(),
        );
        let mut p = Platform::a53_like();
        p.core.lat.fp_div = 20;
        let slow = kb.cpi_interval(&p);
        p.core.lat.fp_div = 40;
        let slower = kb.cpi_interval(&p);
        // The fdiv chain dominates: ~lat/3 CPI, monotone in the latency.
        assert!(slow.lo > 5.0, "chain bound too weak: {slow}");
        assert!(slower.lo > slow.lo * 1.8, "{slower} vs {slow}");
    }

    #[test]
    fn simulated_cpi_lands_inside_the_interval() {
        for trips in [4u64, 57, 300] {
            let prog = counted_fp_div_kernel(trips);
            let kb = KernelBounds::build("probe", &prog, &BoundsOptions::default());
            let trace = record_trace(&prog, 1 << 20).expect("kernel halts");
            for p in [Platform::a53_like(), Platform::a72_like()] {
                let stats = Simulator::new(p.clone()).run(&trace).expect("clean run");
                let iv = kb.cpi_interval(&p);
                assert!(
                    iv.contains(stats.cpi()),
                    "{}: cpi {} outside {iv} (trips {trips})",
                    p.name,
                    stats.cpi(),
                );
            }
        }
    }

    #[test]
    fn residency_tiers_follow_footprint_and_prefetcher() {
        let mut a = Asm::new();
        let buf = a.reserve_initialized(256, 64);
        a.mov64(Reg::x(1), buf);
        a.ldr8(Reg::x(2), Reg::x(1), 0);
        a.halt();
        let kb = KernelBounds::build("tiny-load", &a.finish(), &BoundsOptions::default());
        let mut mem = Platform::a53_like().mem;
        mem.prefetcher = PrefetcherConfig::None;
        assert_eq!(kb.residency(&mem), MemResidency::L1Resident);
        mem.prefetcher = PrefetcherConfig::NextLine;
        mem.prefetch_where = PrefetchWhere::L1;
        assert_ne!(kb.residency(&mem), MemResidency::L1Resident);
    }

    #[test]
    fn empty_program_yields_the_vacuous_interval() {
        let mut a = Asm::new();
        a.halt();
        let kb = KernelBounds::build("empty", &a.finish(), &BoundsOptions::default());
        assert_eq!(kb.dyn_insts, Interval::zero());
        let iv = kb.cpi_interval(&Platform::a53_like());
        assert_eq!(iv.lo, 0.0);
        assert!(iv.hi >= CPI_CAP * 0.99);
    }
}
