//! Campaign-level parameter coverage (`RA41x`): which kernels can
//! *statically* observe each `ParamSpace` dimension.
//!
//! The racing loop only converges on a parameter if some kernel's timing
//! actually depends on it — a functional-unit latency needs a kernel that
//! issues that unit's instructions, a replacement policy needs a working
//! set larger than the cache, a return-address stack needs calls. The
//! matrix built here crosses every space dimension with every
//! [`KernelProfile`] using conservative static rules (when in doubt, a
//! parameter counts as observable — the pass must err toward silence),
//! then lints the result:
//!
//! * [`Lint::SuiteDeadParameter`] — the model reads the parameter (the
//!   shared RA008 predicate says it is live) but *no* kernel in the suite
//!   can observe it: the tuner would race that dimension over pure noise.
//! * [`Lint::SuiteNarrowParameter`] — only one or two kernels observe it;
//!   the tuned value rests on a single timing signal.
//! * [`Lint::SuiteRedundantKernel`] — groups of kernels whose coverage
//!   rows are identical; none of them observes anything the others do
//!   not, so the matrix cannot tell them apart.
//!
//! The same matrix feeds `RacingTuner` freezing: dimensions no kernel
//! observes are pinned to their default before any simulation is spent.

use crate::diag::{Diagnostic, Lint};
use crate::ir::KernelProfile;
use crate::param::parameter_is_live;
use racesim_race::{Configuration, ParamSpace};
use racesim_sim::Platform;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Why a parameter is (or is not) observable by a kernel — the static
/// requirement the rule engine matched against the profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Requirement {
    /// Observable by any kernel that executes at all (pipeline-structure
    /// parameters, instruction-side caches, unknown names).
    Any,
    /// Needs at least one site of the named instruction-class group.
    Sites(&'static str),
    /// Needs a data footprint larger than `capacity` bytes (replacement
    /// and victim parameters of a cache with that capacity).
    FootprintOver(u64),
    /// Needs block-level ILP above 1 (width/port parameters).
    Ilp,
}

impl Requirement {
    pub fn describe(&self) -> String {
        match self {
            Requirement::Any => "any executed instruction".to_string(),
            Requirement::Sites(what) => format!("{what} site(s)"),
            Requirement::FootprintOver(cap) => {
                format!("data footprint > {} KiB", cap / 1024)
            }
            Requirement::Ilp => "block ILP > 1".to_string(),
        }
    }
}

/// Coverage of one space dimension.
#[derive(Debug, Clone)]
pub struct ParamCoverage {
    /// Parameter name.
    pub name: String,
    /// The static requirement used to decide observability.
    pub requirement: Requirement,
    /// `observers[k]` — whether kernel `k` can observe the parameter.
    pub observers: Vec<bool>,
}

impl ParamCoverage {
    /// Number of observing kernels.
    pub fn count(&self) -> usize {
        self.observers.iter().filter(|&&o| o).count()
    }
}

/// The parameter-coverage matrix: space dimensions × suite kernels.
#[derive(Debug, Clone)]
pub struct CoverageMatrix {
    /// Kernel names, in suite order (column headers).
    pub kernels: Vec<String>,
    /// One row per space dimension, in space order.
    pub params: Vec<ParamCoverage>,
}

/// The requirement a parameter name maps to, given the base platform's
/// cache capacities. Unknown names are observable by everything: a rule
/// gap must never invent a dead parameter.
fn requirement_for(name: &str, base: &Platform) -> Requirement {
    use Requirement::*;
    if let Some(unit) = name.strip_prefix("lat.") {
        let group = match unit {
            "int_mul" => "integer multiply",
            "int_div" => "integer divide",
            "fp_add" => "fp add/sub",
            "fp_mul" => "fp multiply",
            "fp_div" => "fp divide",
            "fp_sqrt" => "fp square root",
            "fp_cvt" => "fp convert",
            "fp_mov" => "fp move",
            "simd_alu" => "simd alu",
            "simd_mul" => "simd multiply",
            "simd_fp_add" => "simd fp add",
            "simd_fp_mul" => "simd fp multiply",
            "simd_fma" => "simd fma",
            _ => return Any,
        };
        return Sites(group);
    }
    if name.starts_with("branch.ras") {
        return Sites("call/return");
    }
    if name.starts_with("branch.indirect") {
        return Sites("indirect branch");
    }
    if name.starts_with("branch.btb") {
        return Sites("branch");
    }
    if name.starts_with("branch.") {
        // Direction predictor geometry and penalties.
        return Sites("conditional branch");
    }
    let cache_cap = |cfg: &racesim_mem::CacheConfig| cfg.size_kb as u64 * 1024;
    for (level, cap) in [
        ("l1d.", cache_cap(&base.mem.l1d)),
        ("l2.", cache_cap(&base.mem.l2)),
    ] {
        if let Some(field) = name.strip_prefix(level) {
            return match field {
                // Policies only matter once the working set spills the
                // capacity; everything else is on the hit path.
                "replacement" | "victim_entries" | "hash" => FootprintOver(cap),
                "write_allocate" => Sites("store"),
                _ => Sites("memory access"),
            };
        }
    }
    if name.starts_with("l1i.") {
        // Every fetch goes through the L1I; kernels never spill its
        // capacity, so geometry-sensitive policies stay "any".
        return Any;
    }
    if name.starts_with("pf.") {
        return Sites("load");
    }
    if name.starts_with("dram.") {
        // Compulsory misses reach DRAM even for cache-resident kernels.
        return Sites("memory access");
    }
    if name.contains("width") || name.contains("ports") || name.contains("units") {
        return Ilp;
    }
    // frontend.*, inorder.*, ooo.* structure, unknown families.
    Any
}

fn observes(req: &Requirement, p: &KernelProfile) -> bool {
    let s = &p.summary;
    match req {
        Requirement::Any => s.instructions > 0,
        Requirement::Sites(group) => match *group {
            "integer multiply" => s.has_class(racesim_isa::InstClass::IntMul),
            "integer divide" => s.has_class(racesim_isa::InstClass::IntDiv),
            "fp add/sub" => s.has_class(racesim_isa::InstClass::FpAdd),
            "fp multiply" => s.has_class(racesim_isa::InstClass::FpMul),
            "fp divide" => s.has_class(racesim_isa::InstClass::FpDiv),
            "fp square root" => s.has_class(racesim_isa::InstClass::FpSqrt),
            "fp convert" => s.has_class(racesim_isa::InstClass::FpCvt),
            "fp move" => s.has_class(racesim_isa::InstClass::FpMov),
            "simd alu" => s.has_class(racesim_isa::InstClass::SimdAlu),
            "simd multiply" => s.has_class(racesim_isa::InstClass::SimdMul),
            "simd fp add" => s.has_class(racesim_isa::InstClass::SimdFpAdd),
            "simd fp multiply" => s.has_class(racesim_isa::InstClass::SimdFpMul),
            "simd fma" => s.has_class(racesim_isa::InstClass::SimdFma),
            "conditional branch" => s.cond_branches() > 0,
            "indirect branch" => s.indirect_branches() > 0,
            "call/return" => s.calls() > 0 && s.returns() > 0,
            "branch" => s.branches() > 0,
            "store" => s.stores() > 0,
            "load" => s.loads() > 0,
            "memory access" => s.memory_ops() > 0,
            _ => true,
        },
        Requirement::FootprintOver(cap) => s.memory_ops() > 0 && p.data_bytes > *cap,
        Requirement::Ilp => p.max_block_ilp > 1.0,
    }
}

impl CoverageMatrix {
    /// Crosses every dimension of `space` with every kernel profile.
    /// `base` supplies the cache capacities footprint rules compare
    /// against (candidate geometries vary around it; the base is the
    /// hardware being matched, so it is the honest reference point).
    pub fn build(
        space: &ParamSpace,
        profiles: &[KernelProfile],
        base: &Platform,
    ) -> CoverageMatrix {
        let params = space
            .params()
            .iter()
            .map(|p| {
                let requirement = requirement_for(&p.name, base);
                let observers = profiles.iter().map(|k| observes(&requirement, k)).collect();
                ParamCoverage {
                    name: p.name.clone(),
                    requirement,
                    observers,
                }
            })
            .collect();
        CoverageMatrix {
            kernels: profiles.iter().map(|p| p.name.clone()).collect(),
            params,
        }
    }

    /// Names of dimensions no kernel in the suite observes.
    pub fn unobservable(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| p.count() == 0)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Kernel names observing parameter `name`, if it exists.
    pub fn observers_of(&self, name: &str) -> Option<Vec<&str>> {
        let p = self.params.iter().find(|p| p.name == name)?;
        Some(
            p.observers
                .iter()
                .zip(&self.kernels)
                .filter(|(&o, _)| o)
                .map(|(_, k)| k.as_str())
                .collect(),
        )
    }

    /// Compact text rendering: one row per parameter with the observer
    /// count and up to three example kernels.
    pub fn render_text(&self) -> String {
        let total = self.kernels.len();
        let width = self
            .params
            .iter()
            .map(|p| p.name.len())
            .max()
            .unwrap_or(0)
            .max("parameter".len());
        let mut out = String::new();
        let _ = writeln!(out, "parameter coverage over {total} kernel(s):");
        let _ = writeln!(
            out,
            "  {:width$}  {:>9}  requirement / examples",
            "parameter", "observers"
        );
        for p in &self.params {
            let examples: Vec<&str> = p
                .observers
                .iter()
                .zip(&self.kernels)
                .filter(|(&o, _)| o)
                .map(|(_, k)| k.as_str())
                .take(3)
                .collect();
            let detail = if examples.is_empty() {
                format!("NONE — needs {}", p.requirement.describe())
            } else if examples.len() == p.count() {
                examples.join(", ")
            } else {
                format!("{}, ...", examples.join(", "))
            };
            let _ = writeln!(
                out,
                "  {:width$}  {:>6}/{total:<2}  {detail}",
                p.name,
                p.count()
            );
        }
        out
    }

    /// JSON rendering, suitable for a `Report::render_json_with` section:
    /// `{"kernels": [...], "params": [{"name", "requirement",
    /// "observers": [names...]}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"kernels\":[");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::diag::json_string(k));
        }
        out.push_str("],\"params\":[");
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"requirement\":{},\"observers\":[",
                crate::diag::json_string(&p.name),
                crate::diag::json_string(&p.requirement.describe()),
            );
            let mut first = true;
            for (o, k) in p.observers.iter().zip(&self.kernels) {
                if *o {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&crate::diag::json_string(k));
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Lints the matrix. `apply` is the same closure `param::check_model`
/// takes; it feeds the shared RA008 liveness predicate so RA410 only
/// fires for parameters the *model* genuinely reads (a model-dead
/// parameter is RA008's finding, not a suite gap).
pub fn check_suite(
    space: &ParamSpace,
    matrix: &CoverageMatrix,
    apply: &dyn Fn(&Configuration) -> Platform,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let anchor = space.default_configuration();
    let mut touched = BTreeSet::new();

    for (i, p) in matrix.params.iter().enumerate() {
        let n = p.count();
        if n == 0 {
            if parameter_is_live(space, &anchor, i, apply, &mut touched) {
                out.push(
                    Diagnostic::new(
                        Lint::SuiteDeadParameter,
                        format!(
                            "no kernel in the suite can statically observe `{}`: \
                             the tuner would race this dimension over noise",
                            p.name
                        ),
                    )
                    .with("param", &p.name)
                    .with("requires", p.requirement.describe()),
                );
            }
            // Model-dead: RA008 reports it; a suite diagnostic would be
            // double-counting the same root cause.
        } else if n <= 2 {
            let names = matrix.observers_of(&p.name).unwrap_or_default();
            out.push(
                Diagnostic::new(
                    Lint::SuiteNarrowParameter,
                    format!(
                        "only {n} kernel(s) can observe `{}`: its tuned value \
                         rests on very few timing signals",
                        p.name
                    ),
                )
                .with("param", &p.name)
                .with("kernels", names.join(", ")),
            );
        }
    }

    // Kernels with identical coverage rows: the matrix cannot tell them
    // apart, so none observes anything the others do not.
    let mut by_row: BTreeMap<Vec<bool>, Vec<&str>> = BTreeMap::new();
    for (k, name) in matrix.kernels.iter().enumerate() {
        let row: Vec<bool> = matrix.params.iter().map(|p| p.observers[k]).collect();
        by_row.entry(row).or_default().push(name);
    }
    for (_, group) in by_row {
        if group.len() > 1 {
            out.push(
                Diagnostic::new(
                    Lint::SuiteRedundantKernel,
                    format!(
                        "{} kernels share an identical coverage row: none \
                         observes a parameter the others do not",
                        group.len()
                    ),
                )
                .with("kernels", group.join(", ")),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_trace::StaticSummary;

    fn profile(name: &str, f: impl FnOnce(&mut KernelProfile)) -> KernelProfile {
        let mut p = KernelProfile {
            name: name.to_string(),
            summary: StaticSummary::default(),
            code_bytes: 64,
            data_bytes: 0,
            blocks: 1,
            reachable_blocks: 1,
            loops: 0,
            static_trips: Vec::new(),
            max_block_ilp: 1.0,
        };
        p.summary.instructions = 16;
        f(&mut p);
        p
    }

    fn idx(c: racesim_isa::InstClass) -> usize {
        c.index()
    }

    #[test]
    fn latency_params_need_matching_sites() {
        let mut space = ParamSpace::new();
        space.add_integer("lat.fp_sqrt", &[14, 18]);
        space.add_integer("lat.int_mul", &[2, 3]);
        let base = Platform::a53_like();
        let profiles = vec![
            profile("mul", |p| {
                p.summary.class_counts[idx(racesim_isa::InstClass::IntMul)] = 4;
            }),
            profile("plain", |_| {}),
        ];
        let m = CoverageMatrix::build(&space, &profiles, &base);
        assert_eq!(m.unobservable(), vec!["lat.fp_sqrt"]);
        assert_eq!(m.observers_of("lat.int_mul"), Some(vec!["mul"]));
    }

    #[test]
    fn replacement_needs_footprint_beyond_capacity() {
        let mut space = ParamSpace::new();
        space.add_categorical("l1d.replacement", &["lru", "plru"]);
        space.add_categorical("l1d.tag_access", &["parallel", "serial"]);
        let base = Platform::a53_like(); // 32 KiB L1D
        let profiles = vec![
            profile("big", |p| {
                p.summary.class_counts[idx(racesim_isa::InstClass::Load)] = 8;
                p.data_bytes = 64 * 1024;
            }),
            profile("small", |p| {
                p.summary.class_counts[idx(racesim_isa::InstClass::Load)] = 8;
                p.data_bytes = 4 * 1024;
            }),
        ];
        let m = CoverageMatrix::build(&space, &profiles, &base);
        assert_eq!(m.observers_of("l1d.replacement"), Some(vec!["big"]));
        assert_eq!(m.observers_of("l1d.tag_access"), Some(vec!["big", "small"]));
    }

    #[test]
    fn unknown_parameter_names_observable_by_all() {
        let mut space = ParamSpace::new();
        space.add_integer("exotic.new_knob", &[1, 2]);
        let base = Platform::a53_like();
        let profiles = vec![profile("anything", |_| {})];
        let m = CoverageMatrix::build(&space, &profiles, &base);
        assert!(m.unobservable().is_empty());
    }

    #[test]
    fn suite_checks_flag_dead_narrow_and_redundant() {
        let mut space = ParamSpace::new();
        space.add_integer("lat.fp_sqrt", &[14, 18]);
        space.add_integer("lat.int_mul", &[2, 3]);
        let base = Platform::a53_like();
        let profiles = vec![
            profile("mul", |p| {
                p.summary.class_counts[idx(racesim_isa::InstClass::IntMul)] = 4;
            }),
            profile("twin-a", |_| {}),
            profile("twin-b", |_| {}),
        ];
        let m = CoverageMatrix::build(&space, &profiles, &base);
        // A synthetic apply that reads both latencies, so both are
        // model-live and the sqrt gap is the suite's fault.
        let apply = |cfg: &Configuration| {
            let mut p = Platform::a53_like();
            p.core.lat.fp_sqrt = cfg.integer(&space, "lat.fp_sqrt") as u64;
            p.core.lat.int_mul = cfg.integer(&space, "lat.int_mul") as u64;
            p
        };
        let diags = check_suite(&space, &m, &apply);
        let codes: Vec<_> = diags.iter().map(|d| d.lint).collect();
        assert!(codes.contains(&Lint::SuiteDeadParameter));
        assert!(codes.contains(&Lint::SuiteNarrowParameter));
        assert!(codes.contains(&Lint::SuiteRedundantKernel));
        let red = diags
            .iter()
            .find(|d| d.lint == Lint::SuiteRedundantKernel)
            .unwrap();
        assert!(red.context.iter().any(|(_, v)| v == "twin-a, twin-b"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut space = ParamSpace::new();
        space.add_integer("lat.int_mul", &[2, 3]);
        let base = Platform::a53_like();
        let profiles = vec![profile("mul", |p| {
            p.summary.class_counts[idx(racesim_isa::InstClass::IntMul)] = 1;
        })];
        let m = CoverageMatrix::build(&space, &profiles, &base);
        let json = m.render_json();
        assert!(json.starts_with("{\"kernels\":[\"mul\"]"));
        assert!(json.contains("\"observers\":[\"mul\"]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
