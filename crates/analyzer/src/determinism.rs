//! Campaign determinism audit (`RA5xx`).
//!
//! The resume guarantee (PR 2) and any parallel or distributed racing
//! depend on invariants nothing else in the tree verifies:
//!
//! * **RA501** — a tuner checkpoint must round-trip byte-for-byte through
//!   `render`/`parse`, including hostile floats (NaN payloads, signed
//!   zeros, subnormals, infinities): resumed campaigns otherwise diverge
//!   silently from their uninterrupted twins.
//! * **RA502** — the same seed must replay to the identical result.
//! * **RA503** — the thread count must not change the result: parallel
//!   evaluation merges into per-task slots, so `threads=4` has to equal
//!   `threads=1` bit-for-bit.
//! * **RA504** — building the parameter space twice must give the same
//!   dimension order and fingerprint; checkpoint compatibility and the
//!   sampling model's weight layout both key off that order.
//! * **RA505** — order-sensitive floating-point reductions in cost
//!   aggregation. Reported as Info while aggregation is sequential: it
//!   is the invariant a future distributed merge must not break.
//!
//! The replay probes run the real `RacingTuner` on a tiny synthetic cost
//! function (a few hundred evaluations, no simulation), so the audit is
//! cheap enough for `racesim lint --suite` and CI.

use crate::diag::{Diagnostic, Lint};
use racesim_race::{
    Configuration, ParamSpace, RacingTuner, TuneResult, Tuner, TunerCheckpoint, TunerSettings,
};

/// FNV-1a over a byte string — the audit's deterministic "cost model".
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic synthetic cost: a hash of the configuration and the
/// instance index, scaled into [0, 1). Depends on nothing but its inputs.
fn synthetic_cost(cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
    let key = format!("{}#{instance}", cfg.render(space));
    (fnv(key.as_bytes()) >> 11) as f64 / (1u64 << 53) as f64
}

/// A small synthetic space for the replay probes: enough dimensions for
/// a multi-iteration schedule, small enough to race in milliseconds.
fn probe_space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add_integer("probe.a", &[1, 2, 4, 8]);
    s.add_integer("probe.b", &[16, 32, 64]);
    s.add_categorical("probe.c", &["x", "y", "z"]);
    s.add_bool("probe.d");
    s
}

fn probe_settings(threads: usize) -> TunerSettings {
    TunerSettings {
        budget: 300,
        threads,
        seed: 0x5EED_D00D,
        ..TunerSettings::default()
    }
}

/// A result digest: every field that must be identical across replays.
fn digest(space: &ParamSpace, r: &TuneResult) -> String {
    let elites: Vec<String> = r
        .elites
        .iter()
        .map(|(c, cost)| format!("{}={:016x}", c.render(space), cost.to_bits()))
        .collect();
    format!(
        "best={} cost={:016x} evals={} elites=[{}] iters={}",
        r.best.render(space),
        r.best_cost.to_bits(),
        r.evals_used,
        elites.join("; "),
        r.history.len(),
    )
}

/// Floats chosen to break naive float serialisation: NaN with payload
/// bits, signed zero, the smallest subnormal, infinities, and values with
/// no short decimal form.
const HOSTILE: [f64; 8] = [
    0.1,
    -0.0,
    5e-324,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::MAX,
    -1.000000000000002,
    0.30000000000000004,
];

/// Builds a checkpoint exercising every section with hostile payloads.
fn adversarial_checkpoint(space: &ParamSpace) -> TunerCheckpoint {
    let nan = f64::from_bits(0x7ff8_dead_beef_cafe);
    let weights = space
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (0..p.domain.cardinality())
                .map(|j| HOSTILE[(i + j) % HOSTILE.len()].abs().min(1e9) + 1e-3)
                .collect()
        })
        .collect();
    // A second configuration that differs from the default in dimension 0,
    // using a value valid for that dimension's actual domain.
    let mut other = space.default_configuration();
    let p0 = &space.params()[0];
    let j = if other.value(0) == crate::param::candidate_value(&p0.domain, 0) {
        1 % p0.domain.cardinality()
    } else {
        0
    };
    other.set_value(0, crate::param::candidate_value(&p0.domain, j));
    TunerCheckpoint {
        next_iteration: 3,
        budget_remaining: 1234,
        evals_used: 766,
        pruned: 9,
        retries: 2,
        failed_configs: 1,
        seed: 0xBADC_AB1E,
        n_instances: 5,
        space_fingerprint: TunerCheckpoint::fingerprint(space),
        rng_state: [1, u64::MAX, 0x8000_0000_0000_0000, 42],
        spread: 5e-324,
        weights,
        elites: vec![(space.default_configuration(), nan), (other.clone(), -0.0)],
        quarantine: vec![(3, "noisy board: cv 12% > 5%".to_string())],
        cache: vec![(other, 0, 0.30000000000000004)],
        history: Vec::new(),
    }
}

/// Runs the full determinism audit. `build_space` constructs the campaign
/// space; it is called twice on purpose — construction-order stability is
/// one of the audited invariants.
pub fn check(build_space: &dyn Fn() -> ParamSpace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let space = build_space();

    // RA504: a second construction must match dimension-for-dimension.
    let again = build_space();
    let names = |s: &ParamSpace| {
        s.params()
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>()
    };
    if TunerCheckpoint::fingerprint(&space) != TunerCheckpoint::fingerprint(&again)
        || names(&space) != names(&again)
    {
        out.push(
            Diagnostic::new(
                Lint::SpaceOrderInstability,
                "building the parameter space twice gives different dimension \
                 orders or fingerprints: checkpoints and sampling-model weights \
                 would not be portable across runs",
            )
            .with(
                "first",
                format!("{:#018x}", TunerCheckpoint::fingerprint(&space)),
            )
            .with(
                "second",
                format!("{:#018x}", TunerCheckpoint::fingerprint(&again)),
            ),
        );
    }

    // RA501: adversarial checkpoint must round-trip byte-for-byte.
    let cp = adversarial_checkpoint(&space);
    let text = cp.render();
    match TunerCheckpoint::parse(&space, &text) {
        Err(e) => out.push(
            Diagnostic::new(
                Lint::CheckpointRoundtripDrift,
                "a rendered checkpoint with hostile float payloads fails to parse back",
            )
            .with("error", format!("{e}")),
        ),
        Ok(back) => {
            let text2 = back.render();
            if text2 != text {
                let line = text
                    .lines()
                    .zip(text2.lines())
                    .find(|(a, b)| a != b)
                    .map(|(a, b)| format!("`{a}` became `{b}`"))
                    .unwrap_or_else(|| "length drift".to_string());
                out.push(
                    Diagnostic::new(
                        Lint::CheckpointRoundtripDrift,
                        "checkpoint render/parse round-trip is not byte-stable: \
                         a resumed campaign would diverge from its uninterrupted twin",
                    )
                    .with("first_difference", line),
                );
            }
        }
    }

    // RA502: same-seed replay must be identical.
    let probe = probe_space();
    let run =
        |threads: usize| RacingTuner::new(probe_settings(threads)).tune(&probe, &synthetic_cost, 6);
    let a = run(1);
    let b = run(1);
    let (da, db) = (digest(&probe, &a), digest(&probe, &b));
    if da != db {
        out.push(
            Diagnostic::new(
                Lint::ReplayDivergence,
                "two runs with the same seed disagree: the tuner is not a pure \
                 function of (space, cost, seed) and resume cannot be trusted",
            )
            .with("first", da.clone())
            .with("second", db),
        );
    }

    // RA503: thread count must not leak into the result.
    let c = run(4);
    let dc = digest(&probe, &c);
    if da != dc {
        out.push(
            Diagnostic::new(
                Lint::ThreadDivergence,
                "threads=4 and threads=1 give different results: parallel \
                 evaluation order is leaking into cost aggregation",
            )
            .with("threads_1", da)
            .with("threads_4", dc),
        );
    }

    // RA505: is the cost reduction order-sensitive? Sum a probe vector
    // forward and reversed through the library mean; naive sequential
    // summation differs in the last bits, which a distributed merge
    // must therefore never reorder.
    let xs = [1e16, 3.25, -1e16, 2.5, 1e-9, 0.1, -0.3, 7.5];
    let rev: Vec<f64> = xs.iter().rev().copied().collect();
    let (fwd, bwd) = (racesim_stats::mean(&xs), racesim_stats::mean(&rev));
    if fwd.to_bits() != bwd.to_bits() {
        out.push(
            Diagnostic::new(
                Lint::FloatReductionOrder,
                "cost aggregation (racesim_stats::mean) is order-sensitive: \
                 any parallel or distributed racing must merge partial costs \
                 in canonical instance order",
            )
            .with("forward_bits", format!("{:016x}", fwd.to_bits()))
            .with("reversed_bits", format!("{:016x}", bwd.to_bits())),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shipped_space() -> ParamSpace {
        probe_space()
    }

    #[test]
    fn shipped_code_has_no_determinism_errors() {
        let diags = check(&shipped_space);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == crate::Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn float_reduction_order_hazard_is_reported() {
        // The shipped mean is a naive sequential sum, so the audit must
        // report the (Info-level) reduction-order hazard.
        let diags = check(&shipped_space);
        assert!(diags.iter().any(|d| d.lint == Lint::FloatReductionOrder));
    }

    #[test]
    fn adversarial_checkpoint_roundtrips() {
        let space = shipped_space();
        let cp = adversarial_checkpoint(&space);
        let text = cp.render();
        let back = TunerCheckpoint::parse(&space, &text).expect("parses");
        assert_eq!(back.render(), text);
    }

    #[test]
    fn unstable_space_builder_is_caught() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let unstable = move || {
            let mut s = ParamSpace::new();
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                s.add_integer("a.first", &[1, 2]);
                s.add_integer("b.second", &[3, 4]);
            } else {
                s.add_integer("b.second", &[3, 4]);
                s.add_integer("a.first", &[1, 2]);
            }
            s
        };
        let diags = check(&unstable);
        assert!(diags.iter().any(|d| d.lint == Lint::SpaceOrderInstability));
    }
}
