//! The shared diagnostics engine: lint identities, severities, and the
//! report container with human-readable and JSON rendering.
//!
//! Lint codes are **stable**: once shipped, a code keeps its meaning
//! forever so downstream tooling can filter on it. Codes are grouped by
//! pass: `RA0xx` parameter space, `RA1xx` platform invariants, `RA2xx`
//! kernel static analysis, `RA3xx` measurement effects, `RA4xx` kernel IR
//! and campaign coverage, `RA5xx` determinism audit.

use std::fmt;

/// How bad a finding is.
///
/// Ordering is by increasing severity, so `max()` over a report gives the
/// overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing, nothing wrong.
    Info,
    /// Probably a specification mistake; simulation still meaningful.
    Warn,
    /// The model is in a state no hardware could be in. Results from it
    /// are unusable and `racesim lint` exits non-zero.
    Error,
}

impl Severity {
    /// Lower-case label used in both renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

macro_rules! lints {
    ($(
        $(#[$doc:meta])*
        $variant:ident = ($code:literal, $name:literal, $sev:ident),
    )*) => {
        /// Every lint the analyzer can raise. See `DESIGN.md` for the
        /// rendered table.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Lint {
            $( $(#[$doc])* $variant, )*
        }

        impl Lint {
            /// All lints, in code order.
            pub const ALL: &'static [Lint] = &[ $(Lint::$variant,)* ];

            /// The stable `RAnnn` code.
            pub fn code(self) -> &'static str {
                match self { $(Lint::$variant => $code,)* }
            }

            /// The stable kebab-case name.
            pub fn name(self) -> &'static str {
                match self { $(Lint::$variant => $name,)* }
            }

            /// The default severity (a [`Diagnostic`] may override it).
            pub fn severity(self) -> Severity {
                match self { $(Lint::$variant => Severity::$sev,)* }
            }
        }
    };
}

lints! {
    // ---- RA0xx: parameter-space lints -------------------------------
    /// A tunable dimension with exactly one candidate: dead weight in the
    /// race, and often a sign that a candidate list was truncated.
    DegenerateDimension = ("RA001", "degenerate-dimension", Warn),
    /// The same candidate value appears more than once in a dimension,
    /// silently skewing the sampling distribution toward it.
    DuplicateCandidate = ("RA002", "duplicate-candidate", Warn),
    /// Integer candidates are not sorted ascending; elite-neighbourhood
    /// sampling assumes adjacency in the list means adjacency in value.
    UnsortedCandidates = ("RA003", "unsorted-candidates", Warn),
    /// Some configuration in the space produces a memory hierarchy whose
    /// latencies are not strictly ordered L1 < L2 < DRAM.
    LatencyOrdering = ("RA004", "latency-ordering", Error),
    /// Some configuration produces a cache whose associativity does not
    /// divide its line count, leaving a fractional set count.
    GeometryIndivisible = ("RA005", "geometry-indivisible", Error),
    /// Some configuration gives an out-of-order window smaller than the
    /// machine width, so the core can never issue at full width.
    WindowBelowWidth = ("RA006", "window-below-width", Error),
    /// Some configuration produces a cache with a non-power-of-two set
    /// count, which the set-index hash cannot address.
    NonPowerOfTwoSets = ("RA007", "non-power-of-two-sets", Error),
    /// A space entry that `apply` never reads: tuning it burns budget and
    /// the "tuned" value in reports is fiction.
    DeadParameter = ("RA008", "dead-parameter", Error),
    /// A platform field that varies across hardware but is covered by no
    /// space entry, so the race can never correct it.
    UntunedField = ("RA009", "untuned-field", Info),

    // ---- RA1xx: platform invariants ---------------------------------
    /// Cache set count is not a power of two (size, line size and
    /// associativity are inconsistent).
    PlatformCacheGeometry = ("RA101", "platform-cache-geometry", Error),
    /// Memory-level latencies are not strictly increasing along
    /// L1 -> L2 -> DRAM.
    PlatformLatencyOrdering = ("RA102", "platform-latency-ordering", Error),
    /// A pipeline structure is smaller than the width that feeds it.
    PlatformQueueRelation = ("RA103", "platform-queue-relation", Error),
    /// A resource count that must be at least one is zero.
    PlatformZeroResource = ("RA104", "platform-zero-resource", Error),
    /// Branch predictor table geometry is not a power of two.
    PlatformPredictorGeometry = ("RA105", "platform-predictor-geometry", Error),
    /// A latency that cannot be zero (division, memory access) is zero.
    PlatformZeroLatency = ("RA106", "platform-zero-latency", Error),
    /// Suspicious but simulable: a value far outside the envelope of the
    /// hardware the paper models.
    PlatformImplausibleValue = ("RA107", "platform-implausible-value", Warn),

    // ---- RA2xx: kernel static analysis ------------------------------
    /// A load may read reserved memory that no store and no data blob
    /// ever initialised: the simulated values are garbage.
    KernelUninitRead = ("RA201", "kernel-uninit-read", Error),
    /// Code that no path from the entry point reaches.
    KernelUnreachable = ("RA202", "kernel-unreachable-block", Warn),
    /// A branch whose target lies outside the program's code section.
    KernelBranchOutOfRange = ("RA203", "kernel-branch-out-of-range", Error),

    // ---- RA3xx: measurement-effects lints ---------------------------
    /// The board's measurement-noise amplitude exceeds the smallest cost
    /// difference the race's statistical tests can resolve at their
    /// significance level: eliminations degrade into coin flips.
    NoiseAboveResolution = ("RA301", "noise-above-resolution", Warn),

    // ---- RA4xx: kernel IR and campaign coverage ---------------------
    /// A register written and then overwritten with no read on any path:
    /// architecturally dead work the kernel spends cycles on.
    KernelDeadWrite = ("RA401", "kernel-dead-write", Warn),
    /// A counted loop whose statically resolved trip count is zero or
    /// one: the "loop" exercises no steady-state behaviour.
    KernelDegenerateLoop = ("RA402", "kernel-degenerate-loop", Warn),
    /// A loop with no exit edge: once entered the kernel can only be
    /// stopped by the instruction limit.
    KernelNoExitLoop = ("RA403", "kernel-no-exit-loop", Error),
    /// A tuned parameter that no kernel in the campaign suite can
    /// statically observe, although the model reads it: the whole suite
    /// races over noise for this dimension (RA008 lifted from one
    /// configuration to the campaign).
    SuiteDeadParameter = ("RA410", "suite-dead-parameter", Warn),
    /// A tuned parameter observable by very few kernels: its posterior
    /// rests on one or two measurements.
    SuiteNarrowParameter = ("RA411", "suite-narrow-parameter", Info),
    /// A kernel whose static observability signature is covered by
    /// another kernel's: it exercises no parameter uniquely.
    SuiteRedundantKernel = ("RA412", "suite-redundant-kernel", Info),

    // ---- RA5xx: determinism audit -----------------------------------
    /// A tuner checkpoint failed to round-trip byte-identically through
    /// render -> parse -> render (adversarial float bit patterns).
    CheckpointRoundtripDrift = ("RA501", "checkpoint-roundtrip-drift", Error),
    /// Two tuner runs with the same seed diverged: the resume guarantee
    /// and any reproducibility claim are void.
    ReplayDivergence = ("RA502", "replay-divergence", Error),
    /// A multi-threaded tuner run diverged from the single-threaded run
    /// with the same seed: parallel racing is not order-independent.
    ThreadDivergence = ("RA503", "thread-divergence", Error),
    /// Two independent constructions of the parameter space produced
    /// different fingerprints or iteration orders: checkpoints written by
    /// one process would be rejected (or silently misapplied) by another.
    SpaceOrderInstability = ("RA504", "space-order-instability", Error),
    /// The cost aggregation is float-reduction-order sensitive: any
    /// future change that reorders evaluations (work stealing, async
    /// collection) would silently change results.
    FloatReductionOrder = ("RA505", "float-reduction-order", Info),

    // ---- RA6xx: static CPI bounds -----------------------------------
    /// A kernel whose static CPI lower bound never exceeds the trivial
    /// issue-width floor: the bounds engine can prove nothing about it
    /// and pre-simulation elimination gains nothing from it.
    BoundVacuous = ("RA601", "vacuous-bound", Warn),
    /// A static CPI interval with its lower bound above its upper bound:
    /// the bounds lattice produced a claim no execution can satisfy, so
    /// any elimination decision built on it would be unsound.
    BoundInversion = ("RA602", "bound-inversion", Error),
    /// A tuned parameter that moves no kernel's static CPI interval
    /// anywhere in its domain: the bounds engine treats every candidate
    /// alike (static elimination is direction-blind for this dimension).
    BoundInsensitiveParameter = ("RA603", "suite-insensitive-parameter", Info),
}

/// One finding: a lint instance attached to a concrete offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub lint: Lint,
    /// Effective severity; defaults to [`Lint::severity`].
    pub severity: Severity,
    /// Human sentence describing this specific finding.
    pub message: String,
    /// Ordered key/value context: offending parameter, field, pc, kernel.
    /// Keys repeat across diagnostics of one lint, so JSON consumers can
    /// rely on them.
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    /// A diagnostic at the lint's default severity.
    pub fn new(lint: Lint, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            severity: lint.severity(),
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Attaches a context key/value pair (builder style).
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Diagnostic {
        self.context.push((key.to_string(), value.to_string()));
        self
    }

    /// Overrides the severity (builder style).
    pub fn severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// Renders `code name: message [k=v, ...]` on one line.
    fn render_line(&self, out: &mut String) {
        out.push_str(&format!(
            "{}: {} [{}]: {}",
            self.severity,
            self.lint.code(),
            self.lint.name(),
            self.message
        ));
        if !self.context.is_empty() {
            out.push_str(" (");
            for (i, (k, v)) in self.context.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push(')');
        }
    }
}

/// An ordered collection of diagnostics from one or more passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Adds many diagnostics.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// All diagnostics, in insertion order (sort first for stable output).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the report, yielding its diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// True if no diagnostics at all were raised.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Sorts by descending severity, then code, then context, then
    /// message, giving output that is stable across runs and platforms.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.lint.code().cmp(b.lint.code()))
                .then_with(|| a.context.cmp(&b.context))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Human-readable multi-line rendering, one diagnostic per line plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            d.render_line(&mut out);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }

    /// Machine-readable JSON rendering. The schema is stable:
    ///
    /// ```json
    /// {"version":2,
    ///  "summary":{"error":N,"warn":N,"info":N},
    ///  "diagnostics":[
    ///    {"code":"RA001","lint":"degenerate-dimension","severity":"warn",
    ///     "message":"...","context":{"param":"..."}}]}
    /// ```
    ///
    /// Context keys keep their insertion order; call [`Report::sort`]
    /// first for run-to-run stable diagnostic order.
    ///
    /// Schema history: version 2 added the RA6xx static-bounds lints and
    /// the `bounds` section of `racesim lint --suite --json`.
    pub fn render_json(&self) -> String {
        self.render_json_with(&[])
    }

    /// Like [`Report::render_json`], but appends extra top-level sections
    /// after `"diagnostics"`. Each `(key, value)` pair becomes
    /// `"key":value`, with `value` pre-rendered JSON (the `--suite` path
    /// uses this to embed the parameter-coverage matrix).
    pub fn render_json_with(&self, sections: &[(&str, String)]) -> String {
        let mut out = String::from("{\"version\":2,\"summary\":{");
        out.push_str(&format!(
            "\"error\":{},\"warn\":{},\"info\":{}}},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"lint\":{},\"severity\":{},\"message\":{},\"context\":{{",
                json_string(d.lint.code()),
                json_string(d.lint.name()),
                json_string(d.severity.label()),
                json_string(&d.message)
            ));
            for (j, (k, v)) in d.context.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
            }
            out.push_str("}}");
        }
        out.push(']');
        for (key, value) in sections {
            out.push_str(&format!(",{}:{value}", json_string(key)));
        }
        out.push('}');
        out
    }
}

/// Escapes a string per RFC 8259 (shared by the report and the coverage
/// matrix rendering).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for &lint in Lint::ALL {
            let code = lint.code();
            assert!(seen.insert(code), "duplicate lint code {code}");
            assert!(code.starts_with("RA") && code.len() == 5, "bad code {code}");
            assert!(code[2..].chars().all(|c| c.is_ascii_digit()));
            assert!(!lint.name().is_empty());
        }
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn report_counts_and_verdict() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Lint::DegenerateDimension, "only one value"));
        r.push(Diagnostic::new(Lint::LatencyOrdering, "l2 <= l1"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Info), 0);
    }

    #[test]
    fn sort_is_severity_major_then_code() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Lint::DegenerateDimension, "w"));
        r.push(Diagnostic::new(Lint::UntunedField, "i"));
        r.push(Diagnostic::new(Lint::KernelUninitRead, "e"));
        r.sort();
        let codes: Vec<_> = r.diagnostics().iter().map(|d| d.lint.code()).collect();
        assert_eq!(codes, ["RA201", "RA001", "RA009"]);
    }

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Lint::DuplicateCandidate, "say \"twice\"\n")
                .with("param", "l1d.latency"),
        );
        let json = r.render_json();
        assert!(json.starts_with("{\"version\":2,"));
        assert!(json.contains("\"say \\\"twice\\\"\\n\""));
        assert!(json.contains("\"context\":{\"param\":\"l1d.latency\"}"));
        assert!(json.contains("\"summary\":{\"error\":0,\"warn\":1,\"info\":0}"));
    }

    #[test]
    fn text_rendering_includes_code_and_context() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Lint::KernelUninitRead, "load of garbage").with("pc", "0x1010"));
        let text = r.render_text();
        assert!(text.contains("error: RA201 [kernel-uninit-read]: load of garbage (pc=0x1010)"));
        assert!(text.contains("1 error(s), 0 warning(s), 0 note(s)"));
    }
}
