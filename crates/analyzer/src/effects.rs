//! Measurement-effects lints: can the race's statistics resolve
//! differences on this board at all?
//!
//! A reference board injects deterministic pseudo-noise into every cycle
//! count ([`SystemEffects::noise_amplitude`]). The racing layer eliminates
//! configurations by paired statistical tests at significance `alpha`
//! after `first_test` instances. If the board's noise floor is larger
//! than the cost differences the race is asked to resolve, eliminations
//! become coin flips: the tune "succeeds" but the winner is arbitrary.
//! That is a specification error of the *measurement setup*, not of the
//! model, and it is checkable statically — before any budget is spent.

use crate::diag::{Diagnostic, Lint};
use racesim_hw::SystemEffects;
use racesim_race::RaceSettings;
use racesim_stats::normal_sf;

/// Warn when the minimum detectable cost difference exceeds this many
/// percentage points of CPI error. Near-elite configurations differ by
/// about a point; a board that cannot resolve that is racing blind.
const MDD_WARN_PCT: f64 = 1.0;

/// The upper `q`-quantile of the standard normal, by bisection over
/// [`normal_sf`] (monotone decreasing). Accurate to ~1e-10, which is far
/// below the heuristic's own precision.
fn z_upper(q: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 10.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if normal_sf(mid) > q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The smallest mean cost difference (percentage points of CPI error) the
/// race can reliably distinguish from this board's noise at its first
/// elimination test.
///
/// Derivation: the board multiplies cycle counts by a factor uniform in
/// `1 ± a`, so each cost carries noise of standard deviation `100a/√3`
/// percentage points; a paired difference of two configurations doubles
/// the variance (`× √2`); the first test averages `first_test` blocks
/// (`/ √first_test`); the two-sided criterion at level `alpha` scales by
/// `z(1 − alpha/2)`, inflated by a further `√2` because the race uses
/// rank tests on a handful of blocks, not a z-test on a large sample.
pub fn min_detectable_difference(effects: &SystemEffects, race: &RaceSettings) -> f64 {
    let amplitude_pct = 100.0 * effects.noise_amplitude;
    let z = z_upper((race.alpha / 2.0).clamp(1e-12, 0.5));
    z * amplitude_pct * (2.0f64 / 3.0).sqrt() * (2.0 / race.first_test.max(1) as f64).sqrt()
}

/// Checks one board's measurement effects against the race's statistical
/// resolution. `board` labels the diagnostics (e.g. `"a53"`).
pub fn check(board: &str, effects: &SystemEffects, race: &RaceSettings) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mdd = min_detectable_difference(effects, race);
    if mdd > MDD_WARN_PCT {
        diags.push(
            Diagnostic::new(
                Lint::NoiseAboveResolution,
                format!(
                    "measurement noise (±{:.2}%) lets the race resolve cost differences only \
                     above {:.2} percentage points at alpha={} with first_test={}; \
                     near-elite configurations differ by less — eliminations will be noise-driven \
                     (raise first_test, lower the noise, or loosen alpha deliberately)",
                    100.0 * effects.noise_amplitude,
                    mdd,
                    race.alpha,
                    race.first_test
                ),
            )
            .with("board", board)
            .with("noise_amplitude", effects.noise_amplitude)
            .with("min_detectable_pct", format!("{mdd:.3}"))
            .with("alpha", race.alpha)
            .with("first_test", race.first_test),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_quantile_matches_the_textbook_values() {
        assert!((z_upper(0.025) - 1.959_96).abs() < 1e-4);
        assert!((z_upper(0.05) - 1.644_85).abs() < 1e-4);
    }

    #[test]
    fn shipped_cluster_presets_stay_below_the_warning_threshold() {
        let race = RaceSettings::default();
        for effects in [
            SystemEffects::little_cluster(),
            SystemEffects::big_cluster(),
            SystemEffects::none(),
        ] {
            let mdd = min_detectable_difference(&effects, &race);
            assert!(mdd <= MDD_WARN_PCT, "preset mdd {mdd} must pass");
            assert!(check("a53", &effects, &race).is_empty());
        }
    }

    #[test]
    fn loud_boards_or_hasty_races_are_flagged() {
        let race = RaceSettings::default();
        let loud = SystemEffects {
            noise_amplitude: 0.05,
            ..SystemEffects::little_cluster()
        };
        let diags = check("a53", &loud, &race);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, Lint::NoiseAboveResolution);
        assert!(diags[0].message.contains("noise"));
        assert!(diags[0].context.iter().any(|(k, _)| k == "board"));

        // The same board passes once the race gathers more evidence per
        // test: mdd shrinks with sqrt(first_test).
        let patient = RaceSettings {
            first_test: 150,
            ..RaceSettings::default()
        };
        assert!(check("a53", &loud, &patient).is_empty());
    }

    #[test]
    fn mdd_scales_with_amplitude_and_alpha() {
        let race = RaceSettings::default();
        let small = SystemEffects {
            noise_amplitude: 0.004,
            ..SystemEffects::none()
        };
        let big = SystemEffects {
            noise_amplitude: 0.008,
            ..SystemEffects::none()
        };
        let m1 = min_detectable_difference(&small, &race);
        let m2 = min_detectable_difference(&big, &race);
        assert!((m2 / m1 - 2.0).abs() < 1e-9, "mdd is linear in amplitude");

        let strict = RaceSettings {
            alpha: 0.01,
            ..RaceSettings::default()
        };
        assert!(
            min_detectable_difference(&small, &strict) > m1,
            "a stricter alpha needs a larger difference"
        );
    }
}
