//! The interval lattice the static CPI bounds engine computes over.
//!
//! An [`Interval`] is a closed range `[lo, hi]` of finite, non-negative
//! `f64`s. The bounds pass only ever needs the operations that preserve
//! *soundness* — if the true quantity lies inside both operands, it lies
//! inside the result — so the type exposes exactly those: point and range
//! construction, addition, multiplication, scaling, the union hull, and
//! containment. Division is deliberately restricted to the one sound shape
//! the pass uses (a count interval over a positive total interval).
//!
//! An interval with `lo > hi` is *inverted*: the abstract interpreter
//! never constructs one on purpose, and [`Lint::BoundInversion`]
//! (`RA602`) exists to surface one escaping anyway, so construction does
//! not panic on it.
//!
//! [`Lint::BoundInversion`]: crate::diag::Lint::BoundInversion

use std::fmt;

/// A closed `[lo, hi]` range of `f64`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The zero point (the additive identity).
    pub fn zero() -> Interval {
        Interval::point(0.0)
    }

    /// Whether `lo > hi` — a bound no value can satisfy (`RA602`).
    pub fn is_inverted(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Scales both endpoints by a non-negative factor.
    pub fn scale(self, k: f64) -> Interval {
        Interval {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }

    /// The convex hull of two intervals (the lattice join).
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The fraction `self / total` of two non-negative intervals with
    /// `total.lo > 0`, clamped to `[0, 1]`: the sound abstraction of
    /// "what share of the total does this part make up" when the part is
    /// one of the summands of the total.
    pub fn fraction_of(self, total: Interval) -> Interval {
        debug_assert!(total.lo > 0.0, "fraction over a possibly-zero total");
        Interval {
            lo: (self.lo / total.hi).clamp(0.0, 1.0),
            hi: (self.hi / total.lo).clamp(0.0, 1.0),
        }
    }

    /// Widens the interval by a relative slack: `lo` shrinks and `hi`
    /// grows by `rel` of their magnitude. The bounds pass applies this
    /// once, at the end, to absorb float-summation rounding and
    /// trace-truncation mix drift without giving up tightness elsewhere.
    pub fn widen_relative(self, rel: f64) -> Interval {
        Interval {
            lo: self.lo * (1.0 - rel),
            hi: self.hi * (1.0 + rel),
        }
    }
}

/// Interval addition: `[a.lo + b.lo, a.hi + b.hi]`.
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

/// Multiplication of two non-negative intervals:
/// `[a.lo * b.lo, a.hi * b.hi]`. Sound only when both operands are
/// non-negative, which every quantity in the bounds pass (counts, trips,
/// latencies, fractions) is.
impl std::ops::Mul for Interval {
    type Output = Interval;

    fn mul(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo * other.lo,
            hi: self.hi * other.hi,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_contains_only_itself() {
        let p = Interval::point(2.5);
        assert!(p.contains(2.5));
        assert!(!p.contains(2.5000001));
        assert_eq!(p.width(), 0.0);
        assert!(!p.is_inverted());
    }

    #[test]
    fn arithmetic_is_endpointwise() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(3.0, 5.0);
        assert_eq!(a + b, Interval::new(4.0, 7.0));
        assert_eq!(a * b, Interval::new(3.0, 10.0));
        assert_eq!(a.scale(4.0), Interval::new(4.0, 8.0));
    }

    #[test]
    fn union_is_the_hull() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(4.0, 5.0);
        let u = a.union(b);
        assert_eq!(u, Interval::new(1.0, 5.0));
        assert!(u.contains(3.0), "the hull covers the gap");
    }

    #[test]
    fn fraction_is_clamped_and_ordered() {
        let part = Interval::new(2.0, 4.0);
        let total = Interval::new(8.0, 10.0);
        let f = part.fraction_of(total);
        assert_eq!(f, Interval::new(0.2, 0.5));
        // A part as large as the total clamps at 1.
        let f = Interval::new(9.0, 12.0).fraction_of(total);
        assert_eq!(f.hi, 1.0);
        assert!(!f.is_inverted());
    }

    #[test]
    fn widen_is_symmetric_and_preserves_members() {
        let a = Interval::new(10.0, 20.0);
        let w = a.widen_relative(0.01);
        assert!(w.lo < a.lo && w.hi > a.hi);
        assert!(w.contains(10.0) && w.contains(20.0));
    }

    #[test]
    fn inversion_is_representable_not_fatal() {
        // RA602 polices this; the type must carry it without panicking.
        let inv = Interval::new(2.0, 1.0);
        assert!(inv.is_inverted());
        assert!(!inv.contains(1.5));
    }
}
