//! Kernel IR: a static CFG/dataflow representation of one kernel's decoded
//! micro-op stream, and the RA4xx lints built on top of it.
//!
//! Where [`crate::kernel`] runs a value-level abstract interpretation to
//! find specification bugs (uninitialised reads, wild branches), this module
//! builds the *structural* view the campaign-level passes need:
//!
//! * **Basic blocks** — leaders are the entry, every branch target
//!   (including indirect-branch candidates) and every post-terminator
//!   fallthrough, so a block's reachability equals the reachability of each
//!   instruction in it.
//! * **Liveness** — a backward dataflow over a 66-register bitmask. With
//!   every register live at exit blocks, a write is dead only when it is
//!   provably overwritten before any read on every path
//!   ([`Lint::KernelDeadWrite`]).
//! * **Loops** — DFS back edges and their natural loops, with an exit-edge
//!   check ([`Lint::KernelNoExitLoop`]) and, for the suite's
//!   `counted_loop` idiom, static trip counts
//!   ([`Lint::KernelDegenerateLoop`] when the body runs at most once).
//! * **[`KernelProfile`]** — what the parameter-coverage matrix consumes:
//!   per-class site counts ([`StaticSummary`]), memory footprint, branch
//!   site counts, and the best block-level ILP the kernel can expose.

use crate::diag::{Diagnostic, Lint};
use racesim_decoder::Decoder;
use racesim_isa::{InstClass, Opcode, Program, Reg, StaticInst};
use racesim_trace::StaticSummary;
use std::collections::BTreeSet;

/// Shared control-flow view of a program: the decoded instruction stream
/// plus the successor relation. [`crate::kernel`]'s abstract interpreter
/// and this module's CFG builder both walk exactly this relation, which is
/// what makes their reachability verdicts provably agree.
pub(crate) struct Flow<'a> {
    /// The program under analysis.
    pub prog: &'a Program,
    /// Decoded instruction per code slot (`None` if undecodable).
    pub insts: Vec<Option<StaticInst>>,
    /// Code indices a `br`/`blr` may jump to (pointer tables and patched
    /// `movz` address loads).
    pub indirect_targets: Vec<usize>,
}

impl<'a> Flow<'a> {
    pub fn new(prog: &'a Program) -> Flow<'a> {
        let insts = Decoder::new().decode_program(&prog.code);
        let mut flow = Flow {
            prog,
            insts,
            indirect_targets: Vec::new(),
        };
        flow.collect_indirect_targets();
        flow
    }

    /// Candidate targets for indirect branches: code addresses stored in
    /// data blobs (jump/function-pointer tables) and `movz` immediates
    /// that name a code address (patched `load_label_addr`).
    fn collect_indirect_targets(&mut self) {
        let mut targets = BTreeSet::new();
        for (_, bytes) in &self.prog.data {
            for chunk in bytes.chunks_exact(8) {
                let word = u64::from_le_bytes(chunk.try_into().unwrap());
                if let Some(idx) = self.prog.index_of(word) {
                    targets.insert(idx);
                }
            }
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if self.opcode(i) == Some(Opcode::Movz) {
                let imm = inst.as_ref().unwrap().imm;
                if imm > 0 {
                    if let Some(idx) = self.prog.index_of(imm as u64) {
                        targets.insert(idx);
                    }
                }
            }
        }
        self.indirect_targets = targets.into_iter().collect();
    }

    /// Decoded opcode of slot `idx`, if the word decodes.
    pub fn opcode(&self, idx: usize) -> Option<Opcode> {
        self.insts[idx].as_ref().map(|i| i.opcode)
    }

    /// Resolved direct-branch target, if the opcode is a direct branch.
    pub fn direct_target(&self, idx: usize) -> Option<i64> {
        match self.opcode(idx) {
            Some(Opcode::B | Opcode::Bcond | Opcode::Cbz | Opcode::Cbnz | Opcode::Bl) => {
                Some(idx as i64 + self.insts[idx].as_ref().unwrap().imm)
            }
            _ => None,
        }
    }

    /// Static successors of instruction `idx`, clipped to the code range.
    /// Undecodable words fall through, like the abstract interpreter.
    pub fn successors(&self, idx: usize) -> Vec<usize> {
        let n = self.prog.code.len();
        let mut succ = Vec::with_capacity(2);
        let push = |i: i64, v: &mut Vec<usize>| {
            if i >= 0 && (i as usize) < n {
                v.push(i as usize);
            }
        };
        match self.opcode(idx) {
            Some(Opcode::Halt) | Some(Opcode::Ret) => {}
            Some(Opcode::B) => push(self.direct_target(idx).unwrap(), &mut succ),
            Some(Opcode::Bcond | Opcode::Cbz | Opcode::Cbnz | Opcode::Bl) => {
                push(self.direct_target(idx).unwrap(), &mut succ);
                push(idx as i64 + 1, &mut succ);
            }
            Some(Opcode::Br) => succ.extend(self.indirect_targets.iter().copied()),
            Some(Opcode::Blr) => {
                succ.extend(self.indirect_targets.iter().copied());
                push(idx as i64 + 1, &mut succ);
            }
            _ => push(idx as i64 + 1, &mut succ),
        }
        succ
    }

    /// Whether slot `idx` transfers control (its successor set is not the
    /// plain fallthrough) — such instructions terminate a basic block.
    fn is_terminator(&self, idx: usize) -> bool {
        matches!(
            self.opcode(idx),
            Some(
                Opcode::B
                    | Opcode::Bcond
                    | Opcode::Cbz
                    | Opcode::Cbnz
                    | Opcode::Bl
                    | Opcode::Br
                    | Opcode::Blr
                    | Opcode::Ret
                    | Opcode::Halt
            )
        )
    }
}

/// One basic block: the instruction range `[start, end)` plus its edges.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block indices (deduplicated, sorted).
    pub succs: Vec<usize>,
    /// Predecessor block indices (deduplicated, sorted).
    pub preds: Vec<usize>,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block holds no instructions (never true for built IRs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A natural loop discovered from a DFS back edge.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Header block index (the back edge's target).
    pub header: usize,
    /// Block index the back edge leaves from.
    pub latch: usize,
    /// All block indices in the loop body (including header and latch).
    pub body: Vec<usize>,
    /// Whether any body block can branch out of the loop or end the
    /// program; a loop without one can never terminate.
    pub has_exit: bool,
    /// Static trip count, when the loop matches the suite's
    /// `counted_loop` idiom (`mov64 ctr, N; ...; subi ctr, ctr, k;
    /// cbnz ctr, header`): `ceil(N / k)`.
    pub static_trip: Option<u64>,
}

/// The control-flow/dataflow IR of one kernel.
#[derive(Debug)]
pub struct KernelIr {
    /// Basic blocks in address order.
    pub blocks: Vec<Block>,
    /// Block index of each instruction.
    pub block_of: Vec<usize>,
    /// Whether each block is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Natural loops, in back-edge discovery order.
    pub loops: Vec<Loop>,
    /// Live-register bitmask at each block's exit (bit = `Reg::index`).
    live_out: Vec<u128>,
}

/// Bitmask with one bit per architectural register slot.
const ALL_REGS: u128 = (1u128 << Reg::COUNT) - 1;

fn use_def(inst: Option<&StaticInst>) -> (u128, u128) {
    match inst {
        // Undecodable words: assume they read everything and write
        // nothing, so they never create or kill a dead-write finding.
        None => (ALL_REGS, 0),
        Some(i) => {
            let uses = i.sources().iter().fold(0u128, |m, r| m | 1 << r.index());
            let defs = i.dests().iter().fold(0u128, |m, r| m | 1 << r.index());
            (uses, defs)
        }
    }
}

impl KernelIr {
    /// Builds the IR: blocks, edges, reachability, liveness and loops.
    pub fn build(prog: &Program) -> KernelIr {
        let flow = Flow::new(prog);
        Self::from_flow(&flow)
    }

    fn from_flow(flow: &Flow<'_>) -> KernelIr {
        let n = flow.prog.code.len();
        if n == 0 {
            return KernelIr {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
                loops: Vec::new(),
                live_out: Vec::new(),
            };
        }

        // Leaders: entry, every control-transfer successor (all branch
        // targets are leaders, so block reachability is instruction
        // reachability), and every post-terminator fallthrough.
        let mut leaders = BTreeSet::from([0usize]);
        for idx in 0..n {
            if flow.is_terminator(idx) {
                leaders.extend(flow.successors(idx));
                if idx + 1 < n {
                    leaders.insert(idx + 1);
                }
            }
        }

        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<Block> = starts
            .iter()
            .enumerate()
            .map(|(b, &start)| Block {
                start,
                end: starts.get(b + 1).copied().unwrap_or(n),
                succs: Vec::new(),
                preds: Vec::new(),
            })
            .collect();
        let mut block_of = vec![0usize; n];
        for (b, blk) in blocks.iter().enumerate() {
            block_of[blk.start..blk.end].fill(b);
        }

        // Edges: the last instruction's successors are all leaders.
        for blk in &mut blocks {
            let last = blk.end - 1;
            let mut succs: Vec<usize> =
                flow.successors(last).iter().map(|&t| block_of[t]).collect();
            succs.sort_unstable();
            succs.dedup();
            blk.succs = succs;
        }
        for b in 0..blocks.len() {
            for &s in &blocks[b].succs.clone() {
                blocks[s].preds.push(b);
            }
        }
        for blk in &mut blocks {
            blk.preds.sort_unstable();
            blk.preds.dedup();
        }

        // Reachability: BFS over block edges from the entry.
        let mut reachable = vec![false; blocks.len()];
        let mut work = vec![0usize];
        reachable[0] = true;
        while let Some(b) = work.pop() {
            for &s in &blocks[b].succs {
                if !reachable[s] {
                    reachable[s] = true;
                    work.push(s);
                }
            }
        }

        // Backward liveness to a fixed point. Exit blocks (no successors)
        // keep every register live, so only provably-overwritten writes
        // are ever reported dead.
        let mut use_mask = vec![0u128; blocks.len()];
        let mut def_mask = vec![0u128; blocks.len()];
        for (b, blk) in blocks.iter().enumerate() {
            let (mut uses, mut defs) = (0u128, 0u128);
            for idx in (blk.start..blk.end).rev() {
                let (u, d) = use_def(flow.insts[idx].as_ref());
                uses = (uses & !d) | u;
                defs |= d;
            }
            use_mask[b] = uses;
            def_mask[b] = defs;
        }
        let mut live_in = vec![0u128; blocks.len()];
        let mut live_out = vec![0u128; blocks.len()];
        loop {
            let mut changed = false;
            for b in (0..blocks.len()).rev() {
                let out = if blocks[b].succs.is_empty() {
                    ALL_REGS
                } else {
                    blocks[b].succs.iter().fold(0u128, |m, &s| m | live_in[s])
                };
                let inn = use_mask[b] | (out & !def_mask[b]);
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut ir = KernelIr {
            blocks,
            block_of,
            reachable,
            loops: Vec::new(),
            live_out,
        };
        ir.find_loops(flow);
        ir
    }

    /// DFS back-edge discovery plus natural-loop bodies, exit checks and
    /// `counted_loop` trip counts.
    fn find_loops(&mut self, flow: &Flow<'_>) {
        // Iterative DFS tracking the on-stack set.
        let nb = self.blocks.len();
        let mut color = vec![0u8; nb]; // 0 white, 1 on stack, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        let mut back_edges: Vec<(usize, usize)> = Vec::new();
        color[0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*i];
                *i += 1;
                match color[s] {
                    0 => {
                        color[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => back_edges.push((b, s)),
                    _ => {}
                }
            } else {
                color[b] = 2;
                stack.pop();
            }
        }

        for (latch, header) in back_edges {
            // Natural loop: header plus everything that reaches the latch
            // without passing through the header.
            let mut body = BTreeSet::from([header, latch]);
            let mut work = vec![latch];
            while let Some(b) = work.pop() {
                if b == header {
                    continue;
                }
                for &p in &self.blocks[b].preds {
                    if body.insert(p) {
                        work.push(p);
                    }
                }
            }
            let has_exit = body.iter().any(|&b| {
                let blk = &self.blocks[b];
                blk.succs.is_empty() || blk.succs.iter().any(|s| !body.contains(s))
            });
            let static_trip = self.counted_trip(flow, header, latch);
            self.loops.push(Loop {
                header,
                latch,
                body: body.into_iter().collect(),
                has_exit,
                static_trip,
            });
        }
    }

    /// Trip count for the `counted_loop` idiom: the latch ends in
    /// `cbnz ctr, header`, the counter's last pre-header write is a
    /// reconstructible `movz`/`movk` constant `N`, and the loop decrements
    /// it by `subi ctr, ctr, k`. The body then runs `ceil(N / k)` times.
    fn counted_trip(&self, flow: &Flow<'_>, header: usize, latch: usize) -> Option<u64> {
        let latch_last = self.blocks[latch].end - 1;
        let inst = flow.insts[latch_last].as_ref()?;
        if inst.opcode != Opcode::Cbnz
            || self.block_of[flow.direct_target(latch_last)? as usize] != header
        {
            return None;
        }
        let ctr = *inst.sources().first()?;

        // Reconstruct the counter constant with a forward scan up to the
        // header: movz sets, movk patches, anything else poisons.
        let mut value: Option<u64> = None;
        for idx in 0..self.blocks[header].start {
            let Some(i) = flow.insts[idx].as_ref() else {
                continue;
            };
            if i.dests().contains(&ctr) {
                value = match i.opcode {
                    Opcode::Movz => Some(i.imm as u64),
                    Opcode::Movk => value.map(|v| {
                        let slot = i.movk_slot as u32;
                        (v & !(0xffffu64 << (16 * slot))) | ((i.imm as u64) << (16 * slot))
                    }),
                    _ => None,
                };
            }
        }
        let n = value?;

        // Per-iteration decrement: a single `subi ctr, ctr, k` in the loop.
        let header_start = self.blocks[header].start;
        let latch_end = self.blocks[latch].end;
        let mut step: Option<u64> = None;
        for idx in header_start..latch_end {
            let Some(i) = flow.insts[idx].as_ref() else {
                continue;
            };
            if i.dests().contains(&ctr) {
                match (i.opcode, step) {
                    (Opcode::SubI, None) if i.imm > 0 => step = Some(i.imm as u64),
                    _ => return None, // not the plain counted idiom
                }
            }
        }
        let k = step?;
        Some(n.div_ceil(k))
    }

    /// Best instructions-per-critical-path-step over the reachable blocks:
    /// the ILP the kernel can expose to a wide issue stage.
    fn max_block_ilp(&self, flow: &Flow<'_>) -> f64 {
        let mut best = 1.0f64;
        for (b, blk) in self.blocks.iter().enumerate() {
            if !self.reachable[b] || blk.len() < 2 {
                continue;
            }
            let mut last_writer = [0usize; Reg::COUNT]; // depth of last def
            let mut longest = 0usize;
            let mut count = 0usize;
            for idx in blk.start..blk.end {
                let Some(i) = flow.insts[idx].as_ref() else {
                    continue;
                };
                count += 1;
                let depth = 1 + i
                    .sources()
                    .iter()
                    .map(|r| last_writer[r.index()])
                    .max()
                    .unwrap_or(0);
                for r in i.dests() {
                    last_writer[r.index()] = depth;
                }
                longest = longest.max(depth);
            }
            if longest > 0 {
                best = best.max(count as f64 / longest as f64);
            }
        }
        best
    }
}

/// Static profile of one kernel — the row the parameter-coverage matrix is
/// built from.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Per-class site counts over the *reachable* instructions.
    pub summary: StaticSummary,
    /// Code footprint in bytes (what the instruction cache sees).
    pub code_bytes: u64,
    /// Data footprint in bytes: data images plus reserved regions.
    pub data_bytes: u64,
    /// Total basic blocks.
    pub blocks: usize,
    /// Reachable basic blocks.
    pub reachable_blocks: usize,
    /// Natural loops found.
    pub loops: usize,
    /// Static trip counts of recognised counted loops.
    pub static_trips: Vec<u64>,
    /// Best block-level ILP (instructions / critical-path length).
    pub max_block_ilp: f64,
}

/// Builds the static profile of one kernel.
pub fn profile(name: &str, prog: &Program) -> KernelProfile {
    let flow = Flow::new(prog);
    let ir = KernelIr::from_flow(&flow);
    let reachable_insts = flow.insts.iter().enumerate().filter_map(|(idx, inst)| {
        let b = *ir.block_of.get(idx)?;
        if ir.reachable[b] {
            inst.as_ref()
        } else {
            None
        }
    });
    let summary = StaticSummary::of_insts(reachable_insts);
    let data_bytes = prog.data.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        + prog.reserved.iter().map(|r| r.len).sum::<u64>();
    KernelProfile {
        name: name.to_string(),
        summary,
        code_bytes: prog.code_bytes(),
        data_bytes,
        blocks: ir.blocks.len(),
        reachable_blocks: ir.reachable.iter().filter(|&&r| r).count(),
        loops: ir.loops.len(),
        static_trips: ir.loops.iter().filter_map(|l| l.static_trip).collect(),
        max_block_ilp: ir.max_block_ilp(&flow),
    }
}

/// Runs the RA4xx kernel-IR lints over one program.
pub fn check(prog: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_into(prog, &mut out);
    out
}

/// Runs the RA4xx kernel-IR lints, appending to `out`.
pub fn check_into(prog: &Program, out: &mut Vec<Diagnostic>) {
    let flow = Flow::new(prog);
    let ir = KernelIr::from_flow(&flow);

    // RA401: dead register writes. Walk each reachable block backward with
    // the live mask; a write whose every destination is overwritten before
    // any read (on all paths) did no architectural work. Loads are exempt
    // (kernels load into scratch registers purely for the memory timing),
    // as are `bl`/`blr` (the LR write is the call protocol) and
    // zero-register destinations.
    let mut dead: Vec<(usize, String, String)> = Vec::new();
    for (b, blk) in ir.blocks.iter().enumerate() {
        if !ir.reachable[b] {
            continue;
        }
        let mut live = ir.live_out[b];
        for idx in (blk.start..blk.end).rev() {
            let (uses, defs) = use_def(flow.insts[idx].as_ref());
            let inst = flow.insts[idx].as_ref();
            let exempt = inst.is_none_or(|i| {
                i.class == InstClass::Load
                    || matches!(i.opcode, Opcode::Bl | Opcode::Blr)
                    || i.dests().iter().all(|r| r.is_zero())
            });
            if !exempt && defs != 0 && defs & live == 0 {
                let i = inst.unwrap();
                let dests: Vec<String> = i.dests().iter().map(|r| format!("{r}")).collect();
                dead.push((idx, format!("{:?}", i.opcode), dests.join(",")));
            }
            live = (live & !defs) | uses;
        }
    }
    // Handwritten kernels get one diagnostic per dead write; generated
    // proxies with hundreds of intentional clobbers get a few examples
    // plus one summary, so they cannot bury the rest of the report.
    dead.sort_by_key(|&(idx, ..)| idx);
    const DEAD_WRITE_CAP: usize = 4;
    let per_site = if dead.len() > DEAD_WRITE_CAP {
        DEAD_WRITE_CAP - 1
    } else {
        dead.len()
    };
    for (idx, opcode, regs) in &dead[..per_site] {
        out.push(
            Diagnostic::new(
                Lint::KernelDeadWrite,
                "register write is overwritten before any read on every path",
            )
            .with("pc", format!("{:#x}", prog.pc_of(*idx)))
            .with("opcode", opcode.clone())
            .with("regs", regs.clone()),
        );
    }
    if dead.len() > DEAD_WRITE_CAP {
        out.push(
            Diagnostic::new(
                Lint::KernelDeadWrite,
                "register writes are overwritten before any read on every \
                 path: later instructions clobber the dependency chains \
                 these writes were meant to extend (first sites listed \
                 individually above)",
            )
            .with("total_sites", dead.len().to_string())
            .with("next_site", format!("{:#x}", prog.pc_of(dead[per_site].0))),
        );
    }

    for l in &ir.loops {
        let header_pc = format!("{:#x}", prog.pc_of(ir.blocks[l.header].start));
        // RA403: a loop no path leaves can never terminate — the kernel
        // would hang the functional front-end at trace-recording time.
        if !l.has_exit {
            out.push(
                Diagnostic::new(
                    Lint::KernelNoExitLoop,
                    "loop has no exit edge: the kernel cannot terminate",
                )
                .with("header_pc", header_pc.clone())
                .with("blocks", l.body.len()),
            );
        }
        // RA402: a counted loop whose body runs at most once measures
        // nothing steady-state — the timing signal is all warm-up.
        if let Some(trip) = l.static_trip {
            if trip <= 1 {
                out.push(
                    Diagnostic::new(
                        Lint::KernelDegenerateLoop,
                        format!("counted loop body runs {trip} time(s): no steady-state signal"),
                    )
                    .with("header_pc", header_pc)
                    .with("trip_count", trip),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::asm::Asm;

    fn diags(prog: &Program) -> Vec<Lint> {
        check(prog).into_iter().map(|d| d.lint).collect()
    }

    #[test]
    fn straight_line_kernel_is_one_block_and_clean() {
        let mut a = Asm::new();
        a.add(Reg::x(0), Reg::x(1), Reg::x(2));
        a.mul(Reg::x(3), Reg::x(0), Reg::x(0));
        a.halt();
        let p = a.finish();
        let ir = KernelIr::build(&p);
        assert_eq!(ir.blocks.len(), 1);
        assert!(ir.reachable[0]);
        assert!(ir.loops.is_empty());
        assert_eq!(diags(&p), vec![]);
    }

    #[test]
    fn overwritten_write_is_dead_but_final_write_is_not() {
        let mut a = Asm::new();
        a.movz(Reg::x(1), 5); // dead: overwritten before any read
        a.movz(Reg::x(1), 7);
        a.add(Reg::x(2), Reg::x(1), Reg::x(1));
        a.halt();
        let d = check(&a.finish());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, Lint::KernelDeadWrite);
        assert_eq!(d[0].context[0].1, "0x1000"); // the first movz only
    }

    #[test]
    fn loop_carried_work_is_not_dead() {
        // x2 is rewritten every iteration and only "used" by being kept
        // live across the exit — all-live-at-exit must keep this silent.
        let mut a = Asm::new();
        a.movz(Reg::x(1), 8);
        let top = a.here();
        a.mul(Reg::x(2), Reg::x(1), Reg::x(1));
        a.subi(Reg::x(1), Reg::x(1), 1);
        a.cbnz(Reg::x(1), top);
        a.halt();
        assert_eq!(diags(&a.finish()), vec![]);
    }

    #[test]
    fn counted_loop_trip_count_is_reconstructed() {
        let mut a = Asm::new();
        a.mov64(Reg::x(28), 100_000); // movz+movk reconstruction
        let top = a.here();
        a.add(Reg::x(0), Reg::x(0), Reg::x(1));
        a.subi(Reg::x(28), Reg::x(28), 1);
        a.cbnz(Reg::x(28), top);
        a.halt();
        let ir = KernelIr::build(&a.finish());
        assert_eq!(ir.loops.len(), 1);
        assert!(ir.loops[0].has_exit);
        assert_eq!(ir.loops[0].static_trip, Some(100_000));
    }

    #[test]
    fn degenerate_single_trip_loop_is_flagged() {
        let mut a = Asm::new();
        a.movz(Reg::x(28), 1);
        let top = a.here();
        a.add(Reg::x(0), Reg::x(0), Reg::x(1));
        a.subi(Reg::x(28), Reg::x(28), 1);
        a.cbnz(Reg::x(28), top);
        a.halt();
        assert!(diags(&a.finish()).contains(&Lint::KernelDegenerateLoop));
    }

    #[test]
    fn inescapable_loop_is_an_error() {
        let mut a = Asm::new();
        a.movz(Reg::x(1), 3);
        let top = a.here();
        a.add(Reg::x(0), Reg::x(0), Reg::x(1));
        a.b(top);
        a.halt(); // unreachable
        let d = check(&a.finish());
        assert!(d.iter().any(|d| d.lint == Lint::KernelNoExitLoop));
    }

    #[test]
    fn profile_reports_sites_and_footprint() {
        let mut a = Asm::new();
        let buf = a.reserve_initialized(4096, 64);
        a.mov64(Reg::x(1), buf);
        a.movz(Reg::x(28), 64);
        let top = a.here();
        a.ldr8(Reg::x(2), Reg::x(1), 0);
        a.str8(Reg::x(2), Reg::x(1), 8);
        a.subi(Reg::x(28), Reg::x(28), 1);
        a.cbnz(Reg::x(28), top);
        a.halt();
        let p = profile("probe", &a.finish());
        assert_eq!(p.summary.loads(), 1);
        assert_eq!(p.summary.stores(), 1);
        assert_eq!(p.summary.cond_branches(), 1);
        assert_eq!(p.data_bytes, 4096);
        assert_eq!(p.loops, 1);
        assert_eq!(p.static_trips, vec![64]);
        assert!(p.max_block_ilp >= 1.0);
        assert_eq!(p.blocks, p.reachable_blocks);
    }
}
