//! Kernel static analysis: catches specification errors in the benchmark
//! programs themselves, before any cycle is simulated.
//!
//! Three checks run over a [`Program`]:
//!
//! * **Def-before-use on data regions** ([`Lint::KernelUninitRead`]) — a
//!   region-granularity abstract interpretation finds loads from reserved
//!   regions that nothing initialises: no data image covers them, no store
//!   in the program writes them, and the assembler recorded them as
//!   uninitialised. This is exactly the paper's "couple memory-intensive
//!   micro-benchmarks \[that\] access an uninitialized array" hazard,
//!   caught without running the kernel.
//! * **Reachability** ([`Lint::KernelUnreachable`]) — instructions no
//!   control-flow path from the entry can ever execute.
//! * **Branch-target range** ([`Lint::KernelBranchOutOfRange`]) — direct
//!   branches whose resolved target lies outside the code segment.
//!
//! The abstract domain is deliberately coarse: a register holds either a
//! known constant, a pointer into one specific reserved region, or an
//! unknown value. Pointers formed from a region's base are assumed to stay
//! inside that region (kernels mask their offsets, so this matches how the
//! suite is written); stores anywhere into a region count as initialising
//! the whole region. Both approximations err toward silence — the pass
//! reports only loads it can prove target a never-initialised region.

use crate::diag::{Diagnostic, Lint};
use crate::ir::Flow;
use racesim_isa::{Opcode, Program, Reg, INST_BYTES};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// A known 64-bit constant.
    Const(u64),
    /// A pointer somewhere inside reserved region `idx`.
    Region(usize),
    /// Anything.
    Top,
}

impl AbsVal {
    fn join(self, other: AbsVal, prog: &Program) -> AbsVal {
        if self == other {
            return self;
        }
        // Two different constants inside the same region still identify
        // that region; so does a constant joined with its region.
        let r1 = self.region(prog);
        let r2 = other.region(prog);
        match (r1, r2) {
            (Some(a), Some(b)) if a == b => AbsVal::Region(a),
            _ => AbsVal::Top,
        }
    }

    /// The reserved region this value points into, if any.
    fn region(self, prog: &Program) -> Option<usize> {
        match self {
            AbsVal::Region(r) => Some(r),
            AbsVal::Const(c) => prog.reserved.iter().position(|r| r.contains(c)),
            AbsVal::Top => None,
        }
    }
}

/// Per-instruction entry state: one abstract value per register slot.
type State = Box<[AbsVal]>;

struct Analysis<'a> {
    prog: &'a Program,
    /// Shared decoded-instruction + successor view (also used by the
    /// CFG builder in [`crate::ir`], so reachability verdicts agree).
    flow: Flow<'a>,
    /// Entry state per instruction (`None` = not reached yet).
    states: Vec<Option<State>>,
}

fn reg_val(state: &State, bits: u8) -> AbsVal {
    if bits as usize == Reg::XZR.index() {
        AbsVal::Const(0)
    } else {
        state[bits as usize]
    }
}

fn set_reg(state: &mut State, bits: u8, v: AbsVal) {
    let i = bits as usize;
    if i != Reg::XZR.index() && i < state.len() {
        state[i] = v;
    }
}

impl<'a> Analysis<'a> {
    fn new(prog: &'a Program) -> Analysis<'a> {
        Analysis {
            prog,
            flow: Flow::new(prog),
            states: vec![None; prog.code.len()],
        }
    }

    /// Applies instruction `idx` to `state`.
    fn transfer(&self, idx: usize, state: &mut State) {
        let Some(op) = self.flow.opcode(idx) else {
            return;
        };
        let w = self.prog.code[idx];
        let (rd, rn, rm, imm) = (w.rd_bits(), w.rn_bits(), w.rm_bits(), w.imm());
        let prog = self.prog;
        use AbsVal::*;
        use Opcode::*;
        match op {
            Nop | Dsb | Halt | Cmp | CmpI | B | Bcond | Cbz | Cbnz | Br | Ret => {}
            Movz => set_reg(state, rd, Const(imm as u64)),
            Movk => {
                let slot = (w.aux() & 0x3) as u32;
                let v = match reg_val(state, rn) {
                    Const(c) => {
                        Const((c & !(0xffffu64 << (16 * slot))) | ((imm as u64) << (16 * slot)))
                    }
                    _ => Top,
                };
                set_reg(state, rd, v);
            }
            Add | Sub => {
                let (a, b) = (reg_val(state, rn), reg_val(state, rm));
                let v = match (a, b) {
                    (Const(x), Const(y)) if op == Add => Const(x.wrapping_add(y)),
                    (Const(x), Const(y)) => Const(x.wrapping_sub(y)),
                    // Pointer arithmetic keeps the region taint.
                    _ => match (a.region(prog), b.region(prog)) {
                        (Some(r), None) => Region(r),
                        (None, Some(r)) if op == Add => Region(r),
                        _ => Top,
                    },
                };
                set_reg(state, rd, v);
            }
            AddI | SubI => {
                let a = reg_val(state, rn);
                let v = match a {
                    Const(x) if op == AddI => Const(x.wrapping_add(imm as u64)),
                    Const(x) => Const(x.wrapping_sub(imm as u64)),
                    _ => match a.region(prog) {
                        Some(r) => Region(r),
                        None => Top,
                    },
                };
                set_reg(state, rd, v);
            }
            And => {
                // Masking an offset register: constants stay exact; a
                // masked pointer stays in its region (masks here implement
                // power-of-two wraparound within a buffer).
                let (a, b) = (reg_val(state, rn), reg_val(state, rm));
                let v = match (a, b) {
                    (Const(x), Const(y)) => Const(x & y),
                    _ => match (a.region(prog), b.region(prog)) {
                        (Some(r), _) | (_, Some(r)) => Region(r),
                        _ => Top,
                    },
                };
                set_reg(state, rd, v);
            }
            Orr => {
                // `mov rd, rn` is assembled as `orr rd, rn, xzr`.
                let (a, b) = (reg_val(state, rn), reg_val(state, rm));
                let v = match (a, b) {
                    (Const(x), Const(y)) => Const(x | y),
                    (x, Const(0)) => x,
                    (Const(0), y) => y,
                    _ => Top,
                };
                set_reg(state, rd, v);
            }
            Eor | Mul | Udiv | Sdiv => {
                let v = match (reg_val(state, rn), reg_val(state, rm)) {
                    (Const(x), Const(y)) => Const(match op {
                        Eor => x ^ y,
                        Mul => x.wrapping_mul(y),
                        Udiv => x.checked_div(y).unwrap_or(0),
                        _ => {
                            if y == 0 {
                                0
                            } else {
                                (x as i64).wrapping_div(y as i64) as u64
                            }
                        }
                    }),
                    _ => Top,
                };
                set_reg(state, rd, v);
            }
            Lsl | Lsr | Asr => {
                let v = match reg_val(state, rn) {
                    Const(x) => Const(match op {
                        Lsl => x.wrapping_shl(imm as u32),
                        Lsr => x.wrapping_shr(imm as u32),
                        _ => ((x as i64).wrapping_shr(imm as u32)) as u64,
                    }),
                    _ => Top,
                };
                set_reg(state, rd, v);
            }
            Csel => {
                let v = reg_val(state, rn).join(reg_val(state, rm), prog);
                set_reg(state, rd, v);
            }
            Ldr => set_reg(state, rd, Top),
            Str => {}
            Bl | Blr => set_reg(
                state,
                Reg::LR.index() as u8,
                Const(prog.pc_of(idx) + INST_BYTES),
            ),
            // FP/SIMD results are never used as addresses.
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Scvtf | Fcvtzs | Fmov | FmovI | Vadd | Vmul
            | Vfadd | Vfmul | Vfma => set_reg(state, rd, Top),
        }
    }

    /// The region a memory instruction's effective address resolves to.
    fn ea_region(&self, idx: usize, state: &State) -> Option<usize> {
        let w = self.prog.code[idx];
        let (base, off) = (reg_val(state, w.rn_bits()), reg_val(state, w.rm_bits()));
        use AbsVal::*;
        match (base, off) {
            (Const(b), Const(o)) => {
                let addr = b.wrapping_add(o).wrapping_add(w.imm() as u64);
                Const(addr).region(self.prog)
            }
            _ => match (base.region(self.prog), off.region(self.prog)) {
                (Some(r), None) | (None, Some(r)) => Some(r),
                _ => None,
            },
        }
    }

    /// Runs the worklist to a fixed point.
    fn run(&mut self) {
        if self.prog.code.is_empty() {
            return;
        }
        let mut entry = vec![AbsVal::Const(0); Reg::COUNT].into_boxed_slice();
        entry[Reg::SP.index()] = AbsVal::Const(racesim_isa::DEFAULT_STACK_TOP);
        for &(reg, val) in &self.prog.init_regs {
            set_reg(&mut entry, reg, AbsVal::Const(val));
        }
        self.states[0] = Some(entry);
        let mut work: VecDeque<usize> = VecDeque::from([0]);
        let mut queued = vec![false; self.prog.code.len()];
        queued[0] = true;
        while let Some(idx) = work.pop_front() {
            queued[idx] = false;
            let mut out = self.states[idx].clone().expect("queued without state");
            self.transfer(idx, &mut out);
            for succ in self.flow.successors(idx) {
                let changed = match &mut self.states[succ] {
                    Some(existing) => {
                        let mut any = false;
                        for (e, o) in existing.iter_mut().zip(out.iter()) {
                            let j = e.join(*o, self.prog);
                            if j != *e {
                                *e = j;
                                any = true;
                            }
                        }
                        any
                    }
                    slot @ None => {
                        *slot = Some(out.clone());
                        true
                    }
                };
                if changed && !queued[succ] {
                    queued[succ] = true;
                    work.push_back(succ);
                }
            }
        }
    }
}

/// Statically analyses one program.
pub fn check(prog: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_into(prog, &mut out);
    out
}

/// Statically analyses one program, appending to `out`.
pub fn check_into(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut a = Analysis::new(prog);

    // Branch-target range (direct branches only; the assembler patches
    // offsets, so a violation means a corrupted or hand-built program).
    for idx in 0..prog.code.len() {
        if let Some(t) = a.flow.direct_target(idx) {
            if t < 0 || t as usize >= prog.code.len() {
                out.push(
                    Diagnostic::new(
                        Lint::KernelBranchOutOfRange,
                        "direct branch target lies outside the code segment",
                    )
                    .with("pc", format!("{:#x}", prog.pc_of(idx)))
                    .with(
                        "target",
                        format!("{:#x}", prog.code_base as i64 + t * INST_BYTES as i64),
                    ),
                );
            }
        }
    }

    a.run();

    // Unreachable code, aggregated into contiguous runs.
    let mut run_start: Option<usize> = None;
    for idx in 0..=prog.code.len() {
        let dead = idx < prog.code.len() && a.states[idx].is_none();
        match (dead, run_start) {
            (true, None) => run_start = Some(idx),
            (false, Some(start)) => {
                out.push(
                    Diagnostic::new(
                        Lint::KernelUnreachable,
                        format!("{} instruction(s) unreachable from the entry", idx - start),
                    )
                    .with("from", format!("{:#x}", prog.pc_of(start)))
                    .with("to", format!("{:#x}", prog.pc_of(idx - 1))),
                );
                run_start = None;
            }
            _ => {}
        }
    }

    // Def-before-use on reserved regions. A store anywhere into a region
    // counts as initialising it (region granularity).
    let mut stored: BTreeSet<usize> = BTreeSet::new();
    for idx in 0..prog.code.len() {
        if a.flow.opcode(idx) == Some(Opcode::Str) {
            if let Some(state) = &a.states[idx] {
                if let Some(r) = a.ea_region(idx, state) {
                    stored.insert(r);
                }
            }
        }
    }
    let mut uninit_loads: BTreeMap<usize, (u64, usize)> = BTreeMap::new();
    for idx in 0..prog.code.len() {
        if a.flow.opcode(idx) == Some(Opcode::Ldr) {
            if let Some(state) = &a.states[idx] {
                if let Some(r) = a.ea_region(idx, state) {
                    if !prog.reserved[r].initialized && !stored.contains(&r) {
                        let e = uninit_loads.entry(r).or_insert((prog.pc_of(idx), 0));
                        e.1 += 1;
                    }
                }
            }
        }
    }
    for (r, (first_pc, count)) in uninit_loads {
        let region = &prog.reserved[r];
        out.push(
            Diagnostic::new(
                Lint::KernelUninitRead,
                "load from a reserved region that nothing initialises \
                 (the paper's uninitialised-array hazard)",
            )
            .with("region", format!("{:#x}", region.addr))
            .with("bytes", region.len)
            .with("first_load_pc", format!("{first_pc:#x}"))
            .with("loads", count),
        );
    }
}

/// Whether the program statically reads uninitialised memory (any
/// [`Lint::KernelUninitRead`] diagnostic).
pub fn reads_uninitialized(prog: &Program) -> bool {
    check(prog).iter().any(|d| d.lint == Lint::KernelUninitRead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, EncodedInst, MemWidth};

    fn lints(prog: &Program) -> Vec<Lint> {
        check(prog).into_iter().map(|d| d.lint).collect()
    }

    #[test]
    fn load_from_raw_reserve_is_flagged() {
        let mut a = Asm::new();
        let region = a.reserve(4096, 64);
        a.mov64(Reg::x(1), region);
        a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::XZR, 0);
        a.halt();
        let p = a.finish();
        assert_eq!(lints(&p), vec![Lint::KernelUninitRead]);
        assert!(reads_uninitialized(&p));
    }

    #[test]
    fn initialized_reserve_and_data_blobs_are_silent() {
        let mut a = Asm::new();
        let region = a.reserve_initialized(4096, 64);
        let blob = a.data_u64s(&[1, 2, 3, 4]);
        a.mov64(Reg::x(1), region);
        a.mov64(Reg::x(2), blob);
        a.ldr(MemWidth::B8, Reg::x(3), Reg::x(1), Reg::XZR, 0);
        a.ldr(MemWidth::B8, Reg::x(4), Reg::x(2), Reg::XZR, 8);
        a.halt();
        assert_eq!(lints(&a.finish()), vec![]);
    }

    #[test]
    fn a_store_anywhere_into_the_region_counts_as_initialising() {
        let mut a = Asm::new();
        let region = a.reserve(4096, 64);
        a.mov64(Reg::x(1), region);
        // Load precedes the store in program order; region granularity
        // still treats the buffer as program-written.
        a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::XZR, 0);
        a.str8(Reg::x(2), Reg::x(1), 8);
        a.halt();
        assert_eq!(lints(&a.finish()), vec![]);
    }

    #[test]
    fn region_taint_survives_pointer_arithmetic_and_masking() {
        let mut a = Asm::new();
        let region = a.reserve(8192, 64);
        a.mov64(Reg::x(1), region);
        a.mov64(Reg::x(5), 8191);
        a.movz(Reg::x(4), 0);
        let top = a.here();
        a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::x(4), 0);
        a.addi(Reg::x(4), Reg::x(4), 64);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
        a.cbnz(Reg::x(4), top);
        a.halt();
        assert_eq!(lints(&a.finish()), vec![Lint::KernelUninitRead]);
    }

    #[test]
    fn unreachable_code_is_reported_as_one_run() {
        let mut a = Asm::new();
        let end = a.label();
        a.b(end);
        a.nop();
        a.nop();
        a.nop();
        a.bind(end);
        a.halt();
        let diags = check(&a.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, Lint::KernelUnreachable);
        assert!(diags[0].message.contains("3 instruction(s)"));
    }

    #[test]
    fn code_reached_through_jump_tables_is_not_dead() {
        // An indirect call through a pointer table: the target function is
        // only reachable via `blr`.
        let mut a = Asm::new();
        let f = a.label();
        let table = a.data_code_ptrs(&[f]);
        a.mov64(Reg::x(1), table);
        a.ldr8(Reg::x(2), Reg::x(1), 0);
        a.blr(Reg::x(2));
        a.halt();
        a.bind(f);
        a.nop();
        a.ret();
        assert_eq!(lints(&a.finish()), vec![]);
    }

    #[test]
    fn corrupted_branch_offset_is_out_of_range() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let mut p = a.finish();
        // Hand-patch instruction 0 into `b +100` (beyond the segment).
        let word = EncodedInst::build(Opcode::B, 0, Reg::XZR, Reg::XZR, Reg::XZR, 100).unwrap();
        p.code[0] = word;
        let diags = check(&p);
        assert!(diags.iter().any(|d| d.lint == Lint::KernelBranchOutOfRange));
    }

    #[test]
    fn static_verdicts_match_the_suite_ground_truth() {
        // RA201 must fire on exactly the kernels the paper names (MM and
        // M_Dyn), and on none once the arrays are initialised.
        for w in racesim_kernels::microbench_suite(racesim_kernels::Scale::TINY) {
            assert_eq!(
                reads_uninitialized(&w.program),
                w.uninit_data,
                "static verdict diverges from ground truth for {}",
                w.name
            );
        }
        for w in racesim_kernels::microbench_suite_initialized(racesim_kernels::Scale::TINY) {
            assert!(
                !reads_uninitialized(&w.program),
                "{} still flagged after the fix",
                w.name
            );
        }
    }

    #[test]
    fn whole_suite_is_free_of_structural_defects() {
        for w in racesim_kernels::microbench_suite(racesim_kernels::Scale::TINY) {
            let structural: Vec<_> = check(&w.program)
                .into_iter()
                .filter(|d| d.lint != Lint::KernelUninitRead)
                .collect();
            assert!(structural.is_empty(), "{}: {structural:?}", w.name);
        }
    }
}
