//! Static model linting for racesim.
//!
//! Simulator bugs split into two classes: implementation bugs (the timing
//! model mis-counts) and *specification* bugs (the model is configured
//! into a state no hardware could be in, or a kernel exercises memory it
//! never initialised). The racing methodology of the paper is very good at
//! hiding the second class: the tuner will happily absorb a nonsensical
//! parameter into a low-error configuration. This crate catches
//! specification bugs statically, before any simulation runs.
//!
//! The pass families, one shared diagnostics engine:
//!
//! * [`param`] — lints a [`racesim_race::ParamSpace`] (degenerate
//!   dimensions, duplicated candidates, cross-parameter invariants over
//!   apply-able configurations, dead parameters).
//! * [`platform`] — checks a single [`racesim_sim::Platform`] against
//!   hardware invariants; reused by the validator and the CLI.
//! * [`kernel`] — abstract interpretation over decoded programs: reads of
//!   never-written reserved memory, unreachable blocks, branches that
//!   leave the program.
//! * [`ir`] — static CFG/dataflow IR per kernel (RA4xx): dead register
//!   writes, degenerate and inescapable loops, static trip counts, and
//!   the [`ir::KernelProfile`] the coverage matrix is built from.
//! * [`bounds`] / [`interval`] — abstract interpretation over the kernel
//!   IR computing per-(kernel, configuration) CPI intervals (RA6xx):
//!   sound lower bounds from issue-width, port-occupancy and
//!   dependence-chain arguments, upper bounds from serialised worst-case
//!   costs; the tuner uses them to eliminate configurations before
//!   simulating them.
//! * [`coverage`] — the campaign-level parameter-coverage matrix
//!   (RA41x): which kernels can statically observe each `ParamSpace`
//!   dimension, which dimensions no kernel observes, and which kernels
//!   observe nothing uniquely.
//! * [`determinism`] — audits the invariants resume and parallel racing
//!   depend on (RA5xx): checkpoint byte-stability, replay and thread
//!   determinism, space construction order, float reduction order.
//! * [`effects`] — checks a board's measurement noise against the race's
//!   statistical resolution (can the significance tests distinguish
//!   near-elite configurations at all?).
//!
//! All passes emit [`Diagnostic`]s with stable `RA...` codes; see
//! `DESIGN.md` for the full table.

pub mod bounds;
pub mod coverage;
pub mod determinism;
pub mod diag;
pub mod effects;
pub mod interval;
pub mod ir;
pub mod kernel;
pub mod param;
pub mod platform;

pub use diag::{Diagnostic, Lint, Report, Severity};
