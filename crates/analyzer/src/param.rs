//! Parameter-space linting (`RA0xx`).
//!
//! Two layers:
//!
//! * [`check_space`] — structural lints over a [`ParamSpace`] alone:
//!   degenerate dimensions, duplicate or unsorted candidate lists.
//! * [`check_model`] — semantic lints that need the `apply` function
//!   mapping a tuner [`Configuration`] onto a concrete
//!   [`Platform`]: cross-parameter hardware invariants
//!   probed through one-dimensional sweeps, dead parameters that no
//!   candidate can make visible in the platform, and a coverage report of
//!   platform fields no parameter ever reaches.
//!
//! The apply function is passed in as a closure (typically
//! `racesim-core`'s `params::apply` partially applied to a base platform)
//! so this crate stays independent of the crate that owns the schema.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Lint, Severity};
use crate::platform as platform_pass;
use racesim_race::{Configuration, Domain, ParamSpace, Value};
use racesim_sim::Platform;

/// Structural lints that need only the space itself.
pub fn check_space(space: &ParamSpace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in space.params() {
        match &p.domain {
            Domain::Categorical(choices) => {
                if choices.len() < 2 {
                    out.push(degenerate(&p.name, choices.len()));
                }
                let mut seen = BTreeSet::new();
                for c in choices {
                    if !seen.insert(c.as_str()) {
                        out.push(
                            Diagnostic::new(
                                Lint::DuplicateCandidate,
                                format!(
                                    "parameter `{}` lists candidate \"{c}\" more than once, \
                                     skewing the tuner's sampling toward it",
                                    p.name
                                ),
                            )
                            .with("param", &p.name)
                            .with("value", c),
                        );
                    }
                }
            }
            Domain::Integer(values) => {
                if values.len() < 2 {
                    out.push(degenerate(&p.name, values.len()));
                }
                let mut seen = BTreeSet::new();
                for v in values {
                    if !seen.insert(*v) {
                        out.push(
                            Diagnostic::new(
                                Lint::DuplicateCandidate,
                                format!(
                                    "parameter `{}` lists candidate {v} more than once, \
                                     skewing the tuner's sampling toward it",
                                    p.name
                                ),
                            )
                            .with("param", &p.name)
                            .with("value", v),
                        );
                    }
                }
                if values.windows(2).any(|w| w[0] > w[1]) {
                    out.push(
                        Diagnostic::new(
                            Lint::UnsortedCandidates,
                            format!(
                                "parameter `{}` has candidates out of ascending order; \
                                 neighbourhood-based perturbation will jump erratically",
                                p.name
                            ),
                        )
                        .with("param", &p.name)
                        .with(
                            "candidates",
                            values
                                .iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(" "),
                        ),
                    );
                }
            }
            Domain::Bool => {}
        }
    }
    out
}

fn degenerate(name: &str, n: usize) -> Diagnostic {
    Diagnostic::new(
        Lint::DegenerateDimension,
        format!(
            "parameter `{name}` has {n} candidate value{}: the tuner cannot tune it",
            if n == 1 { "" } else { "s" }
        ),
    )
    .with("param", name)
}

/// Semantic lints probing the space through its apply function.
///
/// `anchors` are named starting configurations (at least the space's
/// default; callers usually add their best-guess). Invariant violations
/// *at* an anchor are errors — the space's home region is broken.
/// Violations reached by changing a single parameter away from an anchor
/// are warnings: the configuration is sampleable, so the race must prune
/// it, but the space as shipped is usable.
pub fn check_model(
    space: &ParamSpace,
    anchors: &[(&str, Configuration)],
    apply: &dyn Fn(&Configuration) -> Platform,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Parameters that changed the platform at least once, and the set of
    // platform Debug paths some parameter reached.
    let mut live = vec![false; space.len()];
    let mut touched: BTreeSet<String> = BTreeSet::new();
    // (lint, param, field) -> (diagnostic, distinct offending values)
    type SweepKey = (&'static str, String, String);
    let mut sweep: BTreeMap<SweepKey, (Diagnostic, BTreeSet<String>)> = BTreeMap::new();

    for (anchor_name, anchor) in anchors {
        let anchor_platform = apply(anchor);
        let anchor_flat = flatten_debug(&format!("{anchor_platform:#?}"));
        let anchor_diags = platform_pass::check(&anchor_platform);
        let anchor_violations: BTreeSet<(&'static str, String)> = anchor_diags
            .iter()
            .map(|d| (d.lint.code(), context(d, "field")))
            .collect();
        for d in anchor_diags {
            let field = context(&d, "field");
            let (lint, severity) = map_platform_lint(&d);
            out.push(
                Diagnostic::new(lint, format!("at anchor `{anchor_name}`: {}", d.message))
                    .severity(severity)
                    .with("anchor", *anchor_name)
                    .with("field", field),
            );
        }

        for (i, p) in space.params().iter().enumerate() {
            for (j, value_label) in candidate_labels(&p.domain).into_iter().enumerate() {
                let mut cfg = (*anchor).clone();
                cfg.set_value(i, candidate_value(&p.domain, j));
                let probed = apply(&cfg);
                if probed != anchor_platform {
                    live[i] = true;
                    diff_paths(
                        &anchor_flat,
                        &flatten_debug(&format!("{probed:#?}")),
                        &mut touched,
                    );
                }
                for d in platform_pass::check(&probed) {
                    let field = context(&d, "field");
                    if anchor_violations.contains(&(d.lint.code(), field.clone())) {
                        continue; // pre-existing at the anchor, reported above
                    }
                    let (lint, _) = map_platform_lint(&d);
                    let entry = sweep
                        .entry((lint.code(), p.name.clone(), field.clone()))
                        .or_insert_with(|| {
                            (
                                Diagnostic::new(
                                    lint,
                                    format!(
                                        "setting `{}` alone reaches an unrealisable \
                                         platform: {}",
                                        p.name, d.message
                                    ),
                                )
                                .severity(Severity::Warn)
                                .with("param", &p.name)
                                .with("field", field),
                                BTreeSet::new(),
                            )
                        });
                    entry.1.insert(value_label.clone());
                }
            }
        }
    }

    for (_, (d, values)) in sweep {
        out.push(d.with("values", values.into_iter().collect::<Vec<_>>().join(" ")));
    }

    // Dead parameters: nothing they can be set to changes the platform at
    // any anchor. Before declaring one dead, try activating it by moving
    // one *other* parameter at a time (e.g. `pf.table` only matters once
    // `pf.kind` selects a table-based prefetcher).
    let default_anchor = anchors
        .first()
        .map(|(_, a)| (*a).clone())
        .unwrap_or_else(|| space.default_configuration());
    for (i, p) in space.params().iter().enumerate() {
        if live[i] {
            continue;
        }
        if !parameter_is_live(space, &default_anchor, i, apply, &mut touched) {
            out.push(
                Diagnostic::new(
                    Lint::DeadParameter,
                    format!(
                        "parameter `{}` never changes the platform, no matter how any \
                         single other parameter is set: the tuner would race over noise",
                        p.name
                    ),
                )
                .with("param", &p.name),
            );
        }
    }

    // Coverage: platform leaves no parameter ever reaches.
    if let Some((_, anchor)) = anchors.first() {
        let flat = flatten_debug(&format!("{:#?}", apply(anchor)));
        let untuned: Vec<String> = flat
            .keys()
            .filter(|path| {
                *path != "name"
                    && !touched.contains(*path)
                    && !touched.iter().any(|t| {
                        t.starts_with(&format!("{path}.")) || path.starts_with(&format!("{t}."))
                    })
            })
            .cloned()
            .collect();
        if !untuned.is_empty() {
            out.push(
                Diagnostic::new(
                    Lint::UntunedField,
                    format!(
                        "{} platform field(s) are outside the tuned space (fixed by public \
                         documentation or untouched by `apply`)",
                        untuned.len()
                    ),
                )
                .with("fields", untuned.join(" ")),
            );
        }
    }

    out
}

/// Convenience: structural and semantic lints together, with the space's
/// default configuration as the only anchor.
pub fn check(space: &ParamSpace, apply: &dyn Fn(&Configuration) -> Platform) -> Vec<Diagnostic> {
    let mut out = check_space(space);
    let default = space.default_configuration();
    out.extend(check_model(space, &[("default", default)], apply));
    out
}

/// Maps a platform-invariant finding surfaced through the apply function
/// onto the parameter-space lint family.
fn map_platform_lint(d: &Diagnostic) -> (Lint, Severity) {
    let lint = match d.lint {
        Lint::PlatformLatencyOrdering => Lint::LatencyOrdering,
        Lint::PlatformQueueRelation => Lint::WindowBelowWidth,
        Lint::PlatformCacheGeometry => {
            if d.context.iter().any(|(k, _)| k == "sets") {
                Lint::NonPowerOfTwoSets
            } else {
                Lint::GeometryIndivisible
            }
        }
        other => other,
    };
    (lint, lint.severity().min(d.severity))
}

fn context(d: &Diagnostic, key: &str) -> String {
    d.context
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

fn candidate_labels(domain: &Domain) -> Vec<String> {
    match domain {
        Domain::Categorical(choices) => choices.clone(),
        Domain::Integer(values) => values.iter().map(|v| v.to_string()).collect(),
        Domain::Bool => vec!["false".to_string(), "true".to_string()],
    }
}

pub(crate) fn candidate_value(domain: &Domain, j: usize) -> Value {
    match domain {
        Domain::Categorical(_) => Value::Cat(j as u16),
        Domain::Integer(_) => Value::Int(j as u16),
        Domain::Bool => Value::Flag(j == 1),
    }
}

/// Whether parameter `i` can change the platform at all: a direct sweep
/// away from `anchor`, or a sweep after any single-parameter activation
/// (e.g. `pf.table` only matters once `pf.kind` selects a table-based
/// prefetcher). Any platform Debug paths it reaches are added to
/// `touched`.
///
/// This is the one dead-parameter predicate: the per-config RA008 pass
/// and the suite-level RA410 coverage pass both call it, so their notion
/// of "the model can see this parameter" cannot drift apart.
pub fn parameter_is_live(
    space: &ParamSpace,
    anchor: &Configuration,
    i: usize,
    apply: &dyn Fn(&Configuration) -> Platform,
    touched: &mut BTreeSet<String>,
) -> bool {
    let base = apply(anchor);
    let base_flat = flatten_debug(&format!("{base:#?}"));
    let mut found = false;
    for j in 0..space.params()[i].domain.cardinality() {
        let mut cfg = anchor.clone();
        cfg.set_value(i, candidate_value(&space.params()[i].domain, j));
        let probed = apply(&cfg);
        if probed != base {
            diff_paths(&base_flat, &flatten_debug(&format!("{probed:#?}")), touched);
            found = true;
        }
    }
    found || activates_anywhere(space, anchor, i, apply, touched)
}

/// Whether parameter `i` changes the platform under some single-parameter
/// activation of the anchor. Any paths it reaches are added to `touched`.
fn activates_anywhere(
    space: &ParamSpace,
    anchor: &Configuration,
    i: usize,
    apply: &dyn Fn(&Configuration) -> Platform,
    touched: &mut BTreeSet<String>,
) -> bool {
    let mut found = false;
    for (q, other) in space.params().iter().enumerate() {
        if q == i {
            continue;
        }
        for w in 0..other.domain.cardinality() {
            let mut variant = anchor.clone();
            variant.set_value(q, candidate_value(&other.domain, w));
            let base = apply(&variant);
            let base_flat = flatten_debug(&format!("{base:#?}"));
            for j in 0..space.params()[i].domain.cardinality() {
                let mut cfg = variant.clone();
                cfg.set_value(i, candidate_value(&space.params()[i].domain, j));
                let probed = apply(&cfg);
                if probed != base {
                    diff_paths(&base_flat, &flatten_debug(&format!("{probed:#?}")), touched);
                    found = true;
                }
            }
            if found {
                return true;
            }
        }
    }
    false
}

/// Flattens `{:#?}` output into `dotted.path -> value` leaves.
///
/// Rather than requiring every config struct to implement a reflection
/// trait, the coverage pass walks the pretty-printed Debug tree: container
/// lines (`core: CoreConfig {`, `tlb: Some(`) push a path component,
/// closing brackets pop, and `field: value,` lines record a leaf.
fn flatten_debug(s: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut path: Vec<String> = Vec::new();
    let mut anon = 0usize;
    for line in s.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with(['}', ']', ')']) {
            path.pop();
            continue;
        }
        let opens = t.ends_with(['{', '[', '(']);
        let body = t.trim_end_matches(['{', '[', '(']).trim_end();
        if opens {
            // "core: CoreConfig {" -> "core"; bare type/variant names
            // ("Platform {", "TlbConfig {") add no path component; "["
            // gets a synthetic one.
            let component = match body.split_once(':') {
                Some((field, _)) => field.trim().to_string(),
                None if body.is_empty() => {
                    anon += 1;
                    format!("#{anon}")
                }
                None => String::new(),
            };
            path.push(component);
            continue;
        }
        let body = body.trim_end_matches(',');
        let (key, value) = match body.split_once(':') {
            Some((k, v)) => (k.trim().to_string(), v.trim().to_string()),
            None => {
                anon += 1;
                (format!("#{anon}"), body.to_string())
            }
        };
        let prefix = path
            .iter()
            .filter(|c| !c.is_empty())
            .cloned()
            .collect::<Vec<_>>()
            .join(".");
        let full = if prefix.is_empty() {
            key
        } else {
            format!("{prefix}.{key}")
        };
        out.insert(full, value.to_string());
    }
    out
}

/// Adds every path present or valued differently between the two
/// flattened trees to `touched`.
fn diff_paths(
    a: &BTreeMap<String, String>,
    b: &BTreeMap<String, String>,
    touched: &mut BTreeSet<String>,
) {
    for (k, v) in a {
        if b.get(k) != Some(v) {
            touched.insert(k.clone());
        }
    }
    for k in b.keys() {
        if !a.contains_key(k) {
            touched.insert(k.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_race::Param;

    fn toy_space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("l1d.latency", &[2, 3, 4]);
        s.add_integer("l2.latency", &[12, 15, 18]);
        s.add_bool("noop.flag");
        s
    }

    fn toy_apply(space: &ParamSpace) -> impl Fn(&Configuration) -> Platform + '_ {
        move |cfg| {
            let mut p = Platform::a53_like();
            p.mem.l1d.latency = cfg.integer(space, "l1d.latency") as u64;
            p.mem.l2.latency = cfg.integer(space, "l2.latency") as u64;
            p
        }
    }

    #[test]
    fn structural_lints_fire() {
        // The builder methods canonicalise, so a degenerate/unsorted/
        // duplicated space can only arrive through the raw `add_param`
        // path (e.g. a space read from an external description) — which
        // is exactly what these lints police.
        let mut s = ParamSpace::new();
        s.add_integer("one.value", &[4]);
        s.add_param(Param {
            name: "unsorted".to_string(),
            domain: Domain::Integer(vec![8, 4, 16]),
        });
        s.add_param(Param {
            name: "doubled".to_string(),
            domain: Domain::Integer(vec![4, 4, 8]),
        });
        s.add_categorical("cat.choice", &["a", "b"]);
        let codes: Vec<_> = check_space(&s).iter().map(|d| d.lint.code()).collect();
        assert!(codes.contains(&"RA001"));
        assert!(codes.contains(&"RA002"));
        assert!(codes.contains(&"RA003"));
    }

    #[test]
    fn clean_space_is_structurally_silent() {
        assert!(check_space(&toy_space()).is_empty());
    }

    #[test]
    fn one_d_sweep_finds_reachable_latency_inversion() {
        // The space admits l1d.latency=16 while l2 stays at its default
        // 15: a sampleable inversion, reported as prunable (Warn).
        let mut s = ParamSpace::new();
        s.add_integer("l1d.latency", &[3, 10, 16]);
        s.add_integer("l2.latency", &[15, 18]);
        let apply = |cfg: &Configuration| {
            let mut p = Platform::a53_like();
            p.mem.l1d.latency = cfg.integer(&s, "l1d.latency") as u64;
            p.mem.l2.latency = cfg.integer(&s, "l2.latency") as u64;
            p
        };
        let diags = check_model(&s, &[("default", s.default_configuration())], &apply);
        let d = diags
            .iter()
            .find(|d| d.lint == Lint::LatencyOrdering)
            .expect("RA004 for the sampleable l1d=16 >= l2=15 inversion");
        assert_eq!(
            d.severity,
            Severity::Warn,
            "reachable-but-prunable is a warning"
        );
        assert!(d
            .context
            .iter()
            .any(|(k, v)| k == "param" && v == "l1d.latency"));
    }

    #[test]
    fn anchor_violations_are_errors() {
        let mut s = ParamSpace::new();
        s.add_integer("l1d.latency", &[3, 20]);
        s.add_integer("l2.latency", &[15, 18]);
        let apply = |cfg: &Configuration| {
            let mut p = Platform::a53_like();
            p.mem.l1d.latency = cfg.integer(&s, "l1d.latency") as u64;
            p.mem.l2.latency = cfg.integer(&s, "l2.latency") as u64;
            p
        };
        // The anchor itself picks the broken candidate: l1d=20 >= l2=15.
        let mut anchor = s.default_configuration();
        anchor.set_integer(&s, "l1d.latency", 20);
        let diags = check_model(&s, &[("default", anchor)], &apply);
        let d = diags
            .iter()
            .find(|d| d.lint == Lint::LatencyOrdering && d.severity == Severity::Error)
            .expect("default configuration itself is unrealisable");
        assert!(d.message.contains("anchor"));
    }

    #[test]
    fn dead_parameter_is_flagged() {
        let s = toy_space(); // noop.flag is never read by toy_apply
        let apply = toy_apply(&s);
        let diags = check_model(&s, &[("default", s.default_configuration())], &apply);
        let d = diags
            .iter()
            .find(|d| d.lint == Lint::DeadParameter)
            .expect("RA008 for noop.flag");
        assert!(d
            .context
            .iter()
            .any(|(k, v)| k == "param" && v == "noop.flag"));
    }

    #[test]
    fn conditionally_active_parameter_is_not_dead() {
        // `degree` only matters when `kind` enables the prefetcher — the
        // activation probe must discover that before calling it dead.
        let mut s = ParamSpace::new();
        s.add_categorical("pf.kind", &["none", "stride"]);
        s.add_integer("pf.degree", &[1, 2, 4]);
        let apply = |cfg: &Configuration| {
            let mut p = Platform::a53_like();
            if cfg.categorical(&s, "pf.kind") == "stride" {
                p.mem.prefetcher = racesim_mem::PrefetcherConfig::Stride {
                    table_entries: 64,
                    degree: cfg.integer(&s, "pf.degree") as u8,
                };
            }
            p
        };
        let diags = check_model(&s, &[("default", s.default_configuration())], &apply);
        assert!(
            !diags.iter().any(|d| d.lint == Lint::DeadParameter),
            "{diags:?}"
        );
    }

    #[test]
    fn untuned_fields_are_reported_once() {
        let s = toy_space();
        let apply = toy_apply(&s);
        let diags = check_model(&s, &[("default", s.default_configuration())], &apply);
        let untuned: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == Lint::UntunedField)
            .collect();
        assert_eq!(untuned.len(), 1);
        let fields = &untuned[0]
            .context
            .iter()
            .find(|(k, _)| k == "fields")
            .unwrap()
            .1;
        assert!(fields.contains("core.frequency_ghz"), "{fields}");
        assert!(!fields.contains("mem.l1d.latency"), "{fields}");
        assert!(!fields.contains("name"), "{fields}");
    }

    #[test]
    fn debug_flattening_handles_nested_options_and_enums() {
        let mut p = Platform::a53_like();
        p.mem.tlb = Some(racesim_mem::TlbConfig::default());
        let flat = flatten_debug(&format!("{p:#?}"));
        assert!(
            flat.contains_key("core.branch.direction.table_bits"),
            "{flat:?}"
        );
        assert!(flat.keys().any(|k| k.starts_with("mem.tlb.")), "{flat:?}");
        assert_eq!(flat.get("mem.l1d.size_kb").map(String::as_str), Some("32"));
    }
}
