//! Platform invariant checking (`RA1xx`).
//!
//! [`check`] validates a fully-built [`Platform`] against invariants that
//! hold on any realisable hardware: consistent cache geometry, strictly
//! increasing memory latencies, pipeline structures no smaller than the
//! widths that feed them, non-zero resources and latencies, power-of-two
//! predictor tables. It is the shared gate behind the CLI's `lint`
//! subcommand, `racesim-core`'s validator (which refuses to spend
//! simulation budget on an unrealisable platform), and the tuner-side
//! configuration pruner.

use crate::diag::{Diagnostic, Lint, Severity};
use racesim_sim::Platform;
use racesim_uarch::branch::{DirPredictorConfig, IndirectPredictorConfig};
use racesim_uarch::CoreKind;

/// Checks every platform invariant, returning one diagnostic per
/// violation. An empty vector means the platform is realisable.
pub fn check(platform: &Platform) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_into(platform, &mut out);
    out
}

/// Like [`check`], but appends into an existing buffer. Every appended
/// diagnostic carries a `platform` context entry.
pub fn check_into(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let start = out.len();
    check_caches(platform, out);
    check_latencies(platform, out);
    check_core(platform, out);
    check_branch(platform, out);
    for d in out[start..].iter_mut() {
        d.context
            .insert(0, ("platform".to_string(), platform.name.clone()));
    }
}

/// True when the platform carries no error-severity violation: the cheap
/// yes/no form the tuner's pruner uses.
pub fn is_realisable(platform: &Platform) -> bool {
    !check(platform)
        .iter()
        .any(|d| d.severity == Severity::Error)
}

fn check_caches(platform: &Platform, out: &mut Vec<Diagnostic>) {
    for (level, c) in [
        ("mem.l1i", &platform.mem.l1i),
        ("mem.l1d", &platform.mem.l1d),
        ("mem.l2", &platform.mem.l2),
    ] {
        if c.size_kb == 0 || c.assoc == 0 || c.line_bytes == 0 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformZeroResource,
                    format!("{level} has a zero-sized dimension"),
                )
                .with("field", level)
                .with(
                    "geometry",
                    format!("{}KiB/{}way/{}B", c.size_kb, c.assoc, c.line_bytes),
                ),
            );
            continue; // the geometry checks below would divide by zero
        }
        if !c.line_bytes.is_power_of_two() {
            out.push(
                Diagnostic::new(
                    Lint::PlatformCacheGeometry,
                    format!("{level} line size {} B is not a power of two", c.line_bytes),
                )
                .with("field", format!("{level}.line_bytes")),
            );
        }
        let bytes = c.size_kb as u64 * 1024;
        let way_bytes = c.assoc as u64 * c.line_bytes as u64;
        if !bytes.is_multiple_of(way_bytes) {
            out.push(
                Diagnostic::new(
                    Lint::PlatformCacheGeometry,
                    format!(
                        "{level}: {} KiB does not divide into {} ways of {} B lines",
                        c.size_kb, c.assoc, c.line_bytes
                    ),
                )
                .with("field", level),
            );
        } else {
            let sets = bytes / way_bytes;
            if !sets.is_power_of_two() {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformCacheGeometry,
                        format!(
                            "{level}: {} KiB / {} ways / {} B lines implies {sets} sets, \
                             which is not a power of two (the set indexer cannot address it)",
                            c.size_kb, c.assoc, c.line_bytes
                        ),
                    )
                    .with("field", level)
                    .with("sets", sets),
                );
            }
        }
        if c.ports == 0 {
            out.push(
                Diagnostic::new(Lint::PlatformZeroResource, format!("{level} has no ports"))
                    .with("field", format!("{level}.ports")),
            );
        }
        if c.mshrs == 0 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformZeroResource,
                    format!("{level} has no MSHRs: it could never start a miss"),
                )
                .with("field", format!("{level}.mshrs")),
            );
        }
        if c.latency == 0 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformZeroLatency,
                    format!("{level} hit latency is zero"),
                )
                .with("field", format!("{level}.latency")),
            );
        }
    }
    match platform.mem.prefetcher {
        racesim_mem::PrefetcherConfig::Stride { table_entries, .. }
            if table_entries == 0 || !table_entries.is_power_of_two() =>
        {
            out.push(
                Diagnostic::new(
                    Lint::PlatformPredictorGeometry,
                    format!(
                        "stride prefetcher table of {table_entries} entries is not a \
                         power of two"
                    ),
                )
                .with("field", "mem.prefetcher.table_entries"),
            );
        }
        racesim_mem::PrefetcherConfig::Ghb {
            buffer_entries,
            index_entries,
            ..
        } => {
            if index_entries == 0 || !index_entries.is_power_of_two() {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformPredictorGeometry,
                        format!("GHB index table of {index_entries} entries is not a power of two"),
                    )
                    .with("field", "mem.prefetcher.index_entries"),
                );
            }
            if buffer_entries == 0 {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformZeroResource,
                        "GHB prefetcher has a zero-depth history buffer",
                    )
                    .with("field", "mem.prefetcher.buffer_entries"),
                );
            }
        }
        _ => {}
    }
    if platform.mem.dram.bytes_per_cycle == 0 {
        out.push(
            Diagnostic::new(Lint::PlatformZeroResource, "DRAM bandwidth is zero")
                .with("field", "mem.dram.bytes_per_cycle"),
        );
    }
    if let Some(tlb) = &platform.mem.tlb {
        if tlb.entries == 0 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformZeroResource,
                    "TLB is modelled but has zero entries",
                )
                .with("field", "mem.tlb.entries"),
            );
        }
        if tlb.page_bytes == 0 || !tlb.page_bytes.is_power_of_two() {
            out.push(
                Diagnostic::new(
                    Lint::PlatformCacheGeometry,
                    format!("TLB page size {} B is not a power of two", tlb.page_bytes),
                )
                .with("field", "mem.tlb.page_bytes"),
            );
        }
    }
}

fn check_latencies(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let m = &platform.mem;
    for (level, lat) in [("mem.l1i", m.l1i.latency), ("mem.l1d", m.l1d.latency)] {
        if lat >= m.l2.latency {
            out.push(
                Diagnostic::new(
                    Lint::PlatformLatencyOrdering,
                    format!(
                        "{level} hit latency ({lat}) is not below the L2 hit latency ({}): \
                         misses would be cheaper than hits",
                        m.l2.latency
                    ),
                )
                .with("field", format!("{level}.latency")),
            );
        }
    }
    if m.l2.latency >= m.dram.latency {
        out.push(
            Diagnostic::new(
                Lint::PlatformLatencyOrdering,
                format!(
                    "L2 hit latency ({}) is not below the DRAM latency ({})",
                    m.l2.latency, m.dram.latency
                ),
            )
            .with("field", "mem.l2.latency"),
        );
    }
    if m.dram.latency == 0 {
        out.push(
            Diagnostic::new(Lint::PlatformZeroLatency, "DRAM latency is zero")
                .with("field", "mem.dram.latency"),
        );
    }
    let lat = &platform.core.lat;
    for (field, v) in [
        ("core.lat.int_alu", lat.int_alu),
        ("core.lat.int_mul", lat.int_mul),
        ("core.lat.int_div", lat.int_div),
        ("core.lat.fp_add", lat.fp_add),
        ("core.lat.fp_mul", lat.fp_mul),
        ("core.lat.fp_div", lat.fp_div),
        ("core.lat.fp_sqrt", lat.fp_sqrt),
        ("core.lat.fp_cvt", lat.fp_cvt),
        ("core.lat.fp_mov", lat.fp_mov),
        ("core.lat.simd_alu", lat.simd_alu),
        ("core.lat.simd_mul", lat.simd_mul),
        ("core.lat.simd_fp_add", lat.simd_fp_add),
        ("core.lat.simd_fp_mul", lat.simd_fp_mul),
        ("core.lat.simd_fma", lat.simd_fma),
    ] {
        if v == 0 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformZeroLatency,
                    format!("execution latency {field} is zero"),
                )
                .with("field", field),
            );
        } else if v > 128 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformImplausibleValue,
                    format!("execution latency {field} of {v} cycles is implausibly long"),
                )
                .with("field", field),
            );
        }
    }
    if !platform.core.frequency_ghz.is_finite() || platform.core.frequency_ghz <= 0.0 {
        out.push(
            Diagnostic::new(
                Lint::PlatformImplausibleValue,
                format!(
                    "core frequency {} GHz is not positive",
                    platform.core.frequency_ghz
                ),
            )
            .severity(Severity::Error)
            .with("field", "core.frequency_ghz"),
        );
    } else if platform.core.frequency_ghz > 10.0 {
        out.push(
            Diagnostic::new(
                Lint::PlatformImplausibleValue,
                format!(
                    "core frequency {} GHz is beyond anything fabricated",
                    platform.core.frequency_ghz
                ),
            )
            .with("field", "core.frequency_ghz"),
        );
    }
}

fn check_core(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let core = &platform.core;
    if core.frontend.fetch_width == 0 {
        out.push(
            Diagnostic::new(
                Lint::PlatformZeroResource,
                "front end fetches zero instructions per cycle",
            )
            .with("field", "core.frontend.fetch_width"),
        );
    }
    if core.frontend.depth == 0 {
        out.push(
            Diagnostic::new(
                Lint::PlatformZeroResource,
                "front end has zero pipeline depth",
            )
            .with("field", "core.frontend.depth"),
        );
    }
    match core.kind {
        CoreKind::InOrder => {
            let p = &core.inorder;
            for (field, v) in [
                ("core.inorder.issue_width", p.issue_width),
                ("core.inorder.int_alu_units", p.int_alu_units),
                ("core.inorder.fp_units", p.fp_units),
                ("core.inorder.store_buffer", p.store_buffer),
                ("core.inorder.mem_per_cycle", p.mem_per_cycle),
            ] {
                if v == 0 {
                    out.push(
                        Diagnostic::new(Lint::PlatformZeroResource, format!("{field} is zero"))
                            .with("field", field),
                    );
                }
            }
            if p.issue_width > core.frontend.fetch_width {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformQueueRelation,
                        format!(
                            "issue width {} exceeds fetch width {}: the extra slots can \
                             never fill",
                            p.issue_width, core.frontend.fetch_width
                        ),
                    )
                    .with("field", "core.inorder.issue_width"),
                );
            }
        }
        CoreKind::OutOfOrder => {
            let p = &core.ooo;
            for (field, v) in [
                ("core.ooo.dispatch_width", p.dispatch_width as u16),
                ("core.ooo.rob_entries", p.rob_entries),
                ("core.ooo.iq_entries", p.iq_entries),
                ("core.ooo.lq_entries", p.lq_entries),
                ("core.ooo.sq_entries", p.sq_entries),
                ("core.ooo.retire_width", p.retire_width as u16),
            ] {
                if v == 0 {
                    out.push(
                        Diagnostic::new(Lint::PlatformZeroResource, format!("{field} is zero"))
                            .with("field", field),
                    );
                }
            }
            for (field, v) in [
                ("core.ooo.ports.int_alu", p.ports.int_alu),
                ("core.ooo.ports.int_mul", p.ports.int_mul),
                ("core.ooo.ports.fp", p.ports.fp),
                ("core.ooo.ports.load", p.ports.load),
                ("core.ooo.ports.store", p.ports.store),
                ("core.ooo.ports.branch", p.ports.branch),
            ] {
                if v == 0 {
                    out.push(
                        Diagnostic::new(
                            Lint::PlatformZeroResource,
                            format!("{field} is zero: that class could never issue"),
                        )
                        .with("field", field),
                    );
                }
            }
            if p.rob_entries < p.dispatch_width as u16 {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformQueueRelation,
                        format!(
                            "reorder buffer of {} entries is below the dispatch width {}",
                            p.rob_entries, p.dispatch_width
                        ),
                    )
                    .with("field", "core.ooo.rob_entries"),
                );
            }
            if p.iq_entries < p.dispatch_width as u16 {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformQueueRelation,
                        format!(
                            "issue queue of {} entries is below the dispatch width {}",
                            p.iq_entries, p.dispatch_width
                        ),
                    )
                    .with("field", "core.ooo.iq_entries"),
                );
            }
            if p.rob_entries < p.iq_entries {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformQueueRelation,
                        format!(
                            "issue queue ({}) is larger than the reorder buffer ({}): \
                             every in-flight instruction occupies a ROB slot",
                            p.iq_entries, p.rob_entries
                        ),
                    )
                    .with("field", "core.ooo.iq_entries"),
                );
            }
            if p.dispatch_width > core.frontend.fetch_width {
                out.push(
                    Diagnostic::new(
                        Lint::PlatformQueueRelation,
                        format!(
                            "dispatch width {} exceeds fetch width {}: the extra slots can \
                             never fill",
                            p.dispatch_width, core.frontend.fetch_width
                        ),
                    )
                    .with("field", "core.ooo.dispatch_width"),
                );
            }
        }
    }
}

fn check_branch(platform: &Platform, out: &mut Vec<Diagnostic>) {
    let b = &platform.core.branch;
    if b.btb_entries == 0 || b.btb_ways == 0 {
        out.push(
            Diagnostic::new(Lint::PlatformZeroResource, "BTB has zero entries or ways")
                .with("field", "core.branch.btb_entries"),
        );
    } else {
        if !b.btb_entries.is_power_of_two() {
            out.push(
                Diagnostic::new(
                    Lint::PlatformPredictorGeometry,
                    format!("BTB entry count {} is not a power of two", b.btb_entries),
                )
                .with("field", "core.branch.btb_entries"),
            );
        }
        if !b.btb_entries.is_multiple_of(b.btb_ways)
            || !(b.btb_entries / b.btb_ways).is_power_of_two()
        {
            out.push(
                Diagnostic::new(
                    Lint::PlatformPredictorGeometry,
                    format!(
                        "BTB of {} entries cannot form {} ways over a power-of-two set count",
                        b.btb_entries, b.btb_ways
                    ),
                )
                .with("field", "core.branch.btb_ways"),
            );
        }
    }
    let table_bits = match b.direction {
        DirPredictorConfig::StaticTaken | DirPredictorConfig::StaticNotTaken => None,
        DirPredictorConfig::Bimodal { table_bits }
        | DirPredictorConfig::Gshare { table_bits, .. }
        | DirPredictorConfig::Tournament { table_bits, .. } => Some(table_bits),
    };
    if let Some(bits) = table_bits {
        if bits == 0 || bits > 28 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformPredictorGeometry,
                    format!("direction predictor table of 2^{bits} counters is not buildable"),
                )
                .with("field", "core.branch.direction.table_bits"),
            );
        }
    }
    if let IndirectPredictorConfig::PathHistory { table_bits, .. } = b.indirect {
        if table_bits == 0 || table_bits > 28 {
            out.push(
                Diagnostic::new(
                    Lint::PlatformPredictorGeometry,
                    format!("indirect target cache of 2^{table_bits} entries is not buildable"),
                )
                .with("field", "core.branch.indirect.table_bits"),
            );
        }
    }
    if b.mispredict_penalty == 0 {
        out.push(
            Diagnostic::new(
                Lint::PlatformZeroLatency,
                "branch mispredicts cost zero cycles",
            )
            .with("field", "core.branch.mispredict_penalty"),
        );
    } else if b.mispredict_penalty < platform.core.frontend.depth as u64 {
        out.push(
            Diagnostic::new(
                Lint::PlatformQueueRelation,
                format!(
                    "mispredict penalty ({}) is below the front-end depth ({}): a flush \
                     cannot recover faster than the pipeline is long",
                    b.mispredict_penalty, platform.core.frontend.depth
                ),
            )
            .severity(Severity::Warn)
            .with("field", "core.branch.mispredict_penalty"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(p: &Platform) -> Vec<&'static str> {
        check(p).iter().map(|d| d.lint.code()).collect()
    }

    #[test]
    fn shipped_presets_are_clean() {
        for p in [Platform::a53_like(), Platform::a72_like()] {
            let diags = check(&p);
            assert!(diags.is_empty(), "{}: {:?}", p.name, diags);
        }
    }

    #[test]
    fn inverted_latencies_are_flagged() {
        let mut p = Platform::a53_like();
        p.mem.l1d.latency = 20; // above the 15-cycle L2
        assert!(codes(&p).contains(&"RA102"));
        let mut p = Platform::a53_like();
        p.mem.dram.latency = 10; // below the L2
        assert!(codes(&p).contains(&"RA102"));
    }

    #[test]
    fn broken_geometry_is_flagged() {
        let mut p = Platform::a53_like();
        p.mem.l1d.size_kb = 48;
        p.mem.l1d.assoc = 4; // 192 sets: not a power of two
        assert!(codes(&p).contains(&"RA101"));
    }

    #[test]
    fn three_way_l1i_with_power_of_two_sets_is_fine() {
        // The A72's real 48 KiB / 3-way L1I lands on 256 sets; the lint
        // must key on the set count, not on a power-of-two total size.
        let p = Platform::a72_like();
        assert!(!codes(&p).contains(&"RA101"));
    }

    #[test]
    fn window_below_width_is_flagged() {
        let mut p = Platform::a72_like();
        p.core.ooo.rob_entries = 2; // below dispatch width 3
        assert!(codes(&p).contains(&"RA103"));
    }

    #[test]
    fn zero_resources_are_flagged() {
        let mut p = Platform::a53_like();
        p.mem.l1d.mshrs = 0;
        p.core.inorder.issue_width = 0;
        let c = codes(&p);
        assert!(c.iter().filter(|c| **c == "RA104").count() >= 2, "{c:?}");
    }

    #[test]
    fn predictor_geometry_is_flagged() {
        let mut p = Platform::a53_like();
        p.core.branch.btb_entries = 100; // not a power of two
        assert!(codes(&p).contains(&"RA105"));
    }

    #[test]
    fn zero_latency_is_flagged() {
        let mut p = Platform::a72_like();
        p.core.lat.int_div = 0;
        assert!(codes(&p).contains(&"RA106"));
    }

    #[test]
    fn realisability_gate_matches_error_presence() {
        assert!(is_realisable(&Platform::a53_like()));
        let mut p = Platform::a53_like();
        p.mem.l2.latency = 1; // below L1D hit latency
        assert!(!is_realisable(&p));
        // Warn-only findings do not make a platform unrealisable.
        let mut p = Platform::a53_like();
        p.core.frequency_ghz = 25.0;
        assert!(is_realisable(&p));
    }

    #[test]
    fn diagnostics_carry_platform_and_field_context() {
        let mut p = Platform::a53_like();
        p.mem.l1d.latency = 0;
        let diags = check(&p);
        let d = diags
            .iter()
            .find(|d| d.lint == Lint::PlatformZeroLatency)
            .expect("zero latency diagnostic");
        assert!(d
            .context
            .iter()
            .any(|(k, v)| k == "platform" && v == "a53-like"));
        assert!(d
            .context
            .iter()
            .any(|(k, v)| k == "field" && v == "mem.l1d.latency"));
    }
}
