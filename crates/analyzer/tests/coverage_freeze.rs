//! Acceptance fixture for coverage-based pruning: a seeded space with a
//! dimension no kernel in the (fixture) suite can observe. The coverage
//! matrix must identify it, and feeding the result into
//! `RacingTuner::with_frozen` must keep the dimension pinned in every
//! configuration the tuner ever evaluates — the dead dimension is pruned
//! *before* simulation, not raced over.

use racesim_analyzer::coverage::CoverageMatrix;
use racesim_analyzer::ir;
use racesim_isa::asm::Asm;
use racesim_isa::Reg;
use racesim_race::{Configuration, ParamSpace, RacingTuner, Tuner, TunerSettings, Value};
use racesim_sim::Platform;
use std::collections::HashSet;
use std::sync::Mutex;

/// A space mixing live dimensions with one the fixture kernels cannot
/// observe: `lat.fp_sqrt` maps to fp-square-root sites and the kernels
/// below are integer-only.
fn seeded_space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add_integer("width", &[1, 2, 4]);
    s.add_integer("lat.fp_sqrt", &[4, 8, 16, 32]);
    s.add_categorical("l1i.replacement", &["lru", "fifo"]);
    s
}

/// Two integer-only kernels: a dependency chain and a counted loop.
fn fixture_profiles() -> Vec<ir::KernelProfile> {
    let mut chain = Asm::new();
    chain.movz(Reg::x(1), 3);
    chain.add(Reg::x(2), Reg::x(1), Reg::x(1));
    chain.mul(Reg::x(3), Reg::x(2), Reg::x(1));
    chain.halt();
    let mut looped = Asm::new();
    looped.movz(Reg::x(1), 64);
    let top = looped.here();
    looped.add(Reg::x(2), Reg::x(2), Reg::x(1));
    looped.subi(Reg::x(1), Reg::x(1), 1);
    looped.cbnz(Reg::x(1), top);
    looped.halt();
    vec![
        ir::profile("chain", &chain.finish()),
        ir::profile("looped", &looped.finish()),
    ]
}

/// A cost function that records the exact rendering of every evaluated
/// configuration.
struct Recording {
    seen: Mutex<HashSet<String>>,
}

impl racesim_race::CostFn for Recording {
    fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
        let rendered = cfg.render(space);
        self.seen.lock().unwrap().insert(rendered.clone());
        // Deterministic, config-dependent, instance-dependent.
        (rendered.len() * (instance + 1)) as f64
    }
}

#[test]
fn unobservable_dimension_is_frozen_before_any_evaluation() {
    let space = seeded_space();
    let matrix = CoverageMatrix::build(&space, &fixture_profiles(), &Platform::a53_like());

    // The matrix singles out exactly the seeded-dead dimension.
    assert_eq!(matrix.unobservable(), vec!["lat.fp_sqrt"]);
    assert!(matrix.observers_of("width").unwrap().len() == 2);

    // Freeze what the matrix flagged, exactly as `racesim tune` does.
    let defaults = space.default_configuration();
    let frozen: Vec<(usize, Value)> = matrix
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.count() == 0)
        .map(|(i, _)| (i, defaults.value(i)))
        .collect();
    assert_eq!(frozen.len(), 1);

    let cost = Recording {
        seen: Mutex::new(HashSet::new()),
    };
    let settings = TunerSettings {
        budget: 400,
        threads: 1,
        seed: 7,
        ..TunerSettings::default()
    };
    let result = RacingTuner::new(settings)
        .with_frozen(frozen.clone())
        .tune(&space, &cost, 3);

    // Every configuration the tuner ever sent to the cost function — and
    // the final winner — carries the frozen value; the live dimensions
    // still vary.
    let pinned = {
        let i = frozen[0].0;
        let mut probe = space.default_configuration();
        probe.set_value(i, frozen[0].1);
        let rendered = probe.render(&space);
        rendered
            .split(", ")
            .find(|t| t.starts_with("lat.fp_sqrt="))
            .unwrap()
            .to_string()
    };
    let seen = cost.seen.lock().unwrap();
    assert!(!seen.is_empty());
    assert!(
        seen.iter().all(|r| r.contains(&pinned)),
        "a frozen dimension varied: {seen:?}"
    );
    assert!(result.best.render(&space).contains(&pinned));
    let widths: HashSet<&str> = seen
        .iter()
        .filter_map(|r| r.split(", ").find(|t| t.starts_with("width=")))
        .collect();
    assert!(widths.len() > 1, "live dimensions must still be raced");
}
