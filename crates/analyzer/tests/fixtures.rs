//! One seeded-invalid fixture per lint-rule family, each paired with a
//! passing twin. This is the acceptance gate for the lint catalogue: a
//! rule that cannot flag its seeded fixture — or that fires on the
//! fixture's clean twin — is broken.

use racesim_analyzer::{kernel, param, platform, Diagnostic, Severity};
use racesim_isa::asm::Asm;
use racesim_isa::{EncodedInst, MemWidth, Opcode, Reg};
use racesim_race::{Configuration, Domain, Param, ParamSpace};
use racesim_sim::Platform;

struct Fixture {
    /// The rule family being seeded.
    code: &'static str,
    name: &'static str,
    /// Diagnostics of the deliberately broken artefact.
    broken: Vec<Diagnostic>,
    /// Diagnostics of its minimally repaired twin.
    clean: Vec<Diagnostic>,
}

fn space_fixture(
    code: &'static str,
    name: &'static str,
    broken: ParamSpace,
    clean: ParamSpace,
) -> Fixture {
    Fixture {
        code,
        name,
        broken: param::check_space(&broken),
        clean: param::check_space(&clean),
    }
}

fn platform_fixture(
    code: &'static str,
    name: &'static str,
    seed: impl Fn(&mut Platform),
) -> Fixture {
    let clean = Platform::a53_like();
    let mut broken = clean.clone();
    seed(&mut broken);
    Fixture {
        code,
        name,
        broken: platform::check(&broken),
        clean: platform::check(&clean),
    }
}

fn raw_integer(space: &mut ParamSpace, name: &str, values: &[i64]) {
    space.add_param(Param {
        name: name.to_string(),
        domain: Domain::Integer(values.to_vec()),
    });
}

fn fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();

    // --- RA001: a dimension the race cannot actually search. ----------
    {
        let mut broken = ParamSpace::new();
        broken.add_integer("rob", &[64]);
        let mut clean = ParamSpace::new();
        clean.add_integer("rob", &[64, 128]);
        out.push(space_fixture(
            "RA001",
            "degenerate dimension",
            broken,
            clean,
        ));
    }

    // --- RA002: a duplicated candidate doubles its sampling weight. ----
    {
        let mut broken = ParamSpace::new();
        raw_integer(&mut broken, "rob", &[64, 64, 128]);
        let mut clean = ParamSpace::new();
        clean.add_integer("rob", &[64, 64, 128]); // builder dedupes
        out.push(space_fixture("RA002", "duplicate candidate", broken, clean));
    }

    // --- RA003: unsorted candidates break neighbourhood sampling. ------
    {
        let mut broken = ParamSpace::new();
        raw_integer(&mut broken, "rob", &[128, 64, 192]);
        let mut clean = ParamSpace::new();
        clean.add_integer("rob", &[128, 64, 192]); // builder sorts
        out.push(space_fixture("RA003", "unsorted candidates", broken, clean));
    }

    // --- RA004: a sampleable latency inversion in the model. -----------
    {
        let mk = |l1d_max: i64| {
            let mut s = ParamSpace::new();
            s.add_integer("l1d.latency", &[2, 3, l1d_max]);
            s.add_integer("l2.latency", &[15, 18]);
            s
        };
        let check = |s: &ParamSpace| {
            let apply = |cfg: &Configuration| {
                let mut p = Platform::a53_like();
                p.mem.l1d.latency = cfg.integer(s, "l1d.latency") as u64;
                p.mem.l2.latency = cfg.integer(s, "l2.latency") as u64;
                p
            };
            param::check_model(s, &[("default", s.default_configuration())], &apply)
        };
        let broken = mk(16); // l1d=16 >= l2=15 is reachable
        let clean = mk(4);
        out.push(Fixture {
            code: "RA004",
            name: "reachable latency inversion",
            broken: check(&broken),
            clean: check(&clean),
        });
    }

    // --- RA101: cache geometry with a fractional/non-2^k set count. ----
    out.push(platform_fixture(
        "RA101",
        "non-power-of-two set count",
        |p| {
            p.mem.l1d.size_kb = 48; // 48 KiB / 4 ways / 64 B = 192 sets
        },
    ));

    // --- RA102: memory levels whose latencies do not increase. ---------
    out.push(platform_fixture(
        "RA102",
        "platform latency inversion",
        |p| {
            p.mem.l1d.latency = p.mem.l2.latency + 1;
        },
    ));

    // --- RA103: a queue smaller than the width that feeds it. ----------
    out.push(platform_fixture("RA103", "issue wider than fetch", |p| {
        p.core.inorder.issue_width = p.core.frontend.fetch_width + 1;
    }));

    // --- RA104: a zero-sized structural resource. ----------------------
    out.push(platform_fixture("RA104", "zero MSHRs", |p| {
        p.mem.l1d.mshrs = 0;
    }));

    // --- RA105: predictor tables the index hash cannot address. --------
    out.push(platform_fixture("RA105", "non-power-of-two BTB", |p| {
        p.core.branch.btb_entries = 3000;
    }));

    // --- RA106: a free (zero-cycle) memory access. ---------------------
    out.push(platform_fixture("RA106", "zero-latency L1D", |p| {
        p.mem.l1d.latency = 0;
    }));

    // --- RA201: a load from a region nothing ever initialises. ---------
    {
        let program = |init: bool| {
            let mut a = Asm::new();
            let region = if init {
                a.reserve_initialized(4096, 64)
            } else {
                a.reserve(4096, 64)
            };
            a.mov64(Reg::x(1), region);
            a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::XZR, 0);
            a.halt();
            a.finish()
        };
        out.push(Fixture {
            code: "RA201",
            name: "uninitialised-array read",
            broken: kernel::check(&program(false)),
            clean: kernel::check(&program(true)),
        });
    }

    // --- RA202: code no path from the entry reaches. -------------------
    {
        let program = |dead: bool| {
            let mut a = Asm::new();
            let end = a.label();
            if dead {
                a.b(end);
                a.nop();
            }
            a.bind(end);
            a.halt();
            a.finish()
        };
        out.push(Fixture {
            code: "RA202",
            name: "unreachable block",
            broken: kernel::check(&program(true)),
            clean: kernel::check(&program(false)),
        });
    }

    // --- RA203: a branch aimed outside the code segment. ---------------
    {
        let program = |corrupt: bool| {
            let mut a = Asm::new();
            a.nop();
            a.halt();
            let mut p = a.finish();
            if corrupt {
                let b = EncodedInst::build(Opcode::B, 0, Reg::XZR, Reg::XZR, Reg::XZR, 100)
                    .expect("encodes");
                p.code.push(b);
            }
            p
        };
        out.push(Fixture {
            code: "RA203",
            name: "branch out of range",
            broken: kernel::check(&program(true)),
            clean: kernel::check(&program(false)),
        });
    }

    out
}

#[test]
fn every_rule_family_flags_its_seeded_fixture_and_spares_the_twin() {
    let all = fixtures();
    assert!(
        all.len() >= 8,
        "the acceptance gate needs at least 8 rule-family fixtures, have {}",
        all.len()
    );
    for f in &all {
        assert!(
            f.broken.iter().any(|d| d.lint.code() == f.code),
            "{} ({}): seeded fixture not flagged; got {:?}",
            f.code,
            f.name,
            f.broken
        );
        assert!(
            !f.clean.iter().any(|d| d.lint.code() == f.code),
            "{} ({}): clean twin wrongly flagged: {:?}",
            f.code,
            f.name,
            f.clean
        );
    }
}

#[test]
fn fixture_codes_are_distinct() {
    let all = fixtures();
    let mut codes: Vec<_> = all.iter().map(|f| f.code).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), all.len(), "each fixture seeds a distinct rule");
}

#[test]
fn shipped_platforms_carry_zero_error_diagnostics() {
    for p in [Platform::a53_like(), Platform::a72_like()] {
        let errors: Vec<_> = platform::check(&p)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {:?}", p.name, errors);
    }
}
