//! Golden-file tests for the two report renderers. The exact bytes of
//! `racesim lint` output — especially `--json` — are a stable interface
//! that downstream tooling parses; any change must show up as a diff on
//! the files under `tests/golden/`.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDENS=1 cargo test -p racesim-analyzer --test golden_render`

use racesim_analyzer::{Diagnostic, Lint, Report};

/// A fixed report touching every severity, context, escaping, and the
/// sort order.
fn sample_report() -> Report {
    let mut r = Report::new();
    r.push(
        Diagnostic::new(
            Lint::DegenerateDimension,
            "dimension has a single candidate",
        )
        .with("space", "a53")
        .with("param", "rob"),
    );
    r.push(
        Diagnostic::new(Lint::KernelUninitRead, "load from a reserved region")
            .with("kernel", "MM")
            .with("region", "0x20000000+0x1000"),
    );
    r.push(
        Diagnostic::new(Lint::PlatformLatencyOrdering, "l1d (20) not below l2 (15)")
            .with("field", "mem.l1d.latency"),
    );
    r.push(
        Diagnostic::new(
            Lint::UntunedField,
            "field \"mem.dram.latency\"\nis never tuned",
        )
        .with("field", "mem.dram.latency"),
    );
    r.sort();
    r
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "rendered output drifted from {} (UPDATE_GOLDENS=1 to accept)",
        path.display()
    );
}

#[test]
fn text_rendering_matches_golden() {
    check_golden("report.txt", &sample_report().render_text());
}

#[test]
fn json_rendering_matches_golden() {
    check_golden("report.json", &sample_report().render_json());
}

/// A report exercising the `--suite` additions: RA4xx/RA5xx codes and an
/// appended `coverage` section rendered through `render_json_with`.
fn sample_suite_report() -> (Report, String) {
    let mut r = Report::new();
    r.push(
        Diagnostic::new(
            Lint::KernelDeadWrite,
            "register write is overwritten before any read on every path",
        )
        .with("kernel", "deepsjeng")
        .with("pc", "0x10a4")
        .with("opcode", "Add")
        .with("regs", "x3"),
    );
    r.push(
        Diagnostic::new(Lint::KernelNoExitLoop, "loop has no exit edge")
            .with("kernel", "bad")
            .with("header_pc", "0x1010"),
    );
    r.push(
        Diagnostic::new(
            Lint::SuiteDeadParameter,
            "no kernel in the suite can observe this parameter",
        )
        .with("space", "a53")
        .with("param", "lat.fp_sqrt")
        .with("requires", "fp square root site(s)"),
    );
    r.push(
        Diagnostic::new(
            Lint::FloatReductionOrder,
            "cost aggregation is order-sensitive",
        )
        .with("audit", "determinism"),
    );
    r.sort();
    let coverage = concat!(
        "{\"a53\":{\"kernels\":[\"chain\",\"looped\"],\"params\":[",
        "{\"name\":\"lat.fp_sqrt\",\"requirement\":\"fp square root site(s)\",\"observers\":[]},",
        "{\"name\":\"width\",\"requirement\":\"any kernel\",\"observers\":[\"chain\",\"looped\"]}",
        "]}}"
    )
    .to_string();
    (r, coverage)
}

#[test]
fn suite_json_rendering_matches_golden() {
    let (r, coverage) = sample_suite_report();
    check_golden(
        "report_suite.json",
        &r.render_json_with(&[("coverage", coverage)]),
    );
}

#[test]
fn render_json_with_no_sections_equals_render_json() {
    let r = sample_report();
    assert_eq!(r.render_json(), r.render_json_with(&[]));
}

#[test]
fn json_is_stable_across_renders() {
    let r = sample_report();
    assert_eq!(r.render_json(), r.render_json());
    assert_eq!(r.render_text(), r.render_text());
}
