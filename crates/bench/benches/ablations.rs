//! Ablation studies over the design choices DESIGN.md calls out, run as
//! Criterion benches so they are tracked over time:
//!
//! * racing vs random search vs grid search at equal budget (solution
//!   quality is printed; wall time is the measured quantity);
//! * Friedman vs paired-t elimination;
//! * tuning on micro-benchmarks vs tuning directly on macro workloads
//!   (the paper argues micro-benchmarks isolate errors and are cheap —
//!   here the cost per evaluation shows up directly in the wall time).

use criterion::{criterion_group, criterion_main, Criterion};
use racesim_core::params::{apply, best_guess, build_space, Revision};
use racesim_core::validator::PreparedSuite;
use racesim_decoder::Decoder;
use racesim_hw::ReferenceBoard;
use racesim_kernels::{microbench_suite, spec_suite, Scale};
use racesim_race::{
    Configuration, CostFn, EliminationTest, GridSearch, ParamSpace, RaceSettings, RacingTuner,
    RandomSearch, Tuner, TunerSettings,
};
use racesim_sim::{SimOptions, Simulator};
use racesim_stats::abs_pct_error;
use racesim_uarch::CoreKind;

/// A real simulation-backed cost function over the prepared suite.
struct SimCost {
    base: racesim_sim::Platform,
    suite: PreparedSuite,
}

impl CostFn for SimCost {
    fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
        let p = apply(space, cfg, &self.base);
        let sim = Simulator::with_decoder(p, Decoder::new(), SimOptions::default());
        match sim.run(&self.suite.traces[instance]) {
            Ok(stats) => abs_pct_error(stats.cpi(), self.suite.hw[instance].cpi()),
            Err(_) => f64::MAX,
        }
    }
}

fn prepared_micro() -> SimCost {
    let board = ReferenceBoard::firefly_a53();
    let suite = PreparedSuite::prepare(&microbench_suite(Scale::TINY), &board).unwrap();
    SimCost {
        base: racesim_sim::Platform::a53_like(),
        suite,
    }
}

fn prepared_spec() -> SimCost {
    let board = ReferenceBoard::firefly_a53();
    let suite = PreparedSuite::prepare(&spec_suite(Scale::TINY), &board).unwrap();
    SimCost {
        base: racesim_sim::Platform::a53_like(),
        suite,
    }
}

fn settings(budget: u64, test: EliminationTest) -> TunerSettings {
    TunerSettings {
        budget,
        seed: 42,
        threads: 1,
        race: RaceSettings {
            test,
            ..RaceSettings::default()
        },
        ..TunerSettings::default()
    }
}

fn bench_search_strategies(c: &mut Criterion) {
    let cost = prepared_micro();
    let space = build_space(CoreKind::InOrder, Revision::Fixed);
    let n = cost.suite.len();
    let budget = 400u64;

    let mut group = c.benchmark_group("search_strategy");
    group.sample_size(10);
    group.bench_function("racing", |b| {
        b.iter(|| {
            RacingTuner::new(settings(budget, EliminationTest::Friedman)).tune(&space, &cost, n)
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            RandomSearch::new(settings(budget, EliminationTest::Friedman)).tune(&space, &cost, n)
        })
    });
    group.bench_function("grid", |b| {
        b.iter(|| {
            GridSearch::new(settings(budget, EliminationTest::Friedman)).tune(&space, &cost, n)
        })
    });
    group.finish();

    // Solution quality at equal budget (printed once, outside timing).
    let racing =
        RacingTuner::new(settings(budget, EliminationTest::Friedman)).tune(&space, &cost, n);
    let random =
        RandomSearch::new(settings(budget, EliminationTest::Friedman)).tune(&space, &cost, n);
    let grid = GridSearch::new(settings(budget, EliminationTest::Friedman)).tune(&space, &cost, n);
    let guess_cost = {
        let g = best_guess(&space, CoreKind::InOrder);
        (0..n).map(|i| cost.cost(&g, &space, i)).sum::<f64>() / n as f64
    };
    println!(
        "\n[ablation] mean CPI error at {budget} evals: best-guess {guess_cost:.1}%, \
         racing {:.1}%, random {:.1}%, grid {:.1}%",
        racing.best_cost, random.best_cost, grid.best_cost
    );
}

fn bench_elimination_tests(c: &mut Criterion) {
    let cost = prepared_micro();
    let space = build_space(CoreKind::InOrder, Revision::Fixed);
    let n = cost.suite.len();
    let mut group = c.benchmark_group("elimination_test");
    group.sample_size(10);
    group.bench_function("friedman_wilcoxon", |b| {
        b.iter(|| RacingTuner::new(settings(300, EliminationTest::Friedman)).tune(&space, &cost, n))
    });
    group.bench_function("paired_t", |b| {
        b.iter(|| RacingTuner::new(settings(300, EliminationTest::PairedT)).tune(&space, &cost, n))
    });
    group.finish();
}

fn bench_micro_vs_macro_tuning(c: &mut Criterion) {
    let micro = prepared_micro();
    let spec = prepared_spec();
    let space = build_space(CoreKind::InOrder, Revision::Fixed);
    let mut group = c.benchmark_group("tuning_workload");
    group.sample_size(10);
    group.bench_function("on_microbenchmarks", |b| {
        b.iter(|| {
            RacingTuner::new(settings(200, EliminationTest::Friedman)).tune(
                &space,
                &micro,
                micro.suite.len(),
            )
        })
    });
    group.bench_function("on_spec_macro", |b| {
        b.iter(|| {
            RacingTuner::new(settings(200, EliminationTest::Friedman)).tune(
                &space,
                &spec,
                spec.suite.len(),
            )
        })
    });
    group.finish();
}

/// Criterion configuration: set `RACESIM_QUICK_BENCH=1` to shrink
/// measurement times (used by CI and the final smoke runs).
fn configured() -> Criterion {
    let c = Criterion::default();
    if std::env::var("RACESIM_QUICK_BENCH").is_ok() {
        c.measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(10)
    } else {
        c
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_search_strategies,
    bench_elimination_tests,
    bench_micro_vs_macro_tuning
}
criterion_main!(benches);
