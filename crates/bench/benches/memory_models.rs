//! Micro-benchmarks of the memory substrate: raw cache lookups under each
//! replacement policy and hashing scheme, and prefetcher training
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racesim_mem::{
    Cache, CacheConfig, GhbPrefetcher, IndexHash, Prefetcher, Replacement, StridePrefetcher,
};

fn cache_cfg(replacement: Replacement, hash: IndexHash) -> CacheConfig {
    CacheConfig {
        replacement,
        hash,
        ..CacheConfig::l1_default()
    }
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    const N: u64 = 4096;
    group.throughput(Throughput::Elements(N));
    for repl in [
        Replacement::Lru,
        Replacement::PseudoLru,
        Replacement::Random,
        Replacement::Fifo,
    ] {
        group.bench_with_input(
            BenchmarkId::new("replacement", format!("{repl}")),
            &repl,
            |b, &repl| {
                let mut cache = Cache::new(&cache_cfg(repl, IndexHash::Mask));
                let mut i = 0u64;
                b.iter(|| {
                    for _ in 0..N {
                        i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
                        cache.access((i >> 20) & 0xFFFF, false, true);
                    }
                })
            },
        );
    }
    for hash in [IndexHash::Mask, IndexHash::Xor, IndexHash::MersenneMod] {
        group.bench_with_input(
            BenchmarkId::new("hashing", format!("{hash}")),
            &hash,
            |b, &hash| {
                let mut cache = Cache::new(&cache_cfg(Replacement::Lru, hash));
                let mut i = 0u64;
                b.iter(|| {
                    for _ in 0..N {
                        i = i.wrapping_add(0x40);
                        cache.access(i >> 6, false, true);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetcher_observe");
    const N: u64 = 4096;
    group.throughput(Throughput::Elements(N));
    group.bench_function("stride", |b| {
        let mut pf = StridePrefetcher::new(64, 2);
        let mut out = Vec::new();
        b.iter(|| {
            for i in 0..N {
                out.clear();
                pf.observe(0x400 + (i % 8) * 4, i * 3, false, &mut out);
            }
        })
    });
    group.bench_function("ghb", |b| {
        let mut pf = GhbPrefetcher::new(128, 64, 2);
        let mut out = Vec::new();
        b.iter(|| {
            for i in 0..N {
                out.clear();
                pf.observe(0x400 + (i % 8) * 4, i * 3, false, &mut out);
            }
        })
    });
    group.finish();
}

/// Criterion configuration: set `RACESIM_QUICK_BENCH=1` to shrink
/// measurement times (used by CI and the final smoke runs).
fn configured() -> Criterion {
    let c = Criterion::default();
    if std::env::var("RACESIM_QUICK_BENCH").is_ok() {
        c.measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(10)
    } else {
        c
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_cache, bench_prefetchers
}
criterion_main!(benches);
