//! Performance of the racing machinery itself: statistical-test
//! throughput and end-to-end tuner iterations on a synthetic cost
//! function (no simulation in the loop, so this isolates the tuner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racesim_race::{Configuration, CostFn, ParamSpace, RacingTuner, Tuner, TunerSettings};
use racesim_stats::{friedman_test, wilcoxon_signed_rank};

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("statistics");
    for k in [4usize, 16, 64] {
        // 20 blocks x k configs with a stable ranking plus noise.
        let matrix: Vec<Vec<f64>> = (0..20)
            .map(|b| {
                (0..k)
                    .map(|j| j as f64 + ((b * 7919 + j * 31) % 13) as f64 * 0.1)
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("friedman", k), &matrix, |bch, m| {
            bch.iter(|| friedman_test(m).unwrap())
        });
    }
    let a: Vec<f64> = (0..40).map(|i| (i as f64 * 1.37).sin() + 2.0).collect();
    let b: Vec<f64> = a.iter().map(|x| x + 0.05).collect();
    group.bench_function("wilcoxon_40", |bch| {
        bch.iter(|| wilcoxon_signed_rank(&a, &b))
    });
    group.finish();
}

struct Synthetic;

impl CostFn for Synthetic {
    fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
        let x = cfg.integer(space, "x") as f64;
        let y = cfg.integer(space, "y") as f64;
        (x - 3.0).powi(2) + (y + 2.0).powi(2) + ((instance * 13) % 7) as f64 * 0.2
    }
}

fn bench_tuner(c: &mut Criterion) {
    let mut space = ParamSpace::new();
    space.add_integer("x", &[-8, -4, -2, 0, 1, 2, 3, 4, 8]);
    space.add_integer("y", &[-8, -4, -2, -1, 0, 2, 4, 8]);
    space.add_categorical("m", &["a", "b", "c"]);
    space.add_bool("f");

    let mut group = c.benchmark_group("tuner");
    group.sample_size(10);
    for budget in [500u64, 2000] {
        group.bench_with_input(
            BenchmarkId::new("racing_budget", budget),
            &budget,
            |bch, &budget| {
                bch.iter(|| {
                    RacingTuner::new(TunerSettings {
                        budget,
                        seed: 1,
                        ..TunerSettings::default()
                    })
                    .tune(&space, &Synthetic, 20)
                })
            },
        );
    }
    group.finish();
}

/// Criterion configuration: set `RACESIM_QUICK_BENCH=1` to shrink
/// measurement times (used by CI and the final smoke runs).
fn configured() -> Criterion {
    let c = Criterion::default();
    if std::env::var("RACESIM_QUICK_BENCH").is_ok() {
        c.measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(10)
    } else {
        c
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_stats, bench_tuner
}
criterion_main!(benches);
