//! Simulator throughput: how many instructions per second the in-order
//! and out-of-order timing models replay. Sniper's selling point is
//! cycle-level accounting at far-above-cycle-accurate speed; this bench
//! tracks our equivalent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racesim_kernels::{microbench_suite, Scale};
use racesim_sim::{Platform, Simulator};
use racesim_trace::TraceBuffer;

fn kernel_trace(name: &str) -> TraceBuffer {
    microbench_suite(Scale::TINY)
        .into_iter()
        .find(|w| w.name == name)
        .expect("kernel exists")
        .trace()
        .expect("kernel runs")
}

fn bench_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_speed");
    for kernel in ["EI", "MD", "CCh", "DP1f"] {
        let trace = kernel_trace(kernel);
        group.throughput(Throughput::Elements(trace.len() as u64));
        let a53 = Simulator::new(Platform::a53_like());
        group.bench_with_input(BenchmarkId::new("in-order", kernel), &trace, |b, t| {
            b.iter(|| a53.run(t).unwrap())
        });
        let a72 = Simulator::new(Platform::a72_like());
        group.bench_with_input(BenchmarkId::new("out-of-order", kernel), &trace, |b, t| {
            b.iter(|| a72.run(t).unwrap())
        });
    }
    group.finish();
}

fn bench_emulator(c: &mut Criterion) {
    let workload = microbench_suite(Scale::TINY)
        .into_iter()
        .find(|w| w.name == "EI")
        .unwrap();
    let len = workload.trace().unwrap().len() as u64;
    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Elements(len));
    group.bench_function("emulate_and_record", |b| {
        b.iter(|| workload.trace().unwrap())
    });
    group.finish();
}

/// Criterion configuration: set `RACESIM_QUICK_BENCH=1` to shrink
/// measurement times (used by CI and the final smoke runs).
fn configured() -> Criterion {
    let c = Criterion::default();
    if std::env::var("RACESIM_QUICK_BENCH").is_ok() {
        c.measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(10)
    } else {
        c
    }
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_cores, bench_emulator
}
criterion_main!(benches);
