//! Regenerates Figure 2: the behaviour of the iterated racing algorithm —
//! configurations sampled per iteration, survivors advancing through the
//! benchmark instances, and eliminations accelerating as statistical
//! evidence accumulates.
//!
//! The output is an ASCII version of the paper's schematic, drawn from a
//! real tuning run against the A53 board.

use racesim_bench::{banner, validate, ExperimentConfig};
use racesim_core::Revision;
use racesim_uarch::CoreKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    banner("Figure 2: iterated racing in action (A53 tuning run)");

    let outcome = validate(CoreKind::InOrder, Revision::Fixed, &cfg);

    for it in &outcome.tune.history {
        println!(
            "iteration {}: {} configurations raced over {} instances, {} evaluations, best cost {:.1}%",
            it.iteration, it.configs_raced, it.blocks_used, it.evals_used, it.best_cost
        );
        // One row per configuration; '#' while racing, 'x' at elimination.
        let survived_to = |config: usize| -> usize {
            it.eliminations
                .iter()
                .find(|e| e.config() == config)
                .map(|e| e.after_blocks())
                .unwrap_or(it.blocks_used)
        };
        for c in 0..it.configs_raced {
            let n = survived_to(c);
            let eliminated = n < it.blocks_used;
            println!(
                "  cfg {c:>3} |{}{}",
                "#".repeat(n),
                if eliminated { "x" } else { " -> survivor" }
            );
        }
        println!();
    }
    println!(
        "total evaluations: {} (budget {})",
        outcome.tune.evals_used, cfg.budget
    );
    println!(
        "final best configuration cost: {:.1}% mean CPI error",
        outcome.tune.best_cost
    );
}
