//! Regenerates Figure 4: per-micro-benchmark CPI prediction error for the
//! Cortex-A53 model, **not tuned** versus **tuned**.
//!
//! "Not tuned" is the paper's starting point: the *initial* model revision
//! (no indirect predictor, no GHB, mask-only hashing, buggy decoder,
//! uninitialised arrays) configured purely from public information,
//! lmbench latencies and best guesses. "Tuned" is the *fixed* revision
//! after racing. The paper reports ~50% average error untuned (with a
//! 5.6x outlier on ED1) collapsing to ~10% after fixing and tuning.

use racesim_bench::{banner, board_for, results_dir, validate, ExperimentConfig};
use racesim_core::validator::{evaluate_platform, PreparedSuite};
use racesim_core::{analysis, params, report, Revision, Validator};
use racesim_stats::abs_pct_error;
use racesim_uarch::CoreKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    banner("Figure 4: A53 micro-benchmark CPI error, untuned vs tuned");

    // "Not tuned": the initial revision with best guesses, no racing.
    let board = board_for(CoreKind::InOrder);
    let initial_settings = cfg.validator_settings(CoreKind::InOrder, Revision::Initial);
    let initial = Validator::new(&board, initial_settings);
    let base = initial.base_platform().expect("probes run");
    let space = params::build_space(CoreKind::InOrder, Revision::Initial);
    let guess = params::best_guess(&space, CoreKind::InOrder);
    let untuned_platform = params::apply(&space, &guess, &base);
    let suite = PreparedSuite::prepare(&initial.suite(), &board).expect("suite measurable");
    let untuned = evaluate_platform(&untuned_platform, initial.decoder(), &suite);

    // "Tuned": the fixed revision, raced.
    let outcome = validate(CoreKind::InOrder, Revision::Fixed, &cfg);

    let mut rows = Vec::new();
    let mut chart = Vec::new();
    for (u, t) in untuned.iter().zip(&outcome.tuned_results) {
        assert_eq!(u.name, t.name);
        let ue = abs_pct_error(u.sim_cpi, u.hw_cpi);
        let te = abs_pct_error(t.sim_cpi, t.hw_cpi);
        rows.push(vec![u.name.clone(), format!("{ue:.1}"), format!("{te:.1}")]);
        chart.push((format!("{:<12} tuned", u.name), te));
    }
    let untuned_avg = untuned.iter().map(|r| r.error_pct()).sum::<f64>() / untuned.len() as f64;
    let tuned_avg = outcome.tuned_mean_error();

    println!(
        "{}",
        report::table(&["benchmark", "not tuned %", "tuned %"], &rows)
    );
    println!(
        "not tuned average: {untuned_avg:.1}%   (paper: ~50%, trimmed to 33% after one round)"
    );
    println!("tuned average:     {tuned_avg:.1}%   (paper: ~10%)");
    let worst_untuned = untuned.iter().map(|r| r.error_pct()).fold(0.0f64, f64::max);
    println!("worst untuned benchmark: {worst_untuned:.0}% (paper: 5.6x on ED1)");

    println!("\ntuned error profile:");
    print!("{}", report::bar_chart(&chart, 40, "%"));

    // Step-5 analysis of the *untuned* model: this is what motivates the
    // fixes in the first place.
    let rep = analysis::analyse(&untuned);
    println!("\nstep-5 analysis of the untuned model recommends:");
    for r in &rep.recommendations {
        println!("  - {r}");
    }

    let csv = results_dir().join("fig4.csv");
    report::write_csv(&csv, &["benchmark", "untuned_pct", "tuned_pct"], &rows).expect("write csv");
    println!("\nwritten: {}", csv.display());
}
