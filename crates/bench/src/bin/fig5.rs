//! Regenerates Figure 5: per-application absolute CPI prediction error of
//! the tuned in-order (Cortex-A53) model on the SPEC CPU2017 proxies.
//! The paper reports a 7% average with a 16% worst case.

use racesim_bench::{
    banner, board_for, mean_of, results_dir, spec_errors, validate, ExperimentConfig,
};
use racesim_core::{report, Revision};
use racesim_uarch::CoreKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    banner("Figure 5: tuned A53 model vs hardware on SPEC CPU2017");

    let outcome = validate(CoreKind::InOrder, Revision::Fixed, &cfg);
    println!(
        "(tuning set: {:.1}% mean micro-benchmark error after racing)",
        outcome.tuned_mean_error()
    );

    let board = board_for(CoreKind::InOrder);
    let rows = spec_errors(&outcome.tuned, &board, cfg.scale);
    print!("\n{}", report::bar_chart(&rows, 40, "%"));
    println!(
        "\naverage absolute CPI error: {:.1}%  (paper: 7%, max 16%)",
        mean_of(&rows)
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, e)| vec![n.clone(), format!("{e:.2}")])
        .collect();
    let csv = results_dir().join("fig5.csv");
    report::write_csv(&csv, &["benchmark", "cpi_error_pct"], &csv_rows).expect("write csv");
    println!("written: {}", csv.display());
}
