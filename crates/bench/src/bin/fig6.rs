//! Regenerates Figure 6: per-application absolute CPI prediction error of
//! the tuned out-of-order (Cortex-A72) model on the SPEC CPU2017
//! proxies. The paper reports a 15% average with ~30% outliers (povray
//! and x264, blamed on the prefetcher).

use racesim_bench::{
    banner, board_for, mean_of, results_dir, spec_errors, validate, ExperimentConfig,
};
use racesim_core::{report, Revision};
use racesim_uarch::CoreKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    banner("Figure 6: tuned A72 model vs hardware on SPEC CPU2017");

    let outcome = validate(CoreKind::OutOfOrder, Revision::Fixed, &cfg);
    println!(
        "(tuning set: {:.1}% mean micro-benchmark error after racing)",
        outcome.tuned_mean_error()
    );

    let board = board_for(CoreKind::OutOfOrder);
    let rows = spec_errors(&outcome.tuned, &board, cfg.scale);
    print!("\n{}", report::bar_chart(&rows, 40, "%"));
    println!(
        "\naverage absolute CPI error: {:.1}%  (paper: 15%, outliers ~30%)",
        mean_of(&rows)
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, e)| vec![n.clone(), format!("{e:.2}")])
        .collect();
    let csv = results_dir().join("fig6.csv");
    report::write_csv(&csv, &["benchmark", "cpi_error_pct"], &csv_rows).expect("write csv");
    println!("written: {}", csv.display());
}
