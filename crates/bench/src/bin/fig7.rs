//! Regenerates Figure 7: the impact of close-to-optimum but inaccurate
//! parameter settings on the Cortex-A53 model.
//!
//! Starting from the raced optimum, the experiment searches the ±1-step
//! box around it for the *worst* configuration (greedy coordinate ascent;
//! the paper exhausts the box) and reports that configuration's SPEC CPI
//! errors. The paper: average error grows from 7% to 34%, individual
//! applications reach 67%.

use racesim_bench::perturbation::run_perturbation;
use racesim_uarch::CoreKind;

fn main() {
    run_perturbation(
        CoreKind::InOrder,
        "Figure 7: close-to-optimum worst case, A53",
        "fig7.csv",
        "(paper: average quadruples from 7% to 34%; worst application 67%)",
    );
}
