//! Regenerates Figure 8: the impact of close-to-optimum but inaccurate
//! parameter settings on the Cortex-A72 model.
//!
//! The paper: the average error triples from 15% to about 45% even though
//! every parameter stays within one step of the optimum.

use racesim_bench::perturbation::run_perturbation;
use racesim_uarch::CoreKind;

fn main() {
    run_perturbation(
        CoreKind::OutOfOrder,
        "Figure 8: close-to-optimum worst case, A72",
        "fig8.csv",
        "(paper: average triples from 15% to ~45%)",
    );
}
