//! Writes a reproducible performance snapshot of the simulator itself —
//! the perf trajectory the repo tracks across changes.
//!
//! The snapshot (`BENCH_10.json` by default) records:
//!
//! * simulator throughput (instructions per second) per kernel
//!   category, best of three runs;
//! * the end-to-end wall time of a `fig2_race`-style A53 tune;
//! * the wall time of one staged racing iteration run sequentially and
//!   again sharded over two spawned worker processes (the
//!   `racesim-dist` coordinator path), so the snapshot tracks the
//!   dispatch overhead of distributed campaigns;
//! * the percent of fresh evaluations the static bounds engine avoids
//!   on the pinned elimination scenario (`static_elim_pct`);
//! * the self-profiler's phase breakdown (percent of profiled wall per
//!   phase path) over the micro-benchmark suite.
//!
//! ```text
//! perf_snapshot [--out FILE] [--gate BASELINE] [--tolerance 0.25]
//! ```
//!
//! With `--gate`, every per-category throughput is compared against the
//! baseline file and the process exits non-zero when any category
//! regressed by more than the tolerance (default 25%) — the CI
//! regression gate. Scale and budget come from `RACESIM_SCALE` /
//! `RACESIM_BUDGET` as for every other experiment binary.
//!
//! The hidden `--dist-worker` flag turns this binary into a wire-serving
//! evaluation worker; the distributed-tune timing spawns copies of
//! itself in that mode so the measurement has no dependency on the CLI
//! binary being built.

use racesim_bench::{banner, validate, ExperimentConfig};
use racesim_core::{CampaignSpec, Revision};
use racesim_kernels::{microbench_suite, Scale};
use racesim_race::{RacingTuner, TryCostFn};
use racesim_sim::{Platform, Simulator};
use racesim_telemetry::{Profiler, Telemetry};
use racesim_uarch::CoreKind;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Throughput-measurement repetitions; the best (max) run is recorded so
/// the snapshot tracks the machine's capability, not its noise.
const REPS: usize = 3;

struct Snapshot {
    scale: u64,
    /// category → best instructions per second.
    throughput: BTreeMap<String, f64>,
    tune_wall_ms: f64,
    /// One staged racing iteration, evaluated in process.
    dist_seq_wall_ms: f64,
    /// The same iteration sharded over two spawned workers.
    dist_tune_wall_ms: f64,
    /// Percent of fresh evaluations the static bounds engine avoided on
    /// the pinned elimination scenario (bounds-off evals vs bounds-on).
    static_elim_pct: f64,
    /// phase path → percent of profiled wall (self time).
    phases: BTreeMap<String, f64>,
}

impl Snapshot {
    fn render_json(&self) -> String {
        let map = |m: &BTreeMap<String, f64>| {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\":{v:.1}")).collect();
            format!("{{{}}}", body.join(","))
        };
        format!(
            "{{\"schema_version\":1,\"scale\":{},\"throughput\":{},\
             \"tune_wall_ms\":{:.1},\"dist_seq_wall_ms\":{:.1},\
             \"dist_tune_wall_ms\":{:.1},\"static_elim_pct\":{:.2},\
             \"phases\":{}}}\n",
            self.scale,
            map(&self.throughput),
            self.tune_wall_ms,
            self.dist_seq_wall_ms,
            self.dist_tune_wall_ms,
            self.static_elim_pct,
            map(&self.phases)
        )
    }
}

/// Extracts the flat `"name":number` pairs of one named JSON object from
/// a snapshot file this binary wrote earlier. Purpose-built for the
/// schema above, not a general JSON parser.
fn parse_flat_object(json: &str, key: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let marker = format!("\"{key}\":{{");
    let Some(start) = json.find(&marker) else {
        return out;
    };
    let body = &json[start + marker.len()..];
    let Some(end) = body.find('}') else {
        return out;
    };
    for pair in body[..end].split(',') {
        let mut it = pair.splitn(2, ':');
        let (Some(name), Some(value)) = (it.next(), it.next()) else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(name.to_string(), v);
        }
    }
    out
}

fn measure_throughput(cfg: &ExperimentConfig) -> BTreeMap<String, f64> {
    // insts and best wall per category, summed over each category's
    // kernels within a rep, best-of-reps on the aggregate.
    let suite = microbench_suite(cfg.scale);
    let traces: Vec<_> = suite
        .iter()
        .map(|w| (w.category.to_string(), w.trace().expect("kernel traces")))
        .collect();
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for _ in 0..REPS {
        let mut insts: BTreeMap<String, u64> = BTreeMap::new();
        let mut wall_ns: BTreeMap<String, u64> = BTreeMap::new();
        for (category, trace) in &traces {
            let sim = Simulator::new(Platform::a53_like());
            let t0 = Instant::now();
            let stats = sim.run(trace).expect("trace replays");
            *wall_ns.entry(category.clone()).or_default() += t0.elapsed().as_nanos() as u64;
            *insts.entry(category.clone()).or_default() += stats.core.instructions;
        }
        for (category, n) in insts {
            let ips = n as f64 * 1e9 / wall_ns[&category].max(1) as f64;
            let slot = best.entry(category).or_insert(0.0);
            if ips > *slot {
                *slot = ips;
            }
        }
    }
    best
}

fn measure_phases(cfg: &ExperimentConfig) -> BTreeMap<String, f64> {
    // One shared profiler across the whole suite: the breakdown reflects
    // where an aggregate simulation run spends its time.
    let profiler = Profiler::enabled();
    for w in microbench_suite(cfg.scale) {
        let trace = w.trace().expect("kernel traces");
        Simulator::new(Platform::a53_like())
            .with_profiler(profiler.clone())
            .run(&trace)
            .expect("trace replays");
    }
    let snap = profiler.snapshot();
    let total = snap.total_ns().max(1) as f64;
    let mut out = BTreeMap::new();
    for line in snap.render_folded().lines() {
        let Some((path, self_ns)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(ns) = self_ns.parse::<u64>() else {
            continue;
        };
        let pct = 100.0 * ns as f64 / total;
        if pct >= 0.05 {
            out.insert(path.replace(';', "/"), pct);
        }
    }
    out
}

/// Times one staged A53 racing iteration twice: evaluated in process,
/// then sharded over `workers` spawned copies of this binary running in
/// `--dist-worker` mode. Both runs share one `CampaignSpec`, so the
/// pair isolates pure dispatch overhead (or speedup) — the campaign
/// outcome is bit-identical by construction and asserted here.
fn measure_dist_tune(cfg: &ExperimentConfig, workers: usize) -> (f64, f64) {
    let spec = CampaignSpec {
        kind: CoreKind::InOrder,
        scale: cfg.scale,
        // One iteration at a modest budget: enough evaluations to keep
        // every worker busy, small enough for a CI-sized snapshot.
        budget: cfg.budget.clamp(60, 400),
        seed: cfg.seed,
        threads: 1,
        workers: 0,
        max_iterations: Some(1),
        static_bounds: false,
        timeout_ms: None,
        fault_profile: "none".to_string(),
        fault_seed: 1,
        frozen: Vec::new(),
    };
    let time_one = |pool_workers: usize| -> (f64, f64) {
        let telemetry = Telemetry::disabled();
        let stack = spec.build_stack(&telemetry).expect("campaign stack");
        let n_instances = stack.cost.len();
        let mut tuner = RacingTuner::new(spec.tuner_settings());
        if pool_workers > 0 {
            let exe = std::env::current_exe().expect("own binary path");
            let argv = vec![exe.display().to_string(), "--dist-worker".to_string()];
            let init = racesim_dist::InitSpec {
                core: spec.core_name().to_string(),
                scale: spec.scale.divisor(),
                faults: spec.fault_profile.clone(),
                fault_seed: spec.fault_seed,
                timeout_ms: 0,
                worker: 0,
                static_bounds: false,
            };
            let pool = racesim_dist::WorkerPool::new(
                Box::new(racesim_dist::ProcessLauncher::new(argv)),
                racesim_dist::PoolOptions::new(pool_workers, init),
                Arc::clone(&stack.cost) as Arc<dyn TryCostFn + Send + Sync>,
                telemetry.clone(),
            );
            tuner = tuner.with_dispatch(Arc::new(pool));
        }
        let t0 = Instant::now();
        let result = tuner.try_tune(&stack.space, &*stack.cost, n_instances);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            result.best_cost.is_finite(),
            "staged tune must reach a finite best cost"
        );
        (wall_ms, result.best_cost)
    };
    let (seq_ms, seq_cost) = time_one(0);
    let (dist_ms, dist_cost) = time_one(workers);
    assert_eq!(
        seq_cost.to_bits(),
        dist_cost.to_bits(),
        "distributed tune must be bit-identical to sequential"
    );
    (seq_ms, dist_ms)
}

/// Runs the pinned static-elimination scenario twice — bounds on, then
/// off — and returns the percent of fresh evaluations the bounds engine
/// avoided. The scenario is pinned rather than taken from the
/// environment: eliminations only fire when races are short enough for
/// the incumbent's recorded prefix cost to dip under the bound ceiling,
/// so the budget/scale/seed triple below is the same one the CI
/// bounds-smoke job exercises. The frozen dimensions mirror what
/// `racesim tune` freezes from the coverage matrix on the shipped
/// suite, so the campaign here is the CLI campaign.
fn measure_static_elim() -> f64 {
    let spec = |static_bounds: bool| CampaignSpec {
        kind: CoreKind::InOrder,
        scale: Scale::divide_by(2048),
        budget: 120,
        seed: 9,
        threads: 4,
        workers: 0,
        max_iterations: None,
        static_bounds,
        timeout_ms: None,
        fault_profile: "none".to_string(),
        fault_seed: 1,
        frozen: [
            "lat.int_div",
            "lat.fp_div",
            "lat.fp_sqrt",
            "lat.fp_mov",
            "lat.simd_mul",
        ]
        .iter()
        .map(|p| ((*p).to_string(), "I0".to_string()))
        .collect(),
    };
    let telemetry = Telemetry::disabled();
    let on = spec(true).run(&telemetry).expect("bounds-on tune");
    let off = spec(false).run(&telemetry).expect("bounds-off tune");
    assert!(
        on.static_eliminated >= 1,
        "the pinned scenario must eliminate at least one configuration"
    );
    // Elimination must not change the outcome: same survivors, same
    // recorded costs, bit for bit.
    assert_eq!(on.elites.len(), off.elites.len(), "survivor sets differ");
    for ((ca, a), (cb, b)) in on.elites.iter().zip(&off.elites) {
        assert_eq!(ca, cb, "survivor sets differ");
        assert_eq!(a.to_bits(), b.to_bits(), "survivor costs differ");
    }
    assert!(off.evals_used > 0, "bounds-off run must evaluate");
    100.0 * (off.evals_used.saturating_sub(on.evals_used)) as f64 / off.evals_used as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden worker mode: serve framed evaluation requests on
    // stdin/stdout until the coordinator says shutdown.
    if args.iter().any(|a| a == "--dist-worker") {
        if let Err(e) = racesim_dist::serve_stdio(&racesim_dist::WorkerOptions::default()) {
            eprintln!("dist worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_10.json".to_string());
    let gate = flag("--gate");
    let tolerance: f64 = flag("--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a fraction like 0.25"))
        .unwrap_or(0.25);

    let cfg = ExperimentConfig::from_env();
    banner("perf snapshot: simulator throughput, tune wall time, phase breakdown");

    println!("measuring throughput per kernel category ({REPS} reps)...");
    let throughput = measure_throughput(&cfg);
    for (category, ips) in &throughput {
        println!("  {category:<18} {:.2} Minst/s", ips / 1e6);
    }

    println!("profiling the phase breakdown...");
    let phases = measure_phases(&cfg);

    println!("timing an end-to-end A53 tune (budget {})...", cfg.budget);
    let t0 = Instant::now();
    let outcome = validate(CoreKind::InOrder, Revision::Fixed, &cfg);
    let tune_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "  {tune_wall_ms:.0} ms, {} evaluations, best cost {:.1}%",
        outcome.tune.evals_used, outcome.tune.best_cost
    );

    println!("timing one staged iteration, sequential vs 2 spawned workers...");
    let (dist_seq_wall_ms, dist_tune_wall_ms) = measure_dist_tune(&cfg, 2);
    println!(
        "  sequential {dist_seq_wall_ms:.0} ms, distributed {dist_tune_wall_ms:.0} ms \
         ({:.2}x, bit-identical outcome)",
        dist_seq_wall_ms / dist_tune_wall_ms.max(1e-9)
    );

    println!("measuring static-bounds elimination on the pinned scenario...");
    let static_elim_pct = measure_static_elim();
    println!("  {static_elim_pct:.2}% of fresh evaluations avoided");

    let snapshot = Snapshot {
        scale: std::env::var("RACESIM_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512),
        throughput,
        tune_wall_ms,
        dist_seq_wall_ms,
        dist_tune_wall_ms,
        static_elim_pct,
        phases,
    };
    std::fs::write(&out_path, snapshot.render_json()).expect("write snapshot");
    println!("snapshot written to {out_path}");

    if let Some(baseline_path) = gate {
        let baseline = std::fs::read_to_string(&baseline_path).expect("read baseline");
        let base = parse_flat_object(&baseline, "throughput");
        assert!(
            !base.is_empty(),
            "baseline {baseline_path} has no throughput"
        );
        let mut regressed = false;
        for (category, &base_ips) in &base {
            let now = snapshot.throughput.get(category).copied().unwrap_or(0.0);
            let floor = base_ips * (1.0 - tolerance);
            let verdict = if now < floor {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "gate {category:<18} baseline {:.2} Minst/s, now {:.2} Minst/s  {verdict}",
                base_ips / 1e6,
                now / 1e6
            );
        }
        if regressed {
            eprintln!(
                "error: throughput regressed by more than {:.0}% vs {baseline_path}",
                100.0 * tolerance
            );
            std::process::exit(1);
        }
        println!("gate passed (tolerance {:.0}%)", 100.0 * tolerance);
    }
}
