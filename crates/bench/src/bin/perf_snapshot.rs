//! Writes a reproducible performance snapshot of the simulator itself —
//! the perf trajectory the repo tracks across changes.
//!
//! The snapshot (`BENCH_7.json` by default) records:
//!
//! * simulator throughput (instructions per second) per kernel
//!   category, best of three runs;
//! * the end-to-end wall time of a `fig2_race`-style A53 tune;
//! * the self-profiler's phase breakdown (percent of profiled wall per
//!   phase path) over the micro-benchmark suite.
//!
//! ```text
//! perf_snapshot [--out FILE] [--gate BASELINE] [--tolerance 0.25]
//! ```
//!
//! With `--gate`, every per-category throughput is compared against the
//! baseline file and the process exits non-zero when any category
//! regressed by more than the tolerance (default 25%) — the CI
//! regression gate. Scale and budget come from `RACESIM_SCALE` /
//! `RACESIM_BUDGET` as for every other experiment binary.

use racesim_bench::{banner, validate, ExperimentConfig};
use racesim_core::Revision;
use racesim_kernels::microbench_suite;
use racesim_sim::{Platform, Simulator};
use racesim_telemetry::Profiler;
use racesim_uarch::CoreKind;
use std::collections::BTreeMap;
use std::time::Instant;

/// Throughput-measurement repetitions; the best (max) run is recorded so
/// the snapshot tracks the machine's capability, not its noise.
const REPS: usize = 3;

struct Snapshot {
    scale: u64,
    /// category → best instructions per second.
    throughput: BTreeMap<String, f64>,
    tune_wall_ms: f64,
    /// phase path → percent of profiled wall (self time).
    phases: BTreeMap<String, f64>,
}

impl Snapshot {
    fn render_json(&self) -> String {
        let map = |m: &BTreeMap<String, f64>| {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\":{v:.1}")).collect();
            format!("{{{}}}", body.join(","))
        };
        format!(
            "{{\"schema_version\":1,\"scale\":{},\"throughput\":{},\
             \"tune_wall_ms\":{:.1},\"phases\":{}}}\n",
            self.scale,
            map(&self.throughput),
            self.tune_wall_ms,
            map(&self.phases)
        )
    }
}

/// Extracts the flat `"name":number` pairs of one named JSON object from
/// a snapshot file this binary wrote earlier. Purpose-built for the
/// schema above, not a general JSON parser.
fn parse_flat_object(json: &str, key: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let marker = format!("\"{key}\":{{");
    let Some(start) = json.find(&marker) else {
        return out;
    };
    let body = &json[start + marker.len()..];
    let Some(end) = body.find('}') else {
        return out;
    };
    for pair in body[..end].split(',') {
        let mut it = pair.splitn(2, ':');
        let (Some(name), Some(value)) = (it.next(), it.next()) else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(name.to_string(), v);
        }
    }
    out
}

fn measure_throughput(cfg: &ExperimentConfig) -> BTreeMap<String, f64> {
    // insts and best wall per category, summed over each category's
    // kernels within a rep, best-of-reps on the aggregate.
    let suite = microbench_suite(cfg.scale);
    let traces: Vec<_> = suite
        .iter()
        .map(|w| (w.category.to_string(), w.trace().expect("kernel traces")))
        .collect();
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for _ in 0..REPS {
        let mut insts: BTreeMap<String, u64> = BTreeMap::new();
        let mut wall_ns: BTreeMap<String, u64> = BTreeMap::new();
        for (category, trace) in &traces {
            let sim = Simulator::new(Platform::a53_like());
            let t0 = Instant::now();
            let stats = sim.run(trace).expect("trace replays");
            *wall_ns.entry(category.clone()).or_default() += t0.elapsed().as_nanos() as u64;
            *insts.entry(category.clone()).or_default() += stats.core.instructions;
        }
        for (category, n) in insts {
            let ips = n as f64 * 1e9 / wall_ns[&category].max(1) as f64;
            let slot = best.entry(category).or_insert(0.0);
            if ips > *slot {
                *slot = ips;
            }
        }
    }
    best
}

fn measure_phases(cfg: &ExperimentConfig) -> BTreeMap<String, f64> {
    // One shared profiler across the whole suite: the breakdown reflects
    // where an aggregate simulation run spends its time.
    let profiler = Profiler::enabled();
    for w in microbench_suite(cfg.scale) {
        let trace = w.trace().expect("kernel traces");
        Simulator::new(Platform::a53_like())
            .with_profiler(profiler.clone())
            .run(&trace)
            .expect("trace replays");
    }
    let snap = profiler.snapshot();
    let total = snap.total_ns().max(1) as f64;
    let mut out = BTreeMap::new();
    for line in snap.render_folded().lines() {
        let Some((path, self_ns)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(ns) = self_ns.parse::<u64>() else {
            continue;
        };
        let pct = 100.0 * ns as f64 / total;
        if pct >= 0.05 {
            out.insert(path.replace(';', "/"), pct);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_7.json".to_string());
    let gate = flag("--gate");
    let tolerance: f64 = flag("--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a fraction like 0.25"))
        .unwrap_or(0.25);

    let cfg = ExperimentConfig::from_env();
    banner("perf snapshot: simulator throughput, tune wall time, phase breakdown");

    println!("measuring throughput per kernel category ({REPS} reps)...");
    let throughput = measure_throughput(&cfg);
    for (category, ips) in &throughput {
        println!("  {category:<18} {:.2} Minst/s", ips / 1e6);
    }

    println!("profiling the phase breakdown...");
    let phases = measure_phases(&cfg);

    println!("timing an end-to-end A53 tune (budget {})...", cfg.budget);
    let t0 = Instant::now();
    let outcome = validate(CoreKind::InOrder, Revision::Fixed, &cfg);
    let tune_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "  {tune_wall_ms:.0} ms, {} evaluations, best cost {:.1}%",
        outcome.tune.evals_used, outcome.tune.best_cost
    );

    let snapshot = Snapshot {
        scale: std::env::var("RACESIM_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512),
        throughput,
        tune_wall_ms,
        phases,
    };
    std::fs::write(&out_path, snapshot.render_json()).expect("write snapshot");
    println!("snapshot written to {out_path}");

    if let Some(baseline_path) = gate {
        let baseline = std::fs::read_to_string(&baseline_path).expect("read baseline");
        let base = parse_flat_object(&baseline, "throughput");
        assert!(
            !base.is_empty(),
            "baseline {baseline_path} has no throughput"
        );
        let mut regressed = false;
        for (category, &base_ips) in &base {
            let now = snapshot.throughput.get(category).copied().unwrap_or(0.0);
            let floor = base_ips * (1.0 - tolerance);
            let verdict = if now < floor {
                regressed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "gate {category:<18} baseline {:.2} Minst/s, now {:.2} Minst/s  {verdict}",
                base_ips / 1e6,
                now / 1e6
            );
        }
        if regressed {
            eprintln!(
                "error: throughput regressed by more than {:.0}% vs {baseline_path}",
                100.0 * tolerance
            );
            std::process::exit(1);
        }
        println!("gate passed (tolerance {:.0}%)", 100.0 * tolerance);
    }
}
