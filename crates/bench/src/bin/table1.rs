//! Regenerates Table I: the 40 micro-benchmarks with their dynamic
//! instruction counts — the paper's reference counts alongside the counts
//! this reproduction actually generates at the chosen scale.

use racesim_bench::{banner, results_dir, ExperimentConfig};
use racesim_core::report;
use racesim_kernels::{microbench_suite, table1_reference_counts};

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    banner("Table I: micro-benchmarks and dynamic instruction counts");

    let reference = table1_reference_counts();
    let suite = microbench_suite(cfg.scale);

    let mut rows = Vec::new();
    for (name, paper_count) in &reference {
        let w = suite
            .iter()
            .find(|w| w.name == *name)
            .expect("suite matches Table I");
        let trace = w.trace().expect("kernel runs");
        rows.push(vec![
            name.to_string(),
            w.category.to_string(),
            human(*paper_count),
            human(trace.len() as u64),
        ]);
    }
    println!(
        "{}",
        report::table(
            &["benchmark", "category", "paper insns", "generated insns"],
            &rows
        )
    );
    let csv = results_dir().join("table1.csv");
    report::write_csv(
        &csv,
        &["benchmark", "category", "paper_insns", "generated_insns"],
        &rows,
    )
    .expect("write csv");
    println!("written: {}", csv.display());
}
