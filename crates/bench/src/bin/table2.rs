//! Regenerates Table II: the SPEC CPU2017 benchmarks, their region
//! markers and dynamic instruction counts — paper values alongside the
//! proxy workloads this reproduction generates.

use racesim_bench::{banner, results_dir, ExperimentConfig};
use racesim_core::report;
use racesim_kernels::spec::{build_proxy, profiles};

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else {
        format!("{:.1}K", n as f64 / 1e3)
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    banner("Table II: SPEC CPU2017 benchmarks and instruction counts");

    let mut rows = Vec::new();
    for p in profiles() {
        let w = build_proxy(&p, cfg.scale);
        let trace = w.trace().expect("proxy runs");
        rows.push(vec![
            p.name.to_string(),
            p.region.to_string(),
            human(p.insn_count),
            human(trace.len() as u64),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "benchmark",
                "region (file:line)",
                "paper insns",
                "proxy insns"
            ],
            &rows
        )
    );
    let csv = results_dir().join("table2.csv");
    report::write_csv(
        &csv,
        &["benchmark", "region", "paper_insns", "proxy_insns"],
        &rows,
    )
    .expect("write csv");
    println!("written: {}", csv.display());
}
