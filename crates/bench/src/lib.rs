//! # racesim-bench
//!
//! The experiment harness: one binary per table and figure of the paper
//! (see DESIGN.md's experiment index) plus Criterion performance benches.
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table1` | Table I — micro-benchmark suite and dynamic instruction counts |
//! | `table2` | Table II — SPEC benchmarks, regions and instruction counts |
//! | `fig2_race` | Figure 2 — the racing algorithm's elimination behaviour |
//! | `fig4` | Figure 4 — per-micro-benchmark CPI error, untuned vs tuned (A53) |
//! | `fig5` | Figure 5 — SPEC CPI error of the tuned A53 model |
//! | `fig6` | Figure 6 — SPEC CPI error of the tuned A72 model |
//! | `fig7` | Figure 7 — close-to-optimum worst case on the A53 |
//! | `fig8` | Figure 8 — close-to-optimum worst case on the A72 |
//!
//! All binaries accept two environment variables:
//! `RACESIM_SCALE` (divisor of the paper's dynamic instruction counts,
//! default 512) and `RACESIM_BUDGET` (racing evaluation budget, default
//! 4000; the paper used 10K–100K trials). Results are printed as ASCII
//! charts and written as CSV next to the binary's working directory under
//! `results/`.

#![warn(missing_docs)]

use racesim_core::validator::PreparedSuite;
use racesim_core::{Revision, ValidationOutcome, Validator, ValidatorSettings};
use racesim_decoder::Decoder;
use racesim_hw::{HardwarePlatform, ReferenceBoard};
use racesim_kernels::{spec_suite, Scale};
use racesim_race::TunerSettings;
use racesim_sim::{run_batch, Platform, SimOptions, Simulator};
use racesim_stats::abs_pct_error;
use racesim_uarch::CoreKind;
use std::path::PathBuf;

/// Experiment-wide knobs, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Racing budget (fresh evaluations).
    pub budget: u64,
    /// Evaluation threads.
    pub threads: usize,
    /// Tuner seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Reads `RACESIM_SCALE` / `RACESIM_BUDGET` / `RACESIM_SEED` with
    /// defaults suited to a release-build laptop run.
    pub fn from_env() -> ExperimentConfig {
        let scale_div = std::env::var("RACESIM_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512u64);
        let budget = std::env::var("RACESIM_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(12_000u64);
        let seed = std::env::var("RACESIM_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x000A_5372);
        ExperimentConfig {
            scale: Scale::divide_by(scale_div),
            budget,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            seed,
        }
    }

    /// Validator settings for this experiment config.
    pub fn validator_settings(&self, kind: CoreKind, revision: Revision) -> ValidatorSettings {
        ValidatorSettings {
            kind,
            revision,
            scale: self.scale,
            tuner: TunerSettings {
                budget: self.budget,
                threads: self.threads,
                seed: self.seed,
                ..TunerSettings::default()
            },
            metric: racesim_core::CostMetric::CpiError,
        }
    }
}

/// The board for a core kind.
pub fn board_for(kind: CoreKind) -> ReferenceBoard {
    match kind {
        CoreKind::InOrder => ReferenceBoard::firefly_a53(),
        CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
    }
}

/// Runs the full validation for a core kind and revision.
///
/// # Panics
///
/// Panics on measurement failures (experiment binaries fail loudly).
pub fn validate(kind: CoreKind, revision: Revision, cfg: &ExperimentConfig) -> ValidationOutcome {
    let board = board_for(kind);
    let validator = Validator::new(&board, cfg.validator_settings(kind, revision));
    validator.run().expect("validation failed")
}

/// Per-application CPI errors of `platform` on the SPEC proxies.
///
/// # Panics
///
/// Panics on measurement failures.
pub fn spec_errors(
    platform: &Platform,
    board: &dyn HardwarePlatform,
    scale: Scale,
) -> Vec<(String, f64)> {
    let suite = spec_suite(scale);
    let prepared = PreparedSuite::prepare(&suite, board).expect("SPEC proxies measurable");
    let sim = Simulator::with_decoder(platform.clone(), Decoder::new(), SimOptions::default());
    let jobs: Vec<_> = prepared
        .traces
        .iter()
        .map(|t| (sim.clone(), std::sync::Arc::clone(t)))
        .collect();
    let results = run_batch(&jobs, ExperimentConfig::from_env().threads);
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let stats = r.expect("trace replays");
            (
                prepared.names[i].clone(),
                abs_pct_error(stats.cpi(), prepared.hw[i].cpi()),
            )
        })
        .collect()
}

/// The Figure-7/8 perturbation experiment, shared by both binaries.
pub mod perturbation {
    use super::*;
    use racesim_core::perturb::worst_within_one_step_multistart;
    use racesim_core::report;
    use racesim_race::{Configuration, ParamSpace};

    /// Runs the close-to-optimum worst-case experiment for one core kind
    /// and prints/saves the resulting SPEC error profile.
    ///
    /// # Panics
    ///
    /// Panics on measurement failures.
    pub fn run_perturbation(kind: CoreKind, title: &str, csv_name: &str, paper_note: &str) {
        let cfg = ExperimentConfig::from_env();
        banner(title);

        // Tune first (Figures 5/6 flow), then attack the optimum.
        let outcome = validate(kind, Revision::Fixed, &cfg);
        let board = board_for(kind);

        // Cost function for the worst-case search: the figures report SPEC
        // CPI error, so the box is searched directly against the SPEC
        // proxies ("we exhaustively search for the worst configuration …
        // and report the accuracy result").
        let suite = racesim_core::PreparedSuite::prepare(&spec_suite(cfg.scale), &board)
            .expect("SPEC proxies measurable");
        let n_search = suite.len();
        // `untuned` carries the lmbench-estimated base values; apply()
        // overwrites every tunable, so it serves as the base platform.
        let base = outcome.untuned.clone();
        let cost = move |c: &Configuration, s: &ParamSpace, i: usize| -> f64 {
            let p = racesim_core::params::apply(s, c, &base);
            let sim = Simulator::with_decoder(p, Decoder::new(), SimOptions::default());
            match sim.run(&suite.traces[i]) {
                Ok(stats) => abs_pct_error(stats.cpi(), suite.hw[i].cpi()),
                Err(_) => f64::MAX,
            }
        };
        let search_instances: Vec<usize> = (0..n_search).collect();
        println!("searching the ±1-step box around the optimum (multi-start greedy ascent)...");
        let perturbed = worst_within_one_step_multistart(
            &outcome.space,
            &outcome.best,
            &cost,
            &search_instances,
            2,
            cfg.seed,
            cfg.threads,
        );
        println!(
            "micro-benchmark cost: optimum {:.1}% -> worst-in-box {:.1}%  ({} evaluations)",
            perturbed.optimum_cost, perturbed.worst_cost, perturbed.evals_used
        );

        // Evaluate both configurations on the SPEC proxies.
        let base = outcome.untuned.clone();
        let tuned_rows = spec_errors(&outcome.tuned, &board, cfg.scale);
        let worst_platform = racesim_core::params::apply(&outcome.space, &perturbed.worst, &base);
        let worst_rows = spec_errors(&worst_platform, &board, cfg.scale);

        println!("\nSPEC CPI error, worst close-to-optimum configuration:");
        print!("{}", report::bar_chart(&worst_rows, 40, "%"));
        println!(
            "\naverage: tuned {:.1}%  ->  perturbed {:.1}%   {paper_note}",
            mean_of(&tuned_rows),
            mean_of(&worst_rows)
        );

        let rows: Vec<Vec<String>> = tuned_rows
            .iter()
            .zip(&worst_rows)
            .map(|((n, t), (_, w))| vec![n.clone(), format!("{t:.2}"), format!("{w:.2}")])
            .collect();
        let csv = results_dir().join(csv_name);
        report::write_csv(&csv, &["benchmark", "tuned_pct", "perturbed_pct"], &rows)
            .expect("write csv");
        println!("written: {}", csv.display());
    }
}

/// Directory where experiment CSVs land (`results/`, created on demand).
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results/");
    dir
}

/// Prints a titled section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Mean of labelled values.
pub fn mean_of(rows: &[(String, f64)]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|(_, v)| v).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        // Do not set the env vars: defaults apply.
        let cfg = ExperimentConfig::from_env();
        assert!(cfg.budget >= 1_000);
        assert!(cfg.threads >= 1);
        let s = cfg.validator_settings(CoreKind::InOrder, Revision::Fixed);
        assert_eq!(s.kind, CoreKind::InOrder);
        assert_eq!(s.tuner.budget, cfg.budget);
    }

    #[test]
    fn mean_of_labelled_rows() {
        assert_eq!(mean_of(&[]), 0.0);
        let rows = vec![("a".to_string(), 2.0), ("b".to_string(), 4.0)];
        assert!((mean_of(&rows) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn boards_match_core_kinds() {
        assert!(board_for(CoreKind::InOrder).name().contains("a53"));
        assert!(board_for(CoreKind::OutOfOrder).name().contains("a72"));
    }
}
