//! `racesim` — command-line interface to the hardware-validation toolkit.
//!
//! ```text
//! racesim list                              list all workloads
//! racesim simulate --platform a53 --workload MD [--scale 2048]
//! racesim measure  --board a53 --workload MD [--scale 2048]
//! racesim probe    --board a53              lmbench-style latency estimation
//! racesim config   --platform a72           dump a platform config file
//! racesim validate --core a53 [--budget N] [--scale N] [--out tuned.cfg]
//! racesim tune     --core a53 [--checkpoint F] [--resume F] [--faults PROFILE] [--timeout MS]
//! racesim lint     [--json] [--revision fixed|initial]
//! ```

use racesim_core::{
    analysis, latency, report, LazySuiteCost, Revision, Validator, ValidatorSettings,
};
use racesim_hw::{FaultPlan, FaultyBoard, HardwarePlatform, ReferenceBoard};
use racesim_kernels::{microbench_suite, probes, spec_suite, Scale, Workload};
use racesim_race::{RaceSettings, RacingTuner, TryCostFn, TunerSettings, Watchdog};
use racesim_sim::{config_text, Platform, Simulator};
use racesim_uarch::CoreKind;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
racesim — hardware-validated simulation toolkit

USAGE:
    racesim <COMMAND> [OPTIONS]

COMMANDS:
    list                          list every workload (micro-benchmarks, SPEC proxies, probes)
    simulate                      replay one workload through a simulated platform
    measure                       run one workload on a reference board (perf counters)
    probe                         estimate cache/memory latencies on a board (lmbench style)
    config                        print a platform configuration file
    validate                      run the full validation methodology and save the tuned model
    tune                          fault-tolerant tuning with checkpoint/resume and fault injection
    lint                          statically check platforms, parameter spaces and kernels
    help                          show this message

COMMON OPTIONS:
    --platform <a53|a72|FILE>     simulated platform preset or config file
    --board <a53|a72>             reference board
    --core <a53|a72>              core to validate
    --workload <NAME>             workload name (see `racesim list`)
    --scale <DIVISOR>             dynamic-instruction scale divisor (default 2048)
    --budget <N>                  racing evaluation budget (default 2000)
    --threads <N>                 evaluation threads (default: all)
    --out <FILE>                  where to write the tuned config (validate, tune)
    --revision <fixed|initial>    model revision to lint (default fixed)
    --json                        machine-readable lint output (stable schema)

TUNE OPTIONS:
    --seed <N>                    tuner RNG seed (default 0xBADCAB1E); runs are deterministic per seed
    --checkpoint <FILE>           write a resumable snapshot after every completed iteration
    --resume <FILE>               restore tuner state from a snapshot (missing file = fresh run)
    --max-iterations <N>          stop after N iterations in this process (for staged runs)
    --timeout <MS>                wall-clock watchdog per evaluation; a hang becomes a config fault
    --faults <none|transient|aggressive>
                                  inject deterministic board faults into the tune measurements
    --fault-seed <N>              seed of the fault plan (default 1)
";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["json"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn scale_of(flags: &HashMap<String, String>) -> Result<Scale, String> {
    match flags.get("scale") {
        None => Ok(Scale::divide_by(2048)),
        Some(v) => v
            .parse()
            .map(Scale::divide_by)
            .map_err(|_| format!("invalid --scale {v:?}")),
    }
}

fn board_of(flags: &HashMap<String, String>) -> Result<ReferenceBoard, String> {
    match flags.get("board").map(String::as_str) {
        Some("a53") | None => Ok(ReferenceBoard::firefly_a53()),
        Some("a72") => Ok(ReferenceBoard::firefly_a72()),
        Some(v) => Err(format!("unknown board {v:?} (use a53 or a72)")),
    }
}

fn platform_of(flags: &HashMap<String, String>) -> Result<Platform, String> {
    match flags.get("platform").map(String::as_str) {
        Some("a53") | None => Ok(Platform::a53_like()),
        Some("a72") => Ok(Platform::a72_like()),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            config_text::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        }
    }
}

fn all_workloads(scale: Scale) -> Vec<Workload> {
    let mut v = microbench_suite(scale);
    v.extend(spec_suite(scale));
    v.extend(probes::probe_ladder());
    v
}

fn find_workload(flags: &HashMap<String, String>, scale: Scale) -> Result<Workload, String> {
    let name = flags
        .get("workload")
        .ok_or_else(|| "missing --workload".to_string())?;
    all_workloads(scale)
        .into_iter()
        .find(|w| &w.name == name)
        .ok_or_else(|| format!("unknown workload {name:?} (see `racesim list`)"))
}

fn cmd_list(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let mut rows = Vec::new();
    for w in all_workloads(scale) {
        let trace = w.trace().map_err(|e| format!("{}: {e}", w.name))?;
        rows.push(vec![
            w.name.clone(),
            w.category.to_string(),
            trace.len().to_string(),
            if w.uninit_data { "yes" } else { "no" }.to_string(),
        ]);
    }
    print!(
        "{}",
        report::table(&["workload", "category", "insns @scale", "uninit"], &rows)
    );
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let platform = platform_of(flags)?;
    let w = find_workload(flags, scale)?;
    let trace = w.trace().map_err(|e| e.to_string())?;
    let stats = Simulator::new(platform.clone())
        .run(&trace)
        .map_err(|e| e.to_string())?;
    println!("platform:      {}", platform.name);
    println!("workload:      {} ({})", w.name, w.category);
    println!("instructions:  {}", stats.core.instructions);
    println!("cycles:        {}", stats.core.cycles);
    println!("CPI:           {:.4}", stats.cpi());
    println!("branch MPKI:   {:.2}", stats.core.branch_mpki());
    println!(
        "L1D misses:    {} ({:.2}% of accesses)",
        stats.mem.l1d.misses,
        100.0 * stats.mem.l1d.miss_rate()
    );
    println!("L2 misses:     {}", stats.mem.l2.misses);
    println!("DRAM accesses: {}", stats.mem.dram_accesses);
    Ok(())
}

fn cmd_measure(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let board = board_of(flags)?;
    let w = find_workload(flags, scale)?;
    let counters = board.measure(&w).map_err(|e| e.to_string())?;
    println!("board:         {}", board.name());
    println!("workload:      {}", w.name);
    println!("instructions:  {}", counters.instructions);
    println!("cycles:        {}", counters.cycles);
    println!("CPI:           {:.4}", counters.cpi());
    println!("branch misses: {}", counters.branch_misses);
    println!("L1D misses:    {}", counters.l1d_misses);
    println!("L2 misses:     {}", counters.l2_misses);
    Ok(())
}

fn cmd_probe(flags: &HashMap<String, String>) -> Result<(), String> {
    let board = board_of(flags)?;
    println!("probing {} (lat_mem_rd ladder)...", board.name());
    let est = latency::estimate_latencies(&board).map_err(|e| e.to_string())?;
    println!("estimated L1D load-to-use latency: {} cycles", est.l1d);
    println!("estimated L2 additional latency:   {} cycles", est.l2);
    println!("estimated DRAM additional latency: {} cycles", est.dram);
    Ok(())
}

fn cmd_config(flags: &HashMap<String, String>) -> Result<(), String> {
    let platform = platform_of(flags)?;
    print!("{}", config_text::to_text(&platform));
    Ok(())
}

fn cmd_validate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = match flags.get("core").map(String::as_str) {
        Some("a53") | None => CoreKind::InOrder,
        Some("a72") => CoreKind::OutOfOrder,
        Some(v) => return Err(format!("unknown core {v:?} (use a53 or a72)")),
    };
    let board = match kind {
        CoreKind::InOrder => ReferenceBoard::firefly_a53(),
        CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
    };
    let budget = flags
        .get("budget")
        .map(|v| v.parse().map_err(|_| format!("invalid --budget {v:?}")))
        .transpose()?
        .unwrap_or(2_000u64);
    let threads = flags
        .get("threads")
        .map(|v| v.parse().map_err(|_| format!("invalid --threads {v:?}")))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });
    let settings = ValidatorSettings {
        kind,
        revision: Revision::Fixed,
        scale: scale_of(flags)?,
        tuner: TunerSettings {
            budget,
            threads,
            ..TunerSettings::default()
        },
        metric: racesim_core::CostMetric::CpiError,
    };
    println!("validating the {kind} model against {} ...", board.name());
    let outcome = Validator::new(&board, settings)
        .run()
        .map_err(|e| e.to_string())?;
    println!(
        "mean CPI error: {:.1}% untuned -> {:.1}% tuned ({} evaluations)",
        outcome.untuned_mean_error(),
        outcome.tuned_mean_error(),
        outcome.tune.evals_used
    );
    let rep = analysis::analyse(&outcome.tuned_results);
    for c in &rep.categories {
        println!(
            "  {:<14} mean {:>5.1}%  worst {} ({:.1}%)",
            c.category.to_string(),
            c.mean_error,
            c.worst_bench,
            c.worst_error
        );
    }
    for r in &rep.recommendations {
        println!("  fix: {r}");
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, config_text::to_text(&outcome.tuned))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("tuned configuration written to {path}");
    }
    Ok(())
}

fn core_of(flags: &HashMap<String, String>) -> Result<CoreKind, String> {
    match flags.get("core").map(String::as_str) {
        Some("a53") | None => Ok(CoreKind::InOrder),
        Some("a72") => Ok(CoreKind::OutOfOrder),
        Some(v) => Err(format!("unknown core {v:?} (use a53 or a72)")),
    }
}

fn parse_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    flags
        .get(key)
        .map(|v| v.parse().map_err(|_| format!("invalid --{key} {v:?}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

fn fault_plan_of(flags: &HashMap<String, String>) -> Result<Option<FaultPlan>, String> {
    let seed = parse_u64(flags, "fault-seed", 1)?;
    match flags.get("faults").map(String::as_str) {
        None | Some("none") => Ok(None),
        Some("transient") => Ok(Some(FaultPlan::transient(seed, 0.10))),
        Some("aggressive") => Ok(Some(FaultPlan::aggressive(seed))),
        Some(v) => Err(format!(
            "unknown fault profile {v:?} (use none, transient or aggressive)"
        )),
    }
}

/// `racesim tune`: the fault-tolerant tuning path. Measurements happen
/// lazily inside the race (so board faults are retried, quarantined or
/// charged to the offending configuration instead of killing the run),
/// state snapshots land in `--checkpoint` after every iteration, and
/// `--resume` continues a run that died or was staged deliberately.
/// Latency probes run on the clean board; the `--faults` plan targets the
/// long campaign, which is where real boards fall over.
fn cmd_tune(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = core_of(flags)?;
    let board = match kind {
        CoreKind::InOrder => ReferenceBoard::firefly_a53(),
        CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
    };
    let settings = ValidatorSettings {
        kind,
        revision: Revision::Fixed,
        scale: scale_of(flags)?,
        tuner: TunerSettings {
            budget: parse_u64(flags, "budget", 2_000)?,
            seed: parse_u64(flags, "seed", TunerSettings::default().seed)?,
            threads: match parse_u64(flags, "threads", 0)? {
                0 => std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4),
                n => n as usize,
            },
            max_iterations: flags
                .get("max-iterations")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("invalid --max-iterations {v:?}"))
                })
                .transpose()?,
            ..TunerSettings::default()
        },
        metric: racesim_core::CostMetric::CpiError,
    };
    let v = Validator::new(&board, settings.clone());
    let base = v.base_platform().map_err(|e| e.to_string())?;
    let space = racesim_core::params::build_space(kind, settings.revision);
    let decoder = v.decoder();
    let suite = v.suite();

    let tune_board: Arc<dyn HardwarePlatform> = match fault_plan_of(flags)? {
        Some(plan) => {
            println!(
                "injecting faults: {:.0}% transient, {:.0}% dropped, {:.0}% spiked, {:.0}% hung",
                100.0 * plan.transient_rate,
                100.0 * plan.drop_rate,
                100.0 * plan.spike_rate,
                100.0 * plan.hang_rate
            );
            Arc::new(FaultyBoard::new(
                match kind {
                    CoreKind::InOrder => ReferenceBoard::firefly_a53(),
                    CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
                },
                plan,
            ))
        }
        None => Arc::new(match kind {
            CoreKind::InOrder => ReferenceBoard::firefly_a53(),
            CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
        }),
    };
    let cost = Arc::new(
        LazySuiteCost::new(tune_board, &suite, base.clone(), decoder, settings.metric)
            .map_err(|e| e.to_string())?,
    );
    let n_instances = cost.len();

    let mut tuner = RacingTuner::new(settings.tuner);
    if let Some(path) = flags.get("checkpoint") {
        tuner = tuner.with_checkpoint(path);
        println!("checkpointing to {path} after every iteration");
    }
    if let Some(path) = flags.get("resume") {
        tuner = tuner.with_resume(path);
    }

    println!(
        "tuning the {kind} model over {n_instances} benchmarks (budget {}, seed {:#x}) ...",
        settings.tuner.budget, settings.tuner.seed
    );
    let result = match flags.get("timeout") {
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| format!("invalid --timeout {v:?}"))?;
            let dog = Watchdog::new(
                Arc::clone(&cost) as Arc<dyn TryCostFn + Send + Sync>,
                Duration::from_millis(ms),
            );
            tuner.try_tune(&space, &dog, n_instances)
        }
        None => tuner.try_tune(&space, &*cost, n_instances),
    };

    for w in &result.warnings {
        eprintln!("warning: {w}");
    }
    if result.aborted {
        println!("run aborted before completion (state saved if --checkpoint was given)");
    }
    println!(
        "best cost: {:.2}% mean CPI error ({} evaluations, {} retries, {} configurations failed)",
        result.best_cost, result.evals_used, result.retries, result.failed_configs
    );
    for (instance, reason) in &result.quarantined {
        println!(
            "quarantined instance {instance} ({}): {reason}",
            cost.name(*instance)
        );
    }
    if let Some(path) = flags.get("out") {
        let tuned = racesim_core::params::apply(&space, &result.best, &base);
        std::fs::write(path, config_text::to_text(&tuned))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("tuned configuration written to {path}");
    }
    Ok(())
}

/// `racesim lint`: the static-analysis gate. Checks the shipped platform
/// presets, the tuning parameter spaces for both cores, and every
/// micro-benchmark kernel — all before a single cycle is simulated.
/// Exits non-zero when any Error-severity diagnostic is found.
fn cmd_lint(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let revision = match flags.get("revision").map(String::as_str) {
        Some("fixed") | None => Revision::Fixed,
        Some("initial") => Revision::Initial,
        Some(v) => return Err(format!("unknown revision {v:?} (use fixed or initial)")),
    };
    let scale = scale_of(flags)?;
    let mut report = racesim_analyzer::Report::new();

    // 1. Platform invariants on the shipped presets (or --platform FILE).
    match flags.get("platform") {
        Some(_) => report.extend(racesim_analyzer::platform::check(&platform_of(flags)?)),
        None => {
            report.extend(racesim_analyzer::platform::check(&Platform::a53_like()));
            report.extend(racesim_analyzer::platform::check(&Platform::a72_like()));
        }
    }

    // 2. Parameter-space lints for both cores.
    for (label, kind, base) in [
        ("a53", CoreKind::InOrder, Platform::a53_like()),
        ("a72", CoreKind::OutOfOrder, Platform::a72_like()),
    ] {
        let space = racesim_core::params::build_space(kind, revision);
        let anchors = [
            ("default", space.default_configuration()),
            ("best-guess", racesim_core::params::best_guess(&space, kind)),
        ];
        let apply =
            |cfg: &racesim_race::Configuration| racesim_core::params::apply(&space, cfg, &base);
        let mut diags = racesim_analyzer::param::check_space(&space);
        diags.extend(racesim_analyzer::param::check_model(
            &space, &anchors, &apply,
        ));
        for mut d in diags {
            d.context
                .insert(0, ("space".to_string(), label.to_string()));
            report.push(d);
        }
    }

    // 3. Kernel static analysis over the whole micro-benchmark suite.
    let suite = match revision {
        Revision::Initial => microbench_suite(scale),
        Revision::Fixed => racesim_kernels::microbench_suite_initialized(scale),
    };
    for w in &suite {
        for mut d in racesim_analyzer::kernel::check(&w.program) {
            d.context.insert(0, ("kernel".to_string(), w.name.clone()));
            report.push(d);
        }
    }

    // 4. Measurement noise vs the race's statistical resolution, per
    //    board, at the race settings a default tune would use.
    let race = RaceSettings::default();
    for (label, board) in [
        ("a53", ReferenceBoard::firefly_a53()),
        ("a72", ReferenceBoard::firefly_a72()),
    ] {
        report.extend(racesim_analyzer::effects::check(
            label,
            board.effects(),
            &race,
        ));
    }

    report.sort();
    if flags.get("json").is_some() {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list(&flags),
        "simulate" => cmd_simulate(&flags),
        "measure" => cmd_measure(&flags),
        "probe" => cmd_probe(&flags),
        "config" => cmd_config(&flags),
        "validate" => cmd_validate(&flags),
        "tune" => cmd_tune(&flags),
        "lint" => {
            return match cmd_lint(&flags) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--scale", "1024", "--workload", "MD"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("scale").unwrap(), "1024");
        assert_eq!(f.get("workload").unwrap(), "MD");
        assert!(parse_flags(&["--dangling".to_string()]).is_err());
        assert!(parse_flags(&["positional".to_string()]).is_err());
    }

    #[test]
    fn workload_lookup_and_platform_selection() {
        let mut flags = HashMap::new();
        flags.insert("workload".to_string(), "MD".to_string());
        let w = find_workload(&flags, Scale::TINY).unwrap();
        assert_eq!(w.name, "MD");
        flags.insert("workload".to_string(), "nope".to_string());
        assert!(find_workload(&flags, Scale::TINY).is_err());

        let mut flags = HashMap::new();
        flags.insert("platform".to_string(), "a72".to_string());
        assert_eq!(platform_of(&flags).unwrap().core.kind, CoreKind::OutOfOrder);
    }

    #[test]
    fn config_files_roundtrip_through_the_cli_path() {
        let dir = std::env::temp_dir().join("racesim_cli_test.cfg");
        std::fs::write(&dir, config_text::to_text(&Platform::a72_like())).unwrap();
        let mut flags = HashMap::new();
        flags.insert("platform".to_string(), dir.display().to_string());
        let p = platform_of(&flags).unwrap();
        assert_eq!(p, Platform::a72_like());
        let _ = std::fs::remove_file(&dir);
    }
}
