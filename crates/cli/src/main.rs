//! `racesim` — command-line interface to the hardware-validation toolkit.
//!
//! ```text
//! racesim list                              list all workloads
//! racesim simulate --platform a53 --workload MD [--scale 2048]
//! racesim measure  --board a53 --workload MD [--scale 2048]
//! racesim probe    --board a53              lmbench-style latency estimation
//! racesim config   --platform a72           dump a platform config file
//! racesim validate --core a53 [--budget N] [--scale N] [--out tuned.cfg]
//! racesim tune     --core a53 [--checkpoint F] [--resume F] [--faults PROFILE] [--timeout MS] [--telemetry F]
//!                  [--workers N] [--worker-cmd CMD]
//! racesim worker                            serve framed evaluation requests on stdin/stdout
//! racesim report   <JOURNAL> [--json]
//! racesim replay   <JOURNAL> [--json]
//! racesim diff     [--core a53] [--revision-a REV] [--revision-b REV] [--tolerance PCT]
//! racesim profile  [--suite micro|spec|all] [--workload NAME] [--json] [--folded FILE]
//! racesim bounds   [--core a53] [--workload NAME] [--json]
//! racesim lint     [--json] [--suite] [--revision fixed|initial] [--deny-warnings]
//! ```

use racesim_core::{
    analysis, diff, latency, report, CampaignSpec, Revision, Validator, ValidatorSettings,
};
use racesim_hw::{FaultPlan, HardwarePlatform, ReferenceBoard};
use racesim_kernels::{microbench_suite, probes, spec_suite, Scale, Workload};
use racesim_race::replay::{compare, RecordedCampaign, Verdict};
use racesim_race::{RaceSettings, RacingTuner, TryCostFn, TunerSettings, Value, Watchdog};
use racesim_sim::{config_text, Platform, Simulator};
use racesim_telemetry::{parse_journal, read_journal_lossy, Event, JournalEntry, Telemetry};
use racesim_uarch::CoreKind;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
racesim — hardware-validated simulation toolkit

USAGE:
    racesim <COMMAND> [OPTIONS]

COMMANDS:
    list                          list every workload (micro-benchmarks, SPEC proxies, probes)
    simulate                      replay one workload through a simulated platform
    measure                       run one workload on a reference board (perf counters)
    probe                         estimate cache/memory latencies on a board (lmbench style)
    config                        print a platform configuration file
    validate                      run the full validation methodology and save the tuned model
    tune                          fault-tolerant tuning with checkpoint/resume and fault injection
    worker                        serve framed evaluation requests over stdin/stdout (spawned by
                                  `tune --workers`; campaigns stay bit-identical to sequential)
    report <JOURNAL>              summarize a telemetry journal written by `tune --telemetry`
    replay <JOURNAL>              re-run the campaign a journal records and verify, bit for bit,
                                  that the replay reproduces the recorded outcome
    diff                          per-kernel CPI comparison between two model revisions,
                                  platform configs, or saved baselines (the regression gate)
    profile                       self-profile the simulator: per-kernel phase tree of where
                                  wall time goes (fetch/decode/execute, memory levels, stalls)
    bounds                        static CPI intervals of every kernel on a platform preset —
                                  the intervals `tune --static-bounds` eliminates against
    lint                          statically check platforms, parameter spaces and kernels
    help                          show this message

COMMON OPTIONS:
    --platform <a53|a72|FILE>     simulated platform preset or config file
    --board <a53|a72>             reference board
    --core <a53|a72>              core to validate
    --workload <NAME>             workload name (see `racesim list`)
    --scale <DIVISOR>             dynamic-instruction scale divisor (default 2048)
    --budget <N>                  racing evaluation budget (default 2000)
    --threads <N>                 evaluation threads (default: all)
    --out <FILE>                  where to write the tuned config (validate, tune)
    --revision <fixed|initial>    model revision to lint (default fixed)
    --json                        machine-readable lint output (stable schema)

LINT OPTIONS:
    --suite                       whole-campaign analysis: kernel IR lints (RA4xx),
                                  the parameter-coverage matrix and suite-level
                                  coverage lints (RA41x), the determinism
                                  audit (RA5xx), and the static CPI bounds
                                  lints (RA6xx)
    --deny-warnings               exit non-zero on warnings too, not just errors
                                  (for CI gates)

BOUNDS OPTIONS:
    --core <a53|a72>              platform preset the intervals are computed on (default a53)
    --workload <NAME>             restrict to one kernel
    --json                        machine-readable intervals (stable schema)

TUNE OPTIONS:
    --seed <N>                    tuner RNG seed (default 0xBADCAB1E); runs are deterministic per seed
    --checkpoint <FILE>           write a resumable snapshot after every completed iteration
    --resume <FILE>               restore tuner state from a snapshot (missing file = fresh run)
    --max-iterations <N>          stop after N iterations in this process (for staged runs)
    --timeout <MS>                wall-clock watchdog per evaluation; a hang becomes a config fault
    --faults <none|transient|aggressive>
                                  inject deterministic board faults into the tune measurements
    --fault-seed <N>              seed of the fault plan (default 1)
    --static-bounds               eliminate configurations whose static CPI-bound cost
                                  floor exceeds the incumbent elite, before simulating
                                  them (journaled; replay verifies the eliminations)
    --telemetry <FILE>            journal campaign events and metrics as JSONL (appends when
                                  resuming an existing journal; see `racesim report`)
    --workers <N>                 shard evaluations over N spawned worker processes; results
                                  are reduced in canonical order, so checkpoints, elimination
                                  order and the journal digest are bit-identical to --workers 0
    --worker-cmd <CMD>            command (split on whitespace) to spawn one worker
                                  (default: this binary with the `worker` subcommand)
    --worker-timeout <MS>         coordinator-side deadline per dispatched evaluation; a worker
                                  that blows it is killed and its task re-dispatched (default 120000)

WORKER OPTIONS:
    --exit-after <N>              die (close the stream, no reply) on the Nth evaluation request —
                                  deterministic fault injection for the acceptance tests
    --only-worker <K>             apply --exit-after only when the coordinator assigns slot K

REPORT OPTIONS:
    --json                        machine-readable campaign summary (stable schema)

REPLAY OPTIONS:
    --json                        machine-readable divergence report (stable schema)
                                  exit code: 0 = match or verified prefix, 1 = diverged

DIFF OPTIONS:
    --core <a53|a72>              core whose suite is captured (default a53)
    --revision-a <fixed|initial>  model revision of side A (default fixed)
    --revision-b <fixed|initial>  model revision of side B (default fixed)
    --a <FILE>                    side A from a file instead: a saved CPI baseline
                                  (see --save) or a platform config
    --b <FILE>                    side B from a file instead
    --tolerance <PCT>             allowed per-kernel CPI divergence in percent
                                  (default 0 = bit-identical CPI required)
    --save <FILE>                 also write side B as a baseline file for later diffs
    --json                        machine-readable diff (stable schema)
                                  exit code: 0 = within tolerance, 1 = diverged

PROFILE OPTIONS:
    --suite <micro|spec|all>      which kernel suite to profile (default micro)
    --workload <NAME>             profile only this workload
    --json                        machine-readable phase tree (stable schema)
    --folded <FILE>               also write a folded-stack file (flamegraph.pl input)
";

/// Flags that take no value. `--suite` is boolean only for `lint`; for
/// `profile` it takes a suite name.
const BOOL_FLAGS: &[&str] = &["json", "static-bounds"];
const LINT_BOOL_FLAGS: &[&str] = &["json", "suite", "deny-warnings"];

fn parse_flags(args: &[String], bool_flags: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        if bool_flags.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn scale_of(flags: &HashMap<String, String>) -> Result<Scale, String> {
    match flags.get("scale") {
        None => Ok(Scale::divide_by(2048)),
        Some(v) => v
            .parse()
            .map(Scale::divide_by)
            .map_err(|_| format!("invalid --scale {v:?}")),
    }
}

fn board_of(flags: &HashMap<String, String>) -> Result<ReferenceBoard, String> {
    match flags.get("board").map(String::as_str) {
        Some("a53") | None => Ok(ReferenceBoard::firefly_a53()),
        Some("a72") => Ok(ReferenceBoard::firefly_a72()),
        Some(v) => Err(format!("unknown board {v:?} (use a53 or a72)")),
    }
}

fn platform_of(flags: &HashMap<String, String>) -> Result<Platform, String> {
    match flags.get("platform").map(String::as_str) {
        Some("a53") | None => Ok(Platform::a53_like()),
        Some("a72") => Ok(Platform::a72_like()),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            config_text::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        }
    }
}

fn all_workloads(scale: Scale) -> Vec<Workload> {
    let mut v = microbench_suite(scale);
    v.extend(spec_suite(scale));
    v.extend(probes::probe_ladder());
    v
}

fn find_workload(flags: &HashMap<String, String>, scale: Scale) -> Result<Workload, String> {
    let name = flags
        .get("workload")
        .ok_or_else(|| "missing --workload".to_string())?;
    all_workloads(scale)
        .into_iter()
        .find(|w| &w.name == name)
        .ok_or_else(|| format!("unknown workload {name:?} (see `racesim list`)"))
}

fn cmd_list(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let mut rows = Vec::new();
    for w in all_workloads(scale) {
        let trace = w.trace().map_err(|e| format!("{}: {e}", w.name))?;
        rows.push(vec![
            w.name.clone(),
            w.category.to_string(),
            trace.len().to_string(),
            if w.uninit_data { "yes" } else { "no" }.to_string(),
        ]);
    }
    print!(
        "{}",
        report::table(&["workload", "category", "insns @scale", "uninit"], &rows)
    );
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let platform = platform_of(flags)?;
    let w = find_workload(flags, scale)?;
    let trace = w.trace().map_err(|e| e.to_string())?;
    let stats = Simulator::new(platform.clone())
        .run(&trace)
        .map_err(|e| e.to_string())?;
    println!("platform:      {}", platform.name);
    println!("workload:      {} ({})", w.name, w.category);
    println!("instructions:  {}", stats.core.instructions);
    println!("cycles:        {}", stats.core.cycles);
    println!("CPI:           {:.4}", stats.cpi());
    println!("branch MPKI:   {:.2}", stats.core.branch_mpki());
    println!(
        "L1D misses:    {} ({:.2}% of accesses)",
        stats.mem.l1d.misses,
        100.0 * stats.mem.l1d.miss_rate()
    );
    println!("L2 misses:     {}", stats.mem.l2.misses);
    println!("DRAM accesses: {}", stats.mem.dram_accesses);
    Ok(())
}

fn cmd_measure(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let board = board_of(flags)?;
    let w = find_workload(flags, scale)?;
    let counters = board.measure(&w).map_err(|e| e.to_string())?;
    println!("board:         {}", board.name());
    println!("workload:      {}", w.name);
    println!("instructions:  {}", counters.instructions);
    println!("cycles:        {}", counters.cycles);
    println!("CPI:           {:.4}", counters.cpi());
    println!("branch misses: {}", counters.branch_misses);
    println!("L1D misses:    {}", counters.l1d_misses);
    println!("L2 misses:     {}", counters.l2_misses);
    Ok(())
}

fn cmd_probe(flags: &HashMap<String, String>) -> Result<(), String> {
    let board = board_of(flags)?;
    println!("probing {} (lat_mem_rd ladder)...", board.name());
    let est = latency::estimate_latencies(&board).map_err(|e| e.to_string())?;
    println!("estimated L1D load-to-use latency: {} cycles", est.l1d);
    println!("estimated L2 additional latency:   {} cycles", est.l2);
    println!("estimated DRAM additional latency: {} cycles", est.dram);
    Ok(())
}

fn cmd_config(flags: &HashMap<String, String>) -> Result<(), String> {
    let platform = platform_of(flags)?;
    print!("{}", config_text::to_text(&platform));
    Ok(())
}

fn cmd_validate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = match flags.get("core").map(String::as_str) {
        Some("a53") | None => CoreKind::InOrder,
        Some("a72") => CoreKind::OutOfOrder,
        Some(v) => return Err(format!("unknown core {v:?} (use a53 or a72)")),
    };
    let board = match kind {
        CoreKind::InOrder => ReferenceBoard::firefly_a53(),
        CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
    };
    let budget = flags
        .get("budget")
        .map(|v| v.parse().map_err(|_| format!("invalid --budget {v:?}")))
        .transpose()?
        .unwrap_or(2_000u64);
    let threads = flags
        .get("threads")
        .map(|v| v.parse().map_err(|_| format!("invalid --threads {v:?}")))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });
    let settings = ValidatorSettings {
        kind,
        revision: Revision::Fixed,
        scale: scale_of(flags)?,
        tuner: TunerSettings {
            budget,
            threads,
            ..TunerSettings::default()
        },
        metric: racesim_core::CostMetric::CpiError,
    };
    println!("validating the {kind} model against {} ...", board.name());
    let outcome = Validator::new(&board, settings)
        .run()
        .map_err(|e| e.to_string())?;
    println!(
        "mean CPI error: {:.1}% untuned -> {:.1}% tuned ({} evaluations)",
        outcome.untuned_mean_error(),
        outcome.tuned_mean_error(),
        outcome.tune.evals_used
    );
    let rep = analysis::analyse(&outcome.tuned_results);
    for c in &rep.categories {
        println!(
            "  {:<14} mean {:>5.1}%  worst {} ({:.1}%)",
            c.category.to_string(),
            c.mean_error,
            c.worst_bench,
            c.worst_error
        );
    }
    for r in &rep.recommendations {
        println!("  fix: {r}");
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(path, config_text::to_text(&outcome.tuned))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("tuned configuration written to {path}");
    }
    Ok(())
}

/// `racesim worker`: serve framed evaluation requests on stdin/stdout.
/// Spawned by `tune --workers`; diagnostics go to stderr so the frame
/// stream stays clean. The `--exit-after`/`--only-worker` hooks inject
/// deterministic worker deaths for the fault-tolerance tests.
fn cmd_worker(flags: &HashMap<String, String>) -> Result<(), String> {
    let opts = racesim_dist::WorkerOptions {
        exit_after: flags
            .get("exit-after")
            .map(|v| v.parse().map_err(|_| format!("invalid --exit-after {v:?}")))
            .transpose()?,
        only_worker: flags
            .get("only-worker")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid --only-worker {v:?}"))
            })
            .transpose()?,
    };
    match racesim_dist::serve_stdio(&opts) {
        Ok(racesim_dist::ServeEnd::Killed) => {
            eprintln!("worker: injected death, exiting without replying");
            Ok(())
        }
        Ok(_) => Ok(()),
        Err(e) => Err(format!("worker wire failure: {e}")),
    }
}

fn core_of(flags: &HashMap<String, String>) -> Result<CoreKind, String> {
    match flags.get("core").map(String::as_str) {
        Some("a53") | None => Ok(CoreKind::InOrder),
        Some("a72") => Ok(CoreKind::OutOfOrder),
        Some(v) => Err(format!("unknown core {v:?} (use a53 or a72)")),
    }
}

fn parse_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    flags
        .get(key)
        .map(|v| v.parse().map_err(|_| format!("invalid --{key} {v:?}")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

fn fault_plan_of(flags: &HashMap<String, String>) -> Result<Option<FaultPlan>, String> {
    let seed = parse_u64(flags, "fault-seed", 1)?;
    let profile = flags.get("faults").map_or("none", String::as_str);
    FaultPlan::from_profile(profile, seed)
}

/// Flushes a telemetry journal when dropped, so every exit path of
/// [`cmd_tune`] — including `?` early returns and watchdog-induced
/// failures — leaves a fully written, parseable JSONL file behind.
struct FlushGuard(Telemetry);

impl Drop for FlushGuard {
    fn drop(&mut self) {
        self.0.flush();
    }
}

/// `racesim tune`: the fault-tolerant tuning path. Measurements happen
/// lazily inside the race (so board faults are retried, quarantined or
/// charged to the offending configuration instead of killing the run),
/// state snapshots land in `--checkpoint` after every iteration, and
/// `--resume` continues a run that died or was staged deliberately.
/// Latency probes run on the clean board; the `--faults` plan targets the
/// long campaign, which is where real boards fall over.
fn cmd_tune(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut spec = CampaignSpec {
        kind: core_of(flags)?,
        scale: scale_of(flags)?,
        budget: parse_u64(flags, "budget", 2_000)?,
        seed: parse_u64(flags, "seed", TunerSettings::default().seed)?,
        threads: match parse_u64(flags, "threads", 0)? {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            n => n as usize,
        },
        workers: parse_u64(flags, "workers", 0)? as usize,
        max_iterations: flags
            .get("max-iterations")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid --max-iterations {v:?}"))
            })
            .transpose()?,
        timeout_ms: flags
            .get("timeout")
            .map(|v| v.parse().map_err(|_| format!("invalid --timeout {v:?}")))
            .transpose()?,
        fault_profile: flags
            .get("faults")
            .cloned()
            .unwrap_or_else(|| "none".to_string()),
        fault_seed: parse_u64(flags, "fault-seed", 1)?,
        frozen: Vec::new(),
        static_bounds: flags.contains_key("static-bounds"),
    };

    // One telemetry handle threads through the whole stack: tuner, cost
    // function, board and (per evaluation) simulators all share it. When
    // resuming into an existing journal, append — the merged file stays
    // one well-formed campaign record.
    let telemetry = match flags.get("telemetry") {
        Some(path) => {
            let p = PathBuf::from(path);
            let append = flags.contains_key("resume") && p.exists();
            let t = Telemetry::to_file(&p, append)
                .map_err(|e| format!("cannot open journal {path}: {e}"))?;
            println!(
                "journaling telemetry to {path}{}",
                if append { " (appending)" } else { "" }
            );
            t
        }
        None => Telemetry::disabled(),
    };
    let _flush = FlushGuard(telemetry.clone());

    if let Some(plan) = fault_plan_of(flags)? {
        println!(
            "injecting faults: {:.0}% transient, {:.0}% dropped, {:.0}% spiked, {:.0}% hung",
            100.0 * plan.transient_rate,
            100.0 * plan.drop_rate,
            100.0 * plan.spike_rate,
            100.0 * plan.hang_rate
        );
    }
    let stack = spec.build_stack(&telemetry)?;
    let n_instances = stack.cost.len();

    let mut tuner = RacingTuner::new(spec.tuner_settings()).with_telemetry(telemetry.clone());

    if let Some(b) = &stack.bounds {
        tuner = tuner.with_static_bounds(Arc::clone(b) as _);
        println!(
            "static CPI bounds active over {} kernels: dominated configurations \
             are eliminated before simulation",
            b.kernels().len()
        );
    }

    // Coverage-based pruning: a dimension no benchmark in the suite can
    // statically observe cannot move the cost, so pin it to its default
    // before any budget is spent. The dimension stays in the space (the
    // model applier reads every parameter and checkpoint fingerprints
    // must stay valid) — the sampler just never varies it.
    let profiles: Vec<_> = stack
        .suite
        .iter()
        .map(|w| racesim_analyzer::ir::profile(&w.name, &w.program))
        .collect();
    let matrix =
        racesim_analyzer::coverage::CoverageMatrix::build(&stack.space, &profiles, &stack.base);
    let defaults = stack.space.default_configuration();
    let frozen: Vec<(usize, Value)> = matrix
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| p.count() == 0)
        .map(|(i, p)| {
            println!(
                "freezing `{}` at its default: no benchmark observes it (needs {})",
                p.name,
                p.requirement.describe()
            );
            (i, defaults.value(i))
        })
        .collect();
    spec.set_frozen(&stack.space, &frozen);
    if !frozen.is_empty() {
        tuner = tuner.with_frozen(frozen);
    }

    // Record the campaign's deterministic inputs so `racesim replay` can
    // rebuild the exact stack from the journal alone. Every segment
    // (fresh or resumed) re-records them; the first occurrence wins on
    // read, so a resume with drifted flags cannot silently rewrite them.
    telemetry.emit(spec.config_event());
    for ev in spec.frozen_events() {
        telemetry.emit(ev);
    }

    if let Some(path) = flags.get("checkpoint") {
        tuner = tuner.with_checkpoint(path);
        println!("checkpointing to {path} after every iteration");
    }
    if let Some(path) = flags.get("resume") {
        tuner = tuner.with_resume(path);
    }

    // Distributed dispatch: shard each iteration's evaluations over a
    // pool of spawned workers. Outcomes are reduced in canonical config
    // order, so everything downstream — eliminations, checkpoints, the
    // journal digest — is bit-identical to the in-process paths.
    if spec.workers > 0 {
        let argv: Vec<String> = match flags.get("worker-cmd") {
            Some(cmd) => {
                let argv: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
                if argv.is_empty() {
                    return Err("--worker-cmd must name a program".to_string());
                }
                argv
            }
            None => {
                let exe = std::env::current_exe()
                    .map_err(|e| format!("cannot locate this binary for worker spawning: {e}"))?;
                vec![exe.display().to_string(), "worker".to_string()]
            }
        };
        let init = racesim_dist::InitSpec {
            core: spec.core_name().to_string(),
            scale: spec.scale.divisor(),
            faults: spec.fault_profile.clone(),
            fault_seed: spec.fault_seed,
            timeout_ms: spec.timeout_ms.unwrap_or(0),
            worker: 0,
            static_bounds: spec.static_bounds,
        };
        let mut pool_opts = racesim_dist::PoolOptions::new(spec.workers, init);
        pool_opts.request_timeout =
            Duration::from_millis(parse_u64(flags, "worker-timeout", 120_000)?);
        let fallback: Arc<dyn TryCostFn + Send + Sync> = match spec.timeout_ms {
            Some(ms) => Arc::new(Watchdog::new(
                Arc::clone(&stack.cost) as Arc<dyn TryCostFn + Send + Sync>,
                Duration::from_millis(ms),
            )),
            None => Arc::clone(&stack.cost) as Arc<dyn TryCostFn + Send + Sync>,
        };
        let pool = racesim_dist::WorkerPool::new(
            Box::new(racesim_dist::ProcessLauncher::new(argv)),
            pool_opts,
            fallback,
            telemetry.clone(),
        );
        tuner = tuner.with_dispatch(Arc::new(pool));
        println!(
            "dispatching evaluations to {} worker process(es)",
            spec.workers
        );
    }

    println!(
        "tuning the {} model over {n_instances} benchmarks (budget {}, seed {:#x}) ...",
        spec.kind, spec.budget, spec.seed
    );
    let result = match spec.timeout_ms {
        Some(ms) => {
            let dog = Watchdog::new(
                Arc::clone(&stack.cost) as Arc<dyn TryCostFn + Send + Sync>,
                Duration::from_millis(ms),
            );
            tuner.try_tune(&stack.space, &dog, n_instances)
        }
        None => tuner.try_tune(&stack.space, &*stack.cost, n_instances),
    };

    for w in &result.warnings {
        eprintln!("warning: {w}");
    }
    if result.aborted {
        println!("run aborted before completion (state saved if --checkpoint was given)");
    }
    println!(
        "best cost: {:.2}% mean CPI error ({} evaluations, {} retries, {} configurations failed)",
        result.best_cost, result.evals_used, result.retries, result.failed_configs
    );
    if result.static_eliminated > 0 {
        println!(
            "static bounds eliminated {} configuration(s) without simulation",
            result.static_eliminated
        );
    }
    for (instance, reason) in &result.quarantined {
        println!(
            "quarantined instance {instance} ({}): {reason}",
            stack.cost.name(*instance)
        );
    }
    if let Some(path) = flags.get("out") {
        let tuned = racesim_core::params::apply(&stack.space, &result.best, &stack.base);
        std::fs::write(path, config_text::to_text(&tuned))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("tuned configuration written to {path}");
    }
    telemetry.flush();
    if telemetry.io_errors() > 0 {
        eprintln!(
            "warning: {} journal write(s) failed; the telemetry file is incomplete",
            telemetry.io_errors()
        );
    }
    Ok(())
}

/// Everything `racesim report` shows, digested from one journal. A
/// journal may span several process segments (checkpoint → kill →
/// resume): campaign totals come from the **last** `campaign_end`
/// (those are cumulative across resumes), counters are summed across
/// segments (each process restarts them at zero), and gauges /
/// histograms keep the final segment's values.
#[derive(Debug, Default)]
struct CampaignSummary {
    segments: usize,
    resumes: usize,
    /// core, scale divisor, fault profile, fault seed — from the first
    /// `campaign_config` (journals predating replay support have none).
    config: Option<(String, u64, String, u64)>,
    /// Dimensions pinned before sampling, as (param, value code).
    frozen: Vec<(String, String)>,
    /// seed, budget, instances, params — from the first `campaign_start`.
    start: Option<(u64, usize, usize, usize)>,
    /// best_cost, evals, retries, failed, pruned, aborted — last `campaign_end`.
    end: Option<(f64, usize, usize, usize, usize, bool)>,
    /// Wall time summed over every segment.
    wall_us: u64,
    /// iteration → configs entering the race (last occurrence wins: a
    /// killed partial iteration is redone by the resumed segment).
    iter_configs: BTreeMap<usize, usize>,
    /// iteration → (survivors, best cost, evals, blocks, micros).
    iterations: BTreeMap<usize, (usize, f64, usize, usize, u64)>,
    /// workload → (count, cost sum, wall-time sum).
    evals: BTreeMap<String, (u64, f64, u64)>,
    meas_ok: u64,
    meas_failed: u64,
    faults: BTreeMap<String, u64>,
    /// (kind, after_blocks, config) in journal order.
    eliminations: Vec<(String, usize, String)>,
    quarantines: Vec<(String, String)>,
    /// Worker processes spawned (including respawns after failures).
    worker_spawns: u64,
    worker_failures: Vec<(usize, String)>,
    /// worker slot → failure count at quarantine time.
    worker_quarantines: Vec<(usize, u64)>,
    checkpoints: u64,
    /// event name → number of journal entries of that kind.
    events: BTreeMap<String, u64>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    /// name → (count, sum, p50, p90, p99, max).
    histograms: BTreeMap<String, (u64, u64, u64, u64, u64, u64)>,
}

impl CampaignSummary {
    fn digest(entries: &[JournalEntry]) -> CampaignSummary {
        let mut s = CampaignSummary::default();
        for e in entries {
            *s.events.entry(e.event.name().to_string()).or_default() += 1;
            match &e.event {
                Event::CampaignStart {
                    seed,
                    budget,
                    n_instances,
                    n_params,
                } => {
                    s.segments += 1;
                    if s.start.is_none() {
                        s.start = Some((*seed, *budget, *n_instances, *n_params));
                    }
                }
                Event::CampaignConfig {
                    core,
                    scale,
                    faults,
                    fault_seed,
                    ..
                } => {
                    if s.config.is_none() {
                        s.config = Some((core.clone(), *scale, faults.clone(), *fault_seed));
                    }
                }
                Event::Frozen { param, code } => {
                    if !s.frozen.iter().any(|(p, _)| p == param) {
                        s.frozen.push((param.clone(), code.clone()));
                    }
                }
                Event::Resume { .. } => s.resumes += 1,
                Event::IterationStart { iteration, configs } => {
                    s.iter_configs.insert(*iteration, *configs);
                }
                Event::IterationEnd {
                    iteration,
                    survivors,
                    best_cost,
                    evals,
                    blocks,
                    micros,
                } => {
                    s.iterations.insert(
                        *iteration,
                        (*survivors, *best_cost, *evals, *blocks, *micros),
                    );
                }
                Event::Evaluation {
                    workload,
                    micros,
                    cost,
                } => {
                    let slot = s.evals.entry(workload.clone()).or_default();
                    slot.0 += 1;
                    slot.1 += cost;
                    slot.2 += micros;
                }
                Event::Measurement { ok, .. } => {
                    if *ok {
                        s.meas_ok += 1;
                    } else {
                        s.meas_failed += 1;
                    }
                }
                Event::Fault { kind, .. } => *s.faults.entry(kind.clone()).or_default() += 1,
                Event::Elimination {
                    config,
                    kind,
                    after_blocks,
                    ..
                } => s
                    .eliminations
                    .push((kind.clone(), *after_blocks, config.clone())),
                Event::StaticEliminated { config, .. } => {
                    // Folded into the elimination stream: statically
                    // eliminated configs never raced, so zero blocks.
                    s.eliminations
                        .push(("static".to_string(), 0, config.clone()));
                }
                Event::Quarantine { instance, reason } => {
                    s.quarantines.push((instance.clone(), reason.clone()));
                }
                Event::WorkerSpawned { .. } => s.worker_spawns += 1,
                Event::WorkerFailed { worker, reason } => {
                    s.worker_failures.push((*worker, reason.clone()));
                }
                Event::WorkerQuarantined { worker, failures } => {
                    s.worker_quarantines.push((*worker, *failures));
                }
                Event::Checkpoint { .. } => s.checkpoints += 1,
                Event::CampaignEnd {
                    best_cost,
                    evals,
                    retries,
                    failed_configs,
                    pruned,
                    aborted,
                    micros,
                } => {
                    s.end = Some((
                        *best_cost,
                        *evals,
                        *retries,
                        *failed_configs,
                        *pruned,
                        *aborted,
                    ));
                    s.wall_us += micros;
                }
                Event::CounterFinal { name, value } => {
                    *s.counters.entry(name.clone()).or_default() += value;
                }
                Event::GaugeFinal { name, value } => {
                    s.gauges.insert(name.clone(), *value);
                }
                Event::HistogramFinal {
                    name,
                    count,
                    sum,
                    p50,
                    p90,
                    p99,
                    max,
                } => {
                    s.histograms
                        .insert(name.clone(), (*count, *sum, *p50, *p90, *p99, *max));
                }
            }
        }
        s
    }

    fn eliminations_by_kind(&self) -> BTreeMap<&str, u64> {
        let mut m: BTreeMap<&str, u64> = BTreeMap::new();
        for (kind, _, _) in &self.eliminations {
            *m.entry(kind).or_default() += 1;
        }
        m
    }

    fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let kv = |k: &str, v: String| vec![k.to_string(), v];
        let mut rows = Vec::new();
        if let Some((core, scale, faults, fault_seed)) = &self.config {
            rows.push(kv("core", core.clone()));
            rows.push(kv("scale", format!("1/{scale}")));
            rows.push(kv("faults", format!("{faults} (seed {fault_seed})")));
            rows.push(kv("frozen dims", self.frozen.len().to_string()));
        }
        if let Some((seed, budget, instances, params)) = self.start {
            rows.push(kv("seed", format!("{seed:#x}")));
            rows.push(kv("budget", budget.to_string()));
            rows.push(kv("instances", instances.to_string()));
            rows.push(kv("parameters", params.to_string()));
        }
        rows.push(kv("segments", self.segments.to_string()));
        rows.push(kv("resumes", self.resumes.to_string()));
        rows.push(kv("iterations", self.iterations.len().to_string()));
        rows.push(kv("checkpoints", self.checkpoints.to_string()));
        if let Some((best, evals, retries, failed, pruned, aborted)) = self.end {
            rows.push(kv("best cost", format!("{best:.4}")));
            rows.push(kv("evaluations", evals.to_string()));
            rows.push(kv("retries", retries.to_string()));
            rows.push(kv("failed configs", failed.to_string()));
            rows.push(kv("pruned", pruned.to_string()));
            rows.push(kv("aborted", aborted.to_string()));
        }
        rows.push(kv("quarantined", self.quarantines.len().to_string()));
        let hits = self.counters.get("cache.hits").copied().unwrap_or(0);
        let misses = self.counters.get("cache.misses").copied().unwrap_or(0);
        if hits + misses > 0 {
            rows.push(kv(
                "cache hit rate",
                format!(
                    "{:.1}% ({hits} of {} lookups)",
                    100.0 * hits as f64 / (hits + misses) as f64,
                    hits + misses
                ),
            ));
        }
        rows.push(kv(
            "wall time",
            format!("{:.1} ms", self.wall_us as f64 / 1000.0),
        ));
        let _ = write!(
            out,
            "campaign\n{}",
            report::table(&["field", "value"], &rows)
        );

        if !self.iterations.is_empty() {
            let rows: Vec<Vec<String>> = self
                .iterations
                .iter()
                .map(|(iter, (survivors, best, evals, blocks, micros))| {
                    vec![
                        iter.to_string(),
                        self.iter_configs
                            .get(iter)
                            .map_or("?".to_string(), |c| c.to_string()),
                        survivors.to_string(),
                        blocks.to_string(),
                        evals.to_string(),
                        format!("{best:.4}"),
                        format!("{:.1}", *micros as f64 / 1000.0),
                    ]
                })
                .collect();
            let _ = write!(
                out,
                "\niterations\n{}",
                report::table(
                    &[
                        "iter",
                        "configs",
                        "survivors",
                        "blocks",
                        "evals",
                        "best cost",
                        "ms"
                    ],
                    &rows
                )
            );
        }

        let time_rows: Vec<(String, f64)> = self
            .histograms
            .iter()
            .filter(|(name, _)| name.ends_with("_us"))
            .map(|(name, (_, sum, ..))| (name.clone(), *sum as f64 / 1000.0))
            .collect();
        if !time_rows.is_empty() {
            let _ = write!(
                out,
                "\ntime spent (summed, ms)\n{}",
                report::bar_chart(&time_rows, 40, " ms")
            );
        }

        if !self.evals.is_empty() {
            let cost_rows: Vec<(String, f64)> = self
                .evals
                .iter()
                .map(|(w, (count, cost_sum, _))| {
                    (format!("{w} (x{count})"), cost_sum / (*count).max(1) as f64)
                })
                .collect();
            let _ = write!(
                out,
                "\nmean evaluation cost per workload\n{}",
                report::bar_chart(&cost_rows, 40, "")
            );
        }

        if !self.faults.is_empty() || self.meas_failed > 0 {
            let rows: Vec<Vec<String>> = self
                .faults
                .iter()
                .map(|(kind, n)| vec![kind.clone(), n.to_string()])
                .collect();
            let _ = write!(
                out,
                "\nfaults\n{}",
                report::table(&["kind", "count"], &rows)
            );
            let _ = writeln!(
                out,
                "measurements: {} ok, {} failed",
                self.meas_ok, self.meas_failed
            );
        }

        if !self.eliminations.is_empty() {
            const SHOWN: usize = 15;
            let rows: Vec<Vec<String>> = self
                .eliminations
                .iter()
                .take(SHOWN)
                .map(|(kind, blocks, config)| {
                    vec![kind.clone(), blocks.to_string(), config.clone()]
                })
                .collect();
            let _ = write!(
                out,
                "\neliminations (journal order)\n{}",
                report::table(&["kind", "after blocks", "configuration"], &rows)
            );
            if self.eliminations.len() > SHOWN {
                let _ = writeln!(out, "(+{} more)", self.eliminations.len() - SHOWN);
            }
        }

        for (instance, reason) in &self.quarantines {
            let _ = writeln!(out, "quarantined {instance}: {reason}");
        }

        if self.worker_spawns > 0 {
            let _ = writeln!(
                out,
                "\nworkers: {} spawned, {} failures, {} quarantined",
                self.worker_spawns,
                self.worker_failures.len(),
                self.worker_quarantines.len()
            );
            for (worker, reason) in &self.worker_failures {
                let _ = writeln!(out, "worker {worker} failed: {reason}");
            }
            for (worker, failures) in &self.worker_quarantines {
                let _ = writeln!(out, "worker {worker} quarantined after {failures} failures");
            }
        }

        if !self.events.is_empty() {
            let rows: Vec<Vec<String>> = self
                .events
                .iter()
                .map(|(name, v)| vec![name.clone(), v.to_string()])
                .collect();
            let _ = write!(
                out,
                "\njournal events\n{}",
                report::table(&["event", "count"], &rows)
            );
        }

        if !self.counters.is_empty() {
            let rows: Vec<Vec<String>> = self
                .counters
                .iter()
                .map(|(name, v)| vec![name.clone(), v.to_string()])
                .collect();
            let _ = write!(
                out,
                "\ncounters (summed over segments)\n{}",
                report::table(&["name", "value"], &rows)
            );
        }
        if !self.histograms.is_empty() {
            let rows: Vec<Vec<String>> = self
                .histograms
                .iter()
                .map(|(name, (count, sum, p50, p90, p99, max))| {
                    vec![
                        name.clone(),
                        count.to_string(),
                        p50.to_string(),
                        p90.to_string(),
                        p99.to_string(),
                        max.to_string(),
                        sum.to_string(),
                    ]
                })
                .collect();
            let _ = write!(
                out,
                "\nhistograms (final segment)\n{}",
                report::table(&["name", "count", "p50", "p90", "p99", "max", "sum"], &rows)
            );
        }
        out
    }

    fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                esc(&v.to_string())
            }
        }
        fn map_u64(m: &BTreeMap<String, u64>) -> String {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("{}:{v}", esc(k))).collect();
            format!("{{{}}}", body.join(","))
        }
        let mut parts = Vec::new();
        match &self.config {
            Some((core, scale, faults, fault_seed)) => {
                parts.push(format!("\"core\":{}", esc(core)));
                parts.push(format!("\"scale\":{scale}"));
                parts.push(format!("\"faults\":{}", esc(faults)));
                parts.push(format!("\"fault_seed\":{fault_seed}"));
            }
            None => parts.push("\"core\":null".to_string()),
        }
        let frozen: Vec<String> = self
            .frozen
            .iter()
            .map(|(p, c)| format!("{}:{}", esc(p), esc(c)))
            .collect();
        parts.push(format!("\"frozen\":{{{}}}", frozen.join(",")));
        match self.start {
            Some((seed, budget, instances, params)) => {
                parts.push(format!("\"seed\":{seed}"));
                parts.push(format!("\"budget\":{budget}"));
                parts.push(format!("\"instances\":{instances}"));
                parts.push(format!("\"params\":{params}"));
            }
            None => parts.push("\"seed\":null".to_string()),
        }
        parts.push(format!("\"segments\":{}", self.segments));
        parts.push(format!("\"resumes\":{}", self.resumes));
        parts.push(format!("\"iterations\":{}", self.iterations.len()));
        parts.push(format!("\"checkpoints\":{}", self.checkpoints));
        match self.end {
            Some((best, evals, retries, failed, pruned, aborted)) => {
                parts.push(format!("\"best_cost\":{}", num(best)));
                parts.push(format!("\"evals\":{evals}"));
                parts.push(format!("\"retries\":{retries}"));
                parts.push(format!("\"failed_configs\":{failed}"));
                parts.push(format!("\"pruned\":{pruned}"));
                parts.push(format!("\"aborted\":{aborted}"));
            }
            None => parts.push("\"best_cost\":null".to_string()),
        }
        parts.push(format!("\"wall_us\":{}", self.wall_us));
        parts.push(format!("\"quarantined\":{}", self.quarantines.len()));
        parts.push(format!(
            "\"workers\":{{\"spawned\":{},\"failed\":{},\"quarantined\":{}}}",
            self.worker_spawns,
            self.worker_failures.len(),
            self.worker_quarantines.len()
        ));
        let elim: BTreeMap<String, u64> = self
            .eliminations_by_kind()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        parts.push(format!("\"eliminations\":{}", map_u64(&elim)));
        parts.push(format!("\"faults\":{}", map_u64(&self.faults)));
        parts.push(format!(
            "\"measurements\":{{\"ok\":{},\"failed\":{}}}",
            self.meas_ok, self.meas_failed
        ));
        let evals: Vec<String> = self
            .evals
            .iter()
            .map(|(w, (count, cost_sum, us))| {
                format!(
                    "{}:{{\"count\":{count},\"mean_cost\":{},\"total_us\":{us}}}",
                    esc(w),
                    num(cost_sum / (*count).max(1) as f64)
                )
            })
            .collect();
        parts.push(format!("\"evaluations\":{{{}}}", evals.join(",")));
        parts.push(format!("\"events\":{}", map_u64(&self.events)));
        parts.push(format!("\"counters\":{}", map_u64(&self.counters)));
        parts.push(format!("\"gauges\":{}", map_u64(&self.gauges)));
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, (count, sum, p50, p90, p99, max))| {
                format!(
                    "{}:{{\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"max\":{max}}}",
                    esc(name)
                )
            })
            .collect();
        parts.push(format!("\"histograms\":{{{}}}", hists.join(",")));
        format!("{{{}}}", parts.join(","))
    }
}

/// `racesim report`: render the campaign summary of a telemetry journal
/// written by `tune --telemetry`. Torn lines (a crash mid-write) are
/// reported as warnings; everything before them still renders.
fn cmd_report(journal: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let path = PathBuf::from(journal);
    let (entries, warnings) =
        read_journal_lossy(&path).map_err(|e| format!("cannot read {journal}: {e}"))?;
    for w in &warnings {
        eprintln!("warning: {journal}: {w}");
    }
    if entries.is_empty() {
        return Err(format!("{journal}: no journal entries"));
    }
    let summary = CampaignSummary::digest(&entries);
    if flags.get("json").is_some() {
        println!("{}", summary.render_json());
    } else {
        print!("{}", summary.render_text());
    }
    Ok(())
}

/// `racesim replay`: re-run the campaign a telemetry journal records —
/// same seed, budget, scale, fault plan and frozen dimensions, rebuilt
/// from the journal alone — and verify that the replay reproduces the
/// recorded outcome bit for bit (survivor sets, elimination order, best
/// costs as f64 bit patterns). Exit code 1 on divergence, with a report
/// pinpointing the first mismatch.
fn cmd_replay(journal: &str, flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let path = PathBuf::from(journal);
    let (entries, warnings) =
        read_journal_lossy(&path).map_err(|e| format!("cannot read {journal}: {e}"))?;
    for w in &warnings {
        eprintln!("warning: {journal}: {w}");
    }
    if entries.is_empty() {
        return Err(format!("{journal}: no journal entries"));
    }
    let recorded = RecordedCampaign::digest(&entries).map_err(|e| format!("{journal}: {e}"))?;
    let spec = CampaignSpec::from_journal(&entries).map_err(|e| format!("{journal}: {e}"))?;
    eprintln!(
        "replaying the recorded {} campaign: scale 1/{}, budget {}, seed {:#x}, faults {} \
         (seed {}), {} frozen dimension(s) ...",
        spec.core_name(),
        spec.scale.divisor(),
        spec.budget,
        spec.seed,
        spec.fault_profile,
        spec.fault_seed,
        spec.frozen.len()
    );

    let t = Telemetry::in_memory();
    spec.run(&t)?;
    t.flush();
    let text = t.lines().join("\n");
    let (fresh, errors) = parse_journal(&text);
    if let Some((line, e)) = errors.first() {
        return Err(format!("replay journal line {line} unparseable: {e}"));
    }
    let replayed = RecordedCampaign::digest(&fresh).map_err(|e| format!("replay journal: {e}"))?;

    let report = compare(&recorded, &replayed);
    if flags.get("json").is_some() {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(match report.verdict {
        Verdict::Diverged => ExitCode::FAILURE,
        Verdict::Match | Verdict::PrefixMatch => ExitCode::SUCCESS,
    })
}

fn revision_of(flags: &HashMap<String, String>, key: &str) -> Result<Revision, String> {
    match flags.get(key).map(String::as_str) {
        Some("fixed") | None => Ok(Revision::Fixed),
        Some("initial") => Ok(Revision::Initial),
        Some(v) => Err(format!("unknown --{key} {v:?} (use fixed or initial)")),
    }
}

/// One side of a `racesim diff`: either a fresh capture of a model
/// revision, or a file — a saved CPI baseline or a platform config.
fn diff_side(
    flags: &HashMap<String, String>,
    file_key: &str,
    rev_key: &str,
    kind: CoreKind,
    scale: Scale,
) -> Result<(String, Vec<diff::KernelCpi>), String> {
    if let Some(path) = flags.get(file_key) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if diff::is_baseline(&text) {
            let (label, records) = parse_baseline_labeled(path, &text)?;
            return Ok((label, records));
        }
        // A platform config: simulate the fixed-revision suite on it.
        let platform =
            config_text::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        let board = match kind {
            CoreKind::InOrder => ReferenceBoard::firefly_a53(),
            CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
        };
        let settings = ValidatorSettings {
            kind,
            revision: Revision::Fixed,
            scale,
            tuner: TunerSettings::default(),
            metric: racesim_core::CostMetric::CpiError,
        };
        let v = Validator::new(&board, settings);
        let records = diff::capture_platform(&platform, v.decoder(), &v.suite())?;
        return Ok((path.clone(), records));
    }
    let revision = revision_of(flags, rev_key)?;
    let label = format!(
        "{}/{}",
        match kind {
            CoreKind::InOrder => "a53",
            CoreKind::OutOfOrder => "a72",
        },
        match revision {
            Revision::Fixed => "fixed",
            Revision::Initial => "initial",
        }
    );
    Ok((label, diff::capture_revision(kind, revision, scale)?))
}

fn parse_baseline_labeled(
    path: &str,
    text: &str,
) -> Result<(String, Vec<diff::KernelCpi>), String> {
    let (label, records) = diff::parse_baseline(text).map_err(|e| format!("{path}: {e}"))?;
    Ok((format!("{label} ({path})"), records))
}

/// `racesim diff`: the differential regression harness. Captures the
/// per-kernel CPI of two model revisions (DESIGN §6b), two platform
/// configs, or a saved baseline vs the current build — integer cycle
/// counters throughout, so "no divergence" means bit-identical CPI —
/// and exits non-zero when any kernel moves beyond `--tolerance`.
fn cmd_diff(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let kind = core_of(flags)?;
    let scale = scale_of(flags)?;
    let tolerance: f64 = match flags.get("tolerance") {
        None => 0.0,
        Some(v) => v
            .parse()
            .ok()
            .filter(|t: &f64| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("invalid --tolerance {v:?}"))?,
    };
    let (label_a, a) = diff_side(flags, "a", "revision-a", kind, scale)?;
    let (label_b, b) = diff_side(flags, "b", "revision-b", kind, scale)?;
    if let Some(path) = flags.get("save") {
        std::fs::write(path, diff::render_baseline(&label_b, &b))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("baseline ({label_b}) written to {path}");
    }
    let d = diff::diff_records(&label_a, &a, &label_b, &b, tolerance);
    if flags.get("json").is_some() {
        println!("{}", d.render_json());
    } else {
        print!("{}", d.render_text());
    }
    Ok(if d.has_divergence() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// One kernel's self-profile: what the simulator measured about itself.
struct KernelProfile {
    name: String,
    category: String,
    wall_ns: u64,
    instructions: u64,
    cycles: u64,
    snapshot: racesim_telemetry::ProfileSnapshot,
}

impl KernelProfile {
    /// Fraction of the measured wall time covered by the phase tree
    /// (root totals over wall; the simulator's own phases should explain
    /// nearly all of it).
    fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.snapshot.total_ns() as f64 / self.wall_ns as f64
        }
    }

    fn inst_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.instructions as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// `racesim profile`: run kernels through the simulator with the
/// self-profiler attached and show where the wall time goes, per kernel:
/// an indented phase tree (fetch → decode, execute → memory levels and
/// stall attribution), `--json` for the machine-readable form, and
/// `--folded FILE` for a flamegraph.pl-compatible folded-stack dump.
fn cmd_profile(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let platform = platform_of(flags)?;
    let mut suite = match flags.get("suite").map(String::as_str) {
        None | Some("micro") => microbench_suite(scale),
        Some("spec") => spec_suite(scale),
        Some("all") => {
            let mut v = microbench_suite(scale);
            v.extend(spec_suite(scale));
            v
        }
        Some(v) => return Err(format!("unknown suite {v:?} (use micro, spec or all)")),
    };
    if let Some(name) = flags.get("workload") {
        suite.retain(|w| &w.name == name);
        if suite.is_empty() {
            return Err(format!("unknown workload {name:?} (see `racesim list`)"));
        }
    }

    let mut profiles = Vec::new();
    for w in &suite {
        let trace = w.trace().map_err(|e| format!("{}: {e}", w.name))?;
        // A fresh profiler per kernel keeps the trees comparable; two
        // runs, keeping the faster (less scheduler noise in the wall
        // measurement). The wall clock starts after simulator
        // construction, so the coverage ratio compares the phase tree
        // against the run it actually describes.
        let mut best: Option<KernelProfile> = None;
        for _ in 0..2 {
            let profiler = racesim_telemetry::Profiler::enabled();
            let sim = Simulator::new(platform.clone()).with_profiler(profiler.clone());
            let t0 = std::time::Instant::now();
            let stats = sim.run(&trace).map_err(|e| format!("{}: {e}", w.name))?;
            let wall_ns = t0.elapsed().as_nanos() as u64;
            if best.as_ref().is_none_or(|b| wall_ns < b.wall_ns) {
                best = Some(KernelProfile {
                    name: w.name.clone(),
                    category: w.category.to_string(),
                    wall_ns,
                    instructions: stats.core.instructions,
                    cycles: stats.core.cycles,
                    snapshot: profiler.snapshot(),
                });
            }
        }
        profiles.push(best.expect("at least one run"));
    }

    if let Some(path) = flags.get("folded") {
        let mut out = String::new();
        for p in &profiles {
            for line in p.snapshot.render_folded().lines() {
                out.push_str(&p.name);
                out.push(';');
                out.push_str(line);
                out.push('\n');
            }
        }
        std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("folded stacks written to {path}");
    }

    if flags.get("json").is_some() {
        let mut kernels = Vec::new();
        for p in &profiles {
            kernels.push(format!(
                "{{\"name\":\"{}\",\"category\":\"{}\",\"wall_ns\":{},\"instructions\":{},\
                 \"cycles\":{},\"coverage\":{:.4},\"profile\":{}}}",
                p.name,
                p.category,
                p.wall_ns,
                p.instructions,
                p.cycles,
                p.coverage(),
                p.snapshot.render_json()
            ));
        }
        println!(
            "{{\"schema_version\":1,\"platform\":\"{}\",\"kernels\":[{}]}}",
            platform.name,
            kernels.join(",")
        );
    } else {
        println!("platform: {}", platform.name);
        for p in &profiles {
            println!(
                "\n== {} ({}) ==  wall {:.2} ms  {:.1} Minst/s  coverage {:.1}%",
                p.name,
                p.category,
                p.wall_ns as f64 / 1e6,
                p.inst_per_sec() / 1e6,
                100.0 * p.coverage()
            );
            print!("{}", p.snapshot.render_text());
        }
    }
    Ok(())
}

/// `racesim bounds`: the static CPI interval of every kernel on a
/// platform preset, from abstract interpretation over the kernel IR —
/// no simulation, no board. These are the intervals `tune
/// --static-bounds` eliminates against, so this is also the debugging
/// view for "why was configuration X dropped".
fn cmd_bounds(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale = scale_of(flags)?;
    let (label, base) = match flags.get("core").map(String::as_str) {
        Some("a53") | None => ("a53", Platform::a53_like()),
        Some("a72") => ("a72", Platform::a72_like()),
        Some(v) => return Err(format!("unknown core {v:?} (use a53 or a72)")),
    };
    let mut suite = racesim_kernels::microbench_suite_initialized(scale);
    suite.extend(spec_suite(scale));
    if let Some(name) = flags.get("workload") {
        suite.retain(|w| &w.name == name);
        if suite.is_empty() {
            return Err(format!("unknown workload {name:?} (see `racesim list`)"));
        }
    }
    let sb = racesim_analyzer::bounds::SuiteBounds::build(
        suite.iter().map(|w| (w.name.as_str(), &w.program)),
        &racesim_analyzer::bounds::BoundsOptions::default(),
    );
    let residency_label = |kb: &racesim_analyzer::bounds::KernelBounds| {
        use racesim_analyzer::bounds::MemResidency;
        match kb.residency(&base.mem) {
            MemResidency::L1Resident => "l1",
            MemResidency::L2Resident => "l2",
            MemResidency::DramBound => "dram",
        }
    };
    if flags.get("json").is_some() {
        let kernels: Vec<String> = sb
            .kernels
            .iter()
            .map(|kb| {
                let iv = kb.cpi_interval(&base);
                format!(
                    "{{\"kernel\":\"{}\",\"insts_lo\":{},\"insts_hi\":{},\
                     \"residency\":\"{}\",\"chains\":{},\"cycles\":{},\
                     \"cpi_lo\":{},\"cpi_hi\":{}}}",
                    kb.name,
                    kb.dyn_insts.lo,
                    kb.dyn_insts.hi,
                    residency_label(kb),
                    kb.chains.len(),
                    kb.cycles.len(),
                    iv.lo,
                    iv.hi
                )
            })
            .collect();
        println!(
            "{{\"schema_version\":1,\"core\":\"{label}\",\"scale\":{},\"kernels\":[{}]}}",
            scale.divisor(),
            kernels.join(",")
        );
    } else {
        let rows: Vec<Vec<String>> = sb
            .kernels
            .iter()
            .map(|kb| {
                let iv = kb.cpi_interval(&base);
                vec![
                    kb.name.clone(),
                    format!("{:.0}..{:.0}", kb.dyn_insts.lo, kb.dyn_insts.hi),
                    residency_label(kb).to_string(),
                    kb.chains.len().to_string(),
                    kb.cycles.len().to_string(),
                    format!("{:.4}", iv.lo),
                    format!("{:.4}", iv.hi),
                ]
            })
            .collect();
        println!(
            "static CPI bounds on {label} (scale 1/{}):",
            scale.divisor()
        );
        print!(
            "{}",
            report::table(
                &[
                    "kernel",
                    "dyn insts",
                    "residency",
                    "chains",
                    "cycles",
                    "cpi lo",
                    "cpi hi"
                ],
                &rows
            )
        );
    }
    Ok(())
}

/// `racesim lint`: the static-analysis gate. Checks the shipped platform
/// presets, the tuning parameter spaces for both cores, and every
/// micro-benchmark kernel — all before a single cycle is simulated.
/// Exits non-zero when any Error-severity diagnostic is found (and, with
/// `--deny-warnings`, when any warning is).
fn cmd_lint(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let revision = match flags.get("revision").map(String::as_str) {
        Some("fixed") | None => Revision::Fixed,
        Some("initial") => Revision::Initial,
        Some(v) => return Err(format!("unknown revision {v:?} (use fixed or initial)")),
    };
    let scale = scale_of(flags)?;
    let mut report = racesim_analyzer::Report::new();

    // 1. Platform invariants on the shipped presets (or --platform FILE).
    match flags.get("platform") {
        Some(_) => report.extend(racesim_analyzer::platform::check(&platform_of(flags)?)),
        None => {
            report.extend(racesim_analyzer::platform::check(&Platform::a53_like()));
            report.extend(racesim_analyzer::platform::check(&Platform::a72_like()));
        }
    }

    // 2. Parameter-space lints for both cores.
    for (label, kind, base) in [
        ("a53", CoreKind::InOrder, Platform::a53_like()),
        ("a72", CoreKind::OutOfOrder, Platform::a72_like()),
    ] {
        let space = racesim_core::params::build_space(kind, revision);
        let anchors = [
            ("default", space.default_configuration()),
            ("best-guess", racesim_core::params::best_guess(&space, kind)),
        ];
        let apply =
            |cfg: &racesim_race::Configuration| racesim_core::params::apply(&space, cfg, &base);
        let mut diags = racesim_analyzer::param::check_space(&space);
        diags.extend(racesim_analyzer::param::check_model(
            &space, &anchors, &apply,
        ));
        for mut d in diags {
            d.context
                .insert(0, ("space".to_string(), label.to_string()));
            report.push(d);
        }
    }

    // 3. Kernel static analysis over the whole micro-benchmark suite.
    let suite = match revision {
        Revision::Initial => microbench_suite(scale),
        Revision::Fixed => racesim_kernels::microbench_suite_initialized(scale),
    };
    for w in &suite {
        for mut d in racesim_analyzer::kernel::check(&w.program) {
            d.context.insert(0, ("kernel".to_string(), w.name.clone()));
            report.push(d);
        }
    }

    // 4. Measurement noise vs the race's statistical resolution, per
    //    board, at the race settings a default tune would use.
    let race = RaceSettings::default();
    for (label, board) in [
        ("a53", ReferenceBoard::firefly_a53()),
        ("a72", ReferenceBoard::firefly_a72()),
    ] {
        report.extend(racesim_analyzer::effects::check(
            label,
            board.effects(),
            &race,
        ));
    }

    // 5. Whole-campaign analysis (--suite): kernel IR lints, the
    //    parameter-coverage matrix per core space, and the determinism
    //    audit.
    let mut sections: Vec<(&str, String)> = Vec::new();
    let mut coverage_text = String::new();
    if flags.get("suite").is_some() {
        let mut all = suite.clone();
        all.extend(spec_suite(scale));

        let mut profiles = Vec::new();
        for w in &all {
            for mut d in racesim_analyzer::ir::check(&w.program) {
                d.context.insert(0, ("kernel".to_string(), w.name.clone()));
                report.push(d);
            }
            profiles.push(racesim_analyzer::ir::profile(&w.name, &w.program));
        }

        let mut coverage_json = String::from("{");
        for (label, kind, base) in [
            ("a53", CoreKind::InOrder, Platform::a53_like()),
            ("a72", CoreKind::OutOfOrder, Platform::a72_like()),
        ] {
            let space = racesim_core::params::build_space(kind, revision);
            let matrix =
                racesim_analyzer::coverage::CoverageMatrix::build(&space, &profiles, &base);
            let apply =
                |cfg: &racesim_race::Configuration| racesim_core::params::apply(&space, cfg, &base);
            for mut d in racesim_analyzer::coverage::check_suite(&space, &matrix, &apply) {
                d.context
                    .insert(0, ("space".to_string(), label.to_string()));
                report.push(d);
            }
            coverage_text.push_str(&format!(
                "\nparameter coverage [{label}]:\n{}",
                matrix.render_text()
            ));
            if label != "a53" {
                coverage_json.push(',');
            }
            coverage_json.push_str(&format!("\"{label}\":{}", matrix.render_json()));
        }
        coverage_json.push('}');
        sections.push(("coverage", coverage_json));

        let build = || racesim_core::params::build_space(CoreKind::InOrder, revision);
        for mut d in racesim_analyzer::determinism::check(&build) {
            d.context
                .insert(0, ("audit".to_string(), "determinism".to_string()));
            report.push(d);
        }

        // 6. Static CPI bounds over the same suite (RA6xx): vacuous
        //    bounds, interval inversions, and parameters the bounds are
        //    insensitive to across the whole suite, per core space.
        let sb = racesim_analyzer::bounds::SuiteBounds::build(
            all.iter().map(|w| (w.name.as_str(), &w.program)),
            &racesim_analyzer::bounds::BoundsOptions::default(),
        );
        let mut bounds_json = String::from("{");
        for (label, kind, base) in [
            ("a53", CoreKind::InOrder, Platform::a53_like()),
            ("a72", CoreKind::OutOfOrder, Platform::a72_like()),
        ] {
            let space = racesim_core::params::build_space(kind, revision);
            let apply =
                |cfg: &racesim_race::Configuration| racesim_core::params::apply(&space, cfg, &base);
            let mut diags = Vec::new();
            racesim_analyzer::bounds::check_suite_bounds(&sb.kernels, &space, &apply, &mut diags);
            for mut d in diags {
                d.context
                    .insert(0, ("space".to_string(), label.to_string()));
                report.push(d);
            }
            let default = apply(&space.default_configuration());
            if label != "a53" {
                bounds_json.push(',');
            }
            bounds_json.push_str(&format!("\"{label}\":["));
            for (i, kb) in sb.kernels.iter().enumerate() {
                let iv = kb.cpi_interval(&default);
                if i > 0 {
                    bounds_json.push(',');
                }
                bounds_json.push_str(&format!(
                    "{{\"kernel\":\"{}\",\"cpi_lo\":{},\"cpi_hi\":{}}}",
                    kb.name, iv.lo, iv.hi
                ));
            }
            bounds_json.push(']');
        }
        bounds_json.push('}');
        sections.push(("bounds", bounds_json));
    }

    report.sort();
    if flags.get("json").is_some() {
        println!("{}", report.render_json_with(&sections));
    } else {
        print!("{}", report.render_text());
        print!("{coverage_text}");
    }
    let deny_warnings = flags.get("deny-warnings").is_some();
    let denied = report.has_errors()
        || (deny_warnings && report.count(racesim_analyzer::Severity::Warn) > 0);
    Ok(if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `report` and `replay` take one positional operand (the journal
    // path); every other command is flags-only.
    let mut positional = None;
    let flag_args =
        if (cmd == "report" || cmd == "replay") && args.len() >= 2 && !args[1].starts_with("--") {
            positional = Some(args[1].clone());
            &args[2..]
        } else {
            &args[1..]
        };
    let bool_flags = if cmd == "lint" {
        LINT_BOOL_FLAGS
    } else {
        BOOL_FLAGS
    };
    let flags = match parse_flags(flag_args, bool_flags) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list(&flags),
        "simulate" => cmd_simulate(&flags),
        "measure" => cmd_measure(&flags),
        "probe" => cmd_probe(&flags),
        "config" => cmd_config(&flags),
        "validate" => cmd_validate(&flags),
        "tune" => cmd_tune(&flags),
        "worker" => cmd_worker(&flags),
        "report" => match &positional {
            Some(journal) => cmd_report(journal, &flags),
            None => Err("report needs a journal path: racesim report <FILE> [--json]".to_string()),
        },
        "replay" => {
            let r = match &positional {
                Some(journal) => cmd_replay(journal, &flags),
                None => {
                    Err("replay needs a journal path: racesim replay <FILE> [--json]".to_string())
                }
            };
            return match r {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "diff" => {
            return match cmd_diff(&flags) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "profile" => cmd_profile(&flags),
        "bounds" => cmd_bounds(&flags),
        "lint" => {
            return match cmd_lint(&flags) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--scale", "1024", "--workload", "MD"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args, BOOL_FLAGS).unwrap();
        assert_eq!(f.get("scale").unwrap(), "1024");
        assert_eq!(f.get("workload").unwrap(), "MD");
        assert!(parse_flags(&["--dangling".to_string()], BOOL_FLAGS).is_err());
        assert!(parse_flags(&["positional".to_string()], BOOL_FLAGS).is_err());
        // `--suite` is boolean for lint, value-taking elsewhere.
        let args = vec!["--suite".to_string()];
        assert_eq!(
            parse_flags(&args, LINT_BOOL_FLAGS).unwrap().get("suite"),
            Some(&"true".to_string())
        );
        assert!(parse_flags(&args, BOOL_FLAGS).is_err());
    }

    #[test]
    fn flush_guard_flushes_on_early_exit() {
        let path =
            std::env::temp_dir().join(format!("racesim_flush_guard_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Simulate an error path: the guard drops before any explicit
        // flush could run, and the journal must still be complete.
        let early_return = || -> Result<(), String> {
            let telemetry = Telemetry::to_file(&path, false).map_err(|e| e.to_string())?;
            let _flush = FlushGuard(telemetry.clone());
            telemetry.emit(Event::CampaignStart {
                seed: 1,
                budget: 2,
                n_instances: 3,
                n_params: 4,
            });
            Err("simulated failure".to_string())
        };
        assert!(early_return().is_err());
        let (entries, errors) = read_journal_lossy(&path).expect("journal readable");
        assert!(errors.is_empty(), "no torn lines: {errors:?}");
        assert_eq!(entries.len(), 1, "the buffered event was flushed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn workload_lookup_and_platform_selection() {
        let mut flags = HashMap::new();
        flags.insert("workload".to_string(), "MD".to_string());
        let w = find_workload(&flags, Scale::TINY).unwrap();
        assert_eq!(w.name, "MD");
        flags.insert("workload".to_string(), "nope".to_string());
        assert!(find_workload(&flags, Scale::TINY).is_err());

        let mut flags = HashMap::new();
        flags.insert("platform".to_string(), "a72".to_string());
        assert_eq!(platform_of(&flags).unwrap().core.kind, CoreKind::OutOfOrder);
    }

    #[test]
    fn config_files_roundtrip_through_the_cli_path() {
        let dir = std::env::temp_dir().join("racesim_cli_test.cfg");
        std::fs::write(&dir, config_text::to_text(&Platform::a72_like())).unwrap();
        let mut flags = HashMap::new();
        flags.insert("platform".to_string(), dir.display().to_string());
        let p = platform_of(&flags).unwrap();
        assert_eq!(p, Platform::a72_like());
        let _ = std::fs::remove_file(&dir);
    }
}
