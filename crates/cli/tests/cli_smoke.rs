//! End-to-end smoke tests of the `racesim` binary.

use std::process::Command;

fn racesim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_racesim"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_is_printed() {
    let out = racesim(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("validate"));
    assert!(text.contains("simulate"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = racesim(&["frobnicate"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown command"));
}

#[test]
fn simulate_reports_cpi() {
    let out = racesim(&["simulate", "--platform", "a53", "--workload", "ED1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CPI:"), "{text}");
    assert!(text.contains("instructions:"));
}

#[test]
fn measure_reports_counters() {
    let out = racesim(&["measure", "--board", "a72", "--workload", "EI"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles:"));
}

#[test]
fn config_dump_parses_back() {
    let out = racesim(&["config", "--platform", "a72"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let p = racesim_sim::config_text::from_text(&text).expect("dump parses");
    assert_eq!(p, racesim_sim::Platform::a72_like());
}

#[test]
fn missing_workload_is_a_clean_error() {
    let out = racesim(&["simulate", "--platform", "a53"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workload"));
}

#[test]
fn tune_with_telemetry_then_report() {
    let journal = std::env::temp_dir().join(format!(
        "racesim_cli_telemetry_{}.jsonl",
        std::process::id()
    ));
    let journal_s = journal.display().to_string();
    let out = racesim(&[
        "tune",
        "--core",
        "a53",
        "--scale",
        "16384",
        "--budget",
        "80",
        "--max-iterations",
        "1",
        "--faults",
        "transient",
        "--telemetry",
        &journal_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(journal.exists(), "journal file must have been written");

    // Human-readable report renders the campaign shape.
    let out = racesim(&["report", &journal_s]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("campaign"), "{text}");
    assert!(text.contains("best cost"), "{text}");
    assert!(text.contains("iterations"), "{text}");
    assert!(text.contains("sim.run_us"), "{text}");
    assert!(text.contains("cache hit rate"), "{text}");
    assert!(text.contains("journal events"), "{text}");
    assert!(text.contains("campaign_start"), "{text}");

    // Machine-readable report carries the same totals.
    let out = racesim(&["report", &journal_s, "--json"]);
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
    assert!(json.contains("\"segments\":1"), "{json}");
    assert!(json.contains("\"counters\":{"), "{json}");

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn profile_renders_a_phase_tree_with_high_coverage() {
    let out = racesim(&["profile", "--workload", "ED1", "--scale", "8192"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== ED1"), "{text}");
    assert!(text.contains("coverage"), "{text}");
    assert!(text.contains("simulate"), "{text}");
    assert!(text.contains("fetch"), "{text}");
    assert!(text.contains("execute"), "{text}");
}

#[test]
fn profile_json_and_folded_outputs() {
    let folded = std::env::temp_dir().join(format!("racesim_folded_{}.txt", std::process::id()));
    let folded_s = folded.display().to_string();
    let out = racesim(&[
        "profile",
        "--workload",
        "ED1",
        "--scale",
        "8192",
        "--json",
        "--folded",
        &folded_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
    assert!(json.contains("\"kernels\":[{\"name\":\"ED1\""), "{json}");
    assert!(json.contains("\"profile\":{\"phases\":["), "{json}");
    assert!(json.contains("\"self_ns\":"), "{json}");

    let stacks = std::fs::read_to_string(&folded).expect("folded file written");
    assert!(stacks.contains("ED1;simulate"), "{stacks}");
    let _ = std::fs::remove_file(&folded);
}

#[test]
fn report_without_a_journal_is_a_clean_error() {
    let out = racesim(&["report"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("journal path"));

    let out = racesim(&["report", "/nonexistent/racesim.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
