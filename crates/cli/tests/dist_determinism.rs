//! Distributed-campaign determinism acceptance test: one golden staged
//! campaign run four ways —
//!
//! 1. sequential (`--threads 1`),
//! 2. in-process parallel (`--threads 4`),
//! 3. distributed over two spawned workers (`--workers 2`),
//! 4. distributed with one worker killed mid-iteration
//!    (`--worker-cmd "… worker --exit-after 1 --only-worker 0"`),
//!
//! must produce **byte-identical checkpoints** and pass `racesim replay`
//! with a non-diverged verdict. The kill run must additionally exit 0,
//! journal the `worker_failed` events, and change nothing downstream —
//! worker death is a scheduling event, not a campaign event.

use std::path::PathBuf;
use std::process::{Command, Output};

fn racesim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_racesim"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// A scratch directory wiped on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("racesim-dist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One staged golden campaign: tiny scale, one iteration, modest budget
/// so the debug-build test stays fast. `--faults none` because injected
/// board-fault schedules are keyed per process and so are the one
/// campaign dimension that is *not* distribution-invariant.
fn run_campaign(scratch: &Scratch, tag: &str, extra: &[&str]) -> (String, String) {
    let ckpt = scratch.path(&format!("{tag}.ckpt"));
    let journal = scratch.path(&format!("{tag}.jsonl"));
    let mut args = vec![
        "tune",
        "--core",
        "a53",
        "--scale",
        "65536",
        "--budget",
        "80",
        "--max-iterations",
        "1",
        "--seed",
        "7",
        "--faults",
        "none",
        "--checkpoint",
        &ckpt,
        "--telemetry",
        &journal,
    ];
    args.extend_from_slice(extra);
    let out = racesim(&args);
    assert!(
        out.status.success(),
        "{tag} run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (ckpt, journal)
}

fn checkpoint_bytes(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read checkpoint {path}: {e}"))
}

fn assert_replay_passes(journal: &str, tag: &str) {
    let out = racesim(&["replay", journal]);
    assert!(
        out.status.success(),
        "{tag} replay exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("verdict:             match") || text.contains("verdict:             prefix"),
        "{tag} replay verdict diverged:\n{text}"
    );
}

#[test]
fn distributed_campaigns_are_bit_identical_to_sequential() {
    let scratch = Scratch::new("determinism");
    let worker_kill_cmd = format!(
        "{} worker --exit-after 1 --only-worker 0",
        env!("CARGO_BIN_EXE_racesim")
    );

    let (seq_ckpt, seq_journal) = run_campaign(&scratch, "seq", &["--threads", "1"]);
    let (par_ckpt, _) = run_campaign(&scratch, "par", &["--threads", "4"]);
    let (dist_ckpt, dist_journal) =
        run_campaign(&scratch, "dist", &["--threads", "1", "--workers", "2"]);
    let (kill_ckpt, kill_journal) = run_campaign(
        &scratch,
        "kill",
        &[
            "--threads",
            "1",
            "--workers",
            "2",
            "--worker-cmd",
            &worker_kill_cmd,
        ],
    );

    // The tentpole guarantee: all four checkpoints are byte-identical.
    let golden = checkpoint_bytes(&seq_ckpt);
    assert!(!golden.is_empty(), "sequential checkpoint is empty");
    assert_eq!(
        golden,
        checkpoint_bytes(&par_ckpt),
        "--threads 4 checkpoint diverged from sequential"
    );
    assert_eq!(
        golden,
        checkpoint_bytes(&dist_ckpt),
        "--workers 2 checkpoint diverged from sequential"
    );
    assert_eq!(
        golden,
        checkpoint_bytes(&kill_ckpt),
        "worker-kill run checkpoint diverged from sequential"
    );

    // Worker lifecycle is journaled: the healthy distributed run spawned
    // two workers and lost none; the kill run lost at least one and
    // still finished (exit 0 already asserted in run_campaign).
    let dist_lines = std::fs::read_to_string(&dist_journal).expect("dist journal");
    assert_eq!(
        dist_lines
            .lines()
            .filter(|l| l.contains("\"ev\":\"worker_spawned\""))
            .count(),
        2,
        "healthy run spawns exactly its two workers"
    );
    assert!(
        !dist_lines.contains("\"ev\":\"worker_failed\""),
        "healthy run must not record worker failures"
    );
    let kill_lines = std::fs::read_to_string(&kill_journal).expect("kill journal");
    assert!(
        kill_lines.contains("\"ev\":\"worker_failed\""),
        "killed worker must be journaled"
    );
    assert!(
        kill_lines
            .lines()
            .filter(|l| l.contains("\"ev\":\"worker_spawned\""))
            .count()
            > 2,
        "killed worker must be respawned"
    );

    // And the replay gate accepts every journal, distributed or not.
    assert_replay_passes(&seq_journal, "sequential");
    assert_replay_passes(&dist_journal, "distributed");
    assert_replay_passes(&kill_journal, "worker-kill");
}
