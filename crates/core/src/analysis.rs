//! Step 5: per-component error analysis.
//!
//! "Each of the micro-benchmarks we use in step #4 stresses a particular
//! component of the processor, and can thus expose modeling errors related
//! to that component. Step #5 checks whether the modeling of certain
//! processor components, as suggested by high errors for their respective
//! micro-benchmarks, requires further optimization in the simulator."

use crate::validator::BenchResult;
use racesim_kernels::Category;
use std::fmt;

/// Residual error of one benchmark category.
#[derive(Debug, Clone)]
pub struct CategoryError {
    /// The category (processor component it stresses).
    pub category: Category,
    /// Mean absolute CPI error across the category, percent.
    pub mean_error: f64,
    /// The worst benchmark in the category.
    pub worst_bench: String,
    /// Its error, percent.
    pub worst_error: f64,
}

/// A concrete "fix error source" recommendation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// The component implicated.
    pub component: &'static str,
    /// What to do about it.
    pub action: &'static str,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.component, self.action)
    }
}

/// The step-5 report.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Overall mean absolute CPI error, percent.
    pub overall_error: f64,
    /// Per-category residuals, worst first.
    pub categories: Vec<CategoryError>,
    /// Recommended model fixes, if any category exceeds the threshold.
    pub recommendations: Vec<Recommendation>,
}

impl AnalysisReport {
    /// Whether another "fix error source" round is advised.
    pub fn needs_another_round(&self) -> bool {
        !self.recommendations.is_empty()
    }
}

/// Error threshold (percent) above which a category triggers a
/// recommendation.
pub const ATTENTION_THRESHOLD: f64 = 15.0;

/// Analyses per-benchmark results by category and derives fix
/// recommendations, reproducing the paper's step-5 reasoning (indirect
/// branches from `CS1`, FP unit timing from the data-parallel suite,
/// hashing/prefetching from the memory suite, uninitialised arrays from
/// `MM`/`M_Dyn`).
pub fn analyse(results: &[BenchResult]) -> AnalysisReport {
    let overall = results.iter().map(|r| r.error_pct()).sum::<f64>() / results.len().max(1) as f64;

    let mut categories = Vec::new();
    for cat in [
        Category::ControlFlow,
        Category::DataParallel,
        Category::Execution,
        Category::MemoryHierarchy,
        Category::StoreIntensive,
    ] {
        let in_cat: Vec<&BenchResult> = results.iter().filter(|r| r.category == cat).collect();
        if in_cat.is_empty() {
            continue;
        }
        let mean = in_cat.iter().map(|r| r.error_pct()).sum::<f64>() / in_cat.len() as f64;
        let worst = in_cat
            .iter()
            .max_by(|a, b| {
                a.error_pct()
                    .partial_cmp(&b.error_pct())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty category");
        categories.push(CategoryError {
            category: cat,
            mean_error: mean,
            worst_bench: worst.name.clone(),
            worst_error: worst.error_pct(),
        });
    }
    categories.sort_by(|a, b| {
        b.mean_error
            .partial_cmp(&a.mean_error)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut recommendations = Vec::new();
    for c in &categories {
        if c.mean_error < ATTENTION_THRESHOLD && c.worst_error < 2.0 * ATTENTION_THRESHOLD {
            continue;
        }
        let rec = match c.category {
            Category::ControlFlow => Recommendation {
                component: "branch unit",
                action: "add indirect-branch prediction support and re-tune the predictor configuration (cf. CS1)",
            },
            Category::DataParallel => Recommendation {
                component: "FP/SIMD execution units",
                action: "review arithmetic-unit timing/contention and the decoder's dependence information (Capstone-like bugs serialise FP loops)",
            },
            Category::Execution => Recommendation {
                component: "integer execution units",
                action: "review execution latencies and blocking-divider behaviour; check decoder dependence decoding",
            },
            Category::MemoryHierarchy => Recommendation {
                component: "memory subsystem",
                action: "offer additional cache index-hashing schemes and prefetchers (stride, GHB) to the tuner; initialise benchmark arrays before simulation",
            },
            Category::StoreIntensive => Recommendation {
                component: "store path",
                action: "review store-buffer depth and store-to-load forwarding",
            },
            // SPEC proxies and probes are validation/estimation sets, not
            // tuning targets; they carry no component attribution.
            Category::SpecProxy | Category::Probe => continue,
        };
        if !recommendations.contains(&rec) {
            recommendations.push(rec);
        }
    }

    AnalysisReport {
        overall_error: overall,
        categories,
        recommendations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str, cat: Category, hw: f64, sim: f64) -> BenchResult {
        BenchResult {
            name: name.to_string(),
            category: cat,
            hw_cpi: hw,
            sim_cpi: sim,
        }
    }

    #[test]
    fn clean_results_need_no_further_rounds() {
        let results = vec![
            bench("CCa", Category::ControlFlow, 1.0, 1.02),
            bench("DP1d", Category::DataParallel, 2.0, 2.05),
            bench("MC", Category::MemoryHierarchy, 3.0, 3.1),
        ];
        let rep = analyse(&results);
        assert!(rep.overall_error < 5.0);
        assert!(!rep.needs_another_round());
    }

    #[test]
    fn a_bad_component_is_named_with_a_fix() {
        let results = vec![
            bench("CCa", Category::ControlFlow, 1.0, 1.01),
            bench("CS1", Category::ControlFlow, 1.0, 2.5), // 150% error
            bench("MC", Category::MemoryHierarchy, 3.0, 3.05),
        ];
        let rep = analyse(&results);
        assert!(rep.needs_another_round());
        assert_eq!(rep.recommendations[0].component, "branch unit");
        assert_eq!(rep.categories[0].category, Category::ControlFlow);
        assert_eq!(rep.categories[0].worst_bench, "CS1");
        let text = rep.recommendations[0].to_string();
        assert!(text.contains("indirect"));
    }

    #[test]
    fn categories_are_sorted_by_severity() {
        let results = vec![
            bench("MC", Category::MemoryHierarchy, 1.0, 1.8),
            bench("CCa", Category::ControlFlow, 1.0, 1.2),
            bench("ED1", Category::Execution, 1.0, 4.0),
        ];
        let rep = analyse(&results);
        assert_eq!(rep.categories[0].category, Category::Execution);
        assert_eq!(
            rep.categories.last().unwrap().category,
            Category::ControlFlow
        );
    }
}
