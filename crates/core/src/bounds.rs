//! Static pre-simulation elimination: the campaign-level adapter between
//! the analyzer's CPI bounds engine and the racing tuner.
//!
//! [`CampaignBounds`] owns, per benchmark instance, the static
//! [`KernelBounds`] of its program and the hardware CPI measured once on
//! a **clean** reference board at construction time. That makes
//! [`StaticBounds::cost_lower_bound`] a pure function of the candidate
//! configuration — no board access, no RNG, no shared mutable state — so
//! elimination decisions are identical under `--threads`, `--workers`,
//! and on replay, which is what lets `racesim replay` verify
//! `static_eliminated` events bit for bit.
//!
//! The lower bound is sound with respect to the campaign's cost metric:
//! for an instance with hardware CPI `m` and static interval `[lo, hi]`,
//! every simulated CPI lands inside the interval (the analyzer's
//! soundness contract), so the CPI-error term is at least
//! `100 * min(|lo - m|, |hi - m|) / m` when `m` falls outside the
//! interval, and unbounded below by `0` otherwise. Terms the engine
//! cannot bound (the branch-misprediction error of
//! [`CostMetric::CpiAndBranch`]) are lower-bounded by `0`.

use crate::params::apply;
use crate::validator::CostMetric;
use racesim_analyzer::bounds::{BoundsOptions, KernelBounds};
use racesim_hw::HardwarePlatform;
use racesim_kernels::Workload;
use racesim_race::{Configuration, ParamSpace, StaticBounds};
use racesim_sim::Platform;

/// Per-campaign static bounds: kernel intervals plus clean-board
/// hardware CPIs, evaluated against candidate configurations.
#[derive(Debug)]
pub struct CampaignBounds {
    base: Platform,
    metric: CostMetric,
    kernels: Vec<KernelBounds>,
    hw_cpi: Vec<f64>,
}

impl CampaignBounds {
    /// Builds the bounds for `suite`, measuring every benchmark once on
    /// `board`. The board must be the clean reference board — fault
    /// injection would make the cached CPIs (and hence every elimination
    /// decision) depend on the fault RNG, breaking replay.
    ///
    /// # Errors
    ///
    /// Propagates trace-recording and measurement failures.
    pub fn measure(
        board: &dyn HardwarePlatform,
        suite: &[Workload],
        base: Platform,
        metric: CostMetric,
    ) -> Result<CampaignBounds, String> {
        let opts = BoundsOptions::default();
        let mut kernels = Vec::with_capacity(suite.len());
        let mut hw_cpi = Vec::with_capacity(suite.len());
        for w in suite {
            let trace = w.trace().map_err(|e| format!("tracing {}: {e}", w.name))?;
            let counters = board
                .measure_trace(&w.name, &trace, w.uninit_data)
                .map_err(|e| format!("measuring {}: {e}", w.name))?;
            kernels.push(KernelBounds::build(&w.name, &w.program, &opts));
            hw_cpi.push(counters.cpi());
        }
        Ok(CampaignBounds {
            base,
            metric,
            kernels,
            hw_cpi,
        })
    }

    /// The static kernel bounds, instance-aligned with the suite.
    pub fn kernels(&self) -> &[KernelBounds] {
        &self.kernels
    }

    /// The clean-board hardware CPI of each instance.
    pub fn hw_cpi(&self) -> &[f64] {
        &self.hw_cpi
    }

    /// A sound lower bound on the metric's per-instance cost given the
    /// CPI-error lower bound `cpi_lb` (in percent).
    fn metric_floor(&self, cpi_lb: f64) -> f64 {
        match self.metric {
            CostMetric::CpiError => cpi_lb,
            // The branch term is >= 0; only the CPI share is bounded.
            CostMetric::CpiAndBranch { branch_weight } => {
                (1.0 - branch_weight.clamp(0.0, 1.0)) * cpi_lb
            }
        }
    }
}

impl StaticBounds for CampaignBounds {
    fn cost_lower_bound(&self, space: &ParamSpace, cfg: &Configuration) -> Option<f64> {
        if self.kernels.is_empty() {
            return None;
        }
        let platform = apply(space, cfg, &self.base);
        let mut total = 0.0;
        for (kb, &m) in self.kernels.iter().zip(&self.hw_cpi) {
            if !(m.is_finite() && m > 0.0) {
                return None; // cannot bound percentage error against this CPI
            }
            let iv = kb.cpi_interval(&platform);
            let cpi_lb = if iv.contains(m) {
                0.0
            } else {
                100.0 * (iv.lo - m).abs().min((iv.hi - m).abs()) / m
            };
            total += self.metric_floor(cpi_lb);
        }
        Some(total / self.kernels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{best_guess, build_space};
    use crate::Revision;
    use racesim_hw::ReferenceBoard;
    use racesim_kernels::{microbench_suite_initialized, Scale};
    use racesim_uarch::CoreKind;

    fn bounds() -> CampaignBounds {
        CampaignBounds::measure(
            &ReferenceBoard::firefly_a53(),
            &microbench_suite_initialized(Scale::TINY),
            Platform::a53_like(),
            CostMetric::CpiError,
        )
        .expect("clean board measures")
    }

    #[test]
    fn best_guess_config_is_never_eliminable_against_itself() {
        let b = bounds();
        let space = build_space(CoreKind::InOrder, Revision::Fixed);
        let cfg = best_guess(&space, CoreKind::InOrder);
        let lb = b
            .cost_lower_bound(&space, &cfg)
            .expect("suite is non-empty");
        assert!(lb >= 0.0, "lower bounds are non-negative: {lb}");
        // The bound must be sound: it can never exceed the true cost of
        // the configuration. The best-guess config's true CpiError on
        // the reference board is modest; a bound above it would
        // eventually eliminate the true optimum.
        assert!(lb < 100.0, "bound stays below the trivial ceiling: {lb}");
    }

    #[test]
    fn bound_is_a_pure_function_of_the_configuration() {
        let b = bounds();
        let space = build_space(CoreKind::InOrder, Revision::Fixed);
        let cfg = best_guess(&space, CoreKind::InOrder);
        let a = b.cost_lower_bound(&space, &cfg).unwrap();
        let c = b.cost_lower_bound(&space, &cfg).unwrap();
        assert_eq!(a.to_bits(), c.to_bits(), "bit-identical across calls");
    }

    #[test]
    fn empty_suites_prove_nothing() {
        let b = CampaignBounds::measure(
            &ReferenceBoard::firefly_a53(),
            &[],
            Platform::a53_like(),
            CostMetric::CpiError,
        )
        .unwrap();
        let space = build_space(CoreKind::InOrder, Revision::Fixed);
        let cfg = best_guess(&space, CoreKind::InOrder);
        assert_eq!(b.cost_lower_bound(&space, &cfg), None);
    }
}
