//! One description of a tuning campaign, shared by `racesim tune` (which
//! records it into the telemetry journal) and `racesim replay` (which
//! reconstructs it from that journal and re-runs it).
//!
//! The spec captures exactly the inputs the campaign outcome is a
//! deterministic function of: core, scale, budget, seed, thread count,
//! watchdog timeout, fault plan, and the frozen dimensions. Everything
//! else (the suite, the parameter space, the base platform, the cost
//! metric) is derived from those deterministically, the same way on both
//! sides. The model revision is pinned to [`Revision::Fixed`] — `tune`
//! always drives the fixed model.

use crate::bounds::CampaignBounds;
use crate::fallible::LazySuiteCost;
use crate::params::{build_space, Revision};
use crate::validator::{CostMetric, Validator, ValidatorSettings};
use racesim_hw::{FaultPlan, FaultyBoard, HardwarePlatform, ReferenceBoard};
use racesim_kernels::{Scale, Workload};
use racesim_race::replay::{decode_value, encode_value};
use racesim_race::{
    ParamSpace, RacingTuner, TryCostFn, TuneResult, TunerSettings, Value, Watchdog,
};
use racesim_sim::Platform;
use racesim_telemetry::{Event, JournalEntry, Telemetry};
use racesim_uarch::CoreKind;
use std::sync::Arc;
use std::time::Duration;

/// Everything a campaign's outcome deterministically depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Core being tuned.
    pub kind: CoreKind,
    /// Dynamic-instruction scale.
    pub scale: Scale,
    /// Racing evaluation budget.
    pub budget: u64,
    /// Tuner RNG seed.
    pub seed: u64,
    /// Evaluation threads (results are thread-count invariant; this only
    /// affects wall time).
    pub threads: usize,
    /// Spawned evaluation worker processes (0 = all in-process). Like
    /// `threads`, a non-semantic dimension: distributed evaluation is
    /// bit-identical to sequential, so replay always re-runs in-process
    /// regardless of what the recording used.
    pub workers: usize,
    /// Iteration cap for staged runs (`None` = run to completion).
    pub max_iterations: Option<usize>,
    /// Whether the static CPI bounds engine pre-eliminates provably
    /// dominated configurations each iteration. Semantic: eliminations
    /// change which configurations race, so replay re-runs with the
    /// recorded setting and verifies the `static_eliminated` events.
    pub static_bounds: bool,
    /// Per-evaluation watchdog timeout in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Fault-injection profile name (`none`, `transient`, `aggressive`).
    pub fault_profile: String,
    /// Fault-plan seed.
    pub fault_seed: u64,
    /// Frozen dimensions as `(parameter name, value code)` pairs, in the
    /// order they were applied.
    pub frozen: Vec<(String, String)>,
}

/// The assembled evaluation stack of a campaign: the tunable space, the
/// latency-estimated base platform, and the (possibly fault-injected)
/// lazy suite cost function.
#[derive(Debug)]
pub struct CampaignStack {
    /// The tunable parameter space for the spec's core.
    pub space: ParamSpace,
    /// The base platform after latency estimation (steps 1–2).
    pub base: Platform,
    /// The workloads being raced (same order as the cost instances).
    pub suite: Vec<Workload>,
    /// The fallible cost function over the suite.
    pub cost: Arc<LazySuiteCost>,
    /// The static bounds engine, when the spec enables it. Built against
    /// the clean reference board so elimination decisions are replayable.
    pub bounds: Option<Arc<CampaignBounds>>,
}

impl CampaignSpec {
    /// The `--core` spelling of the spec's core.
    pub fn core_name(&self) -> &'static str {
        match self.kind {
            CoreKind::InOrder => "a53",
            CoreKind::OutOfOrder => "a72",
        }
    }

    /// The journal event recording this spec (`campaign_config`).
    pub fn config_event(&self) -> Event {
        Event::CampaignConfig {
            core: self.core_name().to_string(),
            scale: self.scale.divisor(),
            faults: self.fault_profile.clone(),
            fault_seed: self.fault_seed,
            timeout_ms: self.timeout_ms.unwrap_or(0),
            threads: self.threads,
            workers: self.workers,
            max_iterations: self.max_iterations.unwrap_or(0) as u64,
            static_bounds: self.static_bounds,
        }
    }

    /// One `frozen` journal event per pinned dimension.
    pub fn frozen_events(&self) -> Vec<Event> {
        self.frozen
            .iter()
            .map(|(param, code)| Event::Frozen {
                param: param.clone(),
                code: code.clone(),
            })
            .collect()
    }

    /// Records frozen dimensions from the tuner's `(index, value)` form.
    pub fn set_frozen(&mut self, space: &ParamSpace, frozen: &[(usize, Value)]) {
        self.frozen = frozen
            .iter()
            .map(|(idx, v)| (space.params()[*idx].name.clone(), encode_value(*v)))
            .collect();
    }

    /// Reconstructs the spec from a recorded journal: the first
    /// `campaign_config` (stack shape), the first `campaign_start` (seed
    /// and budget) and the `frozen` events.
    ///
    /// `max_iterations` is deliberately dropped — a staged recording is
    /// verified as a *prefix* of the full campaign the replay runs.
    ///
    /// # Errors
    ///
    /// Fails when the journal predates `campaign_config` (there is not
    /// enough information to rebuild the stack) or has no
    /// `campaign_start`.
    pub fn from_journal(entries: &[JournalEntry]) -> Result<CampaignSpec, String> {
        let mut config = None;
        let mut start = None;
        let mut frozen: Vec<(String, String)> = Vec::new();
        for e in entries {
            match &e.event {
                Event::CampaignConfig {
                    core,
                    scale,
                    faults,
                    fault_seed,
                    timeout_ms,
                    threads,
                    workers,
                    static_bounds,
                    ..
                } if config.is_none() => {
                    let kind = match core.as_str() {
                        "a53" => CoreKind::InOrder,
                        "a72" => CoreKind::OutOfOrder,
                        other => return Err(format!("campaign_config has unknown core {other:?}")),
                    };
                    config = Some((
                        kind,
                        Scale::divide_by(*scale),
                        faults.clone(),
                        *fault_seed,
                        *timeout_ms,
                        *threads,
                        *workers,
                        *static_bounds,
                    ));
                }
                Event::CampaignStart { seed, budget, .. } if start.is_none() => {
                    start = Some((*seed, *budget));
                }
                Event::Frozen { param, code } if !frozen.iter().any(|(p, _)| p == param) => {
                    frozen.push((param.clone(), code.clone()));
                }
                _ => {}
            }
        }
        let (kind, scale, fault_profile, fault_seed, timeout_ms, threads, workers, static_bounds) =
            config.ok_or_else(|| {
                "journal has no campaign_config event (recorded before replay support?); \
                 re-record it with a current `racesim tune --telemetry`"
                    .to_string()
            })?;
        let (seed, budget) =
            start.ok_or_else(|| "journal contains no campaign_start event".to_string())?;
        // Validate the profile here so replay fails early and clearly.
        FaultPlan::from_profile(&fault_profile, fault_seed)?;
        Ok(CampaignSpec {
            kind,
            scale,
            budget: budget as u64,
            seed,
            threads: threads.max(1),
            workers,
            max_iterations: None,
            static_bounds,
            timeout_ms: (timeout_ms != 0).then_some(timeout_ms),
            fault_profile,
            fault_seed,
            frozen,
        })
    }

    /// The reference board for the spec's core.
    pub fn board(&self) -> ReferenceBoard {
        match self.kind {
            CoreKind::InOrder => ReferenceBoard::firefly_a53(),
            CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
        }
    }

    fn validator_settings(&self) -> ValidatorSettings {
        ValidatorSettings {
            kind: self.kind,
            revision: Revision::Fixed,
            scale: self.scale,
            tuner: self.tuner_settings(),
            metric: CostMetric::CpiError,
        }
    }

    /// The tuner settings this spec denotes.
    pub fn tuner_settings(&self) -> TunerSettings {
        TunerSettings {
            budget: self.budget,
            seed: self.seed,
            threads: self.threads,
            max_iterations: self.max_iterations,
            ..TunerSettings::default()
        }
    }

    /// Assembles the evaluation stack: board (fault-injected if the spec
    /// says so), latency-estimated base platform, parameter space, and
    /// the lazy suite cost — all threaded through `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates probe/measurement failures and unknown fault profiles.
    pub fn build_stack(&self, telemetry: &Telemetry) -> Result<CampaignStack, String> {
        let board = self.board();
        let settings = self.validator_settings();
        let v = Validator::new(&board, settings.clone());
        let base = v.base_platform().map_err(|e| e.to_string())?;
        let space = build_space(self.kind, settings.revision);
        let decoder = v.decoder();
        let suite = v.suite();
        let tune_board: Arc<dyn HardwarePlatform> =
            match FaultPlan::from_profile(&self.fault_profile, self.fault_seed)? {
                Some(plan) => Arc::new(
                    FaultyBoard::new(self.board().with_telemetry(telemetry.clone()), plan)
                        .with_telemetry(telemetry.clone()),
                ),
                None => Arc::new(self.board().with_telemetry(telemetry.clone())),
            };
        // The bounds engine measures on the clean board (never the
        // fault-injected one): the cached hardware CPIs must be a pure
        // function of the suite for eliminations to replay bit-for-bit.
        let bounds = if self.static_bounds {
            Some(Arc::new(CampaignBounds::measure(
                &board,
                &suite,
                base.clone(),
                settings.metric,
            )?))
        } else {
            None
        };
        let mut cost =
            LazySuiteCost::new(tune_board, &suite, base.clone(), decoder, settings.metric)
                .map_err(|e| e.to_string())?
                .with_telemetry(telemetry.clone());
        if let Some(b) = &bounds {
            // Soundness gate: every simulated CPI must land inside its
            // static interval (debug builds assert; see fallible.rs).
            cost = cost.with_bounds_check(b.kernels().to_vec());
        }
        Ok(CampaignStack {
            space,
            base,
            suite,
            cost: Arc::new(cost),
            bounds,
        })
    }

    /// Decodes the spec's frozen dimensions against `space`.
    ///
    /// # Errors
    ///
    /// Rejects unknown parameters and codes that do not fit the domain.
    pub fn decode_frozen(&self, space: &ParamSpace) -> Result<Vec<(usize, Value)>, String> {
        self.frozen
            .iter()
            .map(|(param, code)| {
                let v = decode_value(space, param, code)?;
                Ok((space.index_of(param), v))
            })
            .collect()
    }

    /// Runs the campaign this spec describes from scratch and returns
    /// the tuner result. Used by `racesim replay` to produce the fresh
    /// journal that is verified against the recording.
    ///
    /// # Errors
    ///
    /// Propagates stack-assembly failures and bad frozen codes.
    pub fn run(&self, telemetry: &Telemetry) -> Result<TuneResult, String> {
        let stack = self.build_stack(telemetry)?;
        let n_instances = stack.cost.len();
        let mut tuner = RacingTuner::new(self.tuner_settings()).with_telemetry(telemetry.clone());
        if let Some(b) = &stack.bounds {
            tuner = tuner.with_static_bounds(Arc::clone(b) as _);
        }
        let frozen = self.decode_frozen(&stack.space)?;
        if !frozen.is_empty() {
            tuner = tuner.with_frozen(frozen);
        }
        let result = match self.timeout_ms {
            Some(ms) => {
                let dog = Watchdog::new(
                    Arc::clone(&stack.cost) as Arc<dyn TryCostFn + Send + Sync>,
                    Duration::from_millis(ms),
                );
                tuner.try_tune(&stack.space, &dog, n_instances)
            }
            None => tuner.try_tune(&stack.space, &*stack.cost, n_instances),
        };
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            kind: CoreKind::InOrder,
            scale: Scale::divide_by(32768),
            budget: 60,
            seed: 0xBADC_AB1E,
            threads: 1,
            workers: 2,
            max_iterations: Some(1),
            static_bounds: true,
            timeout_ms: Some(60_000),
            fault_profile: "transient".to_string(),
            fault_seed: 7,
            frozen: vec![("x".to_string(), "C0".to_string())],
        }
    }

    #[test]
    fn spec_roundtrips_through_its_own_journal_events() {
        let s = spec();
        let mut entries: Vec<JournalEntry> = vec![JournalEntry {
            t_us: 0,
            event: s.config_event(),
        }];
        entries.extend(
            s.frozen_events()
                .into_iter()
                .map(|event| JournalEntry { t_us: 0, event }),
        );
        entries.push(JournalEntry {
            t_us: 1,
            event: Event::CampaignStart {
                seed: s.seed,
                budget: s.budget as usize,
                n_instances: 9,
                n_params: 4,
            },
        });
        let back = CampaignSpec::from_journal(&entries).expect("reconstructs");
        // Staged caps are segment-local: replay runs to completion.
        assert_eq!(back.max_iterations, None);
        assert_eq!(
            CampaignSpec {
                max_iterations: None,
                ..s
            },
            back
        );
    }

    #[test]
    fn journals_without_campaign_config_are_rejected() {
        let entries = vec![JournalEntry {
            t_us: 0,
            event: Event::CampaignStart {
                seed: 1,
                budget: 10,
                n_instances: 2,
                n_params: 2,
            },
        }];
        let err = CampaignSpec::from_journal(&entries).unwrap_err();
        assert!(err.contains("campaign_config"), "{err}");
    }
}
