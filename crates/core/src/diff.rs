//! Differential regression harness: per-kernel CPI comparison between two
//! model revisions, two platform configurations, or two builds.
//!
//! Each side of a diff is a list of [`KernelCpi`] records. Cycles and
//! instructions are kept as the simulator's integer counters, so a record
//! written to a baseline file by one build and re-read by another is
//! bit-exact — no float formatting is involved. `racesim diff --save`
//! writes that baseline; a later `racesim diff --a baseline.txt` compares
//! the current build against it, which is how the CI perf/correctness
//! gate detects a model change that silently shifts kernel timing.

use crate::params::Revision;
use crate::validator::{CostMetric, Validator, ValidatorSettings};
use racesim_hw::ReferenceBoard;
use racesim_kernels::{Scale, Workload};
use racesim_race::TunerSettings;
use racesim_sim::{Platform, SimOptions, Simulator};
use racesim_uarch::CoreKind;
use std::fmt::Write as _;

/// Header line identifying a saved CPI baseline file.
pub const BASELINE_HEADER: &str = "# racesim cpi baseline v1";

/// One kernel's simulated timing, in exact integer counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCpi {
    /// Kernel name.
    pub name: String,
    /// Kernel category (display string).
    pub category: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Dynamic instructions timed.
    pub instructions: u64,
}

impl KernelCpi {
    /// Cycles per instruction (0 when nothing ran).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// Simulates `workloads` on `platform` and returns their timing records.
///
/// # Errors
///
/// Propagates trace-recording and simulation failures.
pub fn capture_platform(
    platform: &Platform,
    decoder: racesim_decoder::Decoder,
    workloads: &[Workload],
) -> Result<Vec<KernelCpi>, String> {
    let sim = Simulator::with_decoder(platform.clone(), decoder, SimOptions::default());
    workloads
        .iter()
        .map(|w| {
            let trace = w
                .trace()
                .map_err(|e| format!("tracing {} failed: {e}", w.name))?;
            let stats = sim
                .run(&trace)
                .map_err(|e| format!("simulating {} failed: {e}", w.name))?;
            Ok(KernelCpi {
                name: w.name.clone(),
                category: w.category.to_string(),
                cycles: stats.core.cycles,
                instructions: stats.core.instructions,
            })
        })
        .collect()
}

/// Captures the micro-benchmark suite of one model revision on one core:
/// latency-estimated base platform, revision-specific decoder and suite.
/// This is the DESIGN §6b axis — `Revision::Initial` vs `Revision::Fixed`
/// differ in decoder quirks and uninitialised-array handling, and the
/// diff pinpoints exactly which kernels those differences move.
///
/// # Errors
///
/// Propagates probe, trace, and simulation failures.
pub fn capture_revision(
    kind: CoreKind,
    revision: Revision,
    scale: Scale,
) -> Result<Vec<KernelCpi>, String> {
    let board = match kind {
        CoreKind::InOrder => ReferenceBoard::firefly_a53(),
        CoreKind::OutOfOrder => ReferenceBoard::firefly_a72(),
    };
    let settings = ValidatorSettings {
        kind,
        revision,
        scale,
        tuner: TunerSettings::default(),
        metric: CostMetric::CpiError,
    };
    let v = Validator::new(&board, settings);
    let base = v.base_platform().map_err(|e| e.to_string())?;
    let decoder = v.decoder();
    let suite = v.suite();
    capture_platform(&base, decoder, &suite)
}

/// Serialises records to the baseline text format (exact integers only).
pub fn render_baseline(label: &str, records: &[KernelCpi]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{BASELINE_HEADER}");
    let _ = writeln!(out, "label = {label}");
    for r in records {
        let _ = writeln!(
            out,
            "k {} {} {} {}",
            r.cycles, r.instructions, r.category, r.name
        );
    }
    out
}

/// Whether `text` looks like a saved baseline (so the CLI can tell a
/// baseline path from a platform config path).
pub fn is_baseline(text: &str) -> bool {
    text.lines().next().map(str::trim) == Some(BASELINE_HEADER)
}

/// Parses a baseline produced by [`render_baseline`], returning its label
/// and records.
///
/// # Errors
///
/// Rejects files without the [`BASELINE_HEADER`] and malformed `k` lines.
pub fn parse_baseline(text: &str) -> Result<(String, Vec<KernelCpi>), String> {
    if !is_baseline(text) {
        return Err(format!("not a CPI baseline (missing {BASELINE_HEADER:?})"));
    }
    let mut label = String::from("baseline");
    let mut records = Vec::new();
    for (n, line) in text.lines().enumerate().skip(1) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("label =") {
            label = rest.trim().to_string();
            continue;
        }
        let Some(rest) = line.strip_prefix("k ") else {
            return Err(format!("baseline line {}: unrecognised {line:?}", n + 1));
        };
        let mut parts = rest.splitn(4, ' ');
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, String> {
            tok.ok_or_else(|| format!("baseline line {}: missing {what}", n + 1))?
                .parse::<u64>()
                .map_err(|e| format!("baseline line {}: bad {what}: {e}", n + 1))
        };
        let cycles = parse(parts.next(), "cycles")?;
        let instructions = parse(parts.next(), "instructions")?;
        let category = parts
            .next()
            .ok_or_else(|| format!("baseline line {}: missing category", n + 1))?
            .to_string();
        let name = parts
            .next()
            .ok_or_else(|| format!("baseline line {}: missing name", n + 1))?
            .to_string();
        records.push(KernelCpi {
            name,
            category,
            cycles,
            instructions,
        });
    }
    Ok((label, records))
}

/// One kernel's comparison across the two sides.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Kernel name.
    pub name: String,
    /// CPI on side A.
    pub cpi_a: f64,
    /// CPI on side B.
    pub cpi_b: f64,
    /// Relative divergence in percent, |a − b| / b · 100 (∞ when only
    /// one side is zero).
    pub rel_pct: f64,
    /// Whether this kernel exceeds the tolerance.
    pub diverged: bool,
}

/// The full differential report.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiDiff {
    /// Label of side A.
    pub label_a: String,
    /// Label of side B.
    pub label_b: String,
    /// Tolerance in percent (0 = bit-exact CPI required).
    pub tolerance_pct: f64,
    /// Per-kernel rows for kernels present on both sides, in side-A order.
    pub rows: Vec<DiffRow>,
    /// Kernels only side A has (counted as divergence).
    pub only_a: Vec<String>,
    /// Kernels only side B has (counted as divergence).
    pub only_b: Vec<String>,
}

/// Compares two captures kernel-by-kernel under `tolerance_pct`.
pub fn diff_records(
    label_a: &str,
    a: &[KernelCpi],
    label_b: &str,
    b: &[KernelCpi],
    tolerance_pct: f64,
) -> CpiDiff {
    let rows = a
        .iter()
        .filter_map(|ra| {
            let rb = b.iter().find(|rb| rb.name == ra.name)?;
            let (ca, cb) = (ra.cpi(), rb.cpi());
            let rel_pct = if cb != 0.0 {
                ((ca - cb) / cb * 100.0).abs()
            } else if ca == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            let diverged = if tolerance_pct == 0.0 {
                ca.to_bits() != cb.to_bits()
            } else {
                rel_pct > tolerance_pct
            };
            Some(DiffRow {
                name: ra.name.clone(),
                cpi_a: ca,
                cpi_b: cb,
                rel_pct,
                diverged,
            })
        })
        .collect();
    let only = |xs: &[KernelCpi], ys: &[KernelCpi]| -> Vec<String> {
        xs.iter()
            .filter(|x| !ys.iter().any(|y| y.name == x.name))
            .map(|x| x.name.clone())
            .collect()
    };
    CpiDiff {
        label_a: label_a.to_string(),
        label_b: label_b.to_string(),
        tolerance_pct,
        rows,
        only_a: only(a, b),
        only_b: only(b, a),
    }
}

impl CpiDiff {
    /// Number of kernels beyond tolerance (including one-sided kernels).
    pub fn diverged(&self) -> usize {
        self.rows.iter().filter(|r| r.diverged).count() + self.only_a.len() + self.only_b.len()
    }

    /// Whether anything diverged.
    pub fn has_divergence(&self) -> bool {
        self.diverged() > 0
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cpi diff: A = {}, B = {}", self.label_a, self.label_b);
        if self.tolerance_pct == 0.0 {
            let _ = writeln!(out, "tolerance: exact (bit-identical CPI)");
        } else {
            let _ = writeln!(out, "tolerance: {}%", self.tolerance_pct);
        }
        let w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once("kernel".len()))
            .max()
            .unwrap_or(6);
        let _ = writeln!(
            out,
            "  {:w$}  {:>12}  {:>12}  {:>10}",
            "kernel", "cpi A", "cpi B", "div %"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{} {:w$}  {:>12.6}  {:>12.6}  {:>10.4}",
                if r.diverged { "!" } else { " " },
                r.name,
                r.cpi_a,
                r.cpi_b,
                r.rel_pct,
            );
        }
        for name in &self.only_a {
            let _ = writeln!(out, "! {name:w$}  only in A");
        }
        for name in &self.only_b {
            let _ = writeln!(out, "! {name:w$}  only in B");
        }
        let n = self.diverged();
        if n == 0 {
            let _ = writeln!(out, "verdict: match ({} kernels)", self.rows.len());
        } else {
            let _ = writeln!(out, "verdict: {n} kernel(s) diverge");
        }
        out
    }

    /// Machine-readable report (stable `schema_version: 1`).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                // JSON has no Infinity; the marker matches the journal's.
                esc(if v > 0.0 { "inf" } else { "-inf" })
            }
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"kernel\":{},\"cpi_a\":{},\"cpi_b\":{},\"rel_pct\":{},\"diverged\":{}}}",
                    esc(&r.name),
                    num(r.cpi_a),
                    num(r.cpi_b),
                    num(r.rel_pct),
                    r.diverged
                )
            })
            .collect();
        let names = |xs: &[String]| xs.iter().map(|n| esc(n)).collect::<Vec<_>>().join(",");
        format!(
            "{{\"schema_version\":1,\"label_a\":{},\"label_b\":{},\"tolerance_pct\":{},\
             \"kernels\":[{}],\"only_a\":[{}],\"only_b\":[{}],\"diverged\":{}}}",
            esc(&self.label_a),
            esc(&self.label_b),
            num(self.tolerance_pct),
            rows.join(","),
            names(&self.only_a),
            names(&self.only_b),
            self.diverged()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, cycles: u64, instructions: u64) -> KernelCpi {
        KernelCpi {
            name: name.to_string(),
            category: "memory".to_string(),
            cycles,
            instructions,
        }
    }

    #[test]
    fn baseline_roundtrips_exactly() {
        let records = vec![rec("stream_copy", 123_456, 65_432), rec("mip", 7, 3)];
        let text = render_baseline("a53/fixed", &records);
        assert!(is_baseline(&text));
        let (label, back) = parse_baseline(&text).expect("parses");
        assert_eq!(label, "a53/fixed");
        assert_eq!(back, records);
    }

    #[test]
    fn zero_tolerance_catches_a_single_cycle() {
        let a = vec![rec("k", 1000, 500)];
        let b = vec![rec("k", 1001, 500)];
        let d = diff_records("a", &a, "b", &b, 0.0);
        assert!(d.has_divergence());
        assert_eq!(d.diverged(), 1);
        // Same counters: no divergence.
        let d = diff_records("a", &a, "a2", &a, 0.0);
        assert!(!d.has_divergence());
    }

    #[test]
    fn tolerance_admits_small_drift_and_flags_large() {
        let a = vec![rec("k", 1000, 500), rec("m", 2000, 500)];
        let b = vec![rec("k", 1005, 500), rec("m", 2500, 500)];
        let d = diff_records("a", &a, "b", &b, 1.0);
        assert_eq!(d.diverged(), 1, "{d:?}");
        assert!(!d.rows[0].diverged, "0.5% is within 1%");
        assert!(d.rows[1].diverged, "25% is not");
    }

    #[test]
    fn one_sided_kernels_count_as_divergence() {
        let a = vec![rec("k", 10, 5), rec("gone", 10, 5)];
        let b = vec![rec("k", 10, 5), rec("new", 10, 5)];
        let d = diff_records("a", &a, "b", &b, 5.0);
        assert_eq!(d.only_a, vec!["gone".to_string()]);
        assert_eq!(d.only_b, vec!["new".to_string()]);
        assert!(d.has_divergence());
        let json = d.render_json();
        for key in [
            "\"schema_version\":1",
            "\"label_a\"",
            "\"kernels\"",
            "\"only_a\"",
            "\"only_b\"",
            "\"diverged\":2",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn garbage_baselines_are_rejected_with_line_numbers() {
        assert!(parse_baseline("not a baseline").is_err());
        let text = format!("{BASELINE_HEADER}\nk 1 2 memory ok\nwhat is this\n");
        let err = parse_baseline(&text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }
}
