//! Fault-tolerant cost evaluation against a live board.
//!
//! [`PreparedSuite`](crate::PreparedSuite) measures every benchmark up
//! front, so a single board fault kills the whole validation before the
//! race even starts. [`LazySuiteCost`] instead records the traces eagerly
//! (pure CPU work, no board involved) and measures each benchmark **on
//! first use inside the race**, translating board pathologies into the
//! racing layer's failure taxonomy:
//!
//! * [`MeasureError::Transient`] → [`EvalError::Transient`] — the race
//!   retries with bounded backoff;
//! * any other measurement failure → [`EvalError::Instance`] — the race
//!   quarantines the benchmark and stops spending budget on it;
//! * a simulator failure or non-finite cost → [`EvalError::Config`] — the
//!   candidate configuration is eliminated with a logged reason.
//!
//! A successful measurement is cached, so each benchmark is paid for once
//! per run — the paper's "generate each trace once and reuse it"
//! discipline, extended to the measurements themselves.

use crate::params::apply;
use crate::validator::CostMetric;
use racesim_analyzer::bounds::KernelBounds;
use racesim_decoder::Decoder;
use racesim_hw::{HardwarePlatform, MeasureError, PerfCounters};
use racesim_kernels::Workload;
use racesim_race::{Configuration, EvalError, ParamSpace, TryCostFn};
use racesim_sim::{Platform, SimOptions, Simulator};
use racesim_telemetry::{Event, Telemetry};
use racesim_trace::TraceBuffer;
use std::sync::{Arc, Mutex};

/// A [`TryCostFn`] that simulates candidates against lazily-measured
/// hardware counters. Owns its board (via `Arc`) so it can sit behind a
/// [`racesim_race::Watchdog`], whose evaluation threads need `'static`.
#[derive(Debug)]
pub struct LazySuiteCost {
    base: Platform,
    decoder: Decoder,
    metric: CostMetric,
    board: Arc<dyn HardwarePlatform>,
    names: Vec<String>,
    categories: Vec<racesim_kernels::Category>,
    traces: Vec<Arc<TraceBuffer>>,
    uninit: Vec<bool>,
    // One slot per benchmark; the lock is held across the measurement so
    // a parallel race serialises board access (one board, one measurement
    // at a time) and never measures the same benchmark twice.
    hw: Mutex<Vec<Option<PerfCounters>>>,
    telemetry: Telemetry,
    // Instance-aligned static CPI bounds; debug builds assert every
    // simulated CPI lands inside its interval (the soundness contract
    // the static eliminator relies on).
    bounds: Option<Vec<KernelBounds>>,
}

impl LazySuiteCost {
    /// Records the traces for `workloads` (failing fast on emulation
    /// errors — those are bugs, not board faults) without touching the
    /// board.
    ///
    /// # Errors
    ///
    /// Propagates trace-recording failures.
    pub fn new(
        board: Arc<dyn HardwarePlatform>,
        workloads: &[Workload],
        base: Platform,
        decoder: Decoder,
        metric: CostMetric,
    ) -> Result<LazySuiteCost, MeasureError> {
        let mut names = Vec::new();
        let mut categories = Vec::new();
        let mut traces = Vec::new();
        let mut uninit = Vec::new();
        for w in workloads {
            traces.push(Arc::new(w.trace()?));
            names.push(w.name.clone());
            categories.push(w.category);
            uninit.push(w.uninit_data);
        }
        let slots = vec![None; names.len()];
        Ok(LazySuiteCost {
            base,
            decoder,
            metric,
            board,
            names,
            categories,
            traces,
            uninit,
            hw: Mutex::new(slots),
            telemetry: Telemetry::disabled(),
            bounds: None,
        })
    }

    /// Attaches instance-aligned static CPI bounds: in debug builds,
    /// every evaluation asserts the simulated CPI lands inside its
    /// static interval. A violation means the bounds engine is unsound
    /// (or the timing model moved outside the modelled envelope) —
    /// either way the static eliminator cannot be trusted, so failing
    /// loudly beats silently mis-eliminating configurations.
    pub fn with_bounds_check(mut self, bounds: Vec<KernelBounds>) -> LazySuiteCost {
        assert_eq!(
            bounds.len(),
            self.names.len(),
            "bounds must align with the suite"
        );
        self.bounds = Some(bounds);
        self
    }

    /// Attaches a telemetry handle: every evaluation journals an
    /// `evaluation` event (workload, wall time, cost), every measurement
    /// attempt a `measurement` event, and every classified failure a
    /// `fault` event. The per-candidate simulators inherit the handle,
    /// so `sim.*` metrics cover the tuning loop's simulation work. Costs
    /// nothing when `telemetry` is disabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> LazySuiteCost {
        self.telemetry = telemetry;
        self
    }

    /// Number of benchmarks (the race's instance count).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Benchmark name of `instance`.
    pub fn name(&self, instance: usize) -> &str {
        &self.names[instance]
    }

    /// Benchmark category of `instance`.
    pub fn category(&self, instance: usize) -> racesim_kernels::Category {
        self.categories[instance]
    }

    /// The counters measured so far (`None` = never successfully
    /// measured, e.g. quarantined before first success).
    pub fn measured(&self) -> Vec<Option<PerfCounters>> {
        self.hw
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    /// The cached counters for `instance`, measuring on first use.
    fn counters(&self, instance: usize) -> Result<PerfCounters, EvalError> {
        let mut slots = self.hw.lock().unwrap_or_else(|poison| poison.into_inner());
        if let Some(c) = slots[instance] {
            return Ok(c);
        }
        let sw = self.telemetry.stopwatch();
        let outcome = self.board.measure_trace(
            &self.names[instance],
            &self.traces[instance],
            self.uninit[instance],
        );
        if self.telemetry.is_enabled() {
            self.telemetry.emit(Event::Measurement {
                workload: self.names[instance].clone(),
                micros: sw.elapsed_us(),
                ok: outcome.is_ok(),
            });
        }
        match outcome {
            Ok(c) => {
                slots[instance] = Some(c);
                Ok(c)
            }
            Err(e) if e.is_transient() => Err(self.fault(
                instance,
                "transient",
                EvalError::Transient,
                format!("measuring {}: {e}", self.names[instance]),
            )),
            Err(e) => Err(self.fault(
                instance,
                "instance",
                EvalError::Instance,
                format!("measuring {}: {e}", self.names[instance]),
            )),
        }
    }

    /// Journals a classified failure and wraps it in its [`EvalError`].
    fn fault(
        &self,
        instance: usize,
        kind: &str,
        wrap: fn(String) -> EvalError,
        reason: String,
    ) -> EvalError {
        if self.telemetry.is_enabled() {
            self.telemetry.emit(Event::Fault {
                kind: kind.to_string(),
                workload: self.names[instance].clone(),
                reason: reason.clone(),
            });
        }
        wrap(reason)
    }
}

impl TryCostFn for LazySuiteCost {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let hw = self.counters(instance)?;
        let sw = self.telemetry.stopwatch();
        let platform = apply(space, cfg, &self.base);
        let static_iv = if cfg!(debug_assertions) {
            self.bounds
                .as_ref()
                .map(|b| b[instance].cpi_interval(&platform))
        } else {
            None
        };
        let sim = Simulator::with_decoder(platform, self.decoder, SimOptions::default())
            .with_telemetry(self.telemetry.clone());
        let stats = sim.run(&self.traces[instance]).map_err(|e| {
            self.fault(
                instance,
                "config",
                EvalError::Config,
                format!(
                    "simulator rejected the configuration on {}: {e}",
                    self.names[instance]
                ),
            )
        })?;
        if let Some(iv) = static_iv {
            debug_assert!(
                iv.contains(stats.cpi()),
                "static CPI bounds violated on {}: simulated CPI {} outside {iv}",
                self.names[instance],
                stats.cpi(),
            );
        }
        let cost = self.metric.evaluate(
            stats.cpi(),
            hw.cpi(),
            stats.core.branch_mpki(),
            hw.branch_mpki(),
        );
        if cost.is_finite() {
            if self.telemetry.is_enabled() {
                self.telemetry.emit(Event::Evaluation {
                    workload: self.names[instance].clone(),
                    micros: sw.elapsed_us(),
                    cost,
                });
            }
            Ok(cost)
        } else {
            Err(self.fault(
                instance,
                "config",
                EvalError::Config,
                format!("non-finite cost on {}", self.names[instance]),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{best_guess, build_space};
    use racesim_hw::{FaultPlan, FaultyBoard, ReferenceBoard};
    use racesim_kernels::{microbench_suite_initialized, Scale};
    use racesim_race::{RacingTuner, TunerSettings};
    use racesim_uarch::CoreKind;

    fn suite() -> Vec<Workload> {
        microbench_suite_initialized(Scale::TINY)
    }

    fn cost_with(board: Arc<dyn HardwarePlatform>) -> LazySuiteCost {
        LazySuiteCost::new(
            board,
            &suite(),
            Platform::a53_like(),
            Decoder::new(),
            CostMetric::CpiError,
        )
        .expect("traces record")
    }

    #[test]
    fn measures_lazily_and_caches() {
        let cost = cost_with(Arc::new(ReferenceBoard::firefly_a53()));
        assert!(cost.measured().iter().all(Option::is_none), "lazy");
        let space = build_space(CoreKind::InOrder, crate::Revision::Fixed);
        let cfg = best_guess(&space, CoreKind::InOrder);
        let c0 = cost.try_cost(&cfg, &space, 0).expect("clean board");
        assert!(c0.is_finite());
        assert_eq!(
            cost.measured().iter().filter(|m| m.is_some()).count(),
            1,
            "only the evaluated instance was measured"
        );
        // Cached: a second evaluation reproduces the cost exactly.
        assert_eq!(cost.try_cost(&cfg, &space, 0), Ok(c0));
    }

    #[test]
    fn board_faults_map_onto_the_eval_taxonomy() {
        // 100% transient rate: every measurement attempt fails transiently.
        let cost = cost_with(Arc::new(FaultyBoard::new(
            ReferenceBoard::firefly_a53(),
            FaultPlan::transient(3, 1.0),
        )));
        let space = build_space(CoreKind::InOrder, crate::Revision::Fixed);
        let cfg = best_guess(&space, CoreKind::InOrder);
        assert!(matches!(
            cost.try_cost(&cfg, &space, 0),
            Err(EvalError::Transient(_))
        ));

        // 100% drop rate: persistent board-side fault -> instance fault.
        let cost = cost_with(Arc::new(FaultyBoard::new(
            ReferenceBoard::firefly_a53(),
            FaultPlan {
                drop_rate: 1.0,
                ..FaultPlan::none()
            },
        )));
        assert!(matches!(
            cost.try_cost(&cfg, &space, 0),
            Err(EvalError::Instance(_))
        ));
    }

    #[test]
    fn a_tune_survives_a_moderately_faulty_board() {
        let cost = cost_with(Arc::new(FaultyBoard::new(
            ReferenceBoard::firefly_a53(),
            FaultPlan::transient(11, 0.10),
        )));
        let space = build_space(CoreKind::InOrder, crate::Revision::Fixed);
        let mut settings = TunerSettings {
            budget: 400,
            seed: 9,
            threads: 2,
            ..TunerSettings::default()
        };
        settings.race.retry = racesim_race::RetryPolicy::immediate(4);
        let result = RacingTuner::new(settings).try_tune(&space, &cost, cost.len());
        assert!(!result.aborted);
        assert!(result.best_cost.is_finite(), "{}", result.best_cost);
        assert!(result.evals_used <= 400);
    }
}
