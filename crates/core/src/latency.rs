//! Step 2: latency estimation with lmbench-style probes.
//!
//! "We estimate the access time of the L1 data and instruction caches in
//! addition to the L2 cache using the lmbench micro-benchmarks, and plug
//! them into the timing models."
//!
//! The estimator runs `lat_mem_rd`-style dependent pointer chases of
//! growing footprint **on the hardware platform** and reads the load-to-use
//! latency off the plateaus: an array inside the L1 exposes the L1
//! latency, between L1 and L2 the L2 latency, and beyond the L2 the DRAM
//! latency (inflated by TLB effects on real hardware — an honest source
//! of estimation error the tuner later corrects for).

use racesim_hw::{HardwarePlatform, MeasureError};
use racesim_kernels::probes;
use racesim_sim::Platform;

/// Estimated load-to-use latencies, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyEstimates {
    /// L1D hit latency.
    pub l1d: u64,
    /// Additional L2 latency beyond the L1 lookup.
    pub l2: u64,
    /// Additional DRAM latency beyond the L2 lookup.
    pub dram: u64,
}

/// Per-load latency of one probe on the platform.
fn probe_latency(hw: &dyn HardwarePlatform, size_kb: u32) -> Result<f64, MeasureError> {
    let w = probes::lat_mem_rd(size_kb, 64);
    let trace = w.trace()?;
    let counters = hw.measure_trace(&w.name, &trace, false)?;
    let summary = trace.summary();
    // The probe is four dependent loads plus two loop instructions per
    // iteration; the loop overhead dual-issues under the loads, so
    // cycles/load converges on the load-to-use latency.
    Ok(counters.cycles as f64 / summary.loads as f64)
}

/// Runs the probe ladder on the platform and derives the three latency
/// estimates.
///
/// # Errors
///
/// Propagates measurement failures from the platform.
pub fn estimate_latencies(hw: &dyn HardwarePlatform) -> Result<LatencyEstimates, MeasureError> {
    // Footprints chosen to sit well inside L1 (8 KiB), well inside L2 but
    // beyond L1 (128 KiB), and beyond L2 (4 MiB).
    let l1 = probe_latency(hw, 8)?;
    let l2 = probe_latency(hw, 128)?;
    let mem = probe_latency(hw, 4096)?;
    let l1d = l1.round().max(1.0) as u64;
    let l2_extra = (l2 - l1).round().max(1.0) as u64;
    let dram_extra = (mem - l2).round().max(1.0) as u64;
    Ok(LatencyEstimates {
        l1d,
        l2: l2_extra,
        dram: dram_extra,
    })
}

/// Plugs the estimates into a platform (step 2's output feeding step 3).
pub fn apply_estimates(platform: &mut Platform, est: &LatencyEstimates) {
    platform.mem.l1d.latency = est.l1d;
    platform.mem.l2.latency = est.l2;
    platform.mem.dram.latency = est.dram;
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_hw::ReferenceBoard;

    #[test]
    fn ladder_is_monotone_and_plausible() {
        let hw = ReferenceBoard::firefly_a53();
        let l1 = probe_latency(&hw, 8).unwrap();
        let l2 = probe_latency(&hw, 128).unwrap();
        let mem = probe_latency(&hw, 4096).unwrap();
        assert!(l1 < l2, "L1 {l1} < L2 {l2}");
        assert!(l2 < mem, "L2 {l2} < mem {mem}");
        assert!((2.0..=8.0).contains(&l1), "L1 load-to-use {l1}");
    }

    #[test]
    fn estimates_land_near_the_hidden_truth() {
        // The hidden A53 has l1d=3; estimates may be off by a little —
        // that is the realistic estimation error the paper accepts.
        let hw = ReferenceBoard::firefly_a53();
        let est = estimate_latencies(&hw).unwrap();
        assert!(
            (2..=6).contains(&est.l1d),
            "L1 estimate: {} cycles",
            est.l1d
        );
        assert!((8..=40).contains(&est.l2), "L2 estimate: {}", est.l2);
        assert!(
            (80..=400).contains(&est.dram),
            "DRAM estimate: {}",
            est.dram
        );
    }

    #[test]
    fn estimates_apply_to_a_platform() {
        let mut p = Platform::a53_like();
        let est = LatencyEstimates {
            l1d: 4,
            l2: 19,
            dram: 200,
        };
        apply_estimates(&mut p, &est);
        assert_eq!(p.mem.l1d.latency, 4);
        assert_eq!(p.mem.l2.latency, 19);
        assert_eq!(p.mem.dram.latency, 200);
    }
}
