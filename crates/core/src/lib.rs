//! # racesim-core
//!
//! The paper's primary contribution, end to end: a **systematic
//! methodology for validating a processor simulator against real
//! hardware** (Figure 1).
//!
//! | Step | Paper | This crate |
//! |------|-------|------------|
//! | 1 | "Model based on publicly available information" | [`Platform`] presets from `racesim-sim` |
//! | 2 | "Set latency parameters using micro-benchmarks" (lmbench) | [`latency::estimate_latencies`] — pointer-chase probes run on the board |
//! | 3 | "Approximate remaining unknown parameters" | the default values of the tunable [`param space`](params::build_space) |
//! | 4 | "Tune parameters with iRace" | [`Validator::run`], driving `racesim-race` with a CPI-error cost function |
//! | 5 | "Fix error source?" | [`analysis::analyse`] — per-component residuals and concrete recommendations |
//! | 6 | "Generate tuned model" | [`ValidationOutcome::tuned`] |
//!
//! The crate also implements the paper's *model revisions*: the validation
//! arc starts from a model **without** indirect-branch prediction, GHB
//! prefetching or configurable cache hashing, and with the buggy decoder
//! ([`Revision::Initial`]); step 5's findings then motivate the *fixed*
//! model ([`Revision::Fixed`]) — reproducing the narrative of Section IV-B
//! and Figure 4.
//!
//! Figures 7 and 8 (the cost of *almost*-right configurations) are
//! produced by [`perturb::worst_within_one_step`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod bounds;
pub mod campaign;
pub mod diff;
pub mod fallible;
pub mod latency;
pub mod params;
pub mod perturb;
pub mod pipeline;
pub mod report;
pub mod validator;

pub use bounds::CampaignBounds;
pub use campaign::{CampaignSpec, CampaignStack};
pub use diff::{diff_records, CpiDiff, DiffRow, KernelCpi};
pub use fallible::LazySuiteCost;
pub use params::Revision;
pub use racesim_sim::Platform;
pub use validator::{
    BenchResult, CostMetric, PreparedSuite, ValidationError, ValidationOutcome, Validator,
    ValidatorSettings,
};
