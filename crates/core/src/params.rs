//! The tunable parameter schema (steps 3 and 4).
//!
//! The paper: "we identify 64 parameters that cannot be accurately
//! adjusted using publicly disclosed information or via latency estimation
//! using lmbench. These parameters are passed to irace. … The list
//! includes pipeline and cache hierarchy configuration parameters …
//! reservation station configuration, branch misprediction penalty, window
//! size, cache bandwidth configurations, victim cache entries, serial and
//! parallel tag and data access in cache, among others."
//!
//! This module defines that list for the racesim models — one entry per
//! undisclosed [`Platform`] field, each with the discrete candidate values
//! handed to the racing tuner — and the mechanical `apply` that turns a
//! tuner [`Configuration`] into a concrete [`Platform`].

use racesim_mem::{IndexHash, PrefetchWhere, PrefetcherConfig, Replacement, TagAccess};
use racesim_race::{Configuration, ParamSpace};
use racesim_sim::Platform;
use racesim_uarch::branch::{DirPredictorConfig, IndirectPredictorConfig};
use racesim_uarch::CoreKind;

/// Which state of the simulator's feature set is being validated.
///
/// [`Revision::Initial`] is the model as first brought up (Section IV-B):
/// no indirect-branch predictor, no GHB prefetcher, mask-only cache
/// indexing, the Capstone-like decoder bugs still present, and the two
/// memory kernels still reading uninitialised arrays. [`Revision::Fixed`]
/// is the model after the "fix error source" loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Revision {
    /// First bring-up: abstraction errors still in place.
    Initial,
    /// After the step-5 fixes.
    Fixed,
}

impl Revision {
    /// Whether the decoder bugs are fixed in this revision.
    pub fn decoder_fixed(&self) -> bool {
        matches!(self, Revision::Fixed)
    }

    /// Whether the micro-benchmark arrays are initialised before
    /// simulation in this revision.
    pub fn arrays_initialized(&self) -> bool {
        matches!(self, Revision::Fixed)
    }
}

/// Builds the tunable parameter space for a core kind under a model
/// revision.
///
/// Shared parameters cover the branch unit, execution latencies, cache
/// hierarchy, prefetching and DRAM; kind-specific parameters cover the
/// in-order or out-of-order engine. The `Initial` revision omits the
/// features that model does not yet have.
pub fn build_space(kind: CoreKind, revision: Revision) -> ParamSpace {
    let mut s = ParamSpace::new();
    let fixed = revision == Revision::Fixed;

    // --- Branch unit ---------------------------------------------------
    s.add_categorical(
        "branch.predictor",
        &["bimodal", "gshare", "tournament", "static_taken"],
    );
    s.add_integer("branch.table_bits", &[8, 10, 11, 12]);
    s.add_integer("branch.history_bits", &[4, 6, 8, 10, 12]);
    s.add_integer("branch.btb_entries", &[128, 256, 512, 1024, 2048]);
    s.add_integer("branch.btb_ways", &[1, 2, 4]);
    if fixed {
        s.add_categorical("branch.indirect", &["btb_only", "path_history"]);
        s.add_integer("branch.indirect_table_bits", &[7, 9, 11]);
        s.add_integer("branch.indirect_history_bits", &[5, 7, 9]);
    }
    s.add_integer("branch.ras_entries", &[4, 8, 16, 32]);
    s.add_integer("branch.mispredict_penalty", &[5, 7, 9, 11, 13, 15]);
    s.add_integer("branch.btb_miss_penalty", &[1, 2, 3]);

    // --- Front end -------------------------------------------------------
    s.add_integer("frontend.depth", &[2, 3, 4, 5, 6]);

    // --- Execution latencies ---------------------------------------------
    s.add_integer("lat.int_mul", &[2, 3, 4, 5]);
    s.add_integer("lat.int_div", &[8, 10, 12, 13, 14, 16, 20]);
    s.add_integer("lat.fp_add", &[3, 4, 5, 6]);
    s.add_integer("lat.fp_mul", &[3, 4, 5, 6]);
    s.add_integer("lat.fp_div", &[14, 18, 22, 25, 28, 32]);
    s.add_integer("lat.fp_sqrt", &[14, 18, 22, 25, 28, 32]);
    s.add_integer("lat.fp_cvt", &[2, 3, 4, 5, 6]);
    s.add_integer("lat.fp_mov", &[1, 2, 3]);
    s.add_integer("lat.simd_alu", &[1, 2, 3, 4]);
    s.add_integer("lat.simd_mul", &[3, 4, 5]);
    s.add_integer("lat.simd_fp_add", &[3, 4, 5]);
    s.add_integer("lat.simd_fp_mul", &[3, 4, 5]);
    s.add_integer("lat.simd_fma", &[5, 6, 7, 8, 9]);

    // --- Engine-specific --------------------------------------------------
    match kind {
        CoreKind::InOrder => {
            s.add_integer("inorder.int_alu_units", &[1, 2, 3]);
            s.add_integer("inorder.fp_units", &[1, 2]);
            s.add_bool("inorder.div_blocking");
            s.add_integer("inorder.store_buffer", &[2, 4, 6, 8, 12]);
            s.add_integer("inorder.mem_per_cycle", &[1, 2]);
        }
        CoreKind::OutOfOrder => {
            s.add_integer("ooo.rob_entries", &[64, 96, 128, 160, 192]);
            s.add_integer("ooo.iq_entries", &[24, 32, 44, 56, 66]);
            s.add_integer("ooo.lq_entries", &[8, 12, 16, 24, 32]);
            s.add_integer("ooo.sq_entries", &[8, 12, 16, 24]);
            s.add_integer("ooo.retire_width", &[2, 3, 4]);
            s.add_integer("ooo.int_alu_ports", &[1, 2, 3]);
            s.add_integer("ooo.int_mul_ports", &[1, 2]);
            s.add_integer("ooo.fp_ports", &[1, 2, 3]);
            s.add_integer("ooo.stlf_latency", &[2, 3, 4, 5, 6]);
            s.add_bool("ooo.div_blocking");
        }
    }

    // --- Caches ------------------------------------------------------------
    for level in ["l1i", "l1d", "l2"] {
        s.add_categorical(
            &format!("{level}.replacement"),
            &["lru", "plru", "random", "fifo"],
        );
        s.add_categorical(&format!("{level}.tag_access"), &["parallel", "serial"]);
        if fixed {
            s.add_categorical(&format!("{level}.hash"), &["mask", "xor", "mersenne"]);
        }
    }
    s.add_integer("l1d.mshrs", &[1, 2, 3, 4, 6, 8]);
    s.add_integer("l1d.ports", &[1, 2]);
    s.add_integer("l1d.victim_entries", &[0, 4, 8]);
    s.add_bool("l1d.write_allocate");
    s.add_integer("l2.mshrs", &[4, 6, 8, 11, 16]);
    s.add_integer("l2.ports", &[1, 2]);
    s.add_integer("l2.victim_entries", &[0, 8, 16]);

    // --- Prefetcher ----------------------------------------------------------
    if fixed {
        s.add_categorical("pf.kind", &["none", "next_line", "stride", "ghb"]);
    } else {
        s.add_categorical("pf.kind", &["none", "next_line", "stride"]);
    }
    s.add_integer("pf.table", &[16, 32, 64, 128, 256]);
    s.add_integer("pf.degree", &[1, 2, 3, 4, 6]);
    s.add_categorical("pf.where", &["l1", "l2"]);
    s.add_bool("pf.on_pf_hit");
    if fixed {
        s.add_integer("pf.ghb_buffer", &[64, 128, 256]);
    }

    // --- Main memory ------------------------------------------------------------
    s.add_integer("dram.latency", &[140, 160, 170, 180, 190, 210]);
    s.add_integer("dram.bytes_per_cycle", &[4, 8, 16, 32]);

    s
}

/// The user's step-3 best guesses: the values a careful reader of the TRM
/// would pick without any tuning.
pub fn best_guess(space: &ParamSpace, kind: CoreKind) -> Configuration {
    let mut c = space.default_configuration();
    c.set_categorical(space, "branch.predictor", "bimodal");
    c.set_integer(space, "branch.table_bits", 12);
    c.set_integer(space, "branch.history_bits", 8);
    c.set_integer(space, "branch.btb_entries", 256);
    c.set_integer(space, "branch.btb_ways", 2);
    c.set_integer(space, "branch.ras_entries", 8);
    c.set_integer(space, "branch.mispredict_penalty", 7);
    c.set_integer(space, "branch.btb_miss_penalty", 2);
    c.set_integer(space, "frontend.depth", 3);
    c.set_integer(space, "lat.int_mul", 3);
    c.set_integer(space, "lat.int_div", 12);
    c.set_integer(space, "lat.fp_add", 4);
    c.set_integer(space, "lat.fp_mul", 4);
    c.set_integer(space, "lat.fp_div", 22);
    c.set_integer(space, "lat.fp_sqrt", 22);
    c.set_integer(space, "lat.fp_cvt", 4);
    c.set_integer(space, "lat.fp_mov", 2);
    c.set_integer(space, "lat.simd_alu", 2);
    c.set_integer(space, "lat.simd_mul", 4);
    c.set_integer(space, "lat.simd_fp_add", 4);
    c.set_integer(space, "lat.simd_fp_mul", 4);
    c.set_integer(space, "lat.simd_fma", 8);
    match kind {
        CoreKind::InOrder => {
            c.set_integer(space, "inorder.int_alu_units", 2);
            c.set_integer(space, "inorder.fp_units", 1);
            c.set_flag(space, "inorder.div_blocking", true);
            c.set_integer(space, "inorder.store_buffer", 4);
            c.set_integer(space, "inorder.mem_per_cycle", 1);
        }
        CoreKind::OutOfOrder => {
            c.set_integer(space, "ooo.rob_entries", 128);
            c.set_integer(space, "ooo.iq_entries", 32);
            c.set_integer(space, "ooo.lq_entries", 16);
            c.set_integer(space, "ooo.sq_entries", 16);
            c.set_integer(space, "ooo.retire_width", 3);
            c.set_integer(space, "ooo.int_alu_ports", 2);
            c.set_integer(space, "ooo.int_mul_ports", 1);
            c.set_integer(space, "ooo.fp_ports", 2);
            c.set_integer(space, "ooo.stlf_latency", 4);
            c.set_flag(space, "ooo.div_blocking", true);
        }
    }
    for level in ["l1i", "l1d", "l2"] {
        c.set_categorical(space, &format!("{level}.replacement"), "lru");
    }
    c.set_categorical(space, "l1i.tag_access", "parallel");
    c.set_categorical(space, "l1d.tag_access", "parallel");
    c.set_categorical(space, "l2.tag_access", "serial");
    c.set_integer(space, "l1d.mshrs", 4);
    c.set_integer(space, "l1d.ports", 1);
    c.set_integer(space, "l1d.victim_entries", 0);
    c.set_flag(space, "l1d.write_allocate", true);
    c.set_integer(space, "l2.mshrs", 8);
    c.set_integer(space, "l2.ports", 1);
    c.set_integer(space, "l2.victim_entries", 0);
    c.set_categorical(space, "pf.kind", "none");
    c.set_integer(space, "pf.table", 64);
    c.set_integer(space, "pf.degree", 2);
    c.set_categorical(space, "pf.where", "l1");
    c.set_flag(space, "pf.on_pf_hit", false);
    c.set_integer(space, "dram.latency", 170);
    c.set_integer(space, "dram.bytes_per_cycle", 8);
    c
}

/// Applies a tuner configuration onto a base platform, producing the
/// concrete platform to simulate.
pub fn apply(space: &ParamSpace, cfg: &Configuration, base: &Platform) -> Platform {
    let mut p = base.clone();
    let has = |name: &str| space.params().iter().any(|q| q.name == name);

    // Branch unit.
    let tb = cfg.integer(space, "branch.table_bits") as u8;
    let hb = cfg.integer(space, "branch.history_bits") as u8;
    p.core.branch.direction = match cfg.categorical(space, "branch.predictor") {
        "static_taken" => DirPredictorConfig::StaticTaken,
        "bimodal" => DirPredictorConfig::Bimodal { table_bits: tb },
        "gshare" => DirPredictorConfig::Gshare {
            table_bits: tb,
            history_bits: hb,
        },
        _ => DirPredictorConfig::Tournament {
            table_bits: tb,
            history_bits: hb,
        },
    };
    p.core.branch.btb_entries = cfg.integer(space, "branch.btb_entries") as u32;
    p.core.branch.btb_ways = cfg.integer(space, "branch.btb_ways") as u32;
    p.core.branch.indirect =
        if has("branch.indirect") && cfg.categorical(space, "branch.indirect") == "path_history" {
            IndirectPredictorConfig::PathHistory {
                table_bits: cfg.integer(space, "branch.indirect_table_bits") as u8,
                history_bits: cfg.integer(space, "branch.indirect_history_bits") as u8,
            }
        } else {
            IndirectPredictorConfig::BtbOnly
        };
    p.core.branch.ras_entries = cfg.integer(space, "branch.ras_entries") as u32;
    p.core.branch.mispredict_penalty = cfg.integer(space, "branch.mispredict_penalty") as u64;
    p.core.branch.btb_miss_penalty = cfg.integer(space, "branch.btb_miss_penalty") as u64;
    p.core.frontend.depth = cfg.integer(space, "frontend.depth") as u8;

    // Latencies.
    p.core.lat.int_mul = cfg.integer(space, "lat.int_mul") as u64;
    p.core.lat.int_div = cfg.integer(space, "lat.int_div") as u64;
    p.core.lat.fp_add = cfg.integer(space, "lat.fp_add") as u64;
    p.core.lat.fp_mul = cfg.integer(space, "lat.fp_mul") as u64;
    p.core.lat.fp_div = cfg.integer(space, "lat.fp_div") as u64;
    p.core.lat.fp_sqrt = cfg.integer(space, "lat.fp_sqrt") as u64;
    p.core.lat.fp_cvt = cfg.integer(space, "lat.fp_cvt") as u64;
    p.core.lat.fp_mov = cfg.integer(space, "lat.fp_mov") as u64;
    p.core.lat.simd_alu = cfg.integer(space, "lat.simd_alu") as u64;
    p.core.lat.simd_mul = cfg.integer(space, "lat.simd_mul") as u64;
    p.core.lat.simd_fp_add = cfg.integer(space, "lat.simd_fp_add") as u64;
    p.core.lat.simd_fp_mul = cfg.integer(space, "lat.simd_fp_mul") as u64;
    p.core.lat.simd_fma = cfg.integer(space, "lat.simd_fma") as u64;

    // Engine.
    if has("inorder.int_alu_units") {
        p.core.inorder.int_alu_units = cfg.integer(space, "inorder.int_alu_units") as u8;
        p.core.inorder.fp_units = cfg.integer(space, "inorder.fp_units") as u8;
        p.core.inorder.div_blocking = cfg.flag(space, "inorder.div_blocking");
        p.core.inorder.store_buffer = cfg.integer(space, "inorder.store_buffer") as u8;
        p.core.inorder.mem_per_cycle = cfg.integer(space, "inorder.mem_per_cycle") as u8;
    }
    if has("ooo.rob_entries") {
        p.core.ooo.rob_entries = cfg.integer(space, "ooo.rob_entries") as u16;
        p.core.ooo.iq_entries = cfg.integer(space, "ooo.iq_entries") as u16;
        p.core.ooo.lq_entries = cfg.integer(space, "ooo.lq_entries") as u16;
        p.core.ooo.sq_entries = cfg.integer(space, "ooo.sq_entries") as u16;
        p.core.ooo.retire_width = cfg.integer(space, "ooo.retire_width") as u8;
        p.core.ooo.ports.int_alu = cfg.integer(space, "ooo.int_alu_ports") as u8;
        p.core.ooo.ports.int_mul = cfg.integer(space, "ooo.int_mul_ports") as u8;
        p.core.ooo.ports.fp = cfg.integer(space, "ooo.fp_ports") as u8;
        p.core.ooo.stlf_latency = cfg.integer(space, "ooo.stlf_latency") as u64;
        p.core.ooo.div_blocking = cfg.flag(space, "ooo.div_blocking");
    }

    // Caches.
    let repl = |v: &str| match v {
        "plru" => Replacement::PseudoLru,
        "random" => Replacement::Random,
        "fifo" => Replacement::Fifo,
        _ => Replacement::Lru,
    };
    let tag = |v: &str| match v {
        "serial" => TagAccess::Serial,
        _ => TagAccess::Parallel,
    };
    let hash = |v: &str| match v {
        "xor" => IndexHash::Xor,
        "mersenne" => IndexHash::MersenneMod,
        _ => IndexHash::Mask,
    };
    p.mem.l1i.replacement = repl(cfg.categorical(space, "l1i.replacement"));
    p.mem.l1d.replacement = repl(cfg.categorical(space, "l1d.replacement"));
    p.mem.l2.replacement = repl(cfg.categorical(space, "l2.replacement"));
    p.mem.l1i.tag_access = tag(cfg.categorical(space, "l1i.tag_access"));
    p.mem.l1d.tag_access = tag(cfg.categorical(space, "l1d.tag_access"));
    p.mem.l2.tag_access = tag(cfg.categorical(space, "l2.tag_access"));
    if has("l1i.hash") {
        p.mem.l1i.hash = hash(cfg.categorical(space, "l1i.hash"));
        p.mem.l1d.hash = hash(cfg.categorical(space, "l1d.hash"));
        p.mem.l2.hash = hash(cfg.categorical(space, "l2.hash"));
    } else {
        p.mem.l1i.hash = IndexHash::Mask;
        p.mem.l1d.hash = IndexHash::Mask;
        p.mem.l2.hash = IndexHash::Mask;
    }
    p.mem.l1d.mshrs = cfg.integer(space, "l1d.mshrs") as u32;
    p.mem.l1d.ports = cfg.integer(space, "l1d.ports") as u32;
    p.mem.l1d.victim_entries = cfg.integer(space, "l1d.victim_entries") as u32;
    p.mem.l1d.write_allocate = cfg.flag(space, "l1d.write_allocate");
    p.mem.l2.mshrs = cfg.integer(space, "l2.mshrs") as u32;
    p.mem.l2.ports = cfg.integer(space, "l2.ports") as u32;
    p.mem.l2.victim_entries = cfg.integer(space, "l2.victim_entries") as u32;

    // Prefetcher.
    let table = cfg.integer(space, "pf.table") as u32;
    let degree = cfg.integer(space, "pf.degree") as u8;
    p.mem.prefetcher = match cfg.categorical(space, "pf.kind") {
        "none" => PrefetcherConfig::None,
        "next_line" => PrefetcherConfig::NextLine,
        "ghb" => PrefetcherConfig::Ghb {
            buffer_entries: if has("pf.ghb_buffer") {
                cfg.integer(space, "pf.ghb_buffer") as u32
            } else {
                128
            },
            index_entries: table,
            degree,
        },
        _ => PrefetcherConfig::Stride {
            table_entries: table,
            degree,
        },
    };
    p.mem.prefetch_where = match cfg.categorical(space, "pf.where") {
        "l2" => PrefetchWhere::L2,
        _ => PrefetchWhere::L1,
    };
    p.mem.prefetch_on_prefetch_hit = cfg.flag(space, "pf.on_pf_hit");

    // DRAM.
    p.mem.dram.latency = cfg.integer(space, "dram.latency") as u64;
    p.mem.dram.bytes_per_cycle = cfg.integer(space, "dram.bytes_per_cycle") as u32;

    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_sizes_match_the_papers_order_of_magnitude() {
        // The paper counts 64 undisclosed parameters; our schema lands in
        // the same range for both models.
        let io = build_space(CoreKind::InOrder, Revision::Fixed);
        let ooo = build_space(CoreKind::OutOfOrder, Revision::Fixed);
        assert!(
            (50..=70).contains(&io.len()),
            "in-order space: {}",
            io.len()
        );
        assert!(
            (55..=75).contains(&ooo.len()),
            "out-of-order space: {}",
            ooo.len()
        );
        // Intractable by exhaustive search (the motivation for racing).
        assert!(io.cardinality() > 1u128 << 60);
    }

    #[test]
    fn initial_revision_lacks_the_missing_features() {
        let s = build_space(CoreKind::InOrder, Revision::Initial);
        assert!(!s.params().iter().any(|p| p.name == "branch.indirect"));
        assert!(!s.params().iter().any(|p| p.name == "l1d.hash"));
        assert!(!s.params().iter().any(|p| p.name == "pf.ghb_buffer"));
        assert!(!Revision::Initial.decoder_fixed());
        assert!(Revision::Fixed.arrays_initialized());
    }

    #[test]
    fn best_guess_applies_cleanly_to_both_kinds() {
        for (kind, base) in [
            (CoreKind::InOrder, Platform::a53_like()),
            (CoreKind::OutOfOrder, Platform::a72_like()),
        ] {
            for revision in [Revision::Initial, Revision::Fixed] {
                let s = build_space(kind, revision);
                let guess = best_guess(&s, kind);
                let p = apply(&s, &guess, &base);
                assert_eq!(p.core.kind, kind);
                assert_eq!(p.mem.prefetcher, PrefetcherConfig::None);
                assert_eq!(p.core.branch.mispredict_penalty, 7);
            }
        }
    }

    #[test]
    fn apply_reaches_every_subsystem() {
        let s = build_space(CoreKind::OutOfOrder, Revision::Fixed);
        let mut c = best_guess(&s, CoreKind::OutOfOrder);
        c.set_categorical(&s, "branch.predictor", "tournament");
        c.set_categorical(&s, "l2.hash", "mersenne");
        c.set_categorical(&s, "pf.kind", "ghb");
        c.set_integer(&s, "ooo.rob_entries", 192);
        c.set_flag(&s, "l1d.write_allocate", false);
        let p = apply(&s, &c, &Platform::a72_like());
        assert!(matches!(
            p.core.branch.direction,
            DirPredictorConfig::Tournament { .. }
        ));
        assert_eq!(p.mem.l2.hash, IndexHash::MersenneMod);
        assert!(matches!(p.mem.prefetcher, PrefetcherConfig::Ghb { .. }));
        assert_eq!(p.core.ooo.rob_entries, 192);
        assert!(!p.mem.l1d.write_allocate);
    }

    #[test]
    fn base_platform_fields_not_in_the_space_are_preserved() {
        // Cache sizes come from public information, not tuning.
        let s = build_space(CoreKind::InOrder, Revision::Fixed);
        let guess = best_guess(&s, CoreKind::InOrder);
        let mut base = Platform::a53_like();
        base.mem.l1d.size_kb = 32;
        base.mem.l2.size_kb = 512;
        let p = apply(&s, &guess, &base);
        assert_eq!(p.mem.l1d.size_kb, 32);
        assert_eq!(p.mem.l2.size_kb, 512);
        assert_eq!(p.name, base.name);
    }
}
