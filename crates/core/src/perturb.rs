//! Close-to-optimum perturbation (Figures 7 and 8).
//!
//! "We start from the optimum configuration and find the worst
//! configuration that results from giving each configuration parameter a
//! value that differs by a single step from the optimal … We exhaustively
//! search for the worst configuration that can be achieved with such a
//! small deviation (including the deviation of multiple parameters
//! simultaneously)."
//!
//! Exhausting the ±1 box over ~60 parameters is 3⁶⁰ configurations; this
//! module uses greedy coordinate ascent inside the box — repeatedly
//! applying the single-parameter one-step deviation that *increases* the
//! tuning cost the most — which finds the box's local worst case with a
//! few hundred evaluations and reproduces the paper's conclusion: even
//! all-parameters-within-one-step configurations are drastically wrong.

use racesim_race::{Configuration, CostFn, ParamSpace, Value};
use racesim_stats::mean;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The worst-case search result.
#[derive(Debug, Clone)]
pub struct PerturbOutcome {
    /// The adversarial configuration found inside the ±1 box.
    pub worst: Configuration,
    /// Its mean cost over the search instances.
    pub worst_cost: f64,
    /// The optimum's mean cost, for reference.
    pub optimum_cost: f64,
    /// Cost evaluations spent by the search.
    pub evals_used: u64,
}

/// Enumerates the ≤2 one-step neighbours of parameter `idx` *relative to
/// the optimum*, given the current value (which may already deviate).
fn one_step_values(space: &ParamSpace, optimum: &Configuration, idx: usize) -> Vec<Value> {
    let card = space.params()[idx].domain.cardinality();
    let center = match optimum.value(idx) {
        Value::Cat(i) | Value::Int(i) => i as usize,
        Value::Flag(b) => usize::from(b),
    };
    let mut out = Vec::new();
    for cand in [center.wrapping_sub(1), center, center + 1] {
        if cand >= card || (cand == center) {
            if cand == center {
                out.push(make_value(space, idx, center));
            }
            continue;
        }
        out.push(make_value(space, idx, cand));
    }
    out
}

fn make_value(space: &ParamSpace, idx: usize, pos: usize) -> Value {
    use racesim_race::Domain;
    match space.params()[idx].domain {
        Domain::Categorical(_) => Value::Cat(pos as u16),
        Domain::Integer(_) => Value::Int(pos as u16),
        Domain::Bool => Value::Flag(pos == 1),
    }
}

fn mean_cost(
    space: &ParamSpace,
    cfg: &Configuration,
    cost: &dyn CostFn,
    instances: &[usize],
    evals: &mut u64,
) -> f64 {
    let costs: Vec<f64> = instances
        .iter()
        .map(|&i| {
            *evals += 1;
            cost.cost(cfg, space, i)
        })
        .collect();
    mean(&costs)
}

/// Evaluates candidate configurations in parallel; returns their costs in
/// order.
fn parallel_costs(
    space: &ParamSpace,
    cands: &[Configuration],
    cost: &dyn CostFn,
    instances: &[usize],
    threads: usize,
    evals: &mut u64,
) -> Vec<f64> {
    *evals += (cands.len() * instances.len()) as u64;
    if threads <= 1 || cands.len() <= 1 {
        let mut scratch = 0u64;
        return cands
            .iter()
            .map(|c| mean_cost(space, c, cost, instances, &mut scratch))
            .collect();
    }
    let out: Vec<AtomicU64> = (0..cands.len()).map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(cands.len()) {
            scope.spawn(|_| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= cands.len() {
                    break;
                }
                let mut scratch = 0u64;
                let c = mean_cost(space, &cands[k], cost, instances, &mut scratch);
                out[k].store(c.to_bits(), Ordering::Relaxed);
            });
        }
    })
    .expect("perturbation worker panicked");
    out.into_iter()
        .map(|a| f64::from_bits(a.into_inner()))
        .collect()
}

/// Greedy coordinate ascent from `start`, confined to the ±1-step box
/// around `optimum`. Returns the local maximum and its cost.
#[allow(clippy::too_many_arguments)]
fn ascend(
    space: &ParamSpace,
    optimum: &Configuration,
    start: Configuration,
    start_cost: f64,
    cost: &dyn CostFn,
    instances: &[usize],
    threads: usize,
    evals: &mut u64,
) -> (Configuration, f64) {
    let mut current = start;
    let mut current_cost = start_cost;
    loop {
        // Gather every one-step move, then cost them in parallel.
        let mut moves: Vec<(usize, Value)> = Vec::new();
        for idx in 0..space.len() {
            for v in one_step_values(space, optimum, idx) {
                if v != current.value(idx) {
                    moves.push((idx, v));
                }
            }
        }
        let cands: Vec<Configuration> = moves
            .iter()
            .map(|&(idx, v)| {
                let mut c = current.clone();
                c.set_value(idx, v);
                c
            })
            .collect();
        let costs = parallel_costs(space, &cands, cost, instances, threads, evals);
        let best = moves
            .iter()
            .zip(&costs)
            .filter(|(_, c)| **c > current_cost)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((&(idx, v), &c)) => {
                current.set_value(idx, v);
                current_cost = c;
            }
            None => break,
        }
    }
    (current, current_cost)
}

/// A random corner of the ±1-step box around `optimum`.
fn random_corner(
    space: &ParamSpace,
    optimum: &Configuration,
    rng: &mut impl rand::Rng,
) -> Configuration {
    let mut c = optimum.clone();
    for idx in 0..space.len() {
        let choices = one_step_values(space, optimum, idx);
        c.set_value(idx, choices[rng.gen_range(0..choices.len())]);
    }
    c
}

/// Finds (an approximation of) the worst configuration within one step of
/// `optimum` on every parameter, by greedy coordinate ascent over
/// `instances`.
pub fn worst_within_one_step(
    space: &ParamSpace,
    optimum: &Configuration,
    cost: &dyn CostFn,
    instances: &[usize],
) -> PerturbOutcome {
    worst_within_one_step_multistart(space, optimum, cost, instances, 0, 0, 1)
}

/// Multi-start variant: in addition to ascending from the optimum, runs
/// the greedy ascent from `restarts` random corners of the ±1-step box,
/// keeping the overall worst. More restarts approximate the paper's
/// exhaustive box search more closely.
pub fn worst_within_one_step_multistart(
    space: &ParamSpace,
    optimum: &Configuration,
    cost: &dyn CostFn,
    instances: &[usize],
    restarts: usize,
    seed: u64,
    threads: usize,
) -> PerturbOutcome {
    use rand::SeedableRng;
    let mut evals = 0u64;
    let optimum_cost = mean_cost(space, optimum, cost, instances, &mut evals);
    let (mut worst, mut worst_cost) = ascend(
        space,
        optimum,
        optimum.clone(),
        optimum_cost,
        cost,
        instances,
        threads,
        &mut evals,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..restarts {
        let corner = random_corner(space, optimum, &mut rng);
        let corner_cost = mean_cost(space, &corner, cost, instances, &mut evals);
        let (cand, cand_cost) = ascend(
            space,
            optimum,
            corner,
            corner_cost,
            cost,
            instances,
            threads,
            &mut evals,
        );
        if cand_cost > worst_cost {
            worst = cand;
            worst_cost = cand_cost;
        }
    }
    PerturbOutcome {
        worst,
        worst_cost,
        optimum_cost,
        evals_used: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[-4, -2, -1, 0, 1, 2, 4]);
        s.add_integer("y", &[-4, -2, -1, 0, 1, 2, 4]);
        s.add_bool("b");
        s
    }

    struct Bowl;
    impl CostFn for Bowl {
        fn cost(&self, cfg: &Configuration, space: &ParamSpace, _instance: usize) -> f64 {
            let x = cfg.integer(space, "x") as f64;
            let y = cfg.integer(space, "y") as f64;
            let b = if cfg.flag(space, "b") { 3.0 } else { 0.0 };
            x * x + y * y + b
        }
    }

    fn optimum(s: &ParamSpace) -> Configuration {
        let mut c = s.default_configuration();
        c.set_integer(s, "x", 0);
        c.set_integer(s, "y", 0);
        c.set_flag(s, "b", false);
        c
    }

    #[test]
    fn finds_the_corner_of_the_one_step_box() {
        let s = space();
        let opt = optimum(&s);
        let out = worst_within_one_step(&s, &opt, &Bowl, &[0]);
        // Inside the box, worst is x=±1, y=±1, b=true: cost 1+1+3 = 5.
        assert_eq!(out.optimum_cost, 0.0);
        assert_eq!(out.worst_cost, 5.0, "{}", out.worst.render(&s));
        assert!(out.evals_used > 0);
    }

    #[test]
    fn never_leaves_the_one_step_box() {
        let s = space();
        let opt = optimum(&s);
        let out = worst_within_one_step(&s, &opt, &Bowl, &[0]);
        // x and y must be within one candidate step of 0 (i.e. -1..=1).
        assert!(out.worst.integer(&s, "x").abs() <= 1);
        assert!(out.worst.integer(&s, "y").abs() <= 1);
    }

    #[test]
    fn multistart_is_at_least_as_bad_as_single_start() {
        let s = space();
        let opt = optimum(&s);
        let single = worst_within_one_step(&s, &opt, &Bowl, &[0]);
        let multi = worst_within_one_step_multistart(&s, &opt, &Bowl, &[0], 4, 7, 2);
        assert!(multi.worst_cost >= single.worst_cost);
        assert!(multi.evals_used > single.evals_used);
        // Still confined to the box.
        assert!(multi.worst.integer(&s, "x").abs() <= 1);
        assert!(multi.worst.integer(&s, "y").abs() <= 1);
    }

    #[test]
    fn optimum_at_domain_edge_is_handled() {
        let s = space();
        let mut opt = optimum(&s);
        opt.set_integer(&s, "x", -4); // first value: only one neighbour
        let out = worst_within_one_step(&s, &opt, &Bowl, &[0]);
        assert!(out.worst_cost >= out.optimum_cost);
    }
}
