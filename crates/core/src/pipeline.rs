//! The complete Figure-1 loop, including the "fix error source?" decision.
//!
//! [`run_staged`] drives the whole arc programmatically: validate the
//! *initial* model revision, run the step-5 analysis, and — when the
//! analysis calls for it — apply the model fixes (the `Fixed` revision)
//! and re-race, exactly as the authors iterated in Section IV-B.

use crate::analysis::{analyse, AnalysisReport};
use crate::params::Revision;
use crate::validator::{ValidationError, ValidationOutcome, Validator, ValidatorSettings};
use racesim_hw::HardwarePlatform;

/// One completed revision round: its outcome plus the step-5 report.
#[derive(Debug)]
pub struct Round {
    /// The revision that was validated.
    pub revision: Revision,
    /// The validation outcome (untuned/tuned results, tuned platform).
    pub outcome: ValidationOutcome,
    /// The step-5 analysis of the tuned model.
    pub analysis: AnalysisReport,
}

/// The full staged run: one or two rounds.
#[derive(Debug)]
pub struct StagedOutcome {
    /// Every round executed, in order.
    pub rounds: Vec<Round>,
}

impl StagedOutcome {
    /// The last round (the shipped model).
    ///
    /// # Panics
    ///
    /// Never panics: `run_staged` always produces at least one round.
    pub fn final_round(&self) -> &Round {
        self.rounds.last().expect("at least one round")
    }

    /// Whether a second (fixed-model) round was needed and executed.
    pub fn model_was_fixed(&self) -> bool {
        self.rounds.len() > 1
    }
}

/// Runs the methodology staged over model revisions: `Initial` first; if
/// the step-5 analysis recommends model fixes, switch to `Fixed` and
/// re-run.
///
/// `settings.revision` is ignored (the stage machinery sets it per round).
///
/// # Errors
///
/// Propagates measurement failures from the platform and static-lint
/// failures of the anchor platforms.
pub fn run_staged(
    board: &dyn HardwarePlatform,
    settings: &ValidatorSettings,
) -> Result<StagedOutcome, ValidationError> {
    let mut rounds = Vec::new();

    let mut first = settings.clone();
    first.revision = Revision::Initial;
    let outcome = Validator::new(board, first).run()?;
    let report = analyse(&outcome.tuned_results);
    let needs_fixes = report.needs_another_round();
    rounds.push(Round {
        revision: Revision::Initial,
        outcome,
        analysis: report,
    });

    if needs_fixes {
        let mut second = settings.clone();
        second.revision = Revision::Fixed;
        // Fresh seed so the second round is not locked to the first
        // round's sampling trajectory.
        second.tuner.seed = settings.tuner.seed.wrapping_add(1);
        let outcome = Validator::new(board, second).run()?;
        let report = analyse(&outcome.tuned_results);
        rounds.push(Round {
            revision: Revision::Fixed,
            outcome,
            analysis: report,
        });
    }

    Ok(StagedOutcome { rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_hw::ReferenceBoard;
    use racesim_uarch::CoreKind;

    #[test]
    fn staged_run_fixes_the_model_and_improves() {
        let board = ReferenceBoard::firefly_a53();
        let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
        settings.tuner.budget = 500;
        settings.tuner.threads = 4;
        let staged = run_staged(&board, &settings).expect("staged run");
        // The initial model has deliberate abstraction errors: the
        // analysis must trigger the second round.
        assert!(staged.model_was_fixed(), "initial model must trip step 5");
        assert_eq!(staged.rounds.len(), 2);
        assert_eq!(staged.final_round().revision, Revision::Fixed);
        let first = staged.rounds[0].outcome.tuned_mean_error();
        let second = staged.final_round().outcome.tuned_mean_error();
        assert!(
            second < first,
            "fixing the model must pay off: {first:.1}% -> {second:.1}%"
        );
    }
}
