//! Plain-text reporting: ASCII tables, bar charts and CSV emitters used
//! by the figure/table regeneration binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a fixed-width ASCII table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "| {h:<w$} ");
    }
    out.push_str("|\n");
    sep(&mut out);
    for r in rows {
        for (cell, w) in r.iter().zip(&widths) {
            let _ = write!(out, "| {cell:<w$} ");
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders a horizontal bar chart of `(label, value)` pairs — the
/// terminal rendition of the paper's per-benchmark error figures.
///
/// Values are scaled so the largest bar spans `width` characters; each
/// line shows the numeric value with the given unit suffix. Degenerate
/// values render markers instead of garbage bars: non-finite values show
/// a `(non-finite)` marker and are excluded from scaling, negative
/// values clamp to an empty bar while still printing their value.
pub fn bar_chart(rows: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        if !v.is_finite() {
            let _ = writeln!(out, "{label:<label_w$} | (non-finite: {v})");
            continue;
        }
        let n = ((v.max(0.0) / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{label:<label_w$} |{} {v:.1}{unit}",
            "#".repeat(n.min(width))
        );
    }
    out
}

/// Writes rows as CSV (simple quoting: fields containing commas, quotes
/// or newlines are double-quoted).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut text = headers
        .iter()
        .map(|h| field(h))
        .collect::<Vec<_>>()
        .join(",");
    text.push('\n');
    for r in rows {
        text.push_str(&r.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        text.push('\n');
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = table(
            &["bench", "error"],
            &[
                vec!["MC".into(), "12.5%".into()],
                vec!["ML2_BW_ld".into(), "3.1%".into()],
            ],
        );
        assert!(t.contains("| bench     | error |"));
        assert!(t.contains("| MC        | 12.5% |"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        let c = bar_chart(
            &[("a".into(), 10.0), ("b".into(), 5.0), ("c".into(), 0.0)],
            20,
            "%",
        );
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[2].matches('#').count() == 0);
    }

    #[test]
    fn degenerate_bar_values_render_markers_not_garbage() {
        let c = bar_chart(
            &[
                ("nan".into(), f64::NAN),
                ("inf".into(), f64::INFINITY),
                ("neg".into(), -4.0),
                ("ok".into(), 8.0),
            ],
            20,
            "%",
        );
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].contains("(non-finite: NaN)"));
        assert!(lines[1].contains("(non-finite: inf)"));
        assert_eq!(lines[2].matches('#').count(), 0, "negative clamps to 0");
        assert!(lines[2].contains("-4.0%"), "value still printed");
        assert_eq!(
            lines[3].matches('#').count(),
            20,
            "finite max ignores the non-finite rows"
        );
    }

    #[test]
    fn all_non_finite_chart_does_not_panic() {
        let c = bar_chart(&[("a".into(), f64::NAN)], 10, "");
        assert!(c.contains("non-finite"));
    }

    #[test]
    fn csv_quotes_carriage_returns() {
        let dir =
            std::env::temp_dir().join(format!("racesim_report_cr_{}_test.csv", std::process::id()));
        write_csv(&dir, &["note"], &[vec!["a\rb".into()]]).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"a\rb\""));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let dir = std::env::temp_dir().join("racesim_report_test.csv");
        write_csv(
            &dir,
            &["name", "note"],
            &[vec!["a,b".into(), "plain".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"a,b\",plain"));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }
}
