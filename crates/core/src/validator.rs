//! The end-to-end validation flow (Figure 1).

use crate::latency::{apply_estimates, estimate_latencies};
use crate::params::{apply, best_guess, build_space, Revision};
use racesim_analyzer::{Diagnostic, Severity};
use racesim_decoder::{Decoder, Quirks};
use racesim_hw::{HardwarePlatform, MeasureError, PerfCounters};
use racesim_kernels::{microbench_suite, microbench_suite_initialized, Category, Scale, Workload};
use racesim_race::{
    Configuration, EvalError, ParamSpace, Pruner, RacingTuner, TryCostFn, TuneResult, TunerSettings,
};
use racesim_sim::{Platform, SimOptions, Simulator};
use racesim_stats::abs_pct_error;
use racesim_trace::TraceBuffer;
use racesim_uarch::CoreKind;
use std::fmt;
use std::sync::Arc;

/// Why a validation run could not complete.
#[derive(Debug)]
pub enum ValidationError {
    /// The hardware platform failed to execute or measure a workload.
    Measure(MeasureError),
    /// The model failed static linting before any simulation was spent:
    /// an anchor platform (base or best-guess) violates a structural
    /// invariant. The diagnostics name the offending lints.
    ModelLint(Vec<Diagnostic>),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Measure(e) => write!(f, "{e}"),
            ValidationError::ModelLint(diags) => {
                let errors: Vec<&Diagnostic> = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect();
                write!(
                    f,
                    "model failed static linting ({} error{}): ",
                    errors.len(),
                    if errors.len() == 1 { "" } else { "s" }
                )?;
                for (i, d) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "[{}] {}", d.lint.code(), d.message)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidationError::Measure(e) => Some(e),
            ValidationError::ModelLint(_) => None,
        }
    }
}

impl From<MeasureError> for ValidationError {
    fn from(e: MeasureError) -> Self {
        ValidationError::Measure(e)
    }
}

/// Fail-fast gate: rejects a platform that carries Error-severity lint
/// diagnostics. Warnings and infos pass (they are reported by `racesim
/// lint`, not here).
///
/// # Errors
///
/// Returns [`ValidationError::ModelLint`] with the full diagnostic list
/// when any Error-severity lint fires.
pub fn lint_platform(platform: &Platform) -> Result<(), ValidationError> {
    let diags = racesim_analyzer::platform::check(platform);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return Err(ValidationError::ModelLint(diags));
    }
    Ok(())
}

/// The cost the tuner minimises.
///
/// The paper's step 5: "For optimizations targeting a specific component,
/// we recommend including metrics that are relevant to that component in
/// the cost function … instead of using the Cycles-Per-Instruction (CPI)
/// error only, a weighted cost function that includes both the branch
/// misprediction rate and the CPI can be used."
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostMetric {
    /// Absolute CPI prediction error (percent) — the default.
    CpiError,
    /// `(1 - w) * CPI error + w * branch-misprediction-rate error`,
    /// both in percent.
    CpiAndBranch {
        /// Weight `w` of the branch-misprediction-rate term, in `[0, 1]`.
        branch_weight: f64,
    },
}

impl CostMetric {
    /// Evaluates the metric from simulated and measured quantities.
    pub fn evaluate(&self, sim_cpi: f64, hw_cpi: f64, sim_bmr: f64, hw_bmr: f64) -> f64 {
        let cpi_err = abs_pct_error(sim_cpi, hw_cpi);
        match *self {
            CostMetric::CpiError => cpi_err,
            CostMetric::CpiAndBranch { branch_weight } => {
                let w = branch_weight.clamp(0.0, 1.0);
                // Misprediction rates can legitimately be zero; error is
                // then the absolute rate difference in percentage points.
                let bmr_err = if hw_bmr > 1e-9 {
                    abs_pct_error(sim_bmr, hw_bmr)
                } else {
                    100.0 * (sim_bmr - hw_bmr).abs()
                };
                (1.0 - w) * cpi_err + w * bmr_err
            }
        }
    }
}

/// Settings of a validation run.
#[derive(Debug, Clone)]
pub struct ValidatorSettings {
    /// Which core to validate.
    pub kind: CoreKind,
    /// Model revision (feature set + decoder state + array handling).
    pub revision: Revision,
    /// Micro-benchmark scale.
    pub scale: Scale,
    /// Tuner settings (budget, seed, threads, race statistics).
    pub tuner: TunerSettings,
    /// The cost metric the tuner minimises.
    pub metric: CostMetric,
}

impl ValidatorSettings {
    /// A quick configuration for tests and examples: small scale, small
    /// budget.
    pub fn quick(kind: CoreKind) -> ValidatorSettings {
        ValidatorSettings {
            kind,
            revision: Revision::Fixed,
            scale: Scale::TINY,
            tuner: TunerSettings {
                budget: 600,
                threads: 2,
                ..TunerSettings::default()
            },
            metric: CostMetric::CpiError,
        }
    }
}

/// The CPI prediction of one benchmark under one model.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Benchmark category.
    pub category: Category,
    /// CPI measured on the hardware platform.
    pub hw_cpi: f64,
    /// CPI predicted by the model.
    pub sim_cpi: f64,
}

impl BenchResult {
    /// Absolute CPI prediction error, in percent.
    pub fn error_pct(&self) -> f64 {
        abs_pct_error(self.sim_cpi, self.hw_cpi)
    }
}

/// Everything a validation run produces.
#[derive(Debug)]
pub struct ValidationOutcome {
    /// The hardware-validated platform (step 6).
    pub tuned: Platform,
    /// The pre-tuning platform: public information + latency estimates +
    /// the step-3 best guesses.
    pub untuned: Platform,
    /// Per-benchmark results of the *untuned* model.
    pub untuned_results: Vec<BenchResult>,
    /// Per-benchmark results of the *tuned* model.
    pub tuned_results: Vec<BenchResult>,
    /// The raw tuner output (elites, history, evaluations used).
    pub tune: TuneResult,
    /// The parameter space that was searched.
    pub space: ParamSpace,
    /// The winning configuration.
    pub best: Configuration,
}

impl ValidationOutcome {
    /// Mean absolute CPI error of the untuned model, in percent.
    pub fn untuned_mean_error(&self) -> f64 {
        mean_error(&self.untuned_results)
    }

    /// Mean absolute CPI error of the tuned model, in percent.
    pub fn tuned_mean_error(&self) -> f64 {
        mean_error(&self.tuned_results)
    }
}

fn mean_error(results: &[BenchResult]) -> f64 {
    results.iter().map(|r| r.error_pct()).sum::<f64>() / results.len().max(1) as f64
}

/// Prepared (trace, hardware measurement) pairs — generated once, reused
/// for every simulation, as in the paper.
#[derive(Debug)]
pub struct PreparedSuite {
    /// Workload names.
    pub names: Vec<String>,
    /// Workload categories.
    pub categories: Vec<Category>,
    /// Recorded traces.
    pub traces: Vec<Arc<TraceBuffer>>,
    /// Hardware counters per workload.
    pub hw: Vec<PerfCounters>,
}

impl PreparedSuite {
    /// Records traces for `workloads` and measures each on `board`.
    ///
    /// # Errors
    ///
    /// Propagates emulation or measurement failures.
    pub fn prepare(
        workloads: &[Workload],
        board: &dyn HardwarePlatform,
    ) -> Result<PreparedSuite, MeasureError> {
        let mut names = Vec::new();
        let mut categories = Vec::new();
        let mut traces = Vec::new();
        let mut hw = Vec::new();
        for w in workloads {
            let trace = w.trace()?;
            let counters = board.measure_trace(&w.name, &trace, w.uninit_data)?;
            names.push(w.name.clone());
            categories.push(w.category);
            traces.push(Arc::new(trace));
            hw.push(counters);
        }
        Ok(PreparedSuite {
            names,
            categories,
            traces,
            hw,
        })
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The cost function handed to the tuner: absolute CPI error of one
/// benchmark under the candidate configuration.
struct CpiErrorCost<'a> {
    base: Platform,
    suite: &'a PreparedSuite,
    decoder: Decoder,
    metric: CostMetric,
}

impl TryCostFn for CpiErrorCost<'_> {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let platform = apply(space, cfg, &self.base);
        let sim = Simulator::with_decoder(platform, self.decoder, SimOptions::default());
        // An unrunnable configuration is a config-side fault: the race
        // eliminates the candidate with a logged reason instead of
        // letting a sentinel cost poison the rank statistics.
        let stats = sim.run(&self.suite.traces[instance]).map_err(|e| {
            EvalError::Config(format!(
                "simulator rejected the configuration on {}: {e}",
                self.suite.names[instance]
            ))
        })?;
        let cost = self.metric.evaluate(
            stats.cpi(),
            self.suite.hw[instance].cpi(),
            stats.core.branch_mpki(),
            self.suite.hw[instance].branch_mpki(),
        );
        if cost.is_finite() {
            Ok(cost)
        } else {
            Err(EvalError::Config(format!(
                "non-finite cost on {}",
                self.suite.names[instance]
            )))
        }
    }
}

/// Simulates one platform over a prepared suite, producing per-benchmark
/// results (used by the figure-regeneration binaries as well as the
/// validator itself).
pub fn evaluate_platform(
    platform: &Platform,
    decoder: Decoder,
    suite: &PreparedSuite,
) -> Vec<BenchResult> {
    let sim = Simulator::with_decoder(platform.clone(), decoder, SimOptions::default());
    (0..suite.len())
        .map(|i| {
            let stats = sim
                .run(&suite.traces[i])
                .expect("prepared traces decode cleanly");
            BenchResult {
                name: suite.names[i].clone(),
                category: suite.categories[i],
                hw_cpi: suite.hw[i].cpi(),
                sim_cpi: stats.cpi(),
            }
        })
        .collect()
}

/// The validation methodology driver.
#[derive(Debug)]
pub struct Validator<'hw> {
    board: &'hw dyn HardwarePlatform,
    settings: ValidatorSettings,
}

impl<'hw> Validator<'hw> {
    /// Creates a validator against a hardware platform.
    pub fn new(board: &'hw dyn HardwarePlatform, settings: ValidatorSettings) -> Validator<'hw> {
        Validator { board, settings }
    }

    /// The decoder this revision uses.
    pub fn decoder(&self) -> Decoder {
        if self.settings.revision.decoder_fixed() {
            Decoder::new()
        } else {
            Decoder::with_quirks(Quirks::capstone_like())
        }
    }

    /// The micro-benchmark suite this revision tunes on.
    pub fn suite(&self) -> Vec<Workload> {
        if self.settings.revision.arrays_initialized() {
            microbench_suite_initialized(self.settings.scale)
        } else {
            microbench_suite(self.settings.scale)
        }
    }

    /// The base platform after steps 1–2 (public information plus latency
    /// estimation on the board).
    ///
    /// # Errors
    ///
    /// Propagates probe-measurement failures.
    pub fn base_platform(&self) -> Result<Platform, MeasureError> {
        let mut base = match self.settings.kind {
            CoreKind::InOrder => Platform::a53_like(),
            CoreKind::OutOfOrder => Platform::a72_like(),
        };
        let est = estimate_latencies(self.board)?;
        apply_estimates(&mut base, &est);
        Ok(base)
    }

    /// Runs the full methodology: steps 1–4 and 6. (Step 5 — error
    /// analysis — is [`crate::analysis::analyse`], applied to the
    /// outcome.)
    ///
    /// # Errors
    ///
    /// Propagates workload-execution and measurement failures, and fails
    /// fast with [`ValidationError::ModelLint`] if the base or best-guess
    /// platform violates a structural invariant — catching specification
    /// errors before any racing budget is spent.
    pub fn run(&self) -> Result<ValidationOutcome, ValidationError> {
        // Steps 1–2.
        let base = self.base_platform()?;
        lint_platform(&base)?;
        // Step 3: the schema and the user's best guesses.
        let space = build_space(self.settings.kind, self.settings.revision);
        let guess = best_guess(&space, self.settings.kind);
        let decoder = self.decoder();

        // Record and measure every micro-benchmark once.
        let suite = PreparedSuite::prepare(&self.suite(), self.board)?;

        let untuned = apply(&space, &guess, &base);
        lint_platform(&untuned)?;
        let untuned_results = evaluate_platform(&untuned, decoder, &suite);

        // Step 4: racing. Sampled configurations that produce an
        // unrealisable platform are pruned before costing a single
        // simulation; the race only ever sees realisable candidates.
        let cost = CpiErrorCost {
            base: base.clone(),
            suite: &suite,
            decoder,
            metric: self.settings.metric,
        };
        let pruner: Pruner = {
            let space = space.clone();
            let base = base.clone();
            Arc::new(move |cfg: &Configuration| {
                racesim_analyzer::platform::check(&apply(&space, cfg, &base))
                    .into_iter()
                    .find(|d| d.severity == Severity::Error)
                    .map(|d| d.lint.code().to_string())
            })
        };
        let tuner = RacingTuner::new(self.settings.tuner).with_pruner(pruner);
        let tune = tuner.try_tune(&space, &cost, suite.len());
        let best = tune.best.clone();

        // Step 6.
        let tuned = apply(&space, &best, &base);
        let tuned_results = evaluate_platform(&tuned, decoder, &suite);

        Ok(ValidationOutcome {
            tuned,
            untuned,
            untuned_results,
            tuned_results,
            tune,
            space,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_hw::ReferenceBoard;

    #[test]
    fn quick_validation_reduces_error_on_the_a53() {
        let board = ReferenceBoard::firefly_a53();
        let settings = ValidatorSettings::quick(CoreKind::InOrder);
        let v = Validator::new(&board, settings);
        let out = v.run().expect("validation runs");
        let before = out.untuned_mean_error();
        let after = out.tuned_mean_error();
        assert!(
            after < before,
            "tuning must reduce mean error: {before:.1}% -> {after:.1}%"
        );
        assert_eq!(out.untuned_results.len(), 40);
        assert_eq!(out.tuned_results.len(), 40);
        assert!(out.tune.evals_used <= 600);
    }

    #[test]
    fn revisions_select_decoder_and_suite() {
        let board = ReferenceBoard::firefly_a53();
        let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
        settings.revision = Revision::Initial;
        let v = Validator::new(&board, settings);
        assert!(v.decoder().quirks().any());
        assert!(v.suite().iter().any(|w| w.uninit_data));

        let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
        settings.revision = Revision::Fixed;
        let v = Validator::new(&board, settings);
        assert!(!v.decoder().quirks().any());
        assert!(v.suite().iter().all(|w| !w.uninit_data));
    }

    #[test]
    fn weighted_metric_blends_cpi_and_branch_errors() {
        let m = CostMetric::CpiAndBranch { branch_weight: 0.5 };
        // CPI error 10%, BMR error 20% -> blended 15%.
        let c = m.evaluate(1.1, 1.0, 12.0, 10.0);
        assert!((c - 15.0).abs() < 1e-9, "{c}");
        // Pure CPI ignores branches entirely.
        let c = CostMetric::CpiError.evaluate(1.1, 1.0, 50.0, 1.0);
        assert!((c - 10.0).abs() < 1e-9);
        // Zero hardware rate falls back to absolute points.
        let c = m.evaluate(1.0, 1.0, 0.02, 0.0);
        assert!((c - 1.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn weighted_metric_runs_end_to_end() {
        // The step-5 "extra optimization round" with a component-targeted
        // cost: CPI blended with the branch-misprediction rate.
        let board = ReferenceBoard::firefly_a53();
        let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
        settings.tuner.budget = 400;
        settings.metric = CostMetric::CpiAndBranch { branch_weight: 0.3 };
        let out = Validator::new(&board, settings).run().expect("runs");
        assert!(out.tuned_mean_error() < out.untuned_mean_error());
    }

    #[test]
    fn lint_gate_rejects_a_structurally_broken_platform() {
        let mut broken = Platform::a53_like();
        // An L1D hit costing more than an L2 hit inverts the memory
        // hierarchy; the analyzer flags it as an Error and the validator
        // refuses to spend a racing budget on it.
        broken.mem.l1d.latency = broken.mem.l2.latency + 1;
        let err = lint_platform(&broken).expect_err("broken platform must be rejected");
        match err {
            ValidationError::ModelLint(diags) => {
                assert!(diags.iter().any(|d| d.severity == Severity::Error));
            }
            other => panic!("expected ModelLint, got {other:?}"),
        }
        // The shipped presets sail through the same gate.
        lint_platform(&Platform::a53_like()).expect("a53 preset is clean");
        lint_platform(&Platform::a72_like()).expect("a72 preset is clean");
    }

    #[test]
    fn base_platform_carries_latency_estimates() {
        let board = ReferenceBoard::firefly_a53();
        let v = Validator::new(&board, ValidatorSettings::quick(CoreKind::InOrder));
        let base = v.base_platform().unwrap();
        // The estimates overwrite the preset values with probe-derived
        // ones; they must be plausible, not exact.
        assert!((2..=6).contains(&base.mem.l1d.latency));
        assert!((80..=400).contains(&base.mem.dram.latency));
    }
}
