//! Fault-injection smoke: a short tune against a deliberately misbehaving
//! board must complete with a finite best cost, quarantining only the
//! instances the board genuinely cannot measure. Run in CI as the
//! degradation-path gate.

use racesim_core::{CostMetric, LazySuiteCost, Platform, Revision};
use racesim_decoder::Decoder;
use racesim_hw::{FaultPlan, FaultyBoard, HardwarePlatform, MeasureError, ReferenceBoard};
use racesim_kernels::{microbench_suite_initialized, Scale};
use racesim_race::{RacingTuner, RetryPolicy, TunerSettings};
use racesim_uarch::CoreKind;
use std::sync::Arc;

fn tuner_settings(budget: u64) -> TunerSettings {
    let mut st = TunerSettings {
        budget,
        seed: 0x5EED,
        threads: 2,
        ..TunerSettings::default()
    };
    // Retries stay, sleeps go: CI wants the paths, not the waiting.
    st.race.retry = RetryPolicy::immediate(4);
    st
}

fn lazy_cost(plan: FaultPlan) -> LazySuiteCost {
    LazySuiteCost::new(
        Arc::new(FaultyBoard::new(ReferenceBoard::firefly_a53(), plan)),
        &microbench_suite_initialized(Scale::TINY),
        Platform::a53_like(),
        Decoder::new(),
        CostMetric::CpiError,
    )
    .expect("traces record cleanly")
}

#[test]
fn ten_percent_transients_finish_within_budget_and_quarantine_nothing() {
    // The acceptance bar from the issue: under a 10% transient-failure
    // rate the tuner completes within budget with a finite best cost and
    // quarantines only genuinely-failing instances — with this plan,
    // none, because every transient clears on retry.
    let cost = lazy_cost(FaultPlan::transient(42, 0.10));
    let budget = 600;
    let result = RacingTuner::new(tuner_settings(budget)).try_tune(
        &racesim_core::params::build_space(CoreKind::InOrder, Revision::Fixed),
        &cost,
        cost.len(),
    );
    assert!(!result.aborted);
    assert!(result.best_cost.is_finite(), "{}", result.best_cost);
    assert!(result.evals_used <= budget, "{}", result.evals_used);
    assert!(
        result.quarantined.is_empty(),
        "transients clear on retry, so no instance genuinely fails: {:?}",
        result.quarantined
    );
}

#[test]
fn aggressive_fault_plan_still_produces_a_finite_best_cost() {
    // Transients, drops, spikes and hangs all at once. Dropped workloads
    // fail on every attempt, so exactly those — and only those — must be
    // quarantined.
    let plan = FaultPlan {
        hang: std::time::Duration::from_millis(1),
        ..FaultPlan::aggressive(7)
    };
    let cost = lazy_cost(plan);
    let n = cost.len();

    // Ground truth: which instances can this board never measure?
    let probe = FaultyBoard::new(ReferenceBoard::firefly_a53(), plan);
    let genuinely_dead: Vec<usize> = microbench_suite_initialized(Scale::TINY)
        .iter()
        .enumerate()
        .filter(|(_, w)| matches!(probe.measure(w), Err(MeasureError::Dropped(_))))
        .map(|(i, _)| i)
        .collect();

    let result = RacingTuner::new(tuner_settings(600)).try_tune(
        &racesim_core::params::build_space(CoreKind::InOrder, Revision::Fixed),
        &cost,
        n,
    );
    assert!(!result.aborted);
    assert!(result.best_cost.is_finite(), "{}", result.best_cost);

    // Quarantined ⊆ genuinely dead: nothing transient was condemned.
    for (instance, reason) in &result.quarantined {
        assert!(
            genuinely_dead.contains(instance),
            "instance {instance} ({reason}) is measurable and must not be quarantined"
        );
    }
    // And the run visited enough of the suite that some dead instance was
    // actually discovered (the plan's drop rate guarantees a few exist).
    assert!(!genuinely_dead.is_empty(), "plan must drop something");
}
