//! Property test: the static CPI bounds engine is *sound* — every
//! simulated CPI lands inside the kernel's static interval, for random
//! counted-loop kernels and random sampled configurations alike.
//!
//! This is the contract the static eliminator rests on: if a simulated
//! CPI could escape its interval, a configuration could be eliminated
//! whose true cost beats the incumbent, silently changing the campaign's
//! outcome. The generator deliberately produces the shapes the abstract
//! interpreter special-cases — self-feeding dependence chains, multi-
//! instruction recurrence cycles through repeatedly-written registers,
//! and independent streams — by drawing destinations and sources from a
//! small register pool.

use proptest::prelude::*;
use racesim_analyzer::bounds::{BoundsOptions, KernelBounds};
use racesim_core::params::{apply, build_space};
use racesim_core::Revision;
use racesim_isa::asm::Asm;
use racesim_isa::Reg;
use racesim_kernels::{microbench_suite_initialized, Category, Scale, Workload};
use racesim_race::SamplingModel;
use racesim_sim::{Platform, Simulator};
use racesim_uarch::CoreKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One random body instruction over a 6-integer / 4-vector register
/// pool. Collisions between destinations and sources are the point:
/// they produce chains and cross-register recurrence cycles.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(u8, u8, u8),
    Addi(u8, u8),
    Mul(u8, u8, u8),
    Fadd(u8, u8, u8),
    Fmul(u8, u8, u8),
    Scvtf(u8, u8),
    Fcvtzs(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let x = 0..6u8;
    let v = 0..4u8;
    prop_oneof![
        (x.clone(), x.clone(), x.clone()).prop_map(|(d, n, m)| Op::Add(d, n, m)),
        (x.clone(), x.clone()).prop_map(|(d, n)| Op::Addi(d, n)),
        (x.clone(), x.clone(), x.clone()).prop_map(|(d, n, m)| Op::Mul(d, n, m)),
        (v.clone(), v.clone(), v.clone()).prop_map(|(d, n, m)| Op::Fadd(d, n, m)),
        (v.clone(), v.clone(), v.clone()).prop_map(|(d, n, m)| Op::Fmul(d, n, m)),
        (v.clone(), x.clone()).prop_map(|(d, n)| Op::Scvtf(d, n)),
        (x, v).prop_map(|(d, n)| Op::Fcvtzs(d, n)),
    ]
}

/// Builds a runnable counted-loop kernel from a random body. Registers
/// x1..=x6 hold small integers and v0..=v3 hold small floats so the
/// arithmetic stays finite for the whole run.
fn build_kernel(body: &[Op], trips: u64) -> Workload {
    let mut a = Asm::new();
    for k in 0..6u8 {
        a.movz(Reg::x(1 + k), i64::from(k) + 1);
    }
    for k in 0..4u8 {
        a.scvtf(Reg::v(k), Reg::x(1 + k));
    }
    // The counted-loop idiom the IR's trip-count analysis recognises:
    // dedicated counter, subtract-and-branch back edge.
    a.mov64(Reg::x(28), trips.max(1));
    let top = a.here();
    for op in body {
        match *op {
            Op::Add(d, n, m) => a.add(Reg::x(1 + d), Reg::x(1 + n), Reg::x(1 + m)),
            Op::Addi(d, n) => a.addi(Reg::x(1 + d), Reg::x(1 + n), 1),
            Op::Mul(d, n, m) => a.mul(Reg::x(1 + d), Reg::x(1 + n), Reg::x(1 + m)),
            Op::Fadd(d, n, m) => a.fadd(Reg::v(d), Reg::v(n), Reg::v(m)),
            Op::Fmul(d, n, m) => a.fmul(Reg::v(d), Reg::v(n), Reg::v(m)),
            Op::Scvtf(d, n) => a.scvtf(Reg::v(d), Reg::x(1 + n)),
            Op::Fcvtzs(d, n) => a.fcvtzs(Reg::x(1 + d), Reg::v(n)),
        }
    }
    a.subi(Reg::x(28), Reg::x(28), 1);
    a.cbnz(Reg::x(28), top);
    a.halt();
    let expected = (body.len() as u64 + 2) * trips;
    Workload::new("prop-kernel", Category::Execution, a.finish(), expected)
}

/// Simulates `w` on `platform` and asserts the CPI lands inside the
/// kernel's static interval.
fn assert_sound(w: &Workload, platform: &Platform) {
    let kb = KernelBounds::build(&w.name, &w.program, &BoundsOptions::default());
    let iv = kb.cpi_interval(platform);
    let trace = w.trace().expect("generated kernels emulate cleanly");
    let sim = Simulator::new(platform.clone());
    let stats = sim.run(&trace).expect("generated kernels simulate");
    let cpi = stats.cpi();
    assert!(
        iv.contains(cpi),
        "static bounds violated on {}: simulated CPI {cpi} outside {iv}",
        w.name
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random kernels x random in-order configurations.
    #[test]
    fn random_kernels_simulate_inside_their_interval(
        body in proptest::collection::vec(op_strategy(), 1..12),
        trips in 4u64..96,
        cfg_seed in any::<u64>(),
    ) {
        let w = build_kernel(&body, trips);
        let space = build_space(CoreKind::InOrder, Revision::Fixed);
        let model = SamplingModel::new(&space);
        let mut rng = StdRng::seed_from_u64(cfg_seed);
        let cfg = model.sample(&space, &mut rng);
        let platform = apply(&space, &cfg, &Platform::a53_like());
        assert_sound(&w, &platform);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shipped microbenchmark suite x random in-order
    /// configurations: the exact kernels the static eliminator rules on
    /// in `racesim tune --static-bounds`.
    #[test]
    fn shipped_suite_simulates_inside_its_intervals(cfg_seed in any::<u64>()) {
        let space = build_space(CoreKind::InOrder, Revision::Fixed);
        let model = SamplingModel::new(&space);
        let mut rng = StdRng::seed_from_u64(cfg_seed);
        let cfg = model.sample(&space, &mut rng);
        let platform = apply(&space, &cfg, &Platform::a53_like());
        for w in microbench_suite_initialized(Scale::TINY) {
            assert_sound(&w, &platform);
        }
    }
}
