//! Property: every configuration sampled from the shipped parameter
//! spaces either passes the platform invariant checker or is pruned with
//! a named lint — the tuner can never spend simulation budget on a
//! structurally broken model, and the pruner never rejects silently.

use proptest::prelude::*;
use racesim_analyzer::{platform as platform_lint, Severity};
use racesim_core::params::{apply, build_space, Revision};
use racesim_race::{Domain, Value};
use racesim_sim::Platform;
use racesim_uarch::CoreKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampled_configs_pass_or_are_pruned_by_name(
        picks in proptest::collection::vec(any::<u64>(), 80..81),
        kind_ooo in any::<bool>(),
        fixed in any::<bool>(),
    ) {
        let kind = if kind_ooo { CoreKind::OutOfOrder } else { CoreKind::InOrder };
        let revision = if fixed { Revision::Fixed } else { Revision::Initial };
        let space = build_space(kind, revision);
        let base = match kind {
            CoreKind::InOrder => Platform::a53_like(),
            CoreKind::OutOfOrder => Platform::a72_like(),
        };

        // A uniformly random point of the space: one pick per dimension.
        let mut cfg = space.default_configuration();
        for (i, p) in space.params().iter().enumerate() {
            let pick = picks[i % picks.len()].wrapping_add(i as u64);
            let v = match &p.domain {
                Domain::Categorical(cs) => Value::Cat((pick as usize % cs.len()) as u16),
                Domain::Integer(vs) => Value::Int((pick as usize % vs.len()) as u16),
                Domain::Bool => Value::Flag(pick & 1 == 1),
            };
            cfg.set_value(i, v);
        }

        // The same gate the validator installs as the tuner's pruner.
        let platform = apply(&space, &cfg, &base);
        let diags = platform_lint::check(&platform);
        let first_error = diags.iter().find(|d| d.severity == Severity::Error);
        match first_error {
            None => prop_assert!(platform_lint::is_realisable(&platform)),
            Some(d) => {
                let code = d.lint.code();
                prop_assert!(
                    code.starts_with("RA") && code.len() == 5,
                    "pruned configuration must cite a named lint, got {code:?}"
                );
            }
        }
    }
}
