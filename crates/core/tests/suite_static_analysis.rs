//! Whole-suite properties of the kernel IR and the coverage matrix: the
//! CFG/dataflow builder must hold its structural invariants over every
//! shipped workload (all micro-benchmarks plus all SPEC proxies), and
//! the parameter-coverage matrix built over the real tuning spaces must
//! be total and agree with what the suite actually contains.

use racesim_analyzer::coverage::CoverageMatrix;
use racesim_analyzer::ir::{self, KernelIr, KernelProfile};
use racesim_analyzer::Severity;
use racesim_core::params::build_space;
use racesim_core::Revision;
use racesim_kernels::{microbench_suite_initialized, spec_suite, Scale, Workload};
use racesim_sim::Platform;
use racesim_uarch::CoreKind;

fn whole_suite() -> Vec<Workload> {
    let scale = Scale::divide_by(2048);
    let mut all = microbench_suite_initialized(scale);
    all.extend(spec_suite(scale));
    all
}

/// The CFG must partition the instruction stream: blocks are contiguous,
/// non-empty, cover every instruction exactly once, and the block index
/// agrees with the partition.
#[test]
fn blocks_partition_every_kernel() {
    for w in &whole_suite() {
        let ir = KernelIr::build(&w.program);
        let n = w.program.code.len();
        assert!(!ir.blocks.is_empty(), "{}: no blocks", w.name);
        assert_eq!(ir.blocks[0].start, 0, "{}: entry not at 0", w.name);
        assert_eq!(
            ir.blocks.last().unwrap().end,
            n,
            "{}: tail uncovered",
            w.name
        );
        for pair in ir.blocks.windows(2) {
            assert!(pair[0].start < pair[0].end, "{}: empty block", w.name);
            assert_eq!(pair[0].end, pair[1].start, "{}: gap or overlap", w.name);
        }
        assert_eq!(ir.block_of.len(), n, "{}: block_of length", w.name);
        for (idx, &b) in ir.block_of.iter().enumerate() {
            assert!(
                ir.blocks[b].start <= idx && idx < ir.blocks[b].end,
                "{}: block_of[{idx}] = {b} does not contain it",
                w.name
            );
        }
    }
}

/// Successor and predecessor edges must be mutually consistent, and the
/// entry block must be reachable.
#[test]
fn cfg_edges_are_symmetric_and_entry_is_reachable() {
    for w in &whole_suite() {
        let ir = KernelIr::build(&w.program);
        assert!(ir.reachable[0], "{}: entry unreachable", w.name);
        for (b, blk) in ir.blocks.iter().enumerate() {
            for &s in &blk.succs {
                assert!(
                    ir.blocks[s].preds.contains(&b),
                    "{}: edge {b}->{s} has no back-pointer",
                    w.name
                );
            }
            for &p in &blk.preds {
                assert!(
                    ir.blocks[p].succs.contains(&b),
                    "{}: pred {p}->{b} has no forward edge",
                    w.name
                );
            }
        }
    }
}

/// Every natural loop must contain its own header and latch, and a loop
/// without an exit edge must be diagnosed as an error by the linter.
#[test]
fn loops_are_well_formed_or_diagnosed() {
    for w in &whole_suite() {
        let ir = KernelIr::build(&w.program);
        let diags = ir::check(&w.program);
        for l in &ir.loops {
            assert!(
                l.body.contains(&l.header),
                "{}: header outside body",
                w.name
            );
            assert!(l.body.contains(&l.latch), "{}: latch outside body", w.name);
            if !l.has_exit {
                assert!(
                    diags.iter().any(|d| d.severity == Severity::Error),
                    "{}: inescapable loop not diagnosed",
                    w.name
                );
            }
        }
    }
}

/// The shipped suites must be free of Error-severity IR findings: every
/// workload terminates (no RA403) and the analyses run without panicking.
#[test]
fn shipped_suite_has_no_ir_errors() {
    for w in &whole_suite() {
        let errors: Vec<_> = ir::check(&w.program)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", w.name);
    }
}

/// Profiles must be internally consistent: a non-empty reachable summary,
/// reachable blocks bounded by the block count, and an ILP of at least 1.
#[test]
fn profiles_are_consistent() {
    for w in &whole_suite() {
        let p: KernelProfile = ir::profile(&w.name, &w.program);
        assert!(p.summary.instructions > 0, "{}: empty summary", w.name);
        assert!(p.reachable_blocks <= p.blocks, "{}", w.name);
        assert!(p.reachable_blocks >= 1, "{}", w.name);
        assert!(p.max_block_ilp >= 1.0, "{}", w.name);
        assert!(p.code_bytes > 0, "{}", w.name);
        assert!(p.static_trips.len() <= p.loops, "{}", w.name);
    }
}

/// The coverage matrix over the real tuning spaces must be total (one row
/// per parameter, one column per kernel) and must agree with ground truth
/// about the suite: conditional branches are everywhere, indirect
/// branches only in the switch kernels, and no shipped kernel contains an
/// fp square root — `lat.fp_sqrt` is the canonical dead dimension the
/// tuner freezes.
#[test]
fn coverage_matrix_is_total_and_matches_the_suite() {
    let suite = whole_suite();
    let profiles: Vec<_> = suite
        .iter()
        .map(|w| ir::profile(&w.name, &w.program))
        .collect();
    for (kind, base) in [
        (CoreKind::InOrder, Platform::a53_like()),
        (CoreKind::OutOfOrder, Platform::a72_like()),
    ] {
        let space = build_space(kind, Revision::Fixed);
        let matrix = CoverageMatrix::build(&space, &profiles, &base);
        assert_eq!(matrix.kernels.len(), suite.len());
        assert_eq!(matrix.params.len(), space.params().len());
        for (row, p) in matrix.params.iter().zip(space.params()) {
            assert_eq!(row.name, p.name, "rows must follow space order");
            assert_eq!(row.observers.len(), suite.len());
        }
        let count = |name: &str| {
            matrix
                .params
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("{name} missing from matrix"))
                .count()
        };
        assert_eq!(count("branch.predictor"), suite.len());
        assert_eq!(count("lat.fp_sqrt"), 0);
        assert!(matrix.unobservable().contains(&"lat.fp_sqrt"));
        let indirect = matrix.observers_of("branch.indirect").unwrap();
        assert_eq!(indirect, vec!["CS1", "CS3"]);
    }
}

/// The shipped suite must produce no RA602 bound-inversions: an inverted
/// static CPI interval would make the bounds lattice unsound for that
/// kernel, and the static eliminator would be ruling on garbage. Probes
/// every parameter one-at-a-time across both tuning spaces, exactly as
/// `racesim lint --suite` does.
#[test]
fn shipped_suite_has_no_bound_inversions() {
    use racesim_analyzer::bounds::{check_suite_bounds, BoundsOptions, KernelBounds};

    let suite = whole_suite();
    let kernels: Vec<KernelBounds> = suite
        .iter()
        .map(|w| KernelBounds::build(&w.name, &w.program, &BoundsOptions::default()))
        .collect();
    for kind in [CoreKind::InOrder, CoreKind::OutOfOrder] {
        let space = build_space(kind, Revision::Fixed);
        let base = Platform::a53_like();
        let apply =
            |cfg: &racesim_race::Configuration| racesim_core::params::apply(&space, cfg, &base);
        let mut diags = Vec::new();
        check_suite_bounds(&kernels, &space, &apply, &mut diags);
        let inversions: Vec<_> = diags.iter().filter(|d| d.lint.code() == "RA602").collect();
        assert!(
            inversions.is_empty(),
            "RA602 bound-inversions on the shipped suite: {inversions:?}"
        );
    }
}
