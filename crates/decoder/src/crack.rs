//! Micro-op cracking.
//!
//! Sniper's back-end consumes micro-operations rather than architectural
//! instructions. Most racesim instructions map 1:1 onto a micro-op; stores
//! crack into an address-generation micro-op and a data micro-op, mirroring
//! the STA/STD split of ARM cores.

use racesim_isa::{InstClass, Reg, StaticInst, MAX_SRCS};
use std::fmt;

/// The functional kind of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Executes on an integer/FP/SIMD pipe (class tells which).
    Exec,
    /// Load micro-op: address generation + cache access.
    Load,
    /// Store address-generation micro-op.
    StoreAddr,
    /// Store data micro-op.
    StoreData,
    /// Control transfer micro-op.
    Branch,
    /// Barrier micro-op.
    Barrier,
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::Exec => "exec",
            UopKind::Load => "load",
            UopKind::StoreAddr => "store-addr",
            UopKind::StoreData => "store-data",
            UopKind::Branch => "branch",
            UopKind::Barrier => "barrier",
        };
        f.write_str(s)
    }
}

/// One micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Functional kind.
    pub kind: UopKind,
    /// Timing class inherited from the parent instruction.
    pub class: InstClass,
    /// Source registers (first `num_srcs` valid).
    pub srcs: [Reg; MAX_SRCS],
    /// Number of valid sources.
    pub num_srcs: u8,
    /// Destination register, if any.
    pub dst: Option<Reg>,
}

impl MicroOp {
    /// The valid source registers.
    pub fn sources(&self) -> &[Reg] {
        &self.srcs[..self.num_srcs as usize]
    }
}

/// A fixed-capacity list of at most two micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOps {
    ops: [MicroOp; 2],
    len: u8,
}

impl MicroOps {
    fn one(op: MicroOp) -> MicroOps {
        MicroOps {
            ops: [op, op],
            len: 1,
        }
    }

    fn two(a: MicroOp, b: MicroOp) -> MicroOps {
        MicroOps {
            ops: [a, b],
            len: 2,
        }
    }

    /// The micro-ops as a slice.
    pub fn as_slice(&self) -> &[MicroOp] {
        &self.ops[..self.len as usize]
    }

    /// Number of micro-ops (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always false: every instruction cracks into at least one micro-op.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<'a> IntoIterator for &'a MicroOps {
    type Item = &'a MicroOp;
    type IntoIter = std::slice::Iter<'a, MicroOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Cracks a decoded instruction into micro-ops.
///
/// Stores produce a store-address micro-op (reading the address registers)
/// followed by a store-data micro-op (reading the stored value); everything
/// else produces a single micro-op of the appropriate kind.
///
/// # Example
///
/// ```
/// use racesim_decoder::{crack, Decoder, UopKind};
/// use racesim_isa::{asm::Asm, Reg};
///
/// let mut a = Asm::new();
/// a.str8(Reg::x(0), Reg::x(1), 0);
/// let p = a.finish();
/// let inst = Decoder::new().decode(p.code[0])?;
/// let uops = crack(&inst);
/// assert_eq!(uops.len(), 2);
/// assert_eq!(uops.as_slice()[0].kind, UopKind::StoreAddr);
/// assert_eq!(uops.as_slice()[1].kind, UopKind::StoreData);
/// # Ok::<(), racesim_decoder::DecodeError>(())
/// ```
pub fn crack(inst: &StaticInst) -> MicroOps {
    let kind = match inst.class {
        InstClass::Load => UopKind::Load,
        InstClass::Store => UopKind::StoreAddr,
        InstClass::Barrier => UopKind::Barrier,
        c if c.is_branch() => UopKind::Branch,
        _ => UopKind::Exec,
    };

    if inst.class == InstClass::Store {
        // Sources: [value, base, index?] — value is always first (see the
        // decoder). Address uop reads base/index; data uop reads the value.
        let mut addr_srcs = [Reg::XZR; MAX_SRCS];
        let mut n_addr = 0u8;
        for &r in inst.sources().iter().skip(1) {
            addr_srcs[n_addr as usize] = r;
            n_addr += 1;
        }
        let addr = MicroOp {
            kind: UopKind::StoreAddr,
            class: inst.class,
            srcs: addr_srcs,
            num_srcs: n_addr,
            dst: None,
        };
        let mut data_srcs = [Reg::XZR; MAX_SRCS];
        let mut n_data = 0u8;
        if let Some(&value) = inst.sources().first() {
            data_srcs[0] = value;
            n_data = 1;
        }
        let data = MicroOp {
            kind: UopKind::StoreData,
            class: inst.class,
            srcs: data_srcs,
            num_srcs: n_data,
            dst: None,
        };
        return MicroOps::two(addr, data);
    }

    MicroOps::one(MicroOp {
        kind,
        class: inst.class,
        srcs: inst.srcs,
        num_srcs: inst.num_srcs,
        dst: inst.dests().first().copied(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Decoder;
    use racesim_isa::{asm::Asm, MemWidth};

    fn decode_one(f: impl FnOnce(&mut Asm)) -> StaticInst {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.finish();
        Decoder::new().decode(p.code[0]).unwrap()
    }

    #[test]
    fn alu_cracks_to_one_exec_uop() {
        let i = decode_one(|a| a.add(Reg::x(0), Reg::x(1), Reg::x(2)));
        let u = crack(&i);
        assert_eq!(u.len(), 1);
        let op = &u.as_slice()[0];
        assert_eq!(op.kind, UopKind::Exec);
        assert_eq!(op.dst, Some(Reg::x(0)));
        assert_eq!(op.sources(), &[Reg::x(1), Reg::x(2)]);
    }

    #[test]
    fn load_cracks_to_one_load_uop() {
        let i = decode_one(|a| a.ldr8(Reg::x(0), Reg::x(1), 0));
        let u = crack(&i);
        assert_eq!(u.len(), 1);
        assert_eq!(u.as_slice()[0].kind, UopKind::Load);
    }

    #[test]
    fn store_splits_address_and_data_dependencies() {
        let i = decode_one(|a| a.str(MemWidth::B8, Reg::x(7), Reg::x(8), Reg::x(9), 0));
        let u = crack(&i);
        assert_eq!(u.len(), 2);
        let sta = &u.as_slice()[0];
        let std_ = &u.as_slice()[1];
        assert_eq!(sta.kind, UopKind::StoreAddr);
        assert_eq!(sta.sources(), &[Reg::x(8), Reg::x(9)]);
        assert_eq!(std_.kind, UopKind::StoreData);
        assert_eq!(std_.sources(), &[Reg::x(7)]);
    }

    #[test]
    fn branch_cracks_to_branch_uop() {
        let mut a = Asm::new();
        let l = a.here();
        a.b(l);
        let p = a.finish();
        let i = Decoder::new().decode(p.code[0]).unwrap();
        let u = crack(&i);
        assert_eq!(u.as_slice()[0].kind, UopKind::Branch);
    }

    #[test]
    fn iteration_matches_slice() {
        let i = decode_one(|a| a.str8(Reg::x(0), Reg::x(1), 0));
        let u = crack(&i);
        assert_eq!(u.into_iter().count(), 2);
        assert!(!u.is_empty());
    }
}
