//! Word → [`StaticInst`] decoding.

use racesim_isa::{EncodedInst, MemWidth, Opcode, Reg, StaticInst, MAX_DSTS, MAX_SRCS};
use std::fmt;

/// Errors produced while decoding an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name a known opcode.
    UnknownOpcode(u8),
    /// A register field does not name an architectural register.
    BadRegister(u8),
    /// The condition field is out of range for a conditional instruction.
    BadCondition(u8),
    /// The width field is invalid for a memory instruction.
    BadWidth(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode byte {b:#x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register field {r}"),
            DecodeError::BadCondition(c) => write!(f, "invalid condition field {c}"),
            DecodeError::BadWidth(w) => write!(f, "invalid memory width field {w}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Deliberate dependency-decoding bugs, mirroring the Capstone issues the
/// paper's methodology uncovered (see the crate-level docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quirks {
    /// `movz` reports its destination as an extra source.
    pub mov_dest_is_source: bool,
    /// Scalar/SIMD FP arithmetic reports its destination as an extra source.
    pub fp_dest_is_source: bool,
}

impl Quirks {
    /// The fixed decoder: no known bugs.
    pub fn none() -> Quirks {
        Quirks::default()
    }

    /// The buggy decoder the validation flow starts from.
    pub fn capstone_like() -> Quirks {
        Quirks {
            mov_dest_is_source: true,
            fp_dest_is_source: true,
        }
    }

    /// Whether any quirk is enabled.
    pub fn any(&self) -> bool {
        self.mov_dest_is_source || self.fp_dest_is_source
    }
}

/// Instruction decoder.
///
/// Construct with [`Decoder::new`] (correct semantics) or
/// [`Decoder::with_quirks`] to reproduce the buggy-library scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder {
    quirks: Quirks,
}

struct RegListBuilder {
    srcs: [Reg; MAX_SRCS],
    num_srcs: u8,
    dsts: [Reg; MAX_DSTS],
    num_dsts: u8,
}

impl RegListBuilder {
    fn new() -> RegListBuilder {
        RegListBuilder {
            srcs: [Reg::XZR; MAX_SRCS],
            num_srcs: 0,
            dsts: [Reg::XZR; MAX_DSTS],
            num_dsts: 0,
        }
    }

    /// Records a source register; reads of the zero register carry no
    /// dependency and are dropped.
    fn src(&mut self, r: Reg) {
        if r.is_zero() {
            return;
        }
        debug_assert!((self.num_srcs as usize) < MAX_SRCS);
        self.srcs[self.num_srcs as usize] = r;
        self.num_srcs += 1;
    }

    /// Records a source register even if it is the zero register (quirk
    /// paths use this to create false dependencies).
    fn src_raw(&mut self, r: Reg) {
        debug_assert!((self.num_srcs as usize) < MAX_SRCS);
        self.srcs[self.num_srcs as usize] = r;
        self.num_srcs += 1;
    }

    /// Records a destination register; writes to the zero register are
    /// discarded.
    fn dst(&mut self, r: Reg) {
        if r.is_zero() {
            return;
        }
        debug_assert!((self.num_dsts as usize) < MAX_DSTS);
        self.dsts[self.num_dsts as usize] = r;
        self.num_dsts += 1;
    }
}

impl Decoder {
    /// Creates a decoder with correct dependency semantics.
    pub fn new() -> Decoder {
        Decoder {
            quirks: Quirks::none(),
        }
    }

    /// Creates a decoder with the given [`Quirks`].
    pub fn with_quirks(quirks: Quirks) -> Decoder {
        Decoder { quirks }
    }

    /// The quirks this decoder applies.
    pub fn quirks(&self) -> Quirks {
        self.quirks
    }

    /// Decodes one instruction word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the opcode, a register field, the
    /// condition, or the memory width is invalid.
    pub fn decode(&self, word: EncodedInst) -> Result<StaticInst, DecodeError> {
        let op = word
            .opcode()
            .ok_or(DecodeError::UnknownOpcode((word.word() & 0xff) as u8))?;
        let rd = Reg::from_index(word.rd_bits()).ok_or(DecodeError::BadRegister(word.rd_bits()))?;
        let rn = Reg::from_index(word.rn_bits()).ok_or(DecodeError::BadRegister(word.rn_bits()))?;
        let rm = Reg::from_index(word.rm_bits()).ok_or(DecodeError::BadRegister(word.rm_bits()))?;
        let imm = word.imm();

        let mut regs = RegListBuilder::new();
        let mut cond = None;
        let mut width = None;
        let mut movk_slot = 0u8;

        use Opcode::*;
        match op {
            Nop | Dsb | Halt => {}
            Add | Sub | And | Orr | Eor | Mul | Udiv | Sdiv => {
                regs.src(rn);
                regs.src(rm);
                regs.dst(rd);
            }
            AddI | SubI | Lsl | Lsr | Asr => {
                regs.src(rn);
                regs.dst(rd);
            }
            Movz => {
                if self.quirks.mov_dest_is_source {
                    // Capstone-like bug: the move target is reported as read.
                    regs.src_raw(rd);
                }
                regs.dst(rd);
            }
            Movk => {
                regs.src(rn); // rn == rd by construction: movk patches.
                regs.dst(rd);
                movk_slot = word.aux() & 0x3;
            }
            Cmp => {
                regs.src(rn);
                regs.src(rm);
                regs.dst(Reg::NZCV);
            }
            CmpI => {
                regs.src(rn);
                regs.dst(Reg::NZCV);
            }
            Csel => {
                cond = Some(word.cond().ok_or(DecodeError::BadCondition(word.aux()))?);
                regs.src(rn);
                regs.src(rm);
                regs.src(Reg::NZCV);
                regs.dst(rd);
            }
            Fadd | Fsub | Fmul | Fdiv | Vadd | Vmul | Vfadd | Vfmul => {
                regs.src(rn);
                regs.src(rm);
                if self.quirks.fp_dest_is_source {
                    regs.src_raw(rd);
                }
                regs.dst(rd);
            }
            Vfma => {
                // Genuine accumulator: vd is architecturally both read and
                // written.
                regs.src(rn);
                regs.src(rm);
                regs.src(rd);
                regs.dst(rd);
            }
            Fsqrt | Scvtf | Fcvtzs | Fmov | FmovI => {
                regs.src(rn);
                if self.quirks.fp_dest_is_source && matches!(op, Fsqrt | Fmov) {
                    regs.src_raw(rd);
                }
                regs.dst(rd);
            }
            Ldr => {
                width =
                    Some(MemWidth::from_bits(word.aux()).ok_or(DecodeError::BadWidth(word.aux()))?);
                regs.src(rn);
                regs.src(rm);
                regs.dst(rd);
            }
            Str => {
                width =
                    Some(MemWidth::from_bits(word.aux()).ok_or(DecodeError::BadWidth(word.aux()))?);
                // The stored value travels in the rd field.
                regs.src(rd);
                regs.src(rn);
                regs.src(rm);
            }
            B => {}
            Bcond => {
                cond = Some(word.cond().ok_or(DecodeError::BadCondition(word.aux()))?);
                regs.src(Reg::NZCV);
            }
            Cbz | Cbnz => {
                regs.src(rn);
            }
            Br => {
                regs.src(rn);
            }
            Bl => {
                regs.dst(Reg::LR);
            }
            Blr => {
                regs.src(rn);
                regs.dst(Reg::LR);
            }
            Ret => {
                regs.src(rn); // rn == x30 by construction.
            }
        }

        Ok(StaticInst {
            opcode: op,
            class: op.class(),
            cond,
            width,
            srcs: regs.srcs,
            num_srcs: regs.num_srcs,
            dsts: regs.dsts,
            num_dsts: regs.num_dsts,
            imm,
            movk_slot,
        })
    }

    /// Decodes an entire program's code section.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered, with its index.
    pub fn decode_all(
        &self,
        code: &[EncodedInst],
    ) -> Result<Vec<StaticInst>, (usize, DecodeError)> {
        code.iter()
            .enumerate()
            .map(|(i, w)| self.decode(*w).map_err(|e| (i, e)))
            .collect()
    }

    /// Decodes an entire code section leniently: undecodable words become
    /// `None` instead of aborting the walk. This is the static view the
    /// analyzer passes build on — a corrupted word must not hide the
    /// analysis of everything after it.
    pub fn decode_program(&self, code: &[EncodedInst]) -> Vec<Option<StaticInst>> {
        code.iter().map(|w| self.decode(*w).ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, Cond, InstClass};

    fn one(f: impl FnOnce(&mut Asm)) -> StaticInst {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.finish();
        Decoder::new().decode(p.code[0]).expect("decode")
    }

    #[test]
    fn alu_three_operand() {
        let i = one(|a| a.add(Reg::x(0), Reg::x(1), Reg::x(2)));
        assert_eq!(i.class, InstClass::IntAlu);
        assert_eq!(i.sources(), &[Reg::x(1), Reg::x(2)]);
        assert_eq!(i.dests(), &[Reg::x(0)]);
    }

    #[test]
    fn zero_register_reads_carry_no_dependency() {
        let i = one(|a| a.add(Reg::x(0), Reg::XZR, Reg::x(2)));
        assert_eq!(i.sources(), &[Reg::x(2)]);
        let i = one(|a| a.mov(Reg::x(0), Reg::x(5))); // orr x0, x5, xzr
        assert_eq!(i.sources(), &[Reg::x(5)]);
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let i = one(|a| a.add(Reg::XZR, Reg::x(1), Reg::x(2)));
        assert_eq!(i.dests(), &[]);
    }

    #[test]
    fn compare_writes_flags_and_branch_reads_them() {
        let i = one(|a| a.cmp(Reg::x(1), Reg::x(2)));
        assert_eq!(i.dests(), &[Reg::NZCV]);
        let mut a = Asm::new();
        let l = a.here();
        a.bcond(Cond::Ne, l);
        let p = a.finish();
        let i = Decoder::new().decode(p.code[0]).unwrap();
        assert_eq!(i.sources(), &[Reg::NZCV]);
        assert_eq!(i.cond, Some(Cond::Ne));
        assert_eq!(i.imm, 0);
    }

    #[test]
    fn csel_reads_both_inputs_and_flags() {
        let i = one(|a| a.csel(Cond::Lt, Reg::x(0), Reg::x(1), Reg::x(2)));
        assert_eq!(i.sources(), &[Reg::x(1), Reg::x(2), Reg::NZCV]);
        assert_eq!(i.cond, Some(Cond::Lt));
    }

    #[test]
    fn loads_and_stores() {
        let i = one(|a| a.ldr(MemWidth::B4, Reg::x(0), Reg::x(1), Reg::x(2), 8));
        assert_eq!(i.class, InstClass::Load);
        assert_eq!(i.width, Some(MemWidth::B4));
        assert_eq!(i.sources(), &[Reg::x(1), Reg::x(2)]);
        assert_eq!(i.dests(), &[Reg::x(0)]);
        assert_eq!(i.imm, 8);

        let i = one(|a| a.str8(Reg::x(3), Reg::x(4), -8));
        assert_eq!(i.class, InstClass::Store);
        assert_eq!(i.sources(), &[Reg::x(3), Reg::x(4)]);
        assert_eq!(i.dests(), &[]);
        assert_eq!(i.imm, -8);
    }

    #[test]
    fn vector_load_uses_vector_destination() {
        let i = one(|a| a.ldr(MemWidth::B16, Reg::v(3), Reg::x(1), Reg::XZR, 0));
        assert_eq!(i.dests(), &[Reg::v(3)]);
        assert_eq!(i.width, Some(MemWidth::B16));
    }

    #[test]
    fn calls_and_returns_use_the_link_register() {
        let mut a = Asm::new();
        let f = a.label();
        a.bl(f);
        a.bind(f);
        a.ret();
        let p = a.finish();
        let d = Decoder::new();
        let call = d.decode(p.code[0]).unwrap();
        assert_eq!(call.class, InstClass::BranchCall);
        assert_eq!(call.dests(), &[Reg::LR]);
        let ret = d.decode(p.code[1]).unwrap();
        assert_eq!(ret.class, InstClass::BranchRet);
        assert_eq!(ret.sources(), &[Reg::LR]);
    }

    #[test]
    fn vfma_is_a_genuine_accumulator() {
        let i = one(|a| a.vfma(Reg::v(0), Reg::v(1), Reg::v(2)));
        assert_eq!(i.sources(), &[Reg::v(1), Reg::v(2), Reg::v(0)]);
        assert_eq!(i.dests(), &[Reg::v(0)]);
    }

    #[test]
    fn quirky_decoder_serialises_moves_and_fp() {
        let mut a = Asm::new();
        a.movz(Reg::x(1), 7);
        a.fadd(Reg::v(0), Reg::v(1), Reg::v(2));
        let p = a.finish();
        let quirky = Decoder::with_quirks(Quirks::capstone_like());
        let fixed = Decoder::new();

        let m_q = quirky.decode(p.code[0]).unwrap();
        let m_f = fixed.decode(p.code[0]).unwrap();
        assert_eq!(m_f.sources(), &[]);
        assert_eq!(m_q.sources(), &[Reg::x(1)], "false dep on mov target");

        let f_q = quirky.decode(p.code[1]).unwrap();
        let f_f = fixed.decode(p.code[1]).unwrap();
        assert_eq!(f_f.sources(), &[Reg::v(1), Reg::v(2)]);
        assert_eq!(f_q.sources(), &[Reg::v(1), Reg::v(2), Reg::v(0)]);
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        let e = Decoder::new().decode(EncodedInst(0xfe));
        assert_eq!(e, Err(DecodeError::UnknownOpcode(0xfe)));
    }

    #[test]
    fn bad_register_is_an_error() {
        // Opcode Add with rd field = 200 (invalid).
        let word = EncodedInst((Opcode::Add.bits() as u64) | (200u64 << 12));
        assert_eq!(
            Decoder::new().decode(word),
            Err(DecodeError::BadRegister(200))
        );
    }

    #[test]
    fn bad_width_is_an_error() {
        // Ldr with width field 9.
        let word = EncodedInst((Opcode::Ldr.bits() as u64) | (9u64 << 8));
        assert_eq!(Decoder::new().decode(word), Err(DecodeError::BadWidth(9)));
    }

    #[test]
    fn decode_all_reports_the_failing_index() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        let mut p = a.finish();
        p.code.push(EncodedInst(0xfd));
        let err = Decoder::new().decode_all(&p.code).unwrap_err();
        assert_eq!(err.0, 2);
    }
}
