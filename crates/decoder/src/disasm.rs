//! Textual disassembly, for debugging and golden tests.

use crate::Decoder;
use racesim_isa::{EncodedInst, Opcode, Reg};

/// Disassembles one instruction word into assembler-like text.
///
/// Unknown words render as `.word <hex>`; field errors fall back to a raw
/// rendering rather than failing, since disassembly is a debugging aid.
///
/// # Example
///
/// ```
/// use racesim_decoder::disasm;
/// use racesim_isa::{asm::Asm, Reg};
///
/// let mut a = Asm::new();
/// a.add(Reg::x(0), Reg::x(1), Reg::x(2));
/// let p = a.finish();
/// assert_eq!(disasm(p.code[0]), "add x0, x1, x2");
/// ```
pub fn disasm(word: EncodedInst) -> String {
    let dec = Decoder::new();
    let Some(op) = word.opcode() else {
        return format!(".word {:#018x}", word.word());
    };
    let Ok(inst) = dec.decode(word) else {
        return format!(".word {:#018x} ; bad {op}", word.word());
    };
    let rd = Reg::from_index(word.rd_bits());
    let rn = Reg::from_index(word.rn_bits());
    let rm = Reg::from_index(word.rm_bits());
    let imm = word.imm();
    let r = |r: Option<Reg>| r.map(|r| r.to_string()).unwrap_or_else(|| "?".into());

    use Opcode::*;
    match op {
        Nop | Dsb | Halt | Ret => op.mnemonic().to_string(),
        Add | Sub | And | Orr | Eor | Mul | Udiv | Sdiv | Fadd | Fsub | Fmul | Fdiv | Vadd
        | Vmul | Vfadd | Vfmul | Vfma => {
            format!("{op} {}, {}, {}", r(rd), r(rn), r(rm))
        }
        AddI | SubI => format!("{op} {}, {}, #{imm}", r(rd), r(rn)),
        Lsl | Lsr | Asr => format!("{op} {}, {}, #{imm}", r(rd), r(rn)),
        Movz => format!("{op} {}, #{imm}", r(rd)),
        Movk => format!("{op} {}, #{imm}, lsl #{}", r(rd), 16 * inst.movk_slot),
        Cmp => format!("{op} {}, {}", r(rn), r(rm)),
        CmpI => format!("{op} {}, #{imm}", r(rn)),
        Csel => format!(
            "csel.{} {}, {}, {}",
            inst.cond.expect("csel has a condition"),
            r(rd),
            r(rn),
            r(rm)
        ),
        Fsqrt | Scvtf | Fcvtzs | Fmov | FmovI => format!("{op} {}, {}", r(rd), r(rn)),
        Ldr | Str => {
            let w = inst.width.expect("memory op has a width");
            let idx = match rm {
                Some(rm) if !rm.is_zero() => format!(", {rm}"),
                _ => String::new(),
            };
            format!("{op}.{w} {}, [{}{idx}, #{imm}]", r(rd), r(rn))
        }
        B => format!("b {imm:+}"),
        Bcond => format!("b.{} {imm:+}", inst.cond.expect("b.cond has a condition")),
        Cbz | Cbnz => format!("{op} {}, {imm:+}", r(rn)),
        Br => format!("br {}", r(rn)),
        Bl => format!("bl {imm:+}"),
        Blr => format!("blr {}", r(rn)),
    }
}

/// Disassembles a code slice, one instruction per line, with indices.
pub fn disasm_all(code: &[EncodedInst]) -> String {
    let mut out = String::new();
    for (i, w) in code.iter().enumerate() {
        out.push_str(&format!("{i:6}: {}\n", disasm(*w)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, Cond, MemWidth};

    #[test]
    fn representative_lines() {
        let mut a = Asm::new();
        a.add(Reg::x(0), Reg::x(1), Reg::x(2));
        a.addi(Reg::x(3), Reg::x(3), 8);
        a.movz(Reg::x(4), 100);
        a.cmp(Reg::x(0), Reg::x(4));
        let l = a.here();
        a.bcond(Cond::Ne, l);
        a.ldr(MemWidth::B4, Reg::x(5), Reg::x(6), Reg::x(7), 12);
        a.str8(Reg::x(5), Reg::x(6), 0);
        a.csel(Cond::Lt, Reg::x(1), Reg::x(2), Reg::x(3));
        a.halt();
        let p = a.finish();
        let lines: Vec<String> = p.code.iter().map(|w| disasm(*w)).collect();
        assert_eq!(lines[0], "add x0, x1, x2");
        assert_eq!(lines[1], "addi x3, x3, #8");
        assert_eq!(lines[2], "movz x4, #100");
        assert_eq!(lines[3], "cmp x0, x4");
        assert_eq!(lines[4], "b.ne +0");
        assert_eq!(lines[5], "ldr.4b x5, [x6, x7, #12]");
        assert_eq!(lines[6], "str.8b x5, [x6, #0]");
        assert_eq!(lines[7], "csel.lt x1, x2, x3");
        assert_eq!(lines[8], "halt");
    }

    #[test]
    fn unknown_word_renders_as_raw() {
        assert!(disasm(EncodedInst(0xff)).starts_with(".word"));
    }

    #[test]
    fn disasm_all_numbers_lines() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let p = a.finish();
        let text = disasm_all(&p.code);
        assert!(text.contains("0: nop"));
        assert!(text.contains("1: halt"));
    }
}
