//! # racesim-decoder
//!
//! Decoder library for the racesim micro-ISA — the project's stand-in for
//! [Capstone], which the paper used to decode ARM AArch64 instructions for
//! Sniper's new front-end.
//!
//! The decoder turns raw [`racesim_isa::EncodedInst`] words into fully
//! resolved [`racesim_isa::StaticInst`]s: timing class, explicit
//! source/destination register lists, and decoded operands. It also provides
//! micro-op cracking ([`crack`]) and a disassembler ([`disasm`]).
//!
//! ## Reproducing the paper's decoder bugs
//!
//! Section IV-B of the paper reports that *"relevant bugs in the Capstone
//! decoder library … led to errors in modeling dependencies across
//! instructions"*, which the validation methodology exposed. To reproduce
//! that part of the study, [`Quirks::capstone_like`] deliberately
//! re-introduces two dependency-decoding bugs:
//!
//! * register-move immediates (`movz`) report the destination register as a
//!   *source*, serialising chains of independent moves;
//! * FP/SIMD arithmetic reports the destination as an extra source,
//!   serialising independent floating-point and data-parallel loops.
//!
//! The fixed decoder is [`Quirks::none`]. The validation flow in
//! `racesim-core` starts with the quirky decoder and switches to the fixed
//! one during the "fix error source" step, exactly as the authors did.
//!
//! [Capstone]: http://www.capstone-engine.org/
//!
//! # Example
//!
//! ```
//! use racesim_decoder::Decoder;
//! use racesim_isa::{asm::Asm, InstClass, Reg};
//!
//! let mut a = Asm::new();
//! a.add(Reg::x(0), Reg::x(1), Reg::x(2));
//! let p = a.finish();
//!
//! let dec = Decoder::new();
//! let inst = dec.decode(p.code[0])?;
//! assert_eq!(inst.class, InstClass::IntAlu);
//! assert_eq!(inst.sources(), &[Reg::x(1), Reg::x(2)]);
//! assert_eq!(inst.dests(), &[Reg::x(0)]);
//! # Ok::<(), racesim_decoder::DecodeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crack;
mod decode;
mod disasm;

pub use crack::{crack, MicroOp, MicroOps, UopKind};
pub use decode::{DecodeError, Decoder, Quirks};
pub use disasm::{disasm, disasm_all};
