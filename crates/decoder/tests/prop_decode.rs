//! Property tests: every instruction the assembler can emit decodes
//! cleanly, and the decoded register lists respect their bounds.

use proptest::prelude::*;
use racesim_decoder::{crack, disasm, Decoder, Quirks};
use racesim_isa::{asm::Asm, Cond, MemWidth, Reg};

#[derive(Debug, Clone)]
enum Op {
    Add(u8, u8, u8),
    AddI(u8, i32),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
    Movz(u8, u32),
    Cmp(u8, u8),
    Csel(u8, u8, u8, u8),
    Fadd(u8, u8, u8),
    Vfma(u8, u8, u8),
    Ldr(u8, u8, u8, i32, u8),
    Str(u8, u8, i32, u8),
    Nop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let r = 0u8..30;
    let v = 0u8..31;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Add(a, b, c)),
        (r.clone(), -1000i32..1000).prop_map(|(a, i)| Op::AddI(a, i)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Mul(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Div(a, b, c)),
        (r.clone(), 0u32..1 << 20).prop_map(|(a, i)| Op::Movz(a, i)),
        (r.clone(), r.clone()).prop_map(|(a, b)| Op::Cmp(a, b)),
        (0u8..8, r.clone(), r.clone(), r.clone()).prop_map(|(c, a, b, d)| Op::Csel(c, a, b, d)),
        (v.clone(), v.clone(), v.clone()).prop_map(|(a, b, c)| Op::Fadd(a, b, c)),
        (v.clone(), v.clone(), v).prop_map(|(a, b, c)| Op::Vfma(a, b, c)),
        (r.clone(), r.clone(), r.clone(), -256i32..256, 0u8..5)
            .prop_map(|(t, b, i, o, w)| Op::Ldr(t, b, i, o, w)),
        (r.clone(), r, -256i32..256, 0u8..4).prop_map(|(t, b, o, w)| Op::Str(t, b, o, w)),
        Just(Op::Nop),
    ]
}

fn width(w: u8) -> MemWidth {
    match w {
        0 => MemWidth::B1,
        1 => MemWidth::B2,
        2 => MemWidth::B4,
        3 => MemWidth::B8,
        _ => MemWidth::B16,
    }
}

fn emit(a: &mut Asm, op: &Op) {
    match *op {
        Op::Add(d, n, m) => a.add(Reg::x(d), Reg::x(n), Reg::x(m)),
        Op::AddI(d, i) => a.addi(Reg::x(d), Reg::x(d), i as i64),
        Op::Mul(d, n, m) => a.mul(Reg::x(d), Reg::x(n), Reg::x(m)),
        Op::Div(d, n, m) => a.udiv(Reg::x(d), Reg::x(n), Reg::x(m)),
        Op::Movz(d, i) => a.movz(Reg::x(d), i as i64),
        Op::Cmp(n, m) => a.cmp(Reg::x(n), Reg::x(m)),
        Op::Csel(c, d, n, m) => {
            a.csel(Cond::from_bits(c).unwrap(), Reg::x(d), Reg::x(n), Reg::x(m))
        }
        Op::Fadd(d, n, m) => a.fadd(Reg::v(d), Reg::v(n), Reg::v(m)),
        Op::Vfma(d, n, m) => a.vfma(Reg::v(d), Reg::v(n), Reg::v(m)),
        Op::Ldr(t, b, i, o, w) => a.ldr(width(w), Reg::x(t), Reg::x(b), Reg::x(i), o as i64),
        Op::Str(t, b, o, w) => a.str(width(w), Reg::x(t), Reg::x(b), Reg::XZR, o as i64),
        Op::Nop => a.nop(),
    }
}

proptest! {
    #[test]
    fn assembled_programs_decode_and_crack(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut a = Asm::new();
        for op in &ops {
            emit(&mut a, op);
        }
        let p = a.finish();
        for quirks in [Quirks::none(), Quirks::capstone_like()] {
            let dec = Decoder::with_quirks(quirks);
            let insts = dec.decode_all(&p.code).expect("assembler output decodes");
            for (word, inst) in p.code.iter().zip(&insts) {
                // Register lists stay within bounds and contain valid regs.
                prop_assert!(inst.num_srcs as usize <= racesim_isa::MAX_SRCS);
                prop_assert!(inst.num_dsts as usize <= racesim_isa::MAX_DSTS);
                // Memory ops carry a width; others do not.
                prop_assert_eq!(inst.width.is_some(), inst.is_memory());
                // Disassembly is never empty.
                prop_assert!(!disasm(*word).is_empty());
                // Cracking yields 1 or 2 micro-ops, 2 only for stores.
                let uops = crack(inst);
                prop_assert!(uops.len() == 1 || (uops.len() == 2 && inst.is_store()));
            }
        }
    }

    /// Quirky decoding only ever ADDS sources, never removes or changes
    /// destinations.
    #[test]
    fn quirks_are_additive(ops in proptest::collection::vec(arb_op(), 1..100)) {
        let mut a = Asm::new();
        for op in &ops {
            emit(&mut a, op);
        }
        let p = a.finish();
        let fixed = Decoder::new().decode_all(&p.code).unwrap();
        let quirky = Decoder::with_quirks(Quirks::capstone_like())
            .decode_all(&p.code)
            .unwrap();
        for (f, q) in fixed.iter().zip(&quirky) {
            prop_assert!(q.num_srcs >= f.num_srcs);
            prop_assert_eq!(f.dests(), q.dests());
            // Every true source survives in the quirky view.
            for s in f.sources() {
                prop_assert!(q.sources().contains(s));
            }
        }
    }
}
