//! # racesim-dist
//!
//! Distributed racing campaigns: a coordinator/worker subsystem that
//! shards one tuning iteration's `(configuration × kernel)` evaluations
//! across a pool of worker processes — without changing a single bit of
//! the campaign's outcome.
//!
//! The paper runs irace on a 24-context host; this crate is the step
//! past one host (or one process). Three pieces:
//!
//! - [`wire`] — a framed wire protocol: 4-byte big-endian length prefix
//!   plus one flat JSON object per frame, costs as exact `f64` bit
//!   patterns, configurations as the checkpoint format's dotted value
//!   codes. Torn, oversized, and malformed frames are typed
//!   [`WireError`]s.
//! - [`worker`] — the serve loop behind `racesim worker`: rebuild the
//!   evaluation stack from the `init` handshake, answer `eval` frames
//!   through the same `eval_with_retry` classification point the
//!   in-process paths use, plus deterministic death hooks
//!   (`--exit-after` / `--only-worker`) for fault-injection tests.
//! - [`pool`] — the coordinator: a [`WorkerPool`] implementing the
//!   racing loop's `EvalDispatch` seam with pull dispatch from a shared
//!   queue, per-request timeouts, re-dispatch of tasks whose worker
//!   died, quarantine of repeatedly failing slots, and a local fallback
//!   so a campaign completes even with every worker gone.
//!
//! Determinism is the design constraint: results are reduced in
//! canonical configuration order, so `racesim tune --workers N` produces
//! bit-identical checkpoints, elimination order, and journal digest to a
//! sequential run — kill a worker mid-iteration and only the
//! `worker_failed` journal events differ.

#![warn(missing_docs)]

pub mod pool;
pub mod wire;
pub mod worker;

pub use pool::{PoolOptions, ProcessLauncher, WorkerLauncher, WorkerLink, WorkerPool};
pub use wire::{InitSpec, Outcome, Request, Response, WireError, MAX_FRAME};
pub use worker::{campaign_stack, serve, serve_stdio, ServeEnd, WorkerOptions, WorkerStack};
