//! The coordinator side of a distributed campaign: a pool of evaluation
//! workers behind the racing loop's [`EvalDispatch`] seam.
//!
//! # Dispatch
//!
//! Each batch of `(configuration, instance)` evaluations goes into a
//! shared queue; one coordinator thread per worker slot *pulls* tasks
//! from it (work stealing degenerates to pulling from a single shared
//! queue when tasks are homogeneous), round-trips each over the wire,
//! and writes the classified outcome into its slot-indexed cell. The
//! racing loop then classifies outcomes **in canonical configuration
//! order**, exactly as it does for the sequential and in-process-thread
//! backends — which worker answered which request, and in what order,
//! cannot influence elimination decisions, checkpoint bytes, or the
//! journal digest. That is the whole determinism argument, and the
//! `dispatch_backend_matches_the_inline_path` test in `racesim-race`
//! plus the CLI's end-to-end determinism test enforce it.
//!
//! # Failure handling
//!
//! Worker failures map into the campaign fault taxonomy rather than
//! inventing a parallel one:
//!
//! - a dead or hung worker (process exit, torn frame, per-request
//!   timeout, protocol violation) is killed and its in-flight task is
//!   **re-queued** for any healthy worker — the evaluation itself is
//!   presumed innocent, so its retry accounting is untouched;
//! - a slot that fails [`PoolOptions::max_failures`] times is
//!   **quarantined** — never respawned for the rest of the campaign —
//!   mirroring how `Quarantine` retires faulty instances;
//! - transient *evaluation* faults never reach the pool: the worker
//!   retries and escalates them itself via `eval_with_retry`, so wire
//!   outcomes are final.
//!
//! If every slot ends up quarantined, leftover tasks run locally through
//! the same `eval_with_retry` path — a distributed campaign degrades to
//! a sequential one instead of failing, and still exits 0.
//!
//! Every spawn, failure, and quarantine is journaled
//! ([`Event::WorkerSpawned`] / [`Event::WorkerFailed`] /
//! [`Event::WorkerQuarantined`]) so `racesim report` and
//! `racesim replay` observe distributed runs.

use std::io::{Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use racesim_race::{
    eval_with_retry, Configuration, EvalDispatch, EvalError, ParamSpace, RetryPolicy, TryCostFn,
};
use racesim_telemetry::{Counter, Event, Telemetry};

use crate::wire::{
    encode_config, read_response, write_request, InitSpec, Request, Response, WireError,
};

/// One classified evaluation outcome plus the retries it burned — the
/// exact tuple `eval_with_retry` returns and `eval_batch` must fill
/// per task slot.
type EvalOutcome = (Result<f64, EvalError>, u64);

/// One spawned worker's transport: where frames go, where they come
/// from, and the process handle (if any) to reap on teardown.
pub struct WorkerLink {
    /// Frame sink (the worker's stdin for spawned processes).
    pub writer: Box<dyn Write + Send>,
    /// Frame source (the worker's stdout for spawned processes).
    pub reader: Box<dyn Read + Send>,
    /// Process id, journaled in `worker_spawned` (0 if not a process).
    pub pid: u64,
    /// The child process to kill/reap when the link dies.
    pub child: Option<Child>,
}

impl std::fmt::Debug for WorkerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerLink")
            .field("pid", &self.pid)
            .field("process", &self.child.is_some())
            .finish()
    }
}

/// Creates transports for worker slots. The production launcher spawns
/// `racesim worker` processes; tests substitute in-process loopbacks.
pub trait WorkerLauncher: Send + Sync {
    /// Launches (or re-launches) the transport for slot `worker`.
    ///
    /// # Errors
    ///
    /// A description of why the worker could not be started.
    fn launch(&self, worker: usize) -> Result<WorkerLink, String>;
}

/// Spawns worker processes from an argv, wiring frames over the child's
/// stdin/stdout and leaving stderr attached for diagnostics.
#[derive(Debug, Clone)]
pub struct ProcessLauncher {
    argv: Vec<String>,
}

impl ProcessLauncher {
    /// A launcher running `argv` (program + arguments) per worker.
    ///
    /// # Panics
    ///
    /// Panics if `argv` is empty.
    pub fn new(argv: Vec<String>) -> ProcessLauncher {
        assert!(!argv.is_empty(), "worker command must name a program");
        ProcessLauncher { argv }
    }
}

impl WorkerLauncher for ProcessLauncher {
    fn launch(&self, _worker: usize) -> Result<WorkerLink, String> {
        let mut child = Command::new(&self.argv[0])
            .args(&self.argv[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {:?} failed: {e}", self.argv[0]))?;
        let stdin = child.stdin.take().ok_or("worker stdin unavailable")?;
        let stdout = child.stdout.take().ok_or("worker stdout unavailable")?;
        Ok(WorkerLink {
            writer: Box::new(stdin),
            reader: Box::new(stdout),
            pid: u64::from(child.id()),
            child: Some(child),
        })
    }
}

/// Coordinator-side pool policy.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker slots (>= 1).
    pub workers: usize,
    /// Campaign context sent in each worker's `init` handshake; the
    /// `worker` field is overwritten with the slot index per spawn.
    pub init: InitSpec,
    /// Per-request deadline; a worker that blows it is killed and its
    /// task re-dispatched. The worker-side watchdog (`timeout_ms` in the
    /// init spec) should be the tighter bound — this is the backstop
    /// against a wedged process.
    pub request_timeout: Duration,
    /// Deadline for spawn + handshake (stack building includes latency
    /// estimation, so this is deliberately generous).
    pub spawn_timeout: Duration,
    /// Failures before a slot is quarantined for good.
    pub max_failures: u32,
}

impl PoolOptions {
    /// Defaults: 2-minute request backstop, 5-minute spawn deadline,
    /// quarantine after 3 failures.
    pub fn new(workers: usize, init: InitSpec) -> PoolOptions {
        PoolOptions {
            workers: workers.max(1),
            init,
            request_timeout: Duration::from_secs(120),
            spawn_timeout: Duration::from_secs(300),
            max_failures: 3,
        }
    }
}

/// A live worker connection: the frame sink plus a channel fed by a
/// dedicated reader thread, so every receive can carry a timeout.
struct Conn {
    writer: Box<dyn Write + Send>,
    rx: Receiver<Result<Response, WireError>>,
    child: Option<Child>,
    pid: u64,
}

impl Conn {
    /// Tears the connection down: closes the sink (EOF on the worker's
    /// stdin), then kills and reaps the process if there is one.
    fn kill(&mut self) {
        self.writer = Box::new(std::io::sink());
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Per-slot lifecycle state.
#[derive(Default)]
struct Slot {
    conn: Option<Conn>,
    failures: u32,
    quarantined: bool,
}

/// A pool of evaluation workers implementing [`EvalDispatch`].
pub struct WorkerPool {
    launcher: Box<dyn WorkerLauncher>,
    opts: PoolOptions,
    fallback: Arc<dyn TryCostFn + Send + Sync>,
    telemetry: Telemetry,
    slots: Vec<Mutex<Slot>>,
    next_id: AtomicU64,
    m_dispatched: Counter,
    m_redispatched: Counter,
    m_fallback: Counter,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.opts.workers)
            .field("max_failures", &self.opts.max_failures)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `opts.workers` slots. Workers are spawned
    /// lazily, on the first task each slot pulls. `fallback` is the
    /// coordinator's own cost function, used only when every slot is
    /// quarantined.
    pub fn new(
        launcher: Box<dyn WorkerLauncher>,
        opts: PoolOptions,
        fallback: Arc<dyn TryCostFn + Send + Sync>,
        telemetry: Telemetry,
    ) -> WorkerPool {
        let slots = (0..opts.workers)
            .map(|_| Mutex::new(Slot::default()))
            .collect();
        WorkerPool {
            launcher,
            m_dispatched: telemetry.counter("dist.dispatched"),
            m_redispatched: telemetry.counter("dist.redispatched"),
            m_fallback: telemetry.counter("dist.local_fallback"),
            opts,
            fallback,
            telemetry,
            slots,
            next_id: AtomicU64::new(1),
        }
    }

    /// Spawns slot `w`'s worker and runs the init/ready handshake,
    /// validating that the worker rebuilt the same parameter space.
    fn spawn(&self, w: usize, n_params: usize) -> Result<Conn, String> {
        let link = self.launcher.launch(w)?;
        let (tx, rx) = channel::unbounded();
        let mut reader = link.reader;
        std::thread::Builder::new()
            .name(format!("dist-rx-{w}"))
            .spawn(move || loop {
                match read_response(&mut reader) {
                    Ok(Response::Bye) => break,
                    Ok(resp) => {
                        if tx.send(Ok(resp)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            })
            .map_err(|e| format!("reader thread spawn failed: {e}"))?;
        let mut conn = Conn {
            writer: link.writer,
            rx,
            child: link.child,
            pid: link.pid,
        };
        let mut init = self.opts.init.clone();
        init.worker = w;
        write_request(&mut conn.writer, &Request::Init(init))
            .map_err(|e| format!("init handshake send failed: {e}"))?;
        match conn.rx.recv_timeout(self.opts.spawn_timeout) {
            Ok(Ok(Response::Ready {
                n_params: theirs, ..
            })) if theirs == n_params => Ok(conn),
            Ok(Ok(Response::Ready {
                n_params: theirs, ..
            })) => Err(format!(
                "space mismatch: worker has {theirs} parameters, coordinator has {n_params}"
            )),
            Ok(Ok(resp)) => Err(format!("handshake protocol violation: {resp:?}")),
            Ok(Err(e)) => Err(format!("handshake failed: {e}")),
            Err(RecvTimeoutError::Timeout) => Err(format!(
                "handshake timed out after {}ms",
                self.opts.spawn_timeout.as_millis()
            )),
            Err(RecvTimeoutError::Disconnected) => {
                Err("worker exited during handshake".to_string())
            }
        }
    }

    /// Records one failure on slot `w`, quarantining it at the
    /// threshold. Returns whether the slot is now quarantined.
    fn record_failure(&self, slot: &mut Slot, w: usize, reason: &str) -> bool {
        slot.failures += 1;
        self.telemetry.emit(Event::WorkerFailed {
            worker: w,
            reason: reason.to_string(),
        });
        if !slot.quarantined && slot.failures >= self.opts.max_failures {
            slot.quarantined = true;
            self.telemetry.emit(Event::WorkerQuarantined {
                worker: w,
                failures: u64::from(slot.failures),
            });
        }
        slot.quarantined
    }

    /// Round-trips one evaluation over slot `w`, spawning its worker if
    /// needed. `Err(quarantined)` means the task must be re-dispatched;
    /// the flag tells the calling loop whether this slot is finished.
    fn eval_on(
        &self,
        w: usize,
        space: &ParamSpace,
        cfg: &Configuration,
        instance: usize,
        retry: &RetryPolicy,
    ) -> Result<EvalOutcome, bool> {
        let mut slot = self.slots[w].lock();
        if slot.quarantined {
            return Err(true);
        }
        if slot.conn.is_none() {
            match self.spawn(w, space.len()) {
                Ok(conn) => {
                    self.telemetry.emit(Event::WorkerSpawned {
                        worker: w,
                        pid: conn.pid,
                    });
                    slot.conn = Some(conn);
                }
                Err(reason) => return Err(self.record_failure(&mut slot, w, &reason)),
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let req = Request::Eval {
            id,
            config: encode_config(space, cfg),
            instance,
            retry: *retry,
        };
        let fail = |slot: &mut Slot, reason: String| {
            if let Some(conn) = slot.conn.as_mut() {
                conn.kill();
            }
            slot.conn = None;
            Err(self.record_failure(slot, w, &reason))
        };
        let sent = {
            let conn = slot.conn.as_mut().expect("slot has a live connection");
            write_request(&mut conn.writer, &req)
        };
        if let Err(e) = sent {
            return fail(&mut slot, format!("request send failed: {e}"));
        }
        let reply = {
            let conn = slot.conn.as_ref().expect("slot has a live connection");
            conn.rx.recv_timeout(self.opts.request_timeout)
        };
        match reply {
            Ok(Ok(Response::Eval {
                id: rid,
                outcome,
                retries,
            })) if rid == id => {
                self.m_dispatched.inc();
                Ok((outcome.into_result(), retries))
            }
            Ok(Ok(resp)) => fail(
                &mut slot,
                format!("protocol violation: unexpected {resp:?}"),
            ),
            Ok(Err(WireError::Closed)) => fail(&mut slot, "worker exited mid-request".to_string()),
            Ok(Err(e)) => fail(&mut slot, format!("wire fault: {e}")),
            Err(RecvTimeoutError::Timeout) => fail(
                &mut slot,
                format!(
                    "request timed out after {}ms",
                    self.opts.request_timeout.as_millis()
                ),
            ),
            Err(RecvTimeoutError::Disconnected) => {
                fail(&mut slot, "worker reader thread exited".to_string())
            }
        }
    }

    /// One slot's pull loop: drain tasks from the shared queue until the
    /// batch completes or this slot is quarantined.
    #[allow(clippy::too_many_arguments)]
    fn pull_loop(
        &self,
        w: usize,
        queue_tx: &channel::Sender<usize>,
        queue_rx: &Receiver<usize>,
        space: &ParamSpace,
        tasks: &[&Configuration],
        instance: usize,
        retry: &RetryPolicy,
        results: &Mutex<Vec<Option<EvalOutcome>>>,
        pending: &AtomicUsize,
    ) {
        loop {
            if pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let task = match queue_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(task) => task,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            };
            match self.eval_on(w, space, tasks[task], instance, retry) {
                Ok(outcome) => {
                    results.lock()[task] = Some(outcome);
                    pending.fetch_sub(1, Ordering::AcqRel);
                }
                Err(quarantined) => {
                    // The evaluation is presumed innocent of the
                    // worker's death: back into the queue, retry
                    // accounting untouched.
                    self.m_redispatched.inc();
                    let _ = queue_tx.send(task);
                    if quarantined {
                        return;
                    }
                }
            }
        }
    }
}

impl EvalDispatch for WorkerPool {
    fn eval_batch(
        &self,
        space: &ParamSpace,
        tasks: &[&Configuration],
        instance: usize,
        retry: &RetryPolicy,
    ) -> Vec<EvalOutcome> {
        let n = tasks.len();
        let results: Mutex<Vec<Option<EvalOutcome>>> = Mutex::new((0..n).map(|_| None).collect());
        let pending = AtomicUsize::new(n);
        let (queue_tx, queue_rx) = channel::unbounded();
        for task in 0..n {
            queue_tx.send(task).expect("queue is open");
        }
        let pullers = self.opts.workers.min(n.max(1));
        crossbeam::scope(|scope| {
            for w in 0..pullers {
                let (queue_tx, queue_rx) = (&queue_tx, &queue_rx);
                let (results, pending) = (&results, &pending);
                scope.spawn(move |_| {
                    self.pull_loop(
                        w, queue_tx, queue_rx, space, tasks, instance, retry, results, pending,
                    );
                });
            }
        })
        .expect("pool dispatch threads do not panic");
        // Every slot quarantined with work left: degrade to the local
        // path so the campaign still completes (and still exits 0).
        while pending.load(Ordering::Acquire) > 0 {
            let task = queue_rx
                .try_recv()
                .expect("unfinished tasks are always queued");
            self.m_fallback.inc();
            let outcome =
                eval_with_retry(self.fallback.as_ref(), tasks[task], space, instance, retry);
            results.lock()[task] = Some(outcome);
            pending.fetch_sub(1, Ordering::AcqRel);
        }
        results
            .into_inner()
            .into_iter()
            .map(|cell| cell.expect("every task has an outcome"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for slot in &self.slots {
            let mut slot = slot.lock();
            if let Some(mut conn) = slot.conn.take() {
                // Orderly goodbye first; the kill in Conn::drop is the
                // backstop for workers that ignore it.
                if write_request(&mut conn.writer, &Request::Shutdown).is_ok() {
                    let _ = conn.rx.recv_timeout(Duration::from_millis(500));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{serve, WorkerOptions, WorkerStack};
    use std::os::unix::net::UnixStream;

    struct LinearCost;
    impl TryCostFn for LinearCost {
        fn try_cost(
            &self,
            cfg: &Configuration,
            space: &ParamSpace,
            instance: usize,
        ) -> Result<f64, EvalError> {
            Ok(cfg.integer(space, "x") as f64 + instance as f64 * 0.125)
        }
    }

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[1, 2, 3, 4, 5, 6, 7, 8]);
        s
    }

    fn init_spec() -> InitSpec {
        InitSpec {
            core: "a53".to_string(),
            scale: 2048,
            faults: "none".to_string(),
            fault_seed: 1,
            timeout_ms: 0,
            worker: 0,
            static_bounds: false,
        }
    }

    /// Serves the synthetic stack over a socketpair in a thread.
    struct Loopback {
        opts: WorkerOptions,
    }

    impl WorkerLauncher for Loopback {
        fn launch(&self, _worker: usize) -> Result<WorkerLink, String> {
            let (coord, work) = UnixStream::pair().map_err(|e| e.to_string())?;
            let opts = self.opts.clone();
            std::thread::spawn(move || {
                let mut reader = work.try_clone().expect("clone socket");
                let mut writer = work;
                let _ = serve(&mut reader, &mut writer, &opts, |_| {
                    Ok(WorkerStack {
                        space: space(),
                        cost: Arc::new(LinearCost),
                        n_instances: 4,
                    })
                });
            });
            let reader = coord.try_clone().map_err(|e| e.to_string())?;
            Ok(WorkerLink {
                writer: Box::new(coord),
                reader: Box::new(reader),
                pid: 0,
                child: None,
            })
        }
    }

    /// A launcher that never produces a worker.
    struct Stillborn;
    impl WorkerLauncher for Stillborn {
        fn launch(&self, _worker: usize) -> Result<WorkerLink, String> {
            Err("no such worker binary".to_string())
        }
    }

    fn configs(space: &ParamSpace, picks: &[u16]) -> Vec<Configuration> {
        picks
            .iter()
            .map(|&k| {
                let mut cfg = space.default_configuration();
                cfg.set_value(0, racesim_race::Value::Int(k));
                cfg
            })
            .collect()
    }

    #[test]
    fn batches_come_back_in_task_order_bit_identically() {
        let space = space();
        let pool = WorkerPool::new(
            Box::new(Loopback {
                opts: WorkerOptions::default(),
            }),
            PoolOptions::new(3, init_spec()),
            Arc::new(LinearCost),
            Telemetry::disabled(),
        );
        let cfgs = configs(&space, &[4, 0, 7, 2, 5, 1]);
        let tasks: Vec<&Configuration> = cfgs.iter().collect();
        let got = pool.eval_batch(&space, &tasks, 2, &RetryPolicy::immediate(1));
        assert_eq!(got.len(), tasks.len());
        for (slot, (result, retries)) in got.iter().enumerate() {
            let expect = eval_with_retry(
                &LinearCost,
                tasks[slot],
                &space,
                2,
                &RetryPolicy::immediate(1),
            );
            assert_eq!(
                result.clone().map(f64::to_bits),
                expect.0.map(f64::to_bits),
                "slot {slot} diverged"
            );
            assert_eq!(*retries, expect.1);
        }
    }

    #[test]
    fn dying_workers_are_redispatched_then_quarantined() {
        let telemetry = Telemetry::in_memory();
        // Both slots die on their first eval request, every time they
        // are respawned: after max_failures each is quarantined and the
        // batch must finish through the local fallback.
        let pool = WorkerPool::new(
            Box::new(Loopback {
                opts: WorkerOptions {
                    exit_after: Some(1),
                    only_worker: None,
                },
            }),
            PoolOptions {
                max_failures: 2,
                ..PoolOptions::new(2, init_spec())
            },
            Arc::new(LinearCost),
            telemetry.clone(),
        );
        let space = space();
        let cfgs = configs(&space, &[3, 6, 1]);
        let tasks: Vec<&Configuration> = cfgs.iter().collect();
        let got = pool.eval_batch(&space, &tasks, 0, &RetryPolicy::immediate(1));
        for (slot, (result, _)) in got.iter().enumerate() {
            let expect = eval_with_retry(
                &LinearCost,
                tasks[slot],
                &space,
                0,
                &RetryPolicy::immediate(1),
            );
            assert_eq!(result.clone().map(f64::to_bits), expect.0.map(f64::to_bits));
        }
        let journal = telemetry.lines();
        let failed = journal
            .iter()
            .filter(|l| l.contains("\"ev\":\"worker_failed\""))
            .count();
        let quarantined = journal
            .iter()
            .filter(|l| l.contains("\"ev\":\"worker_quarantined\""))
            .count();
        assert!(failed >= 4, "expected >= 4 worker failures, saw {failed}");
        assert_eq!(quarantined, 2, "both slots quarantine");
    }

    #[test]
    fn stillborn_workers_fall_back_to_local_evaluation() {
        let pool = WorkerPool::new(
            Box::new(Stillborn),
            PoolOptions {
                max_failures: 1,
                ..PoolOptions::new(2, init_spec())
            },
            Arc::new(LinearCost),
            Telemetry::disabled(),
        );
        let space = space();
        let cfgs = configs(&space, &[0, 7]);
        let tasks: Vec<&Configuration> = cfgs.iter().collect();
        let got = pool.eval_batch(&space, &tasks, 1, &RetryPolicy::immediate(1));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(r, _)| r.is_ok()));
    }
}
