//! The framed wire protocol between the campaign coordinator and its
//! evaluation workers.
//!
//! Every frame is a 4-byte big-endian length prefix followed by exactly
//! that many bytes of UTF-8: one flat JSON object (the same codec the
//! telemetry journal uses, [`racesim_telemetry::json`]). The protocol is
//! strictly request/response over an ordered byte stream — stdin/stdout
//! for spawned workers, any `Read`/`Write` pair for tests:
//!
//! ```text
//! coordinator                          worker
//!     | -- init {core,scale,faults,...} -> |   (once, on spawn)
//!     | <- ready {worker,n_instances,...}  |
//!     | -- eval {id,cfg,inst,retry...} --> |   (repeated)
//!     | <- eval {id,outcome,retries} ----- |
//!     | -- shutdown ---------------------> |
//!     | <- bye --------------------------- |
//! ```
//!
//! Costs travel as raw `f64` bit patterns ([`f64::to_bits`]) so a
//! distributed campaign reduces to *bit-identical* results: no decimal
//! round-trip sits between the worker's simulator and the coordinator's
//! elimination tests. Configurations travel as the dotted per-parameter
//! codes the checkpoint format already defines (`C{k}`/`I{k}`/`F{0|1}`,
//! joined with `.`), so the two sides agree on encoding by construction.
//!
//! The decoder is strict: torn prefixes and payloads, frames above
//! [`MAX_FRAME`], unknown kinds, and non-finite cost bits are all typed
//! [`WireError`]s — the coordinator maps every one of them into the fault
//! taxonomy rather than trusting a half-written frame.

use std::io::{Read, Write};

use racesim_race::{replay, Configuration, ParamSpace, RetryPolicy};
use racesim_telemetry::json::{parse_object, Obj, Scalar};

/// Hard cap on one frame's payload, in bytes. Frames carry one flat JSON
/// object (a config code, an outcome, a reason string); anything larger
/// is a corrupt or hostile stream, not a bigger message.
pub const MAX_FRAME: usize = 64 * 1024;

/// A typed wire-protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream ended inside a length prefix or payload.
    Torn(String),
    /// A length prefix above [`MAX_FRAME`].
    Oversized {
        /// The advertised payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// An I/O failure other than clean EOF.
    Io(String),
    /// The payload is not one flat JSON object.
    Json(String),
    /// The object parsed but a field is missing, mistyped, or invalid
    /// (e.g. non-finite cost bits).
    Field(String),
    /// A well-formed frame of a kind this side does not expect.
    UnknownKind(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the stream"),
            WireError::Torn(what) => write!(f, "torn frame: {what}"),
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Json(e) => write!(f, "malformed frame payload: {e}"),
            WireError::Field(e) => write!(f, "invalid frame field: {e}"),
            WireError::UnknownKind(k) => write!(f, "unexpected frame kind {k:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::Oversized`] when `payload` exceeds [`MAX_FRAME`];
/// [`WireError::Io`] on write failure.
pub fn write_frame(w: &mut dyn Write, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            len: bytes.len(),
            max: MAX_FRAME,
        });
    }
    let prefix = (bytes.len() as u32).to_be_bytes();
    w.write_all(&prefix)
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Reads one length-prefixed frame payload.
///
/// # Errors
///
/// [`WireError::Closed`] on clean EOF before any prefix byte;
/// [`WireError::Torn`] when the stream ends mid-prefix or mid-payload;
/// [`WireError::Oversized`] for prefixes above [`MAX_FRAME`];
/// [`WireError::Json`] for non-UTF-8 payloads; [`WireError::Io`] otherwise.
pub fn read_frame(r: &mut dyn Read) -> Result<String, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Torn(format!(
                    "eof after {got} of 4 length-prefix bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(WireError::Torn(format!(
                    "eof after {got} of {len} payload bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    String::from_utf8(payload).map_err(|e| WireError::Json(e.to_string()))
}

/// The campaign context a worker needs before it can evaluate anything:
/// enough of the `CampaignSpec` to rebuild the evaluation stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitSpec {
    /// Core being tuned (`a53` / `a72`).
    pub core: String,
    /// Dynamic-instruction scale divisor.
    pub scale: u64,
    /// Fault-injection profile name.
    pub faults: String,
    /// Base fault-plan seed; the worker derives its own per-slot seed
    /// via `FaultPlan::worker_seed`.
    pub fault_seed: u64,
    /// Per-evaluation watchdog timeout in milliseconds (0 = none).
    pub timeout_ms: u64,
    /// The worker's slot index in the pool.
    pub worker: usize,
    /// Whether the campaign runs with the static CPI bounds engine. The
    /// worker only evaluates, so this toggles nothing but the debug-build
    /// soundness assertion — carried in the handshake so a worker's
    /// evaluation stack matches the coordinator's bit for bit.
    pub static_bounds: bool,
}

/// A coordinator-to-worker frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: campaign context, sent once after spawn.
    Init(InitSpec),
    /// Evaluate one configuration on one instance.
    Eval {
        /// Request id, echoed back in the matching response.
        id: u64,
        /// Dotted per-parameter value codes (checkpoint encoding).
        config: String,
        /// Benchmark instance index.
        instance: usize,
        /// Retry policy the worker applies to transient faults.
        retry: RetryPolicy,
    },
    /// Orderly teardown; the worker replies [`Response::Bye`] and exits.
    Shutdown,
}

/// The classified result of one evaluation, mirroring
/// `Result<f64, EvalError>` with the cost as exact bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A finite cost, as its `f64` bit pattern.
    Cost(u64),
    /// `EvalError::Transient` (already escalated if retries ran dry).
    Transient(String),
    /// `EvalError::Instance`.
    Instance(String),
    /// `EvalError::Config`.
    Config(String),
}

/// A worker-to-coordinator frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake reply: the worker is initialised and ready to evaluate.
    Ready {
        /// The worker's slot index, echoed from [`Request::Init`].
        worker: usize,
        /// Number of benchmark instances in the worker's suite.
        n_instances: usize,
        /// Number of tunable parameters in the worker's space.
        n_params: usize,
    },
    /// The classified outcome of one [`Request::Eval`].
    Eval {
        /// The request id this answers.
        id: u64,
        /// The classified evaluation result.
        outcome: Outcome,
        /// Transient retries the worker consumed producing it.
        retries: u64,
    },
    /// Orderly-teardown acknowledgement.
    Bye,
}

/// Field accessors over one parsed flat object.
struct Fields(Vec<(String, Scalar)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&Scalar, WireError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| WireError::Field(format!("missing field {key:?}")))
    }

    fn str(&self, key: &str) -> Result<String, WireError> {
        match self.get(key)? {
            Scalar::Str(s) => Ok(s.clone()),
            other => Err(WireError::Field(format!(
                "field {key:?} must be a string, got {other:?}"
            ))),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, WireError> {
        match self.get(key)? {
            Scalar::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| WireError::Field(format!("field {key:?} is not a u64: {raw:?}"))),
            other => Err(WireError::Field(format!(
                "field {key:?} must be a number, got {other:?}"
            ))),
        }
    }

    fn usize(&self, key: &str) -> Result<usize, WireError> {
        self.u64(key).map(|v| v as usize)
    }

    /// `u64` with a default when the field is absent — for fields newer
    /// than the peer (a present-but-mistyped field still errors).
    fn u64_or(&self, key: &str, default: u64) -> Result<u64, WireError> {
        if self.0.iter().any(|(k, _)| k == key) {
            self.u64(key)
        } else {
            Ok(default)
        }
    }

    fn f64_bits(&self, key: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(key)?))
    }
}

impl Request {
    /// Renders the request as one flat JSON object.
    pub fn encode(&self) -> String {
        let mut o = Obj::new();
        match self {
            Request::Init(spec) => {
                o.str("kind", "init")
                    .str("core", &spec.core)
                    .u64("scale", spec.scale)
                    .str("faults", &spec.faults)
                    .u64("fault_seed", spec.fault_seed)
                    .u64("timeout_ms", spec.timeout_ms)
                    .u64("worker", spec.worker as u64)
                    .u64("static_bounds", u64::from(spec.static_bounds));
            }
            Request::Eval {
                id,
                config,
                instance,
                retry,
            } => {
                o.str("kind", "eval")
                    .u64("id", *id)
                    .str("cfg", config)
                    .u64("inst", *instance as u64)
                    .u64("r_attempts", u64::from(retry.max_attempts))
                    .u64("r_base_ms", retry.base_ms)
                    .u64("r_factor_bits", retry.factor.to_bits())
                    .u64("r_cap_ms", retry.cap_ms);
            }
            Request::Shutdown => {
                o.str("kind", "shutdown");
            }
        }
        o.finish()
    }

    /// Parses a request frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Json`] for malformed payloads, [`WireError::Field`]
    /// for missing/mistyped fields (including a non-finite retry factor),
    /// [`WireError::UnknownKind`] for unrecognised `kind`s.
    pub fn decode(payload: &str) -> Result<Request, WireError> {
        let f = Fields(parse_object(payload).map_err(WireError::Json)?);
        match f.str("kind")?.as_str() {
            "init" => Ok(Request::Init(InitSpec {
                core: f.str("core")?,
                scale: f.u64("scale")?,
                faults: f.str("faults")?,
                fault_seed: f.u64("fault_seed")?,
                timeout_ms: f.u64("timeout_ms")?,
                worker: f.usize("worker")?,
                // Absent in frames from pre-bounds coordinators.
                static_bounds: f.u64_or("static_bounds", 0)? != 0,
            })),
            "eval" => {
                let factor = f.f64_bits("r_factor_bits")?;
                if !factor.is_finite() {
                    return Err(WireError::Field(format!(
                        "retry factor must be finite, got {factor}"
                    )));
                }
                let attempts = f.u64("r_attempts")?;
                Ok(Request::Eval {
                    id: f.u64("id")?,
                    config: f.str("cfg")?,
                    instance: f.usize("inst")?,
                    retry: RetryPolicy {
                        max_attempts: u32::try_from(attempts).map_err(|_| {
                            WireError::Field(format!("retry attempts {attempts} exceed u32"))
                        })?,
                        base_ms: f.u64("r_base_ms")?,
                        factor,
                        cap_ms: f.u64("r_cap_ms")?,
                    },
                })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::UnknownKind(other.to_string())),
        }
    }
}

impl Response {
    /// Renders the response as one flat JSON object.
    pub fn encode(&self) -> String {
        let mut o = Obj::new();
        match self {
            Response::Ready {
                worker,
                n_instances,
                n_params,
            } => {
                o.str("kind", "ready")
                    .u64("worker", *worker as u64)
                    .u64("n_instances", *n_instances as u64)
                    .u64("n_params", *n_params as u64);
            }
            Response::Eval {
                id,
                outcome,
                retries,
            } => {
                o.str("kind", "eval").u64("id", *id);
                match outcome {
                    Outcome::Cost(bits) => {
                        o.str("outcome", "cost").u64("bits", *bits);
                    }
                    Outcome::Transient(reason) => {
                        o.str("outcome", "transient").str("reason", reason);
                    }
                    Outcome::Instance(reason) => {
                        o.str("outcome", "instance").str("reason", reason);
                    }
                    Outcome::Config(reason) => {
                        o.str("outcome", "config").str("reason", reason);
                    }
                }
                o.u64("retries", *retries);
            }
            Response::Bye => {
                o.str("kind", "bye");
            }
        }
        o.finish()
    }

    /// Parses a response frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Json`] for malformed payloads, [`WireError::Field`]
    /// for missing/mistyped fields — including cost bits that decode to a
    /// non-finite `f64`, which the coordinator must never accept as a
    /// valid cost — and [`WireError::UnknownKind`] for unrecognised
    /// `kind`s or outcomes.
    pub fn decode(payload: &str) -> Result<Response, WireError> {
        let f = Fields(parse_object(payload).map_err(WireError::Json)?);
        match f.str("kind")?.as_str() {
            "ready" => Ok(Response::Ready {
                worker: f.usize("worker")?,
                n_instances: f.usize("n_instances")?,
                n_params: f.usize("n_params")?,
            }),
            "eval" => {
                let outcome = match f.str("outcome")?.as_str() {
                    "cost" => {
                        let bits = f.u64("bits")?;
                        let cost = f64::from_bits(bits);
                        if !cost.is_finite() {
                            return Err(WireError::Field(format!(
                                "cost bits {bits:#x} decode to non-finite {cost}"
                            )));
                        }
                        Outcome::Cost(bits)
                    }
                    "transient" => Outcome::Transient(f.str("reason")?),
                    "instance" => Outcome::Instance(f.str("reason")?),
                    "config" => Outcome::Config(f.str("reason")?),
                    other => return Err(WireError::UnknownKind(format!("outcome {other}"))),
                };
                Ok(Response::Eval {
                    id: f.u64("id")?,
                    outcome,
                    retries: f.u64("retries")?,
                })
            }
            "bye" => Ok(Response::Bye),
            other => Err(WireError::UnknownKind(other.to_string())),
        }
    }
}

/// Writes one request frame.
///
/// # Errors
///
/// Propagates [`write_frame`] failures.
pub fn write_request(w: &mut dyn Write, req: &Request) -> Result<(), WireError> {
    write_frame(w, &req.encode())
}

/// Reads and decodes one request frame.
///
/// # Errors
///
/// Propagates [`read_frame`] and [`Request::decode`] failures.
pub fn read_request(r: &mut dyn Read) -> Result<Request, WireError> {
    Request::decode(&read_frame(r)?)
}

/// Writes one response frame.
///
/// # Errors
///
/// Propagates [`write_frame`] failures.
pub fn write_response(w: &mut dyn Write, resp: &Response) -> Result<(), WireError> {
    write_frame(w, &resp.encode())
}

/// Reads and decodes one response frame.
///
/// # Errors
///
/// Propagates [`read_frame`] and [`Response::decode`] failures.
pub fn read_response(r: &mut dyn Read) -> Result<Response, WireError> {
    Response::decode(&read_frame(r)?)
}

/// Encodes a configuration as dotted per-parameter value codes — the
/// same `C{k}`/`I{k}`/`F{0|1}` alphabet the checkpoint format uses.
pub fn encode_config(space: &ParamSpace, cfg: &Configuration) -> String {
    (0..space.len())
        .map(|i| replay::encode_value(cfg.value(i)))
        .collect::<Vec<_>>()
        .join(".")
}

/// Decodes dotted value codes back into a configuration, validating
/// arity and every code against `space`.
///
/// # Errors
///
/// A description of the first arity or per-parameter mismatch.
pub fn decode_config(space: &ParamSpace, code: &str) -> Result<Configuration, String> {
    let codes: Vec<&str> = if code.is_empty() {
        Vec::new()
    } else {
        code.split('.').collect()
    };
    if codes.len() != space.len() {
        return Err(format!(
            "config code has {} values but the space has {} parameters",
            codes.len(),
            space.len()
        ));
    }
    let mut cfg = space.default_configuration();
    for (idx, part) in codes.iter().enumerate() {
        let name = &space.params()[idx].name;
        let value = replay::decode_value(space, name, part)?;
        cfg.set_value(idx, value);
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::Eval {
            id: 7,
            config: "C1.I3.F0".to_string(),
            instance: 4,
            retry: RetryPolicy::default(),
        };
        write_request(&mut buf, &req).unwrap();
        let resp = Response::Eval {
            id: 7,
            outcome: Outcome::Cost(0.25f64.to_bits()),
            retries: 1,
        };
        write_response(&mut buf, &resp).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_request(&mut r).unwrap(), req);
        assert_eq!(read_response(&mut r).unwrap(), resp);
        assert_eq!(read_request(&mut r), Err(WireError::Closed));
    }

    #[test]
    fn init_roundtrips_and_defaults_the_bounds_toggle() {
        let req = Request::Init(InitSpec {
            core: "a72".to_string(),
            scale: 4096,
            faults: "transient".to_string(),
            fault_seed: 9,
            timeout_ms: 500,
            worker: 3,
            static_bounds: true,
        });
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);

        // Frames from a pre-bounds coordinator lack the field: default off.
        let legacy = "{\"kind\":\"init\",\"core\":\"a53\",\"scale\":2048,\
                      \"faults\":\"none\",\"fault_seed\":1,\"timeout_ms\":0,\
                      \"worker\":0}";
        match Request::decode(legacy).unwrap() {
            Request::Init(spec) => assert!(!spec.static_bounds),
            other => panic!("expected init, got {other:?}"),
        }
    }

    #[test]
    fn torn_prefix_and_payload_are_typed() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, "{\"kind\":\"bye\"}").unwrap();
        let torn_prefix = &buf[..2];
        assert!(matches!(
            read_frame(&mut &torn_prefix[..]),
            Err(WireError::Torn(_))
        ));
        let torn_payload = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut &torn_payload[..]),
            Err(WireError::Torn(_))
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocation() {
        let prefix = ((MAX_FRAME + 1) as u32).to_be_bytes();
        assert_eq!(
            read_frame(&mut &prefix[..]),
            Err(WireError::Oversized {
                len: MAX_FRAME + 1,
                max: MAX_FRAME
            })
        );
        let huge = "x".repeat(MAX_FRAME + 1);
        assert!(matches!(
            write_frame(&mut Vec::new(), &huge),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn non_finite_cost_bits_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let payload = Response::Eval {
                id: 1,
                outcome: Outcome::Cost(bad.to_bits()),
                retries: 0,
            }
            .encode();
            assert!(matches!(
                Response::decode(&payload),
                Err(WireError::Field(_))
            ));
        }
    }

    #[test]
    fn unknown_kinds_are_typed() {
        assert_eq!(
            Request::decode("{\"kind\":\"warp\"}"),
            Err(WireError::UnknownKind("warp".to_string()))
        );
        assert_eq!(
            Response::decode("{\"kind\":\"eval\",\"id\":1,\"outcome\":\"maybe\",\"retries\":0}"),
            Err(WireError::UnknownKind("outcome maybe".to_string()))
        );
    }

    #[test]
    fn config_codes_roundtrip_and_validate() {
        let mut space = ParamSpace::new();
        space.add_categorical("mode", &["fast", "slow"]);
        space.add_integer("width", &[1, 2, 4]);
        space.add_bool("fused");
        let mut cfg = space.default_configuration();
        cfg.set_value(0, racesim_race::Value::Cat(1));
        cfg.set_value(1, racesim_race::Value::Int(2));
        cfg.set_value(2, racesim_race::Value::Flag(true));
        let code = encode_config(&space, &cfg);
        assert_eq!(code, "C1.I2.F1");
        let back = decode_config(&space, &code).unwrap();
        assert_eq!(encode_config(&space, &back), code);
        assert!(decode_config(&space, "C1.I2").is_err());
        assert!(decode_config(&space, "C9.I2.F1").is_err());
    }
}
