//! The worker side of a distributed campaign: a serve loop that answers
//! framed evaluation requests over any `Read`/`Write` pair.
//!
//! A worker is stateless between requests. It learns the campaign context
//! from the [`Request::Init`] handshake, rebuilds the evaluation stack
//! locally (board, latency-estimated base platform, parameter space, lazy
//! suite cost — exactly what the coordinator built), replies
//! [`Response::Ready`], then answers [`Request::Eval`] frames until it is
//! shut down or its stream closes.
//!
//! Every evaluation goes through [`racesim_race::eval_with_retry`] — the
//! same single classification point the sequential and in-process-thread
//! paths use — with the retry policy the coordinator sent in the request.
//! The worker therefore returns *fully classified* outcomes (transient
//! faults already retried and, if persistent, already escalated with the
//! canonical message), which is what keeps distributed journals and
//! checkpoints bit-identical to sequential ones.
//!
//! Fault-injection hooks for the acceptance tests: `exit_after` makes the
//! worker die (close its stream without replying) on the Nth evaluation
//! request, and `only_worker` gates that death to one pool slot — so a
//! test can kill exactly one worker mid-iteration, deterministically.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use racesim_core::CampaignSpec;
use racesim_hw::FaultPlan;
use racesim_kernels::Scale;
use racesim_race::{eval_with_retry, ParamSpace, TryCostFn, Watchdog};
use racesim_telemetry::Telemetry;
use racesim_uarch::CoreKind;

use crate::wire::{
    decode_config, read_request, write_response, InitSpec, Outcome, Request, Response, WireError,
};

/// Fault-injection hooks for a worker under test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerOptions {
    /// Die (close the stream without replying) on the Nth evaluation
    /// request, 1-based. `None` = never.
    pub exit_after: Option<u64>,
    /// Apply `exit_after` only when the handshake assigns this pool
    /// slot. `None` = apply to any slot.
    pub only_worker: Option<usize>,
}

/// The evaluation stack a worker serves requests against.
pub struct WorkerStack {
    /// The tunable parameter space (must match the coordinator's).
    pub space: ParamSpace,
    /// The classified-fault cost function.
    pub cost: Arc<dyn TryCostFn + Send + Sync>,
    /// Number of benchmark instances, reported in [`Response::Ready`].
    pub n_instances: usize,
}

impl std::fmt::Debug for WorkerStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerStack")
            .field("n_params", &self.space.len())
            .field("n_instances", &self.n_instances)
            .finish()
    }
}

/// Why a serve loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEnd {
    /// The coordinator sent [`Request::Shutdown`]; `bye` was replied.
    Shutdown,
    /// The coordinator closed the stream without a shutdown frame.
    Eof,
    /// The `exit_after` fault hook fired: the worker dropped a request
    /// on the floor and must now exit without replying.
    Killed,
}

/// Serves framed evaluation requests until shutdown, EOF, or injected
/// death.
///
/// Reads the [`Request::Init`] handshake, calls `build` to assemble the
/// evaluation stack for that campaign, replies [`Response::Ready`], then
/// loops over [`Request::Eval`] frames.
///
/// # Errors
///
/// [`WireError`] on torn/oversized/malformed frames or I/O failure; a
/// [`WireError::Field`] wrapping the build error when `build` fails.
pub fn serve(
    reader: &mut dyn Read,
    writer: &mut dyn Write,
    opts: &WorkerOptions,
    build: impl FnOnce(&InitSpec) -> Result<WorkerStack, String>,
) -> Result<ServeEnd, WireError> {
    let init = match read_request(reader)? {
        Request::Init(spec) => spec,
        Request::Shutdown => {
            write_response(writer, &Response::Bye)?;
            return Ok(ServeEnd::Shutdown);
        }
        other => {
            return Err(WireError::Field(format!(
                "first frame must be init, got {other:?}"
            )))
        }
    };
    let stack =
        build(&init).map_err(|e| WireError::Field(format!("worker stack build failed: {e}")))?;
    write_response(
        writer,
        &Response::Ready {
            worker: init.worker,
            n_instances: stack.n_instances,
            n_params: stack.space.len(),
        },
    )?;

    let lethal = opts.only_worker.is_none_or(|only| only == init.worker);
    let mut served = 0u64;
    loop {
        let req = match read_request(reader) {
            Ok(req) => req,
            Err(WireError::Closed) => return Ok(ServeEnd::Eof),
            Err(e) => return Err(e),
        };
        match req {
            Request::Eval {
                id,
                config,
                instance,
                retry,
            } => {
                served += 1;
                if lethal && opts.exit_after == Some(served) {
                    return Ok(ServeEnd::Killed);
                }
                let (outcome, retries) = match decode_config(&stack.space, &config) {
                    Ok(cfg) => {
                        let (result, retries) = eval_with_retry(
                            stack.cost.as_ref(),
                            &cfg,
                            &stack.space,
                            instance,
                            &retry,
                        );
                        (Outcome::from_result(result), retries)
                    }
                    // An undecodable config can only mean coordinator and
                    // worker disagree on the space — surface it as a
                    // config fault so the coordinator's taxonomy sees it.
                    Err(e) => (Outcome::Config(format!("undecodable config: {e}")), 0),
                };
                write_response(
                    writer,
                    &Response::Eval {
                        id,
                        outcome,
                        retries,
                    },
                )?;
            }
            Request::Shutdown => {
                write_response(writer, &Response::Bye)?;
                return Ok(ServeEnd::Shutdown);
            }
            Request::Init(_) => {
                return Err(WireError::Field(
                    "duplicate init frame after handshake".to_string(),
                ))
            }
        }
    }
}

/// Builds the evaluation stack a spawned worker serves: the campaign's
/// own `build_stack`, with telemetry disabled (the coordinator journals;
/// workers stay silent) and the fault seed re-keyed per worker slot via
/// [`FaultPlan::worker_seed`] so concurrent workers draw distinct,
/// deterministic fault schedules.
///
/// # Errors
///
/// Unknown core names, and any probe/measurement failure from
/// `CampaignSpec::build_stack`.
pub fn campaign_stack(init: &InitSpec) -> Result<WorkerStack, String> {
    let kind = match init.core.as_str() {
        "a53" => CoreKind::InOrder,
        "a72" => CoreKind::OutOfOrder,
        other => return Err(format!("unknown core {other:?} (use a53 or a72)")),
    };
    let spec = CampaignSpec {
        kind,
        scale: Scale::divide_by(init.scale),
        budget: 0,
        seed: 0,
        threads: 1,
        workers: 0,
        max_iterations: None,
        timeout_ms: (init.timeout_ms > 0).then_some(init.timeout_ms),
        fault_profile: init.faults.clone(),
        fault_seed: FaultPlan::worker_seed(init.fault_seed, init.worker),
        frozen: Vec::new(),
        static_bounds: init.static_bounds,
    };
    let stack = spec.build_stack(&Telemetry::disabled())?;
    let n_instances = stack.cost.len();
    let cost: Arc<dyn TryCostFn + Send + Sync> = match spec.timeout_ms {
        Some(ms) => Arc::new(Watchdog::new(stack.cost, Duration::from_millis(ms))),
        None => stack.cost,
    };
    Ok(WorkerStack {
        space: stack.space,
        cost,
        n_instances,
    })
}

/// Runs a spawned worker over stdin/stdout: frames on the standard
/// streams, diagnostics on stderr. This is the body of `racesim worker`.
///
/// # Errors
///
/// Propagates [`serve`] failures.
pub fn serve_stdio(opts: &WorkerOptions) -> Result<ServeEnd, WireError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = std::io::BufWriter::new(stdout.lock());
    serve(&mut reader, &mut writer, opts, campaign_stack)
}

impl Outcome {
    /// Wraps a classified evaluation result for the wire.
    pub fn from_result(result: Result<f64, racesim_race::EvalError>) -> Outcome {
        match result {
            Ok(cost) => Outcome::Cost(cost.to_bits()),
            Err(racesim_race::EvalError::Transient(r)) => Outcome::Transient(r),
            Err(racesim_race::EvalError::Instance(r)) => Outcome::Instance(r),
            Err(racesim_race::EvalError::Config(r)) => Outcome::Config(r),
        }
    }

    /// Unwraps a wire outcome back into the classified result.
    pub fn into_result(self) -> Result<f64, racesim_race::EvalError> {
        match self {
            Outcome::Cost(bits) => Ok(f64::from_bits(bits)),
            Outcome::Transient(r) => Err(racesim_race::EvalError::Transient(r)),
            Outcome::Instance(r) => Err(racesim_race::EvalError::Instance(r)),
            Outcome::Config(r) => Err(racesim_race::EvalError::Config(r)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_config, read_response, write_request, Request};
    use racesim_race::{Configuration, EvalError, RetryPolicy};

    struct SquareCost;
    impl TryCostFn for SquareCost {
        fn try_cost(
            &self,
            cfg: &Configuration,
            space: &ParamSpace,
            instance: usize,
        ) -> Result<f64, EvalError> {
            let x = cfg.integer(space, "x") as f64;
            match instance {
                9 => Err(EvalError::Transient("flaky link".to_string())),
                _ => Ok((x - 3.0).powi(2) + instance as f64),
            }
        }
    }

    fn test_space() -> ParamSpace {
        let mut space = ParamSpace::new();
        space.add_integer("x", &[1, 2, 3, 4, 5]);
        space
    }

    fn test_build(_init: &InitSpec) -> Result<WorkerStack, String> {
        Ok(WorkerStack {
            space: test_space(),
            cost: Arc::new(SquareCost),
            n_instances: 4,
        })
    }

    /// Drives `serve` over in-memory buffers: writes all requests up
    /// front, runs the loop to completion, then reads every response.
    fn drive(requests: &[Request], opts: &WorkerOptions) -> (Result<ServeEnd, WireError>, Vec<u8>) {
        let mut input: Vec<u8> = Vec::new();
        for req in requests {
            write_request(&mut input, req).unwrap();
        }
        let mut output: Vec<u8> = Vec::new();
        let end = serve(&mut &input[..], &mut output, opts, test_build);
        (end, output)
    }

    fn eval_req(id: u64, instance: usize) -> Request {
        let space = test_space();
        let mut cfg = space.default_configuration();
        cfg.set_value(0, racesim_race::Value::Int(4));
        Request::Eval {
            id,
            config: encode_config(&space, &cfg),
            instance,
            retry: RetryPolicy::immediate(1),
        }
    }

    fn init_req(worker: usize) -> Request {
        Request::Init(InitSpec {
            core: "a53".to_string(),
            scale: 2048,
            faults: "none".to_string(),
            fault_seed: 1,
            timeout_ms: 0,
            worker,
            static_bounds: false,
        })
    }

    #[test]
    fn serves_evals_and_shuts_down() {
        let (end, out) = drive(
            &[
                init_req(0),
                eval_req(1, 2),
                eval_req(2, 0),
                Request::Shutdown,
            ],
            &WorkerOptions::default(),
        );
        assert_eq!(end, Ok(ServeEnd::Shutdown));
        let mut r = &out[..];
        assert_eq!(
            read_response(&mut r).unwrap(),
            Response::Ready {
                worker: 0,
                n_instances: 4,
                n_params: 1
            }
        );
        // x = 5 (index 4): (5-3)^2 + instance.
        assert_eq!(
            read_response(&mut r).unwrap(),
            Response::Eval {
                id: 1,
                outcome: Outcome::Cost(6.0f64.to_bits()),
                retries: 0
            }
        );
        assert_eq!(
            read_response(&mut r).unwrap(),
            Response::Eval {
                id: 2,
                outcome: Outcome::Cost(4.0f64.to_bits()),
                retries: 0
            }
        );
        assert_eq!(read_response(&mut r).unwrap(), Response::Bye);
    }

    #[test]
    fn transient_faults_escalate_with_the_canonical_message() {
        // RetryPolicy::immediate(1): one attempt, so the transient fault
        // escalates to Instance exactly as eval_with_retry does inline.
        let (end, out) = drive(
            &[init_req(0), eval_req(1, 9), Request::Shutdown],
            &WorkerOptions::default(),
        );
        assert_eq!(end, Ok(ServeEnd::Shutdown));
        let mut r = &out[..];
        let _ready = read_response(&mut r).unwrap();
        match read_response(&mut r).unwrap() {
            Response::Eval {
                outcome: Outcome::Instance(reason),
                ..
            } => {
                assert!(
                    reason.contains("transient fault persisted through 1 attempts"),
                    "unexpected escalation message: {reason}"
                );
            }
            other => panic!("expected escalated instance fault, got {other:?}"),
        }
    }

    #[test]
    fn exit_after_kills_the_matching_worker_only() {
        // Worker 0 with only_worker=0: dies on the 2nd eval, no reply.
        let opts = WorkerOptions {
            exit_after: Some(2),
            only_worker: Some(0),
        };
        let (end, out) = drive(&[init_req(0), eval_req(1, 0), eval_req(2, 1)], &opts);
        assert_eq!(end, Ok(ServeEnd::Killed));
        let mut r = &out[..];
        let _ready = read_response(&mut r).unwrap();
        assert!(matches!(
            read_response(&mut r).unwrap(),
            Response::Eval { id: 1, .. }
        ));
        assert_eq!(read_response(&mut r), Err(WireError::Closed));

        // Worker 1 with only_worker=0: the hook does not fire.
        let (end, _) = drive(
            &[
                init_req(1),
                eval_req(1, 0),
                eval_req(2, 1),
                Request::Shutdown,
            ],
            &opts,
        );
        assert_eq!(end, Ok(ServeEnd::Shutdown));
    }

    #[test]
    fn undecodable_configs_come_back_as_config_faults() {
        let req = Request::Eval {
            id: 5,
            config: "I9".to_string(),
            instance: 0,
            retry: RetryPolicy::immediate(1),
        };
        let (end, out) = drive(
            &[init_req(0), req, Request::Shutdown],
            &WorkerOptions::default(),
        );
        assert_eq!(end, Ok(ServeEnd::Shutdown));
        let mut r = &out[..];
        let _ready = read_response(&mut r).unwrap();
        assert!(matches!(
            read_response(&mut r).unwrap(),
            Response::Eval {
                id: 5,
                outcome: Outcome::Config(_),
                ..
            }
        ));
    }

    #[test]
    fn eof_without_shutdown_is_a_clean_end() {
        let (end, _) = drive(&[init_req(0), eval_req(1, 0)], &WorkerOptions::default());
        assert_eq!(end, Ok(ServeEnd::Eof));
    }
}
