//! Property tests for the coordinator/worker wire protocol.
//!
//! Two invariants carry the distributed-determinism guarantee:
//!
//! 1. every request/response frame — failure variants included —
//!    round-trips **bit-identically** through encode → frame → deframe →
//!    decode (costs travel as raw `f64` bits, so even subnormals and
//!    signed zeros survive exactly);
//! 2. the decoder never accepts a damaged stream: torn prefixes, torn
//!    payloads, oversized lengths and non-finite cost bits all come back
//!    as typed `WireError`s, never as a plausible-looking frame.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use racesim_dist::wire::{
    read_frame, read_request, read_response, write_request, write_response, InitSpec, Outcome,
    Request, Response, WireError, MAX_FRAME,
};
use racesim_race::RetryPolicy;

/// Arbitrary string, control characters and lossy-UTF-8 included.
fn any_string() -> impl Strategy<Value = String> {
    collection::vec(any::<u8>(), 0..24).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// Dotted config codes of the checkpoint alphabet.
fn any_config_code() -> impl Strategy<Value = String> {
    collection::vec((0..3u8, 0..64u16), 0..12).prop_map(|parts| {
        parts
            .iter()
            .map(|(kind, k)| match kind {
                0 => format!("C{k}"),
                1 => format!("I{k}"),
                _ => format!("F{}", k % 2),
            })
            .collect::<Vec<_>>()
            .join(".")
    })
}

/// Retry policies with a finite factor (the decoder rejects the rest).
fn any_retry() -> impl Strategy<Value = RetryPolicy> {
    (1..16u32, 0..5_000u64, 0..4_096u32, 0..10_000u64).prop_map(
        |(max_attempts, base_ms, factor_milli, cap_ms)| RetryPolicy {
            max_attempts,
            base_ms,
            factor: f64::from(factor_milli) / 1000.0,
            cap_ms,
        },
    )
}

fn any_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (
            any_string(),
            1..1_000_000u64,
            any_string(),
            any::<u64>(),
            any::<u64>(),
            0..64usize,
            any::<bool>()
        )
            .prop_map(
                |(core, scale, faults, fault_seed, timeout_ms, worker, static_bounds)| {
                    Request::Init(InitSpec {
                        core,
                        scale,
                        faults,
                        fault_seed,
                        timeout_ms,
                        worker,
                        static_bounds,
                    })
                }
            ),
        (any::<u64>(), any_config_code(), 0..256usize, any_retry()).prop_map(
            |(id, config, instance, retry)| Request::Eval {
                id,
                config,
                instance,
                retry,
            }
        ),
        Just(Request::Shutdown),
    ]
    .boxed()
}

/// Finite cost bits: resampled until the payload is a finite `f64`.
fn finite_cost_bits() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|bits| {
        if f64::from_bits(bits).is_finite() {
            bits
        } else {
            // Fold non-finite payloads back into the finite range by
            // clearing the exponent's top bit.
            bits & !(1u64 << 62)
        }
    })
}

fn any_outcome() -> BoxedStrategy<Outcome> {
    prop_oneof![
        finite_cost_bits().prop_map(Outcome::Cost),
        any_string().prop_map(Outcome::Transient),
        any_string().prop_map(Outcome::Instance),
        any_string().prop_map(Outcome::Config),
    ]
    .boxed()
}

fn any_response() -> BoxedStrategy<Response> {
    prop_oneof![
        (0..64usize, 0..64usize, 0..64usize).prop_map(|(worker, n_instances, n_params)| {
            Response::Ready {
                worker,
                n_instances,
                n_params,
            }
        }),
        (any::<u64>(), any_outcome(), 0..1_000u64).prop_map(|(id, outcome, retries)| {
            Response::Eval {
                id,
                outcome,
                retries,
            }
        }),
        Just(Response::Bye),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any interleaved sequence of frames round-trips bit-identically
    /// through one contiguous byte stream.
    #[test]
    fn frame_sequences_roundtrip_bit_identically(
        frames in collection::vec((any_request(), any_response()), 0..12),
    ) {
        let mut buf: Vec<u8> = Vec::new();
        for (req, resp) in &frames {
            write_request(&mut buf, req).expect("encode request");
            write_response(&mut buf, resp).expect("encode response");
        }
        let mut r = &buf[..];
        for (req, resp) in &frames {
            prop_assert_eq!(&read_request(&mut r).expect("decode request"), req);
            prop_assert_eq!(&read_response(&mut r).expect("decode response"), resp);
        }
        prop_assert_eq!(read_frame(&mut r), Err(WireError::Closed));
    }

    /// Truncating a valid stream at any byte boundary yields a typed
    /// torn/closed error — never a spurious frame.
    #[test]
    fn truncated_streams_are_torn_or_closed(
        resp in any_response(),
        cut_fraction in 0..100usize,
    ) {
        let mut buf: Vec<u8> = Vec::new();
        write_response(&mut buf, &resp).expect("encode");
        let cut = cut_fraction * (buf.len() - 1) / 100;
        let mut r = &buf[..cut];
        match read_response(&mut r) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Torn(_)) => prop_assert!(cut > 0 && cut < buf.len()),
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    /// Length prefixes above the cap are rejected before any payload
    /// allocation, whatever bytes follow.
    #[test]
    fn oversized_prefixes_are_rejected(
        excess in 1..1_000_000usize,
        trailing in collection::vec(any::<u8>(), 0..32),
    ) {
        let len = MAX_FRAME + excess;
        let mut buf = (len as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&trailing);
        prop_assert_eq!(
            read_frame(&mut &buf[..]),
            Err(WireError::Oversized { len, max: MAX_FRAME })
        );
    }

    /// Non-finite cost bits never decode into a valid outcome, whatever
    /// NaN payload or infinity sign they carry.
    #[test]
    fn non_finite_cost_bits_are_always_rejected(raw in any::<u64>()) {
        // Force the exponent to all-ones: every such pattern is an
        // infinity (zero mantissa) or some NaN payload.
        let bits = raw | 0x7ff0_0000_0000_0000;
        assert!(!f64::from_bits(bits).is_finite());
        let payload = Response::Eval {
            id: 1,
            outcome: Outcome::Cost(bits),
            retries: 0,
        }
        .encode();
        prop_assert!(matches!(
            Response::decode(&payload),
            Err(WireError::Field(_))
        ));
    }

    /// Flipping `kind` to an unknown tag is typed, not silently coerced.
    #[test]
    fn unknown_tags_are_typed(letters in collection::vec(0..26u8, 1..12)) {
        let mut tag: String = letters.iter().map(|l| (b'a' + l) as char).collect();
        if ["init", "eval", "shutdown", "ready", "bye"].contains(&tag.as_str()) {
            tag.push('z');
        }
        let req = format!("{{\"kind\":{:?}}}", tag);
        prop_assert_eq!(
            Request::decode(&req),
            Err(WireError::UnknownKind(tag.clone()))
        );
        let resp = format!("{{\"kind\":{:?}}}", tag);
        prop_assert_eq!(
            Response::decode(&resp),
            Err(WireError::UnknownKind(tag))
        );
    }
}
