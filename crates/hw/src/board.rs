//! The reference board and its hidden configurations.

use crate::counters::PerfCounters;
use crate::effects::SystemEffects;
use crate::HardwarePlatform;
use racesim_decoder::Decoder;
use racesim_kernels::{emu::EmuError, Workload};
use racesim_mem::{IndexHash, PrefetchWhere, PrefetcherConfig, TagAccess, TlbConfig};
use racesim_sim::{Platform, SimError, SimOptions, Simulator};
use racesim_telemetry::{Counter, Histogram, Telemetry};
use racesim_trace::TraceBuffer;
use racesim_uarch::branch::{DirPredictorConfig, IndirectPredictorConfig};
use std::collections::HashSet;
use std::fmt;

/// Errors from running a workload on the board.
#[derive(Debug)]
pub enum MeasureError {
    /// The workload failed to execute.
    Emulation(EmuError),
    /// The internal reference model failed (indicates a board bug).
    Internal(SimError),
    /// A transient measurement fault (counter glitch, bus hiccup, OS
    /// interference): a retry may succeed.
    Transient(String),
    /// The measurement was dropped — the counters never arrived, and
    /// retries will not change that.
    Dropped(String),
}

impl MeasureError {
    /// Whether a retry of the same measurement may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, MeasureError::Transient(_))
    }
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Emulation(e) => write!(f, "workload execution failed: {e}"),
            MeasureError::Internal(e) => write!(f, "reference model failure: {e}"),
            MeasureError::Transient(r) => write!(f, "transient measurement fault: {r}"),
            MeasureError::Dropped(r) => write!(f, "measurement dropped: {r}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::Emulation(e) => Some(e),
            MeasureError::Internal(e) => Some(e),
            MeasureError::Transient(_) | MeasureError::Dropped(_) => None,
        }
    }
}

impl From<EmuError> for MeasureError {
    fn from(e: EmuError) -> Self {
        MeasureError::Emulation(e)
    }
}

/// A development board exposing two reference cores, analogous to the
/// paper's Firefly RK3399.
///
/// Construct with [`ReferenceBoard::firefly_a53`] (in-order, "little"
/// cluster) or [`ReferenceBoard::firefly_a72`] (out-of-order, "big"
/// cluster). The underlying configuration is hidden; only counters are
/// observable, plus [`ReferenceBoard::oracle_platform`] for *post-hoc
/// analysis only* (a real board has no such accessor — nothing in the
/// tuning path may use it).
#[derive(Debug)]
pub struct ReferenceBoard {
    name: String,
    hidden: Platform,
    effects: SystemEffects,
    metrics: BoardMetrics,
}

/// Telemetry handles resolved once at attach time; dead (free) when the
/// board has no telemetry.
#[derive(Debug, Default)]
struct BoardMetrics {
    telemetry: Telemetry,
    measurements: Counter,
    measure_us: Histogram,
}

impl BoardMetrics {
    fn new(telemetry: Telemetry) -> BoardMetrics {
        BoardMetrics {
            measurements: telemetry.counter("hw.measurements"),
            measure_us: telemetry.histogram("hw.measure_us"),
            telemetry,
        }
    }
}

/// The hidden "true" A53 silicon: every undisclosed parameter set to a
/// specific value, several outside the candidate grids offered to the
/// tuner (larger predictor, off-grid prefetcher), plus a TLB.
fn hidden_a53() -> Platform {
    let mut p = Platform::a53_like();
    p.name = "hidden-cortex-a53".to_string();
    p.core.frontend.depth = 4;
    p.core.branch.direction = DirPredictorConfig::Tournament {
        table_bits: 13,
        history_bits: 9,
    };
    p.core.branch.indirect = IndirectPredictorConfig::PathHistory {
        table_bits: 9,
        history_bits: 8,
    };
    p.core.branch.btb_entries = 256;
    p.core.branch.btb_ways = 4;
    p.core.branch.ras_entries = 8;
    p.core.branch.mispredict_penalty = 9;
    p.core.branch.btb_miss_penalty = 2;
    p.core.lat.int_div = 13;
    p.core.lat.fp_div = 25;
    p.core.lat.fp_cvt = 5;
    p.core.inorder.store_buffer = 6;
    p.mem.l1d.mshrs = 3;
    p.mem.l1d.latency = 3;
    p.mem.l2.latency = 17;
    p.mem.l2.tag_access = TagAccess::Serial;
    p.mem.l2.hash = IndexHash::Xor;
    p.mem.l2.mshrs = 6;
    p.mem.dram.latency = 180;
    p.mem.tlb = Some(TlbConfig {
        entries: 48,
        page_bytes: 4096,
        miss_penalty: 28,
    });
    p.mem.prefetcher = PrefetcherConfig::Stride {
        table_entries: 32,
        degree: 3,
    };
    p.mem.prefetch_where = PrefetchWhere::L1;
    p.mem.prefetch_on_prefetch_hit = true;
    p
}

/// The hidden "true" A72 silicon.
fn hidden_a72() -> Platform {
    let mut p = Platform::a72_like();
    p.name = "hidden-cortex-a72".to_string();
    p.core.frontend.depth = 5;
    p.core.branch.direction = DirPredictorConfig::Tournament {
        table_bits: 14,
        history_bits: 11,
    };
    p.core.branch.indirect = IndirectPredictorConfig::PathHistory {
        table_bits: 11,
        history_bits: 9,
    };
    p.core.branch.btb_entries = 1024;
    p.core.branch.btb_ways = 4;
    p.core.branch.ras_entries = 16;
    p.core.branch.mispredict_penalty = 13;
    p.core.branch.btb_miss_penalty = 2;
    p.core.lat.int_div = 11;
    p.core.lat.fp_div = 18;
    p.core.ooo.iq_entries = 44;
    p.core.ooo.sq_entries = 12;
    p.core.ooo.stlf_latency = 5;
    p.mem.l1d.mshrs = 6;
    p.mem.l2.latency = 21;
    p.mem.l2.tag_access = TagAccess::Serial;
    p.mem.l2.hash = IndexHash::Xor;
    p.mem.l2.mshrs = 11;
    p.mem.dram.latency = 190;
    p.mem.tlb = Some(TlbConfig {
        entries: 32,
        page_bytes: 4096,
        miss_penalty: 35,
    });
    p.mem.prefetcher = PrefetcherConfig::Stride {
        table_entries: 128,
        degree: 5,
    };
    p.mem.prefetch_where = PrefetchWhere::L1;
    p.mem.prefetch_on_prefetch_hit = true;
    p
}

impl ReferenceBoard {
    /// The in-order "little" cluster core (Cortex-A53 analogue, 1.51 GHz).
    pub fn firefly_a53() -> ReferenceBoard {
        ReferenceBoard {
            name: "firefly-rk3399 cortex-a53 @1.51GHz".to_string(),
            hidden: hidden_a53(),
            effects: SystemEffects::little_cluster(),
            metrics: BoardMetrics::default(),
        }
    }

    /// The out-of-order "big" cluster core (Cortex-A72 analogue,
    /// 1.99 GHz).
    pub fn firefly_a72() -> ReferenceBoard {
        ReferenceBoard {
            name: "firefly-rk3399 cortex-a72 @1.99GHz".to_string(),
            hidden: hidden_a72(),
            effects: SystemEffects::big_cluster(),
            metrics: BoardMetrics::default(),
        }
    }

    /// A board with custom effects (differential testing).
    pub fn with_effects(mut self, effects: SystemEffects) -> ReferenceBoard {
        self.effects = effects;
        self
    }

    /// Attaches a telemetry handle: every measurement records its wall
    /// time in the `hw.measure_us` histogram and bumps
    /// `hw.measurements`. Costs nothing when `telemetry` is disabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ReferenceBoard {
        self.metrics = BoardMetrics::new(telemetry);
        self
    }

    /// The system effects this board applies on top of its hidden timing
    /// (public, unlike the hidden configuration: a user can observe timer
    /// frequency and measurement noise from outside the box, and the
    /// analyzer's noise-versus-significance lint needs them).
    pub fn effects(&self) -> &SystemEffects {
        &self.effects
    }

    /// The hidden configuration, exposed **for post-hoc analysis only**.
    ///
    /// A real board offers no such introspection; the validation pipeline
    /// never reads it. Benchmarks use it to report the
    /// specification-error floor.
    pub fn oracle_platform(&self) -> &Platform {
        &self.hidden
    }
}

impl HardwarePlatform for ReferenceBoard {
    fn name(&self) -> &str {
        &self.name
    }

    fn measure(&self, workload: &Workload) -> Result<PerfCounters, MeasureError> {
        let trace = workload.trace()?;
        self.measure_trace(&workload.name, &trace, workload.uninit_data)
    }

    fn measure_trace(
        &self,
        name: &str,
        trace: &TraceBuffer,
        uninit_data: bool,
    ) -> Result<PerfCounters, MeasureError> {
        let sw = self.metrics.telemetry.stopwatch();
        // First-touch behaviour on uninitialised arrays: the kernel's
        // zero-fill leaves fresh pages cache-warm on real hardware (the
        // paper observed hits where the simulator reported misses), at the
        // price of a page-fault cost per fresh page.
        let options = SimOptions {
            prefill_code: false,
            prefill_data: false,
            prefill_data_l2: uninit_data,
        };
        let sim = Simulator::with_decoder(self.hidden.clone(), Decoder::new(), options);
        let stats = sim.run(trace).map_err(MeasureError::Internal)?;

        let mut cycles = self.effects.inflate_cycles(stats.core.cycles);
        if uninit_data && self.effects.page_touch_cost > 0 {
            let pages: HashSet<u64> = trace
                .records()
                .iter()
                .filter_map(|r| r.ea())
                .map(|ea| ea >> 12)
                .collect();
            cycles += pages.len() as u64 * self.effects.page_touch_cost;
        }
        cycles = (cycles as f64 * self.effects.noise_factor(name)).round() as u64;

        if self.metrics.telemetry.is_enabled() {
            self.metrics.measurements.inc();
            self.metrics.measure_us.record(sw.elapsed_us());
        }
        Ok(PerfCounters {
            instructions: stats.core.instructions,
            cycles,
            branch_misses: stats.core.branch.mispredicts,
            l1d_misses: stats.mem.l1d.misses,
            l2_misses: stats.mem.l2.misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_kernels::{microbench_suite, microbench_suite_initialized, Scale};

    fn workload(name: &str, init: bool) -> Workload {
        let suite = if init {
            microbench_suite_initialized(Scale::TINY)
        } else {
            microbench_suite(Scale::TINY)
        };
        suite.into_iter().find(|w| w.name == name).unwrap()
    }

    #[test]
    fn boards_measure_all_microbenchmarks() {
        let a53 = ReferenceBoard::firefly_a53();
        for w in microbench_suite(Scale::TINY) {
            let c = a53
                .measure(&w)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(c.instructions > 0);
            assert!(c.cycles > 0);
            let cpi = c.cpi();
            assert!(cpi > 0.3 && cpi < 400.0, "{}: cpi {cpi}", w.name);
        }
    }

    #[test]
    fn measurements_are_deterministic() {
        let a72 = ReferenceBoard::firefly_a72();
        let w = workload("ED1", false);
        let c1 = a72.measure(&w).unwrap();
        let c2 = a72.measure(&w).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn a72_beats_a53_on_ilp_workloads() {
        let a53 = ReferenceBoard::firefly_a53();
        let a72 = ReferenceBoard::firefly_a72();
        let w = workload("EI", false);
        let c53 = a53.measure(&w).unwrap();
        let c72 = a72.measure(&w).unwrap();
        assert!(
            c72.cpi() < c53.cpi(),
            "the wide core wins on independent ops: {} vs {}",
            c72.cpi(),
            c53.cpi()
        );
    }

    #[test]
    fn uninitialised_arrays_report_cache_hits_on_the_board() {
        // The paper: accesses to an uninitialised array "are considered a
        // cache miss by our model but are reported as hits on real
        // hardware" — the kernel's zero-fill leaves fresh pages warm. The
        // board therefore reports (almost) no data misses for MM, while
        // the initialised variant misses (M_Dyn: random accesses that no
        // prefetcher can cover); the uninit run pays first-touch page
        // costs instead.
        let at = |init: bool| {
            let suite = if init {
                microbench_suite_initialized(Scale::divide_by(64))
            } else {
                microbench_suite(Scale::divide_by(64))
            };
            suite.into_iter().find(|w| w.name == "M_Dyn").unwrap()
        };
        let a53 = ReferenceBoard::firefly_a53();
        let c_uninit = a53.measure(&at(false)).unwrap();
        let c_init = a53.measure(&at(true)).unwrap();
        assert!(
            c_uninit.l2_misses * 5 < c_init.l2_misses.max(1),
            "first-touch warming keeps fresh pages in the L2: {} vs {}",
            c_uninit.l2_misses,
            c_init.l2_misses
        );
        assert!(
            c_uninit.cycles != c_init.cycles,
            "page-touch costs still differentiate the runs"
        );
    }

    #[test]
    fn noise_and_system_effects_shift_cycles_slightly() {
        let w = workload("CCa", false);
        let with = ReferenceBoard::firefly_a53();
        let without = ReferenceBoard::firefly_a53().with_effects(SystemEffects::none());
        let c_with = with.measure(&w).unwrap();
        let c_without = without.measure(&w).unwrap();
        let ratio = c_with.cycles as f64 / c_without.cycles as f64;
        assert!(ratio != 1.0, "effects must do something");
        assert!(ratio > 0.9 && ratio < 1.1, "but stay small: {ratio}");
    }

    #[test]
    fn oracle_platform_is_not_the_public_preset() {
        let a53 = ReferenceBoard::firefly_a53();
        assert_ne!(*a53.oracle_platform(), Platform::a53_like());
        let a72 = ReferenceBoard::firefly_a72();
        assert_ne!(*a72.oracle_platform(), Platform::a72_like());
    }
}
