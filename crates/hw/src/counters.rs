//! `perf`-style event counters.

/// Performance counters reported by a hardware platform, mirroring the
/// `perf` events the paper collects ("the number of dynamically executed
/// instructions as well as the total number of cycles to calculate overall
/// application CPI").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// Last-level cache misses.
    pub l2_misses: u64,
}

impl PerfCounters {
    /// Cycles per instruction.
    ///
    /// # Panics
    ///
    /// Panics if no instructions were counted.
    pub fn cpi(&self) -> f64 {
        assert!(self.instructions > 0, "no instructions measured");
        self.cycles as f64 / self.instructions as f64
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.branch_misses as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let c = PerfCounters {
            instructions: 1000,
            cycles: 1500,
            branch_misses: 5,
            l1d_misses: 0,
            l2_misses: 0,
        };
        assert!((c.cpi() - 1.5).abs() < 1e-12);
        assert!((c.branch_mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn cpi_requires_instructions() {
        let c = PerfCounters {
            instructions: 0,
            cycles: 1,
            branch_misses: 0,
            l1d_misses: 0,
            l2_misses: 0,
        };
        let _ = c.cpi();
    }
}
