//! System-level effects a board exhibits but a user-level core model does
//! not capture.

/// Deterministic system effects applied on top of the hidden
/// configuration's timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEffects {
    /// OS timer tick period, in cycles (0 disables).
    pub timer_interval: u64,
    /// Cycles stolen per timer tick.
    pub timer_cost: u64,
    /// DRAM refresh period, in cycles (0 disables).
    pub refresh_interval: u64,
    /// Cycles stolen per refresh.
    pub refresh_cost: u64,
    /// First-touch cost per fresh page of an *uninitialised* array
    /// (page fault + kernel zeroing).
    pub page_touch_cost: u64,
    /// Amplitude of deterministic pseudo-noise on the cycle count
    /// (e.g. 0.005 = ±0.5 %), seeded by the workload name.
    pub noise_amplitude: f64,
}

impl SystemEffects {
    /// Effects calibrated for the little (A53) cluster.
    pub fn little_cluster() -> SystemEffects {
        SystemEffects {
            timer_interval: 400_000,
            timer_cost: 2_500,
            refresh_interval: 60_000,
            refresh_cost: 110,
            page_touch_cost: 900,
            noise_amplitude: 0.004,
        }
    }

    /// Effects calibrated for the big (A72) cluster: the deeper,
    /// speculative core suffers proportionally more system interference.
    pub fn big_cluster() -> SystemEffects {
        SystemEffects {
            timer_interval: 350_000,
            timer_cost: 5_000,
            refresh_interval: 55_000,
            refresh_cost: 200,
            page_touch_cost: 1_300,
            noise_amplitude: 0.008,
        }
    }

    /// No effects (for differential testing).
    pub fn none() -> SystemEffects {
        SystemEffects {
            timer_interval: 0,
            timer_cost: 0,
            refresh_interval: 0,
            refresh_cost: 0,
            page_touch_cost: 0,
            noise_amplitude: 0.0,
        }
    }

    /// Applies the interval-based overheads to a raw cycle count.
    pub fn inflate_cycles(&self, cycles: u64) -> u64 {
        let mut extra = 0u64;
        extra += cycles.checked_div(self.timer_interval).unwrap_or(0) * self.timer_cost;
        extra += cycles.checked_div(self.refresh_interval).unwrap_or(0) * self.refresh_cost;
        cycles + extra
    }

    /// The deterministic noise multiplier for a workload name.
    pub fn noise_factor(&self, name: &str) -> f64 {
        if self.noise_amplitude == 0.0 {
            return 1.0;
        }
        // FNV-1a, then map to [-1, 1).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.noise_amplitude * (2.0 * unit - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_is_monotonic_and_bounded() {
        let e = SystemEffects::little_cluster();
        let base = 10_000_000;
        let inflated = e.inflate_cycles(base);
        assert!(inflated > base);
        let overhead = (inflated - base) as f64 / base as f64;
        assert!(overhead < 0.05, "system overhead stays below 5%");
        assert!(SystemEffects::none().inflate_cycles(base) == base);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let e = SystemEffects::big_cluster();
        let f1 = e.noise_factor("mcf");
        let f2 = e.noise_factor("mcf");
        assert_eq!(f1, f2);
        assert_ne!(e.noise_factor("mcf"), e.noise_factor("povray"));
        for name in ["a", "b", "c", "longer-name"] {
            let f = e.noise_factor(name);
            assert!((f - 1.0).abs() <= e.noise_amplitude + 1e-12, "{f}");
        }
        assert_eq!(SystemEffects::none().noise_factor("x"), 1.0);
    }
}
