//! Deterministic fault injection: every board pathology the fault-tolerant
//! tune path must survive, reproducible by seed in CI.
//!
//! Real boards drop measurements, glitch counters into outliers, fail
//! transiently under thermal/OS interference, and occasionally hang. A
//! [`FaultyBoard`] wraps any [`HardwarePlatform`] and injects exactly
//! those pathologies according to a [`FaultPlan`]:
//!
//! * **transient errors** are drawn per `(workload, attempt)` — a retry of
//!   the same workload re-rolls, so bounded-backoff retry loops can
//!   succeed, exactly like a real glitch clearing;
//! * **dropped measurements** are drawn per workload — every attempt fails
//!   the same way, modelling a benchmark the board persistently cannot
//!   measure (the racing layer must quarantine it);
//! * **outlier spikes** multiply the reported cycle count — the
//!   measurement "succeeds" with a wildly wrong value;
//! * **hangs** sleep before returning, so a wall-clock watchdog is the
//!   only defence.
//!
//! All decisions hash `(seed, workload name, attempt)` — deterministic
//! regardless of thread interleaving, because each workload name carries
//! its own attempt counter.

use crate::counters::PerfCounters;
use crate::{HardwarePlatform, MeasureError};
use racesim_kernels::Workload;
use racesim_telemetry::{Counter, Event, Telemetry};
use racesim_trace::TraceBuffer;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

/// A deterministic schedule of injected board faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability a given `(workload, attempt)` fails transiently.
    pub transient_rate: f64,
    /// Probability a workload's measurement is *persistently* dropped
    /// (same outcome on every attempt).
    pub drop_rate: f64,
    /// Probability a given `(workload, attempt)` reports an outlier.
    pub spike_rate: f64,
    /// Cycle-count multiplier applied to an outlier measurement.
    pub spike_magnitude: f64,
    /// Probability a given `(workload, attempt)` hangs before returning.
    pub hang_rate: f64,
    /// How long a hung measurement sleeps.
    pub hang: Duration,
}

impl FaultPlan {
    /// No faults at all — a [`FaultyBoard`] with this plan is transparent.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            drop_rate: 0.0,
            spike_rate: 0.0,
            spike_magnitude: 1.0,
            hang_rate: 0.0,
            hang: Duration::ZERO,
        }
    }

    /// Only transient faults, at `rate` — the retry/backoff exercise.
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// An aggressive mixed plan for CI smoke tests: frequent transients,
    /// occasional drops and spikes, brief hangs.
    pub fn aggressive(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_rate: 0.10,
            drop_rate: 0.05,
            spike_rate: 0.05,
            spike_magnitude: 8.0,
            hang_rate: 0.02,
            hang: Duration::from_millis(50),
        }
    }

    /// Builds the plan a named CLI profile denotes, so a recorded
    /// campaign (`campaign_config.faults` in the journal) reconstructs
    /// the exact same fault schedule on replay. `Ok(None)` means no
    /// fault injection at all.
    ///
    /// # Errors
    ///
    /// Unknown profile names are rejected with the accepted spellings.
    pub fn from_profile(profile: &str, seed: u64) -> Result<Option<FaultPlan>, String> {
        match profile {
            "none" => Ok(None),
            "transient" => Ok(Some(FaultPlan::transient(seed, 0.10))),
            "aggressive" => Ok(Some(FaultPlan::aggressive(seed))),
            other => Err(format!(
                "unknown fault profile {other:?} (use none, transient or aggressive)"
            )),
        }
    }

    /// Derives a per-worker seed from a base fault seed: worker 0 keeps
    /// the base seed unchanged, every other worker gets a splitmix64
    /// mix of `(base, worker)`. Stable across runs, so a distributed
    /// campaign's fault schedule is addressable per worker slot.
    pub fn worker_seed(base: u64, worker: usize) -> u64 {
        if worker == 0 {
            return base;
        }
        let mut z = base
            .wrapping_add((worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The same plan re-seeded for worker slot `worker` (identity for
    /// worker 0, the coordinator's own slot).
    ///
    /// Fault schedules are keyed by per-process attempt counters, so a
    /// shared seed would *not* make a distributed campaign's injected
    /// faults match a sequential run anyway — instead each worker gets
    /// its own deterministic schedule, reproducible given the same
    /// `(base seed, worker slot)` pair.
    pub fn for_worker(&self, worker: usize) -> FaultPlan {
        FaultPlan {
            seed: FaultPlan::worker_seed(self.seed, worker),
            ..*self
        }
    }

    /// FNV-1a over the seed, a decision tag, the workload name, and the
    /// attempt number, mapped to `[0, 1)`.
    fn roll(&self, tag: u8, name: &str, attempt: u64) -> f64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&[tag]);
        eat(name.as_bytes());
        eat(&attempt.to_le_bytes());
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A [`HardwarePlatform`] wrapper that injects the faults scheduled by a
/// [`FaultPlan`] before and after delegating to the wrapped board.
pub struct FaultyBoard<B> {
    inner: B,
    plan: FaultPlan,
    attempts: Mutex<HashMap<String, u64>>,
    metrics: FaultMetrics,
}

/// Per-pathology injection counters, resolved once at attach time, plus
/// the journal handle for `fault` events.
#[derive(Debug, Default)]
struct FaultMetrics {
    telemetry: Telemetry,
    transient: Counter,
    drop: Counter,
    spike: Counter,
    hang: Counter,
}

impl FaultMetrics {
    fn new(telemetry: Telemetry) -> FaultMetrics {
        FaultMetrics {
            transient: telemetry.counter("hw.injected.transient"),
            drop: telemetry.counter("hw.injected.drop"),
            spike: telemetry.counter("hw.injected.spike"),
            hang: telemetry.counter("hw.injected.hang"),
            telemetry,
        }
    }

    fn record(&self, counter: &Counter, kind: &str, workload: &str, reason: String) {
        if self.telemetry.is_enabled() {
            counter.inc();
            self.telemetry.emit(Event::Fault {
                kind: kind.to_string(),
                workload: workload.to_string(),
                reason,
            });
        }
    }
}

impl<B: fmt::Debug> fmt::Debug for FaultyBoard<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyBoard")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl<B> FaultyBoard<B> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: B, plan: FaultPlan) -> FaultyBoard<B> {
        FaultyBoard {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            metrics: FaultMetrics::default(),
        }
    }

    /// Attaches a telemetry handle: every injected pathology bumps its
    /// `hw.injected.*` counter and journals a `fault` event. Costs
    /// nothing when `telemetry` is disabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> FaultyBoard<B> {
        self.metrics = FaultMetrics::new(telemetry);
        self
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped board.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Next attempt number for `name` (1-based).
    fn bump(&self, name: &str) -> u64 {
        let mut map = self
            .attempts
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let n = map.entry(name.to_string()).or_insert(0);
        *n += 1;
        *n
    }
}

impl<B: HardwarePlatform> HardwarePlatform for FaultyBoard<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn measure(&self, workload: &Workload) -> Result<PerfCounters, MeasureError> {
        let trace = workload.trace()?;
        self.measure_trace(&workload.name, &trace, workload.uninit_data)
    }

    fn measure_trace(
        &self,
        name: &str,
        trace: &TraceBuffer,
        uninit_data: bool,
    ) -> Result<PerfCounters, MeasureError> {
        let attempt = self.bump(name);
        if self.plan.hang_rate > 0.0 && self.plan.roll(b'h', name, attempt) < self.plan.hang_rate {
            self.metrics.record(
                &self.metrics.hang,
                "injected-hang",
                name,
                format!(
                    "injected {}ms hang (attempt {attempt})",
                    self.plan.hang.as_millis()
                ),
            );
            std::thread::sleep(self.plan.hang);
        }
        // Drops are per-name (attempt-independent): the board can never
        // measure this workload, so retries must not clear the fault.
        if self.plan.drop_rate > 0.0 && self.plan.roll(b'd', name, 0) < self.plan.drop_rate {
            let reason = format!("counters for {name} never arrived");
            self.metrics
                .record(&self.metrics.drop, "injected-drop", name, reason.clone());
            return Err(MeasureError::Dropped(reason));
        }
        if self.plan.transient_rate > 0.0
            && self.plan.roll(b't', name, attempt) < self.plan.transient_rate
        {
            let reason = format!("injected transient fault on {name} (attempt {attempt})");
            self.metrics.record(
                &self.metrics.transient,
                "injected-transient",
                name,
                reason.clone(),
            );
            return Err(MeasureError::Transient(reason));
        }
        let mut counters = self.inner.measure_trace(name, trace, uninit_data)?;
        if self.plan.spike_rate > 0.0 && self.plan.roll(b's', name, attempt) < self.plan.spike_rate
        {
            counters.cycles = (counters.cycles as f64 * self.plan.spike_magnitude) as u64;
            self.metrics.record(
                &self.metrics.spike,
                "injected-spike",
                name,
                format!(
                    "injected {}x cycle spike (attempt {attempt})",
                    self.plan.spike_magnitude
                ),
            );
        }
        Ok(counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceBoard;
    use racesim_kernels::{microbench_suite, Scale};

    fn workload() -> Workload {
        microbench_suite(Scale::TINY).into_iter().next().unwrap()
    }

    #[test]
    fn worker_plans_are_deterministic_and_distinct() {
        let base = FaultPlan::aggressive(42);
        // Worker 0 is the identity: an in-process campaign and the
        // coordinator's own slot share the base schedule.
        assert_eq!(base.for_worker(0), base);
        // Other slots differ only in seed, deterministically.
        let w1 = base.for_worker(1);
        let w2 = base.for_worker(2);
        assert_eq!(w1, base.for_worker(1));
        assert_ne!(w1.seed, base.seed);
        assert_ne!(w1.seed, w2.seed);
        assert_eq!(w1.transient_rate, base.transient_rate);
        assert_eq!(w1.hang, base.hang);
        // The derived seeds actually change the schedule.
        assert_ne!(base.roll(0, "stream_copy", 0), w1.roll(0, "stream_copy", 0));
    }

    #[test]
    fn profiles_reconstruct_the_exact_plan() {
        assert_eq!(FaultPlan::from_profile("none", 9).unwrap(), None);
        assert_eq!(
            FaultPlan::from_profile("transient", 9).unwrap(),
            Some(FaultPlan::transient(9, 0.10))
        );
        assert_eq!(
            FaultPlan::from_profile("aggressive", 9).unwrap(),
            Some(FaultPlan::aggressive(9))
        );
        assert!(FaultPlan::from_profile("chaotic", 9).is_err());
    }

    #[test]
    fn no_faults_means_transparent() {
        let w = workload();
        let plain = ReferenceBoard::firefly_a53();
        let wrapped = FaultyBoard::new(ReferenceBoard::firefly_a53(), FaultPlan::none());
        assert_eq!(plain.measure(&w).unwrap(), wrapped.measure(&w).unwrap());
        assert_eq!(plain.name(), wrapped.name());
    }

    #[test]
    fn transient_faults_clear_on_retry_and_are_seed_deterministic() {
        let w = workload();
        // A rate this high must fail at least once in 40 attempts; the
        // per-attempt draw must also let at least one attempt through.
        let run = |seed| {
            let b = FaultyBoard::new(
                ReferenceBoard::firefly_a53(),
                FaultPlan::transient(seed, 0.5),
            );
            (0..40)
                .map(|_| b.measure(&w).is_ok())
                .collect::<Vec<bool>>()
        };
        let a = run(7);
        assert!(a.iter().any(|ok| *ok), "some attempts succeed");
        assert!(a.iter().any(|ok| !*ok), "some attempts fail");
        assert_eq!(a, run(7), "same seed, same schedule");
        assert_ne!(a, run(8), "different seed, different schedule");
    }

    #[test]
    fn dropped_workloads_fail_on_every_attempt() {
        let suite = microbench_suite(Scale::TINY);
        let b = FaultyBoard::new(
            ReferenceBoard::firefly_a53(),
            FaultPlan {
                drop_rate: 0.3,
                ..FaultPlan::transient(11, 0.0)
            },
        );
        let mut dropped = 0;
        for w in &suite {
            let first = b.measure(w).is_err();
            for _ in 0..3 {
                assert_eq!(
                    b.measure(w).is_err(),
                    first,
                    "{}: drops must be persistent per workload",
                    w.name
                );
            }
            if first {
                dropped += 1;
                assert!(matches!(b.measure(w), Err(MeasureError::Dropped(_))));
            }
        }
        assert!(dropped > 0, "a 30% drop rate must hit some workload");
        assert!(dropped < suite.len(), "and must spare some");
    }

    #[test]
    fn spikes_corrupt_the_cycle_count_without_failing() {
        let w = workload();
        let clean = ReferenceBoard::firefly_a53().measure(&w).unwrap();
        let b = FaultyBoard::new(
            ReferenceBoard::firefly_a53(),
            FaultPlan {
                spike_rate: 1.0,
                spike_magnitude: 10.0,
                ..FaultPlan::none()
            },
        );
        let spiked = b.measure(&w).unwrap();
        assert_eq!(spiked.instructions, clean.instructions);
        assert!(
            spiked.cycles > clean.cycles * 5,
            "{} !> 5 * {}",
            spiked.cycles,
            clean.cycles
        );
    }

    #[test]
    fn hangs_sleep_but_still_answer() {
        let w = workload();
        let b = FaultyBoard::new(
            ReferenceBoard::firefly_a53(),
            FaultPlan {
                hang_rate: 1.0,
                hang: Duration::from_millis(30),
                ..FaultPlan::none()
            },
        );
        let t0 = std::time::Instant::now();
        assert!(b.measure(&w).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }
}
