//! # racesim-hw
//!
//! Golden-reference "hardware" platforms — the project's substitute for
//! the paper's Firefly RK3399 board (Cortex-A53 + Cortex-A72) measured
//! with Linux `perf`.
//!
//! Real hardware is "the golden reference according to which simulator
//! accuracy can be judged". Since no board is available here, the
//! reference is a **hidden configuration of the same simulation engine**,
//! deliberately augmented with behaviours the user-facing timing model
//! does *not* capture. This reproduces both error classes from Black and
//! Shen's taxonomy that the paper targets:
//!
//! * **Specification error** — the hidden configuration sets the ~64
//!   undisclosed parameters (predictor sizing, prefetcher choice, cache
//!   hashing, MSHRs, penalties, …) to values the user does not know. The
//!   tuner's job is to recover behaviourally equivalent settings.
//! * **Abstraction error** — the reference additionally models a data TLB,
//!   OS timer interrupts, DRAM refresh, first-touch page effects on
//!   uninitialised arrays (the paper's Section IV-B observation), a
//!   branch predictor larger than any candidate offered to the tuner, and
//!   a prefetcher configuration outside the candidate grid. No point in
//!   the tunable space reproduces the reference exactly, so a residual
//!   error floor remains — as with any real board.
//!
//! The interface is `perf`-shaped: [`HardwarePlatform::measure`] returns
//! event counts ([`PerfCounters`]), never internal state.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod board;
mod counters;
mod effects;
mod faults;

pub use board::{MeasureError, ReferenceBoard};
pub use counters::PerfCounters;
pub use effects::SystemEffects;
pub use faults::{FaultPlan, FaultyBoard};

use racesim_kernels::Workload;
use racesim_trace::TraceBuffer;

/// A black-box hardware platform that can run workloads and report
/// performance counters.
pub trait HardwarePlatform: std::fmt::Debug + Send + Sync {
    /// The platform's marketing name.
    fn name(&self) -> &str;

    /// Runs a workload natively and reports its counters.
    ///
    /// # Errors
    ///
    /// Fails if the workload cannot be executed.
    fn measure(&self, workload: &Workload) -> Result<PerfCounters, MeasureError>;

    /// Measures a pre-recorded trace (the paper generates each trace once
    /// and reuses it). `uninit_data` carries the workload's
    /// uninitialised-array property; `name` seeds measurement noise.
    ///
    /// # Errors
    ///
    /// Fails if the trace cannot be replayed.
    fn measure_trace(
        &self,
        name: &str,
        trace: &TraceBuffer,
        uninit_data: bool,
    ) -> Result<PerfCounters, MeasureError>;
}
