//! A small two-pass assembler with labels.
//!
//! The assembler is the main way programs are written in this project: the
//! micro-benchmark suite in `racesim-kernels` is implemented as Rust
//! functions that emit instructions through [`Asm`].
//!
//! # Example
//!
//! ```
//! use racesim_isa::{asm::Asm, Reg};
//!
//! // Sum the integers 1..=10 into x1.
//! let mut a = Asm::new();
//! a.movz(Reg::x(0), 10); // counter
//! a.movz(Reg::x(1), 0);  // accumulator
//! let top = a.label();
//! a.bind(top);
//! a.add(Reg::x(1), Reg::x(1), Reg::x(0));
//! a.subi(Reg::x(0), Reg::x(0), 1);
//! a.cbnz(Reg::x(0), top);
//! a.halt();
//! let program = a.finish();
//! assert_eq!(program.code.len(), 6);
//! ```

use crate::{
    encode::{EncodedInst, IMM_MAX, IMM_MIN},
    program::{Program, ReservedRegion, DEFAULT_DATA_BASE},
    Cond, MemWidth, Opcode, Reg,
};

/// A forward-referencable code label.
///
/// Created with [`Asm::label`], placed with [`Asm::bind`], and referenced by
/// the branch-emitting methods. Every created label must be bound exactly
/// once before [`Asm::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug)]
struct Fixup {
    inst_idx: usize,
    label: Label,
}

/// A `movz` whose immediate is patched with a label's absolute address.
#[derive(Debug)]
struct AddrFixup {
    inst_idx: usize,
    label: Label,
}

/// A data blob of code pointers patched with label addresses.
#[derive(Debug)]
struct TableFixup {
    data_idx: usize,
    labels: Vec<Label>,
}

/// Two-pass assembler building a [`Program`].
#[derive(Debug)]
pub struct Asm {
    code: Vec<EncodedInst>,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
    addr_fixups: Vec<AddrFixup>,
    table_fixups: Vec<TableFixup>,
    data: Vec<(u64, Vec<u8>)>,
    init_regs: Vec<(u8, u64)>,
    reserved: Vec<ReservedRegion>,
    next_data: u64,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm {
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            addr_fixups: Vec::new(),
            table_fixups: Vec::new(),
            data: Vec::new(),
            init_regs: Vec::new(),
            reserved: Vec::new(),
            next_data: DEFAULT_DATA_BASE,
        }
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len());
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    fn emit(&mut self, op: Opcode, aux: u8, rd: Reg, rn: Reg, rm: Reg, imm: i64) {
        let e = EncodedInst::build(op, aux, rd, rn, rm, imm)
            .unwrap_or_else(|e| panic!("assembler: {e} for {op}"));
        self.code.push(e);
    }

    fn emit_branch(&mut self, op: Opcode, aux: u8, rd: Reg, rn: Reg, label: Label) {
        self.fixups.push(Fixup {
            inst_idx: self.code.len(),
            label,
        });
        // The immediate is patched in `finish`.
        self.emit(op, aux, rd, rn, Reg::XZR, 0);
    }

    // ---- Data segment -------------------------------------------------

    fn reserve_with(&mut self, bytes: u64, align: u64, initialized: bool) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next_data = (self.next_data + align - 1) & !(align - 1);
        let addr = self.next_data;
        self.next_data += bytes;
        if bytes > 0 {
            self.reserved.push(ReservedRegion {
                addr,
                len: bytes,
                initialized,
            });
        }
        addr
    }

    /// Reserves `bytes` of data and returns its address, recording the
    /// region as *uninitialised*: the emulator still zero-fills it, but
    /// nothing in the program or its harness defines the contents, so
    /// static analysis will flag loads from it (the paper's
    /// uninitialised-array hazard). Use [`Asm::reserve_initialized`] for
    /// scratch arrays the harness is understood to set up beforehand.
    ///
    /// The region is aligned to `align` (which must be a power of two).
    pub fn reserve(&mut self, bytes: u64, align: u64) -> u64 {
        self.reserve_with(bytes, align, false)
    }

    /// Reserves `bytes` of data whose contents count as defined before
    /// execution — the model of a benchmark harness that initialises its
    /// working set prior to the measured region.
    ///
    /// The region is aligned to `align` (which must be a power of two).
    pub fn reserve_initialized(&mut self, bytes: u64, align: u64) -> u64 {
        self.reserve_with(bytes, align, true)
    }

    /// Reserves a region and fills it with the given bytes.
    pub fn data_bytes(&mut self, bytes: Vec<u8>, align: u64) -> u64 {
        let addr = self.reserve_with(bytes.len() as u64, align, true);
        self.data.push((addr, bytes));
        addr
    }

    /// Reserves a region and fills it with little-endian 64-bit words.
    pub fn data_u64s(&mut self, words: &[u64]) -> u64 {
        let bytes = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data_bytes(bytes, 8)
    }

    /// Sets the initial value of an integer register.
    pub fn init_reg(&mut self, reg: Reg, value: u64) {
        self.init_regs.push((reg.index() as u8, value));
    }

    /// Loads the absolute address of `label` into `rd` (one `movz`, whose
    /// immediate is patched at [`Asm::finish`]).
    ///
    /// Code addresses fit the 28-bit immediate for any realistic program.
    pub fn load_label_addr(&mut self, rd: Reg, label: Label) {
        self.addr_fixups.push(AddrFixup {
            inst_idx: self.code.len(),
            label,
        });
        self.movz(rd, 0);
    }

    /// Emits a table of code pointers (8 bytes each) into the data
    /// segment and returns its address; the entries are patched with the
    /// labels' absolute addresses at [`Asm::finish`].
    ///
    /// Use for jump tables and indirect-call function tables.
    pub fn data_code_ptrs(&mut self, labels: &[Label]) -> u64 {
        let addr = self.data_bytes(vec![0u8; labels.len() * 8], 8);
        self.table_fixups.push(TableFixup {
            data_idx: self.data.len() - 1,
            labels: labels.to_vec(),
        });
        addr
    }

    // ---- Pseudo-instructions -------------------------------------------

    /// Loads an arbitrary 64-bit constant using `movz` + up to three `movk`.
    pub fn mov64(&mut self, rd: Reg, value: u64) {
        // movz covers the low 28 bits; patch any non-zero upper 16-bit
        // chunks with movk. Chunk 1 (bits 16..32) overlaps the movz payload,
        // so re-patching it is still correct.
        self.movz(rd, (value & 0xffff) as i64);
        for slot in 1..4u8 {
            let chunk = (value >> (16 * slot)) & 0xffff;
            if chunk != 0 {
                self.movk(rd, chunk as u16, slot);
            }
        }
    }

    // ---- Integer ALU ----------------------------------------------------

    /// `add rd, rn, rm`.
    pub fn add(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Add, 0, rd, rn, rm, 0);
    }

    /// `addi rd, rn, #imm`.
    pub fn addi(&mut self, rd: Reg, rn: Reg, imm: i64) {
        self.emit(Opcode::AddI, 0, rd, rn, Reg::XZR, imm);
    }

    /// `sub rd, rn, rm`.
    pub fn sub(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Sub, 0, rd, rn, rm, 0);
    }

    /// `subi rd, rn, #imm`.
    pub fn subi(&mut self, rd: Reg, rn: Reg, imm: i64) {
        self.emit(Opcode::SubI, 0, rd, rn, Reg::XZR, imm);
    }

    /// `and rd, rn, rm`.
    pub fn and(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::And, 0, rd, rn, rm, 0);
    }

    /// `orr rd, rn, rm`.
    pub fn orr(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Orr, 0, rd, rn, rm, 0);
    }

    /// `eor rd, rn, rm`.
    pub fn eor(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Eor, 0, rd, rn, rm, 0);
    }

    /// `lsl rd, rn, #sh`.
    pub fn lsl(&mut self, rd: Reg, rn: Reg, sh: u8) {
        self.emit(Opcode::Lsl, 0, rd, rn, Reg::XZR, sh as i64);
    }

    /// `lsr rd, rn, #sh`.
    pub fn lsr(&mut self, rd: Reg, rn: Reg, sh: u8) {
        self.emit(Opcode::Lsr, 0, rd, rn, Reg::XZR, sh as i64);
    }

    /// `asr rd, rn, #sh`.
    pub fn asr(&mut self, rd: Reg, rn: Reg, sh: u8) {
        self.emit(Opcode::Asr, 0, rd, rn, Reg::XZR, sh as i64);
    }

    /// `mul rd, rn, rm`.
    pub fn mul(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Mul, 0, rd, rn, rm, 0);
    }

    /// `udiv rd, rn, rm`.
    pub fn udiv(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Udiv, 0, rd, rn, rm, 0);
    }

    /// `sdiv rd, rn, rm`.
    pub fn sdiv(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Sdiv, 0, rd, rn, rm, 0);
    }

    /// `movz rd, #imm` (28-bit immediate, zero-extended).
    pub fn movz(&mut self, rd: Reg, imm: i64) {
        assert!((0..=IMM_MAX).contains(&imm), "movz immediate out of range");
        self.emit(Opcode::Movz, 0, rd, Reg::XZR, Reg::XZR, imm);
    }

    /// `movk rd, #imm16, lsl #(16*slot)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot > 3`.
    pub fn movk(&mut self, rd: Reg, imm16: u16, slot: u8) {
        assert!(slot <= 3, "movk slot out of range");
        self.emit(Opcode::Movk, slot, rd, rd, Reg::XZR, imm16 as i64);
    }

    /// `mov rd, rn` (alias of `orr rd, rn, xzr`).
    pub fn mov(&mut self, rd: Reg, rn: Reg) {
        self.orr(rd, rn, Reg::XZR);
    }

    /// `cmp rn, rm`.
    pub fn cmp(&mut self, rn: Reg, rm: Reg) {
        self.emit(Opcode::Cmp, 0, Reg::XZR, rn, rm, 0);
    }

    /// `cmpi rn, #imm`.
    pub fn cmpi(&mut self, rn: Reg, imm: i64) {
        self.emit(Opcode::CmpI, 0, Reg::XZR, rn, Reg::XZR, imm);
    }

    /// `csel.cond rd, rn, rm` — `rd = cond ? rn : rm`.
    pub fn csel(&mut self, cond: Cond, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Opcode::Csel, cond.bits(), rd, rn, rm, 0);
    }

    // ---- Floating point and SIMD ----------------------------------------

    /// `fadd vd, vn, vm`.
    pub fn fadd(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Fadd, 0, vd, vn, vm, 0);
    }

    /// `fsub vd, vn, vm`.
    pub fn fsub(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Fsub, 0, vd, vn, vm, 0);
    }

    /// `fmul vd, vn, vm`.
    pub fn fmul(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Fmul, 0, vd, vn, vm, 0);
    }

    /// `fdiv vd, vn, vm`.
    pub fn fdiv(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Fdiv, 0, vd, vn, vm, 0);
    }

    /// `fsqrt vd, vn`.
    pub fn fsqrt(&mut self, vd: Reg, vn: Reg) {
        self.emit(Opcode::Fsqrt, 0, vd, vn, Reg::XZR, 0);
    }

    /// `scvtf vd, rn` — signed integer to double.
    pub fn scvtf(&mut self, vd: Reg, rn: Reg) {
        self.emit(Opcode::Scvtf, 0, vd, rn, Reg::XZR, 0);
    }

    /// `fcvtzs rd, vn` — double to signed integer.
    pub fn fcvtzs(&mut self, rd: Reg, vn: Reg) {
        self.emit(Opcode::Fcvtzs, 0, rd, vn, Reg::XZR, 0);
    }

    /// `fmov vd, vn`.
    pub fn fmov(&mut self, vd: Reg, vn: Reg) {
        self.emit(Opcode::Fmov, 0, vd, vn, Reg::XZR, 0);
    }

    /// `fmovi vd, rn` — move integer bits into lane 0.
    pub fn fmovi(&mut self, vd: Reg, rn: Reg) {
        self.emit(Opcode::FmovI, 0, vd, rn, Reg::XZR, 0);
    }

    /// `vadd vd, vn, vm` — two-lane integer add.
    pub fn vadd(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Vadd, 0, vd, vn, vm, 0);
    }

    /// `vmul vd, vn, vm` — two-lane integer multiply.
    pub fn vmul(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Vmul, 0, vd, vn, vm, 0);
    }

    /// `vfadd vd, vn, vm` — two-lane double add.
    pub fn vfadd(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Vfadd, 0, vd, vn, vm, 0);
    }

    /// `vfmul vd, vn, vm` — two-lane double multiply.
    pub fn vfmul(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Vfmul, 0, vd, vn, vm, 0);
    }

    /// `vfma vd, vn, vm` — two-lane fused multiply-add.
    pub fn vfma(&mut self, vd: Reg, vn: Reg, vm: Reg) {
        self.emit(Opcode::Vfma, 0, vd, vn, vm, 0);
    }

    // ---- Memory -----------------------------------------------------------

    /// `ldr.<w> rt, [rn, rm, #imm]` — load from `rn + rm + imm`.
    pub fn ldr(&mut self, w: MemWidth, rt: Reg, rn: Reg, rm: Reg, imm: i64) {
        self.emit(Opcode::Ldr, w.bits(), rt, rn, rm, imm);
    }

    /// `str.<w> rt, [rn, rm, #imm]` — store to `rn + rm + imm`.
    pub fn str(&mut self, w: MemWidth, rt: Reg, rn: Reg, rm: Reg, imm: i64) {
        // For stores rt is a *source*; it travels in the rd field.
        self.emit(Opcode::Str, w.bits(), rt, rn, rm, imm);
    }

    /// `ldr.8b rt, [rn]` — common-case 8-byte load.
    pub fn ldr8(&mut self, rt: Reg, rn: Reg, imm: i64) {
        self.ldr(MemWidth::B8, rt, rn, Reg::XZR, imm);
    }

    /// `str.8b rt, [rn]` — common-case 8-byte store.
    pub fn str8(&mut self, rt: Reg, rn: Reg, imm: i64) {
        self.str(MemWidth::B8, rt, rn, Reg::XZR, imm);
    }

    // ---- Control flow ------------------------------------------------------

    /// `b label`.
    pub fn b(&mut self, label: Label) {
        self.emit_branch(Opcode::B, 0, Reg::XZR, Reg::XZR, label);
    }

    /// `b.cond label`.
    pub fn bcond(&mut self, cond: Cond, label: Label) {
        self.emit_branch(Opcode::Bcond, cond.bits(), Reg::XZR, Reg::XZR, label);
    }

    /// `cbz rn, label`.
    pub fn cbz(&mut self, rn: Reg, label: Label) {
        self.emit_branch(Opcode::Cbz, 0, Reg::XZR, rn, label);
    }

    /// `cbnz rn, label`.
    pub fn cbnz(&mut self, rn: Reg, label: Label) {
        self.emit_branch(Opcode::Cbnz, 0, Reg::XZR, rn, label);
    }

    /// `br rn` — indirect branch.
    pub fn br(&mut self, rn: Reg) {
        self.emit(Opcode::Br, 0, Reg::XZR, rn, Reg::XZR, 0);
    }

    /// `bl label` — direct call.
    pub fn bl(&mut self, label: Label) {
        self.emit_branch(Opcode::Bl, 0, Reg::LR, Reg::XZR, label);
    }

    /// `blr rn` — indirect call.
    pub fn blr(&mut self, rn: Reg) {
        self.emit(Opcode::Blr, 0, Reg::LR, rn, Reg::XZR, 0);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.emit(Opcode::Ret, 0, Reg::XZR, Reg::LR, Reg::XZR, 0);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Opcode::Nop, 0, Reg::XZR, Reg::XZR, Reg::XZR, 0);
    }

    /// `dsb` — full barrier.
    pub fn dsb(&mut self) {
        self.emit(Opcode::Dsb, 0, Reg::XZR, Reg::XZR, Reg::XZR, 0);
    }

    /// `halt` — end of emulation.
    pub fn halt(&mut self) {
        self.emit(Opcode::Halt, 0, Reg::XZR, Reg::XZR, Reg::XZR, 0);
    }

    /// Resolves all label fixups and returns the finished program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound, or a branch offset
    /// does not fit the immediate field.
    pub fn finish(self) -> Program {
        let Asm {
            mut code,
            labels,
            fixups,
            addr_fixups,
            table_fixups,
            mut data,
            init_regs,
            reserved,
            ..
        } = self;
        let code_base = crate::program::DEFAULT_CODE_BASE;
        let pc_of = |idx: usize| code_base + idx as u64 * crate::INST_BYTES;
        for f in fixups {
            let target = labels[f.label.0].expect("unbound label referenced by branch");
            let offset = target as i64 - f.inst_idx as i64;
            assert!(
                (IMM_MIN..=IMM_MAX).contains(&offset),
                "branch offset out of range"
            );
            let old = code[f.inst_idx].0;
            code[f.inst_idx] = EncodedInst(
                (old & 0x0000_000f_ffff_ffff) | (((offset as u64) & 0x0fff_ffff) << 36),
            );
        }
        for f in addr_fixups {
            let target = labels[f.label.0].expect("unbound label referenced by address load");
            let addr = pc_of(target) as i64;
            assert!(
                (0..=IMM_MAX).contains(&addr),
                "label address exceeds the movz immediate"
            );
            let old = code[f.inst_idx].0;
            code[f.inst_idx] =
                EncodedInst((old & 0x0000_000f_ffff_ffff) | (((addr as u64) & 0x0fff_ffff) << 36));
        }
        for f in table_fixups {
            let blob = &mut data[f.data_idx].1;
            for (i, l) in f.labels.iter().enumerate() {
                let target = labels[l.0].expect("unbound label referenced by pointer table");
                blob[i * 8..(i + 1) * 8].copy_from_slice(&pc_of(target).to_le_bytes());
            }
        }
        Program {
            code,
            code_base,
            data,
            init_regs,
            reserved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let fwd = a.label();
        a.b(fwd); // idx 0 -> idx 2: offset +2
        a.nop(); // idx 1
        a.bind(fwd);
        let back = a.here(); // idx 2
        a.nop(); // idx 2 is the bind point; this nop is idx 2
        a.b(back); // idx 3 -> idx 2: offset -1
        let p = a.finish();
        assert_eq!(p.code[0].imm(), 2);
        assert_eq!(p.code[3].imm(), -1);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.b(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn data_reservation_is_aligned_and_disjoint() {
        let mut a = Asm::new();
        let r1 = a.reserve(10, 64);
        let r2 = a.reserve(8, 64);
        assert_eq!(r1 % 64, 0);
        assert_eq!(r2 % 64, 0);
        assert!(r2 >= r1 + 10);
    }

    #[test]
    fn data_words_are_little_endian() {
        let mut a = Asm::new();
        let addr = a.data_u64s(&[0x0102_0304_0506_0708]);
        let p = a.finish();
        let (at, bytes) = &p.data[0];
        assert_eq!(*at, addr);
        assert_eq!(bytes[0], 0x08);
        assert_eq!(bytes[7], 0x01);
    }

    #[test]
    fn mov64_emits_minimal_sequence() {
        let mut a = Asm::new();
        a.mov64(Reg::x(0), 0xffff); // fits movz
        let n_small = a.len();
        a.mov64(Reg::x(1), 0xdead_beef_0000_1234);
        let p = a.finish();
        assert_eq!(n_small, 1);
        // movz + movk slots 1..3 non-zero chunks: 0x0000(skip slot1? chunk1=0x0000) ...
        // value chunks: [0x1234, 0x0000, 0xbeef, 0xdead] -> movz + 2 movk.
        assert_eq!(p.code.len() - n_small, 3);
    }

    #[test]
    fn store_places_source_in_rd_field() {
        let mut a = Asm::new();
        a.str8(Reg::x(5), Reg::x(6), 16);
        let p = a.finish();
        let e = p.code[0];
        assert_eq!(e.opcode(), Some(Opcode::Str));
        assert_eq!(e.rd_bits() as usize, Reg::x(5).index());
        assert_eq!(e.rn_bits() as usize, Reg::x(6).index());
        assert_eq!(e.imm(), 16);
    }

    #[test]
    fn label_addresses_load_and_tabulate() {
        let mut a = Asm::new();
        let f1 = a.label();
        let f2 = a.label();
        a.load_label_addr(Reg::x(1), f1);
        let table = a.data_code_ptrs(&[f1, f2]);
        a.bind(f1); // idx 1
        a.nop();
        a.bind(f2); // idx 2
        a.nop();
        let p = a.finish();
        assert_eq!(p.code[0].imm() as u64, p.pc_of(1));
        let blob = p.data.iter().find(|(at, _)| *at == table).unwrap();
        let e0 = u64::from_le_bytes(blob.1[0..8].try_into().unwrap());
        let e1 = u64::from_le_bytes(blob.1[8..16].try_into().unwrap());
        assert_eq!(e0, p.pc_of(1));
        assert_eq!(e1, p.pc_of(2));
    }
}
