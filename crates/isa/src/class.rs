//! Timing classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The timing class of an instruction.
///
/// Timing models key functional-unit assignment, execution latency and
/// issue constraints on this class, not on the concrete [`Opcode`]
/// (mirroring how Sniper's contention model groups micro-operations).
///
/// [`Opcode`]: crate::Opcode
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum InstClass {
    /// Simple single-cycle integer ALU operation.
    IntAlu = 0,
    /// Integer multiply.
    IntMul,
    /// Integer divide (iterative unit).
    IntDiv,
    /// Scalar floating-point add/subtract.
    FpAdd,
    /// Scalar floating-point multiply.
    FpMul,
    /// Scalar floating-point divide.
    FpDiv,
    /// Scalar floating-point square root.
    FpSqrt,
    /// Int ↔ FP conversion.
    FpCvt,
    /// FP/SIMD register move.
    FpMov,
    /// SIMD integer ALU operation.
    SimdAlu,
    /// SIMD integer multiply.
    SimdMul,
    /// SIMD floating-point add.
    SimdFpAdd,
    /// SIMD floating-point multiply.
    SimdFpMul,
    /// SIMD fused multiply-add.
    SimdFma,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional direct branch.
    BranchCond,
    /// Unconditional direct branch.
    BranchUncond,
    /// Indirect branch through a register.
    BranchIndirect,
    /// Call (direct or indirect) writing the link register.
    BranchCall,
    /// Return through the link register.
    BranchRet,
    /// Memory barrier.
    Barrier,
    /// No-operation.
    Nop,
    /// Emulation terminator; never reaches timing models.
    Halt,
}

impl InstClass {
    /// Number of distinct classes (for table sizing).
    pub const COUNT: usize = 24;

    /// All classes, in encoding order.
    pub const ALL: [InstClass; Self::COUNT] = [
        InstClass::IntAlu,
        InstClass::IntMul,
        InstClass::IntDiv,
        InstClass::FpAdd,
        InstClass::FpMul,
        InstClass::FpDiv,
        InstClass::FpSqrt,
        InstClass::FpCvt,
        InstClass::FpMov,
        InstClass::SimdAlu,
        InstClass::SimdMul,
        InstClass::SimdFpAdd,
        InstClass::SimdFpMul,
        InstClass::SimdFma,
        InstClass::Load,
        InstClass::Store,
        InstClass::BranchCond,
        InstClass::BranchUncond,
        InstClass::BranchIndirect,
        InstClass::BranchCall,
        InstClass::BranchRet,
        InstClass::Barrier,
        InstClass::Nop,
        InstClass::Halt,
    ];

    /// Dense index of this class, in `0..InstClass::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this class is any control transfer.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            InstClass::BranchCond
                | InstClass::BranchUncond
                | InstClass::BranchIndirect
                | InstClass::BranchCall
                | InstClass::BranchRet
        )
    }

    /// Whether this class accesses data memory.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// Whether this class executes on the FP/SIMD pipes.
    #[inline]
    pub fn is_fp_or_simd(self) -> bool {
        matches!(
            self,
            InstClass::FpAdd
                | InstClass::FpMul
                | InstClass::FpDiv
                | InstClass::FpSqrt
                | InstClass::FpCvt
                | InstClass::FpMov
                | InstClass::SimdAlu
                | InstClass::SimdMul
                | InstClass::SimdFpAdd
                | InstClass::SimdFpMul
                | InstClass::SimdFma
        )
    }

    /// Whether the branch target comes from a register (not the encoding).
    #[inline]
    pub fn is_indirect_branch(self) -> bool {
        matches!(self, InstClass::BranchIndirect | InstClass::BranchRet)
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::IntAlu => "int-alu",
            InstClass::IntMul => "int-mul",
            InstClass::IntDiv => "int-div",
            InstClass::FpAdd => "fp-add",
            InstClass::FpMul => "fp-mul",
            InstClass::FpDiv => "fp-div",
            InstClass::FpSqrt => "fp-sqrt",
            InstClass::FpCvt => "fp-cvt",
            InstClass::FpMov => "fp-mov",
            InstClass::SimdAlu => "simd-alu",
            InstClass::SimdMul => "simd-mul",
            InstClass::SimdFpAdd => "simd-fp-add",
            InstClass::SimdFpMul => "simd-fp-mul",
            InstClass::SimdFma => "simd-fma",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::BranchCond => "branch-cond",
            InstClass::BranchUncond => "branch-uncond",
            InstClass::BranchIndirect => "branch-indirect",
            InstClass::BranchCall => "branch-call",
            InstClass::BranchRet => "branch-ret",
            InstClass::Barrier => "barrier",
            InstClass::Nop => "nop",
            InstClass::Halt => "halt",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense() {
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn predicates_partition_sanely() {
        for c in InstClass::ALL {
            // No class is simultaneously a branch and a memory op.
            assert!(!(c.is_branch() && c.is_memory()), "{c}");
            // FP/SIMD classes are neither branches nor memory ops.
            if c.is_fp_or_simd() {
                assert!(!c.is_branch() && !c.is_memory(), "{c}");
            }
        }
        assert!(InstClass::BranchRet.is_indirect_branch());
        assert!(InstClass::BranchIndirect.is_indirect_branch());
        assert!(!InstClass::BranchCond.is_indirect_branch());
    }
}
