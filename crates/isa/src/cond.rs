//! Condition codes and flag evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The NZCV condition flags produced by compare instructions.
///
/// Semantics follow AArch64: `cmp a, b` computes `a - b` and sets
/// negative/zero/carry/overflow accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Result was negative.
    pub n: bool,
    /// Result was zero.
    pub z: bool,
    /// Unsigned carry (no borrow): `a >= b` unsigned.
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Flags {
    /// Computes the flags for the subtraction `a - b`, as `cmp` would.
    ///
    /// # Example
    ///
    /// ```
    /// use racesim_isa::Cond;
    /// // 3 < 5 signed:
    /// assert!(Cond::Lt.holds(racesim_isa::cond_flags_for_cmp(3, 5)));
    /// ```
    pub fn for_cmp(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let sa = a as i64;
        let sb = b as i64;
        let (sres, overflow) = sa.overflowing_sub(sb);
        debug_assert_eq!(sres as u64, res);
        Flags {
            n: (res as i64) < 0,
            z: res == 0,
            c: !borrow,
            v: overflow,
        }
    }
}

/// Computes the NZCV flags for `cmp a, b`.
///
/// Free-function convenience wrapper around [`Flags::for_cmp`] for use in
/// doc examples and emulators.
pub fn cond_flags_for_cmp(a: u64, b: u64) -> Flags {
    Flags::for_cmp(a, b)
}

/// Condition codes testable by conditional branches and selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z`).
    Eq = 0,
    /// Not equal (`!Z`).
    Ne = 1,
    /// Signed less than (`N != V`).
    Lt = 2,
    /// Signed greater than or equal (`N == V`).
    Ge = 3,
    /// Signed greater than (`!Z && N == V`).
    Gt = 4,
    /// Signed less than or equal (`Z || N != V`).
    Le = 5,
    /// Unsigned lower (`!C`).
    Lo = 6,
    /// Unsigned higher or same (`C`).
    Hs = 7,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Ge,
        Cond::Gt,
        Cond::Le,
        Cond::Lo,
        Cond::Hs,
    ];

    /// Decodes a condition from its 3-bit encoding.
    pub fn from_bits(bits: u8) -> Option<Cond> {
        Self::ALL.get(bits as usize).copied()
    }

    /// The 3-bit encoding of this condition.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Evaluates the condition against a set of flags.
    pub fn holds(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Lt => f.n != f.v,
            Cond::Ge => f.n == f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Lo => !f.c,
            Cond::Hs => f.c,
        }
    }

    /// The logically opposite condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Lo => Cond::Hs,
            Cond::Hs => Cond::Lo,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Lo => "lo",
            Cond::Hs => "hs",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_flag_semantics() {
        let f = Flags::for_cmp(5, 5);
        assert!(f.z && f.c && !f.n && !f.v);

        let f = Flags::for_cmp(3, 5);
        assert!(!f.z && !f.c && f.n && !f.v);

        let f = Flags::for_cmp(5, 3);
        assert!(!f.z && f.c && !f.n && !f.v);

        // Signed overflow: i64::MIN - 1.
        let f = Flags::for_cmp(i64::MIN as u64, 1);
        assert!(f.v);
    }

    #[test]
    fn signed_comparisons() {
        let cases: [(i64, i64); 6] = [(0, 0), (1, 2), (2, 1), (-1, 1), (1, -1), (-3, -3)];
        for (a, b) in cases {
            let f = Flags::for_cmp(a as u64, b as u64);
            assert_eq!(Cond::Eq.holds(f), a == b, "{a} == {b}");
            assert_eq!(Cond::Ne.holds(f), a != b, "{a} != {b}");
            assert_eq!(Cond::Lt.holds(f), a < b, "{a} < {b}");
            assert_eq!(Cond::Ge.holds(f), a >= b, "{a} >= {b}");
            assert_eq!(Cond::Gt.holds(f), a > b, "{a} > {b}");
            assert_eq!(Cond::Le.holds(f), a <= b, "{a} <= {b}");
        }
    }

    #[test]
    fn unsigned_comparisons() {
        let cases: [(u64, u64); 5] = [(0, 0), (1, 2), (u64::MAX, 1), (1, u64::MAX), (7, 7)];
        for (a, b) in cases {
            let f = Flags::for_cmp(a, b);
            assert_eq!(Cond::Lo.holds(f), a < b, "{a} <u {b}");
            assert_eq!(Cond::Hs.holds(f), a >= b, "{a} >=u {b}");
        }
    }

    #[test]
    fn negation_is_involutive_and_opposite() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            let f = Flags::for_cmp(3, 9);
            assert_ne!(c.holds(f), c.negate().holds(f));
        }
    }

    #[test]
    fn bits_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), Some(c));
        }
        assert_eq!(Cond::from_bits(8), None);
    }
}
