//! The 64-bit storage encoding of instructions.

use crate::{Cond, Opcode, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when building an encoded instruction from raw fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The immediate does not fit in the signed 28-bit field.
    ImmOutOfRange(i64),
    /// The 4-bit auxiliary field is out of range.
    BadAux(u8),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(v) => {
                write!(f, "immediate {v} does not fit in signed 28 bits")
            }
            EncodeError::BadAux(a) => write!(f, "auxiliary field {a} does not fit in 4 bits"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Inclusive bounds of the signed 28-bit immediate field.
pub const IMM_MIN: i64 = -(1 << 27);
/// Inclusive upper bound of the signed 28-bit immediate field.
pub const IMM_MAX: i64 = (1 << 27) - 1;

/// A single instruction in its 64-bit storage encoding.
///
/// Field layout (least-significant bit first):
///
/// | bits    | field | meaning                                        |
/// |---------|-------|------------------------------------------------|
/// | 0..8    | `op`  | [`Opcode`]                                     |
/// | 8..12   | `aux` | condition, memory width, or `movk` slot        |
/// | 12..20  | `rd`  | destination register                           |
/// | 20..28  | `rn`  | first source register                          |
/// | 28..36  | `rm`  | second source register                        |
/// | 36..64  | `imm` | signed 28-bit immediate                        |
///
/// The type is a transparent wrapper over `u64`; programs are just
/// `Vec<EncodedInst>`. Interpretation of the fields (which registers are
/// read or written, what the immediate means) is performed by the
/// `racesim-decoder` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct EncodedInst(pub u64);

impl EncodedInst {
    /// Builds an encoded instruction from raw fields.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if the immediate does not fit in 28 signed
    /// bits, a register number is invalid, or `aux` exceeds 4 bits.
    pub fn build(
        op: Opcode,
        aux: u8,
        rd: Reg,
        rn: Reg,
        rm: Reg,
        imm: i64,
    ) -> Result<EncodedInst, EncodeError> {
        if !(IMM_MIN..=IMM_MAX).contains(&imm) {
            return Err(EncodeError::ImmOutOfRange(imm));
        }
        if aux > 0xf {
            return Err(EncodeError::BadAux(aux));
        }
        let word = (op.bits() as u64)
            | ((aux as u64) << 8)
            | ((rd.index() as u64) << 12)
            | ((rn.index() as u64) << 20)
            | ((rm.index() as u64) << 28)
            | (((imm as u64) & 0x0fff_ffff) << 36);
        Ok(EncodedInst(word))
    }

    /// The raw 64-bit word.
    #[inline]
    pub fn word(self) -> u64 {
        self.0
    }

    /// The opcode field, if it names a known opcode.
    #[inline]
    pub fn opcode(self) -> Option<Opcode> {
        Opcode::from_bits((self.0 & 0xff) as u8)
    }

    /// The raw 4-bit auxiliary field.
    #[inline]
    pub fn aux(self) -> u8 {
        ((self.0 >> 8) & 0xf) as u8
    }

    /// The auxiliary field interpreted as a condition code.
    #[inline]
    pub fn cond(self) -> Option<Cond> {
        Cond::from_bits(self.aux() & 0x7)
    }

    /// The raw destination-register field.
    #[inline]
    pub fn rd_bits(self) -> u8 {
        ((self.0 >> 12) & 0xff) as u8
    }

    /// The raw first-source-register field.
    #[inline]
    pub fn rn_bits(self) -> u8 {
        ((self.0 >> 20) & 0xff) as u8
    }

    /// The raw second-source-register field.
    #[inline]
    pub fn rm_bits(self) -> u8 {
        ((self.0 >> 28) & 0xff) as u8
    }

    /// The sign-extended 28-bit immediate.
    #[inline]
    pub fn imm(self) -> i64 {
        ((self.0 >> 36) as i64) << 36 >> 36
    }
}

impl From<EncodedInst> for u64 {
    fn from(e: EncodedInst) -> u64 {
        e.0
    }
}

impl From<u64> for EncodedInst {
    fn from(w: u64) -> EncodedInst {
        EncodedInst(w)
    }
}

impl fmt::LowerHex for EncodedInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        let e = EncodedInst::build(Opcode::Add, 3, Reg::x(1), Reg::x(2), Reg::x(3), -12345)
            .expect("encode");
        assert_eq!(e.opcode(), Some(Opcode::Add));
        assert_eq!(e.aux(), 3);
        assert_eq!(e.rd_bits() as usize, Reg::x(1).index());
        assert_eq!(e.rn_bits() as usize, Reg::x(2).index());
        assert_eq!(e.rm_bits() as usize, Reg::x(3).index());
        assert_eq!(e.imm(), -12345);
    }

    #[test]
    fn imm_extremes() {
        for imm in [IMM_MIN, IMM_MAX, 0, 1, -1] {
            let e = EncodedInst::build(Opcode::Nop, 0, Reg::XZR, Reg::XZR, Reg::XZR, imm).unwrap();
            assert_eq!(e.imm(), imm, "imm {imm}");
        }
        assert!(matches!(
            EncodedInst::build(Opcode::Nop, 0, Reg::XZR, Reg::XZR, Reg::XZR, IMM_MAX + 1),
            Err(EncodeError::ImmOutOfRange(_))
        ));
        assert!(matches!(
            EncodedInst::build(Opcode::Nop, 0, Reg::XZR, Reg::XZR, Reg::XZR, IMM_MIN - 1),
            Err(EncodeError::ImmOutOfRange(_))
        ));
    }

    #[test]
    fn aux_range_checked() {
        assert!(matches!(
            EncodedInst::build(Opcode::Nop, 16, Reg::XZR, Reg::XZR, Reg::XZR, 0),
            Err(EncodeError::BadAux(16))
        ));
    }

    #[test]
    fn unknown_opcode_decodes_to_none() {
        let e = EncodedInst(0xff);
        assert_eq!(e.opcode(), None);
    }
}
