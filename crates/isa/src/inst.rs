//! Decoded instruction representations.

use crate::{Cond, InstClass, Opcode, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of source registers a decoded instruction can carry.
pub const MAX_SRCS: usize = 4;
/// Maximum number of destination registers a decoded instruction can carry.
pub const MAX_DSTS: usize = 2;

/// Width of a memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum MemWidth {
    /// 1 byte.
    B1 = 0,
    /// 2 bytes.
    B2 = 1,
    /// 4 bytes.
    B4 = 2,
    /// 8 bytes.
    B8 = 3,
    /// 16 bytes (vector register).
    B16 = 4,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[inline]
    pub fn bytes(self) -> u64 {
        1 << (self as u8)
    }

    /// Decodes a width from the 4-bit auxiliary encoding field.
    pub fn from_bits(bits: u8) -> Option<MemWidth> {
        match bits {
            0 => Some(MemWidth::B1),
            1 => Some(MemWidth::B2),
            2 => Some(MemWidth::B4),
            3 => Some(MemWidth::B8),
            4 => Some(MemWidth::B16),
            _ => None,
        }
    }

    /// The 4-bit encoding of this width.
    #[inline]
    pub fn bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bytes())
    }
}

/// A fully decoded, position-independent instruction.
///
/// This is what the decoder library produces and what timing models inspect:
/// the timing-relevant class, explicit source and destination register lists,
/// and the decoded operand fields. The same `StaticInst` is shared by every
/// dynamic execution of the instruction (Sniper caches these per PC; so does
/// `racesim-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticInst {
    /// The opcode.
    pub opcode: Opcode,
    /// The timing class (derived from the opcode).
    pub class: InstClass,
    /// Condition code, for `b.cond` and `csel`.
    pub cond: Option<Cond>,
    /// Memory access width, for loads and stores.
    pub width: Option<MemWidth>,
    /// Source registers (first `num_srcs` entries are valid).
    pub srcs: [Reg; MAX_SRCS],
    /// Number of valid source registers.
    pub num_srcs: u8,
    /// Destination registers (first `num_dsts` entries are valid).
    pub dsts: [Reg; MAX_DSTS],
    /// Number of valid destination registers.
    pub num_dsts: u8,
    /// Decoded immediate (branch offset in instructions, ALU immediate,
    /// memory displacement or `movk` payload, depending on the opcode).
    pub imm: i64,
    /// `movk` slot (which 16-bit chunk the immediate patches).
    pub movk_slot: u8,
}

impl StaticInst {
    /// The valid source registers.
    #[inline]
    pub fn sources(&self) -> &[Reg] {
        &self.srcs[..self.num_srcs as usize]
    }

    /// The valid destination registers.
    #[inline]
    pub fn dests(&self) -> &[Reg] {
        &self.dsts[..self.num_dsts as usize]
    }

    /// Whether the instruction is a load or store.
    #[inline]
    pub fn is_memory(&self) -> bool {
        self.class.is_memory()
    }

    /// Whether the instruction is any control transfer.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.class.is_branch()
    }

    /// Whether the instruction is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.class == InstClass::Store
    }

    /// Whether the instruction is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.class == InstClass::Load
    }
}

/// One dynamically executed instruction: a [`StaticInst`] plus the
/// execution context the front-end observed.
///
/// This is the unit that flows through traces into the timing models —
/// the equivalent of one SIFT record in Sniper: program counter, effective
/// address for memory operations, and the architecturally resolved branch
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Program counter of this instruction.
    pub pc: u64,
    /// The decoded static instruction.
    pub stat: StaticInst,
    /// Effective virtual address (memory instructions only; 0 otherwise).
    pub ea: u64,
    /// Whether a branch was architecturally taken (branches only).
    pub taken: bool,
    /// Architectural branch target (taken branches only; 0 otherwise).
    pub target: u64,
}

impl DynInst {
    /// The address of the next sequential instruction.
    #[inline]
    pub fn fallthrough(&self) -> u64 {
        self.pc + crate::INST_BYTES
    }

    /// The address control flow actually continued at.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        if self.stat.is_branch() && self.taken {
            self.target
        } else {
            self.fallthrough()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop_stat() -> StaticInst {
        StaticInst {
            opcode: Opcode::Nop,
            class: InstClass::Nop,
            cond: None,
            width: None,
            srcs: [Reg::XZR; MAX_SRCS],
            num_srcs: 0,
            dsts: [Reg::XZR; MAX_DSTS],
            num_dsts: 0,
            imm: 0,
            movk_slot: 0,
        }
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
        assert_eq!(MemWidth::B16.bytes(), 16);
    }

    #[test]
    fn mem_width_bits_roundtrip() {
        for w in [
            MemWidth::B1,
            MemWidth::B2,
            MemWidth::B4,
            MemWidth::B8,
            MemWidth::B16,
        ] {
            assert_eq!(MemWidth::from_bits(w.bits()), Some(w));
        }
        assert_eq!(MemWidth::from_bits(5), None);
    }

    #[test]
    fn source_and_dest_slices_respect_counts() {
        let mut s = nop_stat();
        s.srcs[0] = Reg::x(1);
        s.srcs[1] = Reg::x(2);
        s.num_srcs = 2;
        s.dsts[0] = Reg::x(3);
        s.num_dsts = 1;
        assert_eq!(s.sources(), &[Reg::x(1), Reg::x(2)]);
        assert_eq!(s.dests(), &[Reg::x(3)]);
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let mut s = nop_stat();
        s.opcode = Opcode::B;
        s.class = InstClass::BranchUncond;
        let d = DynInst {
            pc: 0x1000,
            stat: s,
            ea: 0,
            taken: true,
            target: 0x2000,
        };
        assert_eq!(d.next_pc(), 0x2000);
        let d2 = DynInst { taken: false, ..d };
        assert_eq!(d2.next_pc(), 0x1004);
        let plain = DynInst {
            pc: 0x1000,
            stat: nop_stat(),
            ea: 0,
            taken: false,
            target: 0,
        };
        assert_eq!(plain.next_pc(), plain.fallthrough());
    }
}
