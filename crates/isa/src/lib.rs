//! # racesim-isa
//!
//! An AArch64-inspired micro instruction-set architecture used throughout the
//! `racesim` project.
//!
//! The paper this project reproduces ("Racing to Hardware-Validated
//! Simulation", ISPASS 2019) overhauls the Sniper simulator with an ARM
//! AArch64 front-end. Since we cannot run real AArch64 binaries here, this
//! crate defines a compact, fully specified ISA with the same *timing-relevant*
//! structure as AArch64: integer/FP/SIMD register files, condition flags,
//! loads/stores with base+index+offset addressing, direct/conditional/indirect
//! branches, calls and returns.
//!
//! The crate provides:
//!
//! * register names and classes ([`Reg`], [`RegClass`]),
//! * condition codes ([`Cond`]),
//! * opcodes ([`Opcode`]) and timing classes ([`InstClass`]),
//! * a fixed 64-bit instruction encoding ([`EncodedInst`]),
//! * decoded representations ([`StaticInst`], [`DynInst`]),
//! * an assembler with labels ([`asm::Asm`]) producing [`Program`]s.
//!
//! Decoding encoded words into [`StaticInst`] is the job of the sibling
//! `racesim-decoder` crate (the "Capstone substitute"); the split mirrors the
//! paper's separation between instruction representation and the decoder
//! library.
//!
//! # Example
//!
//! ```
//! use racesim_isa::{asm::Asm, Reg, Opcode};
//!
//! let mut a = Asm::new();
//! let top = a.label();
//! a.movz(Reg::x(0), 100);
//! a.bind(top);
//! a.subi(Reg::x(0), Reg::x(0), 1);
//! a.cbnz(Reg::x(0), top);
//! a.halt();
//! let program = a.finish();
//! assert_eq!(program.code.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
mod class;
mod cond;
mod encode;
mod inst;
mod opcode;
mod program;
mod reg;

pub use class::InstClass;
pub use cond::{cond_flags_for_cmp, Cond, Flags};
pub use encode::{EncodeError, EncodedInst};
pub use inst::{DynInst, MemWidth, StaticInst, MAX_DSTS, MAX_SRCS};
pub use opcode::Opcode;
pub use program::{
    Program, ReservedRegion, DEFAULT_CODE_BASE, DEFAULT_DATA_BASE, DEFAULT_STACK_TOP,
};
pub use reg::{Reg, RegClass};

/// Architectural size, in bytes, of one instruction.
///
/// Like AArch64 the ISA presents fixed 4-byte instructions to the memory
/// system (instruction-cache behaviour depends on it), even though the
/// storage encoding of this crate uses 8-byte words.
pub const INST_BYTES: u64 = 4;
