//! Opcode definitions.

use crate::InstClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation codes of the micro-ISA.
///
/// The set is intentionally small but covers every behaviour class the
/// timing models distinguish: simple/complex integer arithmetic, FP
/// add/mul/div/sqrt pipes, int↔FP conversion, two-lane SIMD, loads/stores,
/// and the full branch taxonomy (conditional, unconditional, indirect,
/// call, return).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// `add rd, rn, rm` — integer addition.
    Add,
    /// `addi rd, rn, #imm` — integer addition with immediate.
    AddI,
    /// `sub rd, rn, rm` — integer subtraction.
    Sub,
    /// `subi rd, rn, #imm` — integer subtraction with immediate.
    SubI,
    /// `and rd, rn, rm` — bitwise and.
    And,
    /// `orr rd, rn, rm` — bitwise or.
    Orr,
    /// `eor rd, rn, rm` — bitwise exclusive or.
    Eor,
    /// `lsl rd, rn, #imm` — logical shift left by immediate.
    Lsl,
    /// `lsr rd, rn, #imm` — logical shift right by immediate.
    Lsr,
    /// `asr rd, rn, #imm` — arithmetic shift right by immediate.
    Asr,
    /// `mul rd, rn, rm` — integer multiply.
    Mul,
    /// `udiv rd, rn, rm` — unsigned integer divide (x/0 = 0, as AArch64).
    Udiv,
    /// `sdiv rd, rn, rm` — signed integer divide (x/0 = 0).
    Sdiv,
    /// `movz rd, #imm` — move zero-extended 28-bit immediate.
    Movz,
    /// `movk rd, #imm16, lsl #(16*slot)` — insert 16-bit immediate at slot.
    Movk,
    /// `cmp rn, rm` — compare registers, set NZCV.
    Cmp,
    /// `cmpi rn, #imm` — compare register with immediate, set NZCV.
    CmpI,
    /// `csel.cond rd, rn, rm` — conditional select.
    Csel,
    /// `fadd vd, vn, vm` — scalar double-precision add (lane 0).
    Fadd,
    /// `fsub vd, vn, vm` — scalar double-precision subtract.
    Fsub,
    /// `fmul vd, vn, vm` — scalar double-precision multiply.
    Fmul,
    /// `fdiv vd, vn, vm` — scalar double-precision divide.
    Fdiv,
    /// `fsqrt vd, vn` — scalar double-precision square root.
    Fsqrt,
    /// `scvtf vd, rn` — signed 64-bit integer to double conversion.
    Scvtf,
    /// `fcvtzs rd, vn` — double to signed 64-bit integer, round to zero.
    Fcvtzs,
    /// `fmov vd, vn` — vector register move.
    Fmov,
    /// `fmovi vd, rn` — move integer register bits into lane 0.
    FmovI,
    /// `vadd vd, vn, vm` — two-lane integer add.
    Vadd,
    /// `vmul vd, vn, vm` — two-lane integer multiply.
    Vmul,
    /// `vfadd vd, vn, vm` — two-lane double-precision add.
    Vfadd,
    /// `vfmul vd, vn, vm` — two-lane double-precision multiply.
    Vfmul,
    /// `vfma vd, vn, vm` — two-lane fused multiply-add (`vd += vn * vm`).
    Vfma,
    /// `ldr.<size> rt, [rn, rm, #imm]` — load (size from the width field).
    Ldr,
    /// `str.<size> rt, [rn, rm, #imm]` — store.
    Str,
    /// `b #imm` — unconditional direct branch.
    B,
    /// `b.cond #imm` — conditional direct branch on NZCV.
    Bcond,
    /// `cbz rn, #imm` — branch if register is zero.
    Cbz,
    /// `cbnz rn, #imm` — branch if register is non-zero.
    Cbnz,
    /// `br rn` — indirect branch to register.
    Br,
    /// `bl #imm` — direct call, writes return address to `x30`.
    Bl,
    /// `blr rn` — indirect call, writes return address to `x30`.
    Blr,
    /// `ret` — return to the address in `x30`.
    Ret,
    /// `dsb` — full barrier; drains the store buffer in timing models.
    Dsb,
    /// `halt` — stops emulation; never appears in hardware traces.
    Halt,
}

impl Opcode {
    /// All opcodes, in encoding order.
    pub const ALL: [Opcode; 45] = [
        Opcode::Nop,
        Opcode::Add,
        Opcode::AddI,
        Opcode::Sub,
        Opcode::SubI,
        Opcode::And,
        Opcode::Orr,
        Opcode::Eor,
        Opcode::Lsl,
        Opcode::Lsr,
        Opcode::Asr,
        Opcode::Mul,
        Opcode::Udiv,
        Opcode::Sdiv,
        Opcode::Movz,
        Opcode::Movk,
        Opcode::Cmp,
        Opcode::CmpI,
        Opcode::Csel,
        Opcode::Fadd,
        Opcode::Fsub,
        Opcode::Fmul,
        Opcode::Fdiv,
        Opcode::Fsqrt,
        Opcode::Scvtf,
        Opcode::Fcvtzs,
        Opcode::Fmov,
        Opcode::FmovI,
        Opcode::Vadd,
        Opcode::Vmul,
        Opcode::Vfadd,
        Opcode::Vfmul,
        Opcode::Vfma,
        Opcode::Ldr,
        Opcode::Str,
        Opcode::B,
        Opcode::Bcond,
        Opcode::Cbz,
        Opcode::Cbnz,
        Opcode::Br,
        Opcode::Bl,
        Opcode::Blr,
        Opcode::Ret,
        Opcode::Dsb,
        Opcode::Halt,
    ];

    /// Decodes an opcode from its byte encoding.
    pub fn from_bits(bits: u8) -> Option<Opcode> {
        Self::ALL.get(bits as usize).copied()
    }

    /// The byte encoding of this opcode.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// The timing class instructions with this opcode belong to.
    pub fn class(self) -> InstClass {
        use Opcode::*;
        match self {
            Nop => InstClass::Nop,
            Add | AddI | Sub | SubI | And | Orr | Eor | Lsl | Lsr | Asr | Movz | Movk | Cmp
            | CmpI | Csel => InstClass::IntAlu,
            Mul => InstClass::IntMul,
            Udiv | Sdiv => InstClass::IntDiv,
            Fadd | Fsub => InstClass::FpAdd,
            Fmul => InstClass::FpMul,
            Fdiv => InstClass::FpDiv,
            Fsqrt => InstClass::FpSqrt,
            Scvtf | Fcvtzs => InstClass::FpCvt,
            Fmov | FmovI => InstClass::FpMov,
            Vadd => InstClass::SimdAlu,
            Vmul => InstClass::SimdMul,
            Vfadd => InstClass::SimdFpAdd,
            Vfmul => InstClass::SimdFpMul,
            Vfma => InstClass::SimdFma,
            Ldr => InstClass::Load,
            Str => InstClass::Store,
            B => InstClass::BranchUncond,
            Bcond | Cbz | Cbnz => InstClass::BranchCond,
            Br => InstClass::BranchIndirect,
            Bl | Blr => InstClass::BranchCall,
            Ret => InstClass::BranchRet,
            Dsb => InstClass::Barrier,
            Halt => InstClass::Halt,
        }
    }

    /// Whether this opcode is any kind of control transfer.
    pub fn is_branch(self) -> bool {
        self.class().is_branch()
    }

    /// The lowercase mnemonic of the opcode.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Add => "add",
            AddI => "addi",
            Sub => "sub",
            SubI => "subi",
            And => "and",
            Orr => "orr",
            Eor => "eor",
            Lsl => "lsl",
            Lsr => "lsr",
            Asr => "asr",
            Mul => "mul",
            Udiv => "udiv",
            Sdiv => "sdiv",
            Movz => "movz",
            Movk => "movk",
            Cmp => "cmp",
            CmpI => "cmpi",
            Csel => "csel",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Scvtf => "scvtf",
            Fcvtzs => "fcvtzs",
            Fmov => "fmov",
            FmovI => "fmovi",
            Vadd => "vadd",
            Vmul => "vmul",
            Vfadd => "vfadd",
            Vfmul => "vfmul",
            Vfma => "vfma",
            Ldr => "ldr",
            Str => "str",
            B => "b",
            Bcond => "b.cond",
            Cbz => "cbz",
            Cbnz => "cbnz",
            Br => "br",
            Bl => "bl",
            Blr => "blr",
            Ret => "ret",
            Dsb => "dsb",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_for_all_opcodes() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.bits() as usize, i);
            assert_eq!(Opcode::from_bits(op.bits()), Some(*op));
        }
        assert_eq!(Opcode::from_bits(Opcode::ALL.len() as u8), None);
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::B.is_branch());
        assert!(Opcode::Bcond.is_branch());
        assert!(Opcode::Br.is_branch());
        assert!(Opcode::Bl.is_branch());
        assert!(Opcode::Ret.is_branch());
        assert!(!Opcode::Add.is_branch());
        assert!(!Opcode::Ldr.is_branch());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate {}", op.mnemonic());
        }
    }
}
