//! Whole-program container.

use crate::EncodedInst;
use serde::{Deserialize, Serialize};

/// Default base address for code.
pub const DEFAULT_CODE_BASE: u64 = 0x0000_1000;
/// Default base address for static data.
pub const DEFAULT_DATA_BASE: u64 = 0x1000_0000;
/// Default initial stack pointer (stacks grow down).
pub const DEFAULT_STACK_TOP: u64 = 0x7fff_0000;

/// A data-segment region carved out by the assembler, with provenance:
/// whether the benchmark harness is understood to have initialised it
/// before the measured region starts.
///
/// Regions filled with an explicit data image (`data_bytes`, `data_u64s`,
/// pointer tables) are always `initialized`. Regions that are merely
/// reserved come in two flavours: `Asm::reserve_initialized` models an
/// array the harness memsets before measuring, while plain `Asm::reserve`
/// leaves the array uninitialised — the hazard the paper hit with "a
/// couple memory-intensive micro-benchmarks \[that\] access an
/// uninitialized array". Static analysis keys off this flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservedRegion {
    /// First virtual address of the region.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether the region's contents are defined before execution starts.
    pub initialized: bool,
}

impl ReservedRegion {
    /// Whether `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr - self.addr < self.len
    }
}

/// A complete executable program: code, initial data image and initial
/// register values.
///
/// Programs are produced by the assembler ([`crate::asm::Asm`]) or by the
/// workload generators in `racesim-kernels`, and consumed by the functional
/// front-end that records instruction traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Encoded instructions, laid out contiguously from [`Program::code_base`].
    pub code: Vec<EncodedInst>,
    /// Virtual address of the first instruction.
    pub code_base: u64,
    /// Initial data image: `(virtual address, bytes)` pairs.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Initial integer register values: `(register index, value)` pairs.
    ///
    /// Registers are identified by [`crate::Reg::index`]; the stack pointer
    /// is initialised to [`DEFAULT_STACK_TOP`] unless overridden here.
    pub init_regs: Vec<(u8, u64)>,
    /// Data-segment regions the assembler carved out, with their
    /// initialisation provenance (see [`ReservedRegion`]).
    pub reserved: Vec<ReservedRegion>,
}

impl Program {
    /// Creates an empty program at the default code base.
    pub fn new(code: Vec<EncodedInst>) -> Program {
        Program {
            code,
            code_base: DEFAULT_CODE_BASE,
            data: Vec::new(),
            init_regs: Vec::new(),
            reserved: Vec::new(),
        }
    }

    /// The reserved region containing `addr`, if any.
    pub fn region_containing(&self, addr: u64) -> Option<&ReservedRegion> {
        self.reserved.iter().find(|r| r.contains(addr))
    }

    /// Marks every reserved region as initialised — the paper's remedy of
    /// "initializing the arrays prior to simulation".
    pub fn mark_all_initialized(&mut self) {
        for r in &mut self.reserved {
            r.initialized = true;
        }
    }

    /// The virtual address of instruction `idx`.
    #[inline]
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.code_base + idx as u64 * crate::INST_BYTES
    }

    /// The instruction index for a virtual address, if it is in range and
    /// correctly aligned.
    #[inline]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        let off = pc.checked_sub(self.code_base)?;
        if off % crate::INST_BYTES != 0 {
            return None;
        }
        let idx = (off / crate::INST_BYTES) as usize;
        (idx < self.code.len()).then_some(idx)
    }

    /// Total footprint of the code segment, in bytes, as seen by the
    /// instruction cache.
    #[inline]
    pub fn code_bytes(&self) -> u64 {
        self.code.len() as u64 * crate::INST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_index_roundtrip() {
        let p = Program::new(vec![EncodedInst(0); 8]);
        for i in 0..8 {
            assert_eq!(p.index_of(p.pc_of(i)), Some(i));
        }
        assert_eq!(p.index_of(p.code_base + 8 * crate::INST_BYTES), None);
        assert_eq!(p.index_of(p.code_base + 2), None, "misaligned");
        assert_eq!(p.index_of(p.code_base - 4), None, "below base");
    }

    #[test]
    fn code_bytes_counts_architectural_size() {
        let p = Program::new(vec![EncodedInst(0); 10]);
        assert_eq!(p.code_bytes(), 40);
    }
}
