//! Architectural register names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class an architectural register belongs to.
///
/// Timing models use the class to route dependencies through the correct
/// register file (integer scoreboard versus FP/SIMD scoreboard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// General-purpose 64-bit integer registers (`x0`–`x30`, `sp`, `xzr`).
    Int,
    /// 128-bit vector / floating-point registers (`v0`–`v31`).
    Vec,
    /// The condition flags register (`nzcv`).
    Flags,
}

/// An architectural register.
///
/// Registers are numbered densely so they can be used directly as scoreboard
/// indices:
///
/// * `0..=30` — `x0`–`x30` (with `x30` doubling as the link register),
/// * `31` — `sp`,
/// * `32` — `xzr` (reads as zero, writes are discarded),
/// * `33..=64` — `v0`–`v31`,
/// * `65` — `nzcv`.
///
/// # Example
///
/// ```
/// use racesim_isa::{Reg, RegClass};
/// assert_eq!(Reg::x(3).class(), RegClass::Int);
/// assert_eq!(Reg::v(3).class(), RegClass::Vec);
/// assert!(Reg::XZR.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The stack pointer.
    pub const SP: Reg = Reg(31);
    /// The zero register: reads as zero, writes are discarded.
    pub const XZR: Reg = Reg(32);
    /// The link register (`x30`), written by calls and read by returns.
    pub const LR: Reg = Reg(30);
    /// The condition-flags register.
    pub const NZCV: Reg = Reg(65);

    /// Total number of distinct architectural registers.
    ///
    /// Useful for sizing scoreboards indexed by [`Reg::index`].
    pub const COUNT: usize = 66;

    /// Returns the general-purpose register `x<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 30`.
    #[inline]
    pub const fn x(i: u8) -> Reg {
        assert!(i <= 30, "x register index out of range");
        Reg(i)
    }

    /// Returns the vector register `v<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 31`.
    #[inline]
    pub const fn v(i: u8) -> Reg {
        assert!(i <= 31, "v register index out of range");
        Reg(33 + i)
    }

    /// Reconstructs a register from its dense index.
    ///
    /// Returns `None` if `raw` is not a valid register number.
    #[inline]
    pub fn from_index(raw: u8) -> Option<Reg> {
        if (raw as usize) < Self::COUNT {
            Some(Reg(raw))
        } else {
            None
        }
    }

    /// The dense index of this register, in `0..Reg::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The class this register belongs to.
    #[inline]
    pub fn class(self) -> RegClass {
        match self.0 {
            0..=32 => RegClass::Int,
            33..=64 => RegClass::Vec,
            _ => RegClass::Flags,
        }
    }

    /// Whether this is the zero register `xzr`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::XZR
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            31 => write!(f, "sp"),
            32 => write!(f, "xzr"),
            65 => write!(f, "nzcv"),
            n @ 0..=30 => write!(f, "x{n}"),
            n => write!(f, "v{}", n - 33),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_are_dense_and_roundtrip() {
        for i in 0..Reg::COUNT {
            let r = Reg::from_index(i as u8).unwrap();
            assert_eq!(r.index(), i);
        }
        assert!(Reg::from_index(Reg::COUNT as u8).is_none());
        assert!(Reg::from_index(255).is_none());
    }

    #[test]
    fn classes() {
        assert_eq!(Reg::x(0).class(), RegClass::Int);
        assert_eq!(Reg::x(30).class(), RegClass::Int);
        assert_eq!(Reg::SP.class(), RegClass::Int);
        assert_eq!(Reg::XZR.class(), RegClass::Int);
        assert_eq!(Reg::v(0).class(), RegClass::Vec);
        assert_eq!(Reg::v(31).class(), RegClass::Vec);
        assert_eq!(Reg::NZCV.class(), RegClass::Flags);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::x(7).to_string(), "x7");
        assert_eq!(Reg::v(12).to_string(), "v12");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::XZR.to_string(), "xzr");
        assert_eq!(Reg::NZCV.to_string(), "nzcv");
    }

    #[test]
    #[should_panic(expected = "x register index out of range")]
    fn x_out_of_range_panics() {
        let _ = Reg::x(31);
    }

    #[test]
    #[should_panic(expected = "v register index out of range")]
    fn v_out_of_range_panics() {
        let _ = Reg::v(32);
    }

    #[test]
    fn lr_is_x30() {
        assert_eq!(Reg::LR, Reg::x(30));
    }
}
