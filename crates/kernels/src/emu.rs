//! Functional emulator and trace recorder (the DynamoRIO substitute).
//!
//! The emulator executes programs with full architectural semantics —
//! register files, NZCV flags, byte-addressed paged memory — and records
//! one [`TraceRecord`] per retired instruction. Like the paper's
//! DynamoRIO-based front-end, it runs once per workload; the recorded
//! trace is then replayed through timing models arbitrarily many times.

use racesim_isa::{
    cond_flags_for_cmp, EncodedInst, Flags, MemWidth, Opcode, Program, Reg, DEFAULT_STACK_TOP,
    INST_BYTES,
};
use racesim_trace::{TraceBuffer, TraceRecord, TraceSink};
use std::collections::HashMap;
use std::fmt;

const PAGE_BYTES: usize = 4096;

/// Errors raised during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Control flow left the code segment.
    BadPc {
        /// The offending target address.
        pc: u64,
    },
    /// An instruction word could not be interpreted.
    BadInstruction {
        /// Program counter of the word.
        pc: u64,
    },
    /// The instruction budget was exhausted before `halt`.
    InstLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// A trace sink failed.
    Sink(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadPc { pc } => write!(f, "jump outside the code segment to {pc:#x}"),
            EmuError::BadInstruction { pc } => write!(f, "uninterpretable instruction at {pc:#x}"),
            EmuError::InstLimit { limit } => {
                write!(f, "instruction limit of {limit} reached before halt")
            }
            EmuError::Sink(e) => write!(f, "trace sink error: {e}"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Sparse, paged, byte-addressed memory. Unmapped reads return zero.
#[derive(Debug, Default)]
pub struct PagedMem {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl PagedMem {
    /// Creates an empty memory image.
    pub fn new() -> PagedMem {
        PagedMem::default()
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr / PAGE_BYTES as u64;
        match self.pages.get(&page) {
            Some(p) => p[(addr % PAGE_BYTES as u64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = addr / PAGE_BYTES as u64;
        self.page_mut(page)[(addr % PAGE_BYTES as u64) as usize] = v;
    }

    /// Reads `n <= 8` bytes little-endian.
    pub fn read_le(&self, addr: u64, n: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes `n <= 8` bytes little-endian.
    pub fn write_le(&mut self, addr: u64, n: u64, v: u64) {
        for i in 0..n {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Number of mapped pages (footprint diagnostic).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Outcome of a completed emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Dynamic instructions retired (excluding the final `halt`).
    pub instructions: u64,
}

/// The architectural machine state.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    x: [u64; 33],
    v: [[u64; 2]; 32],
    flags: Flags,
    /// Byte-addressed data memory.
    pub mem: PagedMem,
    idx: usize,
}

impl<'p> Machine<'p> {
    /// Loads a program: data image, initial registers, stack pointer.
    pub fn new(program: &'p Program) -> Machine<'p> {
        let mut mem = PagedMem::new();
        for (addr, bytes) in &program.data {
            for (i, b) in bytes.iter().enumerate() {
                mem.write_u8(addr + i as u64, *b);
            }
        }
        let mut x = [0u64; 33];
        x[Reg::SP.index()] = DEFAULT_STACK_TOP;
        for &(r, val) in &program.init_regs {
            if (r as usize) < 33 {
                x[r as usize] = val;
            }
        }
        Machine {
            program,
            x,
            v: [[0; 2]; 32],
            flags: Flags::default(),
            mem,
            idx: 0,
        }
    }

    fn xr(&self, r: u8) -> u64 {
        if r as usize == Reg::XZR.index() {
            0
        } else {
            self.x[r as usize]
        }
    }

    fn xw(&mut self, r: u8, v: u64) {
        let i = r as usize;
        if i != Reg::XZR.index() && i < 33 {
            self.x[i] = v;
        }
    }

    fn vr(&self, r: u8) -> [u64; 2] {
        self.v[r as usize - 33]
    }

    fn vw(&mut self, r: u8, v: [u64; 2]) {
        self.v[r as usize - 33] = v;
    }

    fn f(&self, r: u8) -> f64 {
        f64::from_bits(self.vr(r)[0])
    }

    fn fw(&mut self, r: u8, v: f64) {
        let mut lanes = self.vr(r);
        lanes[0] = v.to_bits();
        self.vw(r, lanes);
    }

    /// Current integer register value (test/diagnostic access).
    pub fn reg(&self, r: Reg) -> u64 {
        self.xr(r.index() as u8)
    }

    /// Current lane-0 FP value of a vector register.
    pub fn freg(&self, r: Reg) -> f64 {
        f64::from_bits(self.v[r.index() - 33][0])
    }

    /// Executes until `halt`, recording a trace into `sink`.
    ///
    /// # Errors
    ///
    /// Fails on control flow leaving the code segment, uninterpretable
    /// instructions, sink errors, or exceeding `limit` instructions.
    pub fn run(&mut self, limit: u64, sink: &mut dyn TraceSink) -> Result<RunOutcome, EmuError> {
        let mut executed = 0u64;
        loop {
            if self.idx >= self.program.code.len() {
                return Err(EmuError::BadPc {
                    pc: self.program.pc_of(self.idx),
                });
            }
            let word = self.program.code[self.idx];
            let pc = self.program.pc_of(self.idx);
            let op = word.opcode().ok_or(EmuError::BadInstruction { pc })?;
            if op == Opcode::Halt {
                return Ok(RunOutcome {
                    instructions: executed,
                });
            }
            if executed >= limit {
                return Err(EmuError::InstLimit { limit });
            }
            let record = self.step(op, word, pc)?;
            sink.push(record)
                .map_err(|e| EmuError::Sink(e.to_string()))?;
            executed += 1;
        }
    }

    /// Executes one instruction, returning its trace record. `self.idx`
    /// advances to the next instruction.
    fn step(&mut self, op: Opcode, word: EncodedInst, pc: u64) -> Result<TraceRecord, EmuError> {
        let rd = word.rd_bits();
        let rn = word.rn_bits();
        let rm = word.rm_bits();
        let imm = word.imm();
        let mut next = self.idx + 1;
        let mut record = TraceRecord::plain(pc, word);

        let branch_to = |this: &mut Machine<'_>, target_idx: i64| -> Result<u64, EmuError> {
            if target_idx < 0 || target_idx as usize > this.program.code.len() {
                return Err(EmuError::BadPc {
                    pc: this
                        .program
                        .code_base
                        .wrapping_add((target_idx * INST_BYTES as i64) as u64),
                });
            }
            Ok(target_idx as u64)
        };

        use Opcode::*;
        match op {
            Nop | Dsb => {}
            Halt => unreachable!("handled by run()"),
            Add => self.xw(rd, self.xr(rn).wrapping_add(self.xr(rm))),
            AddI => self.xw(rd, self.xr(rn).wrapping_add(imm as u64)),
            Sub => self.xw(rd, self.xr(rn).wrapping_sub(self.xr(rm))),
            SubI => self.xw(rd, self.xr(rn).wrapping_sub(imm as u64)),
            And => self.xw(rd, self.xr(rn) & self.xr(rm)),
            Orr => self.xw(rd, self.xr(rn) | self.xr(rm)),
            Eor => self.xw(rd, self.xr(rn) ^ self.xr(rm)),
            Lsl => self.xw(rd, self.xr(rn).wrapping_shl(imm as u32)),
            Lsr => self.xw(rd, self.xr(rn).wrapping_shr(imm as u32)),
            Asr => self.xw(rd, (self.xr(rn) as i64).wrapping_shr(imm as u32) as u64),
            Mul => self.xw(rd, self.xr(rn).wrapping_mul(self.xr(rm))),
            Udiv => {
                let d = self.xr(rm);
                self.xw(rd, self.xr(rn).checked_div(d).unwrap_or(0));
            }
            Sdiv => {
                let d = self.xr(rm) as i64;
                let n = self.xr(rn) as i64;
                self.xw(rd, if d == 0 { 0 } else { n.wrapping_div(d) as u64 });
            }
            Movz => self.xw(rd, imm as u64),
            Movk => {
                let slot = (word.aux() & 3) as u64;
                let mask = 0xffffu64 << (16 * slot);
                let v = (self.xr(rd) & !mask) | (((imm as u64) & 0xffff) << (16 * slot));
                self.xw(rd, v);
            }
            Cmp => self.flags = cond_flags_for_cmp(self.xr(rn), self.xr(rm)),
            CmpI => self.flags = cond_flags_for_cmp(self.xr(rn), imm as u64),
            Csel => {
                let c = word.cond().ok_or(EmuError::BadInstruction { pc })?;
                let v = if c.holds(self.flags) {
                    self.xr(rn)
                } else {
                    self.xr(rm)
                };
                self.xw(rd, v);
            }
            Fadd => self.fw(rd, self.f(rn) + self.f(rm)),
            Fsub => self.fw(rd, self.f(rn) - self.f(rm)),
            Fmul => self.fw(rd, self.f(rn) * self.f(rm)),
            Fdiv => self.fw(rd, self.f(rn) / self.f(rm)),
            Fsqrt => self.fw(rd, self.f(rn).sqrt()),
            Scvtf => self.fw(rd, self.xr(rn) as i64 as f64),
            Fcvtzs => {
                let v = self.f(rn);
                self.xw(rd, v as i64 as u64);
            }
            Fmov => {
                let v = self.vr(rn);
                self.vw(rd, v);
            }
            FmovI => {
                let mut lanes = self.vr(rd);
                lanes[0] = self.xr(rn);
                self.vw(rd, lanes);
            }
            Vadd => {
                let (a, b) = (self.vr(rn), self.vr(rm));
                self.vw(rd, [a[0].wrapping_add(b[0]), a[1].wrapping_add(b[1])]);
            }
            Vmul => {
                let (a, b) = (self.vr(rn), self.vr(rm));
                self.vw(rd, [a[0].wrapping_mul(b[0]), a[1].wrapping_mul(b[1])]);
            }
            Vfadd | Vfmul | Vfma => {
                let (a, b) = (self.vr(rn), self.vr(rm));
                let acc = self.vr(rd);
                let lane = |i: usize| {
                    let (x, y) = (f64::from_bits(a[i]), f64::from_bits(b[i]));
                    let z = f64::from_bits(acc[i]);
                    match op {
                        Vfadd => x + y,
                        Vfmul => x * y,
                        _ => z + x * y,
                    }
                    .to_bits()
                };
                self.vw(rd, [lane(0), lane(1)]);
            }
            Ldr => {
                let w = MemWidth::from_bits(word.aux()).ok_or(EmuError::BadInstruction { pc })?;
                let ea = self
                    .xr(rn)
                    .wrapping_add(self.xr(rm))
                    .wrapping_add(imm as u64);
                record = TraceRecord::memory(pc, word, ea);
                if w == MemWidth::B16 {
                    let lo = self.mem.read_le(ea, 8);
                    let hi = self.mem.read_le(ea + 8, 8);
                    self.vw(rd, [lo, hi]);
                } else if rd as usize >= 33 {
                    let mut lanes = self.vr(rd);
                    lanes[0] = self.mem.read_le(ea, w.bytes());
                    self.vw(rd, lanes);
                } else {
                    let v = self.mem.read_le(ea, w.bytes());
                    self.xw(rd, v);
                }
            }
            Str => {
                let w = MemWidth::from_bits(word.aux()).ok_or(EmuError::BadInstruction { pc })?;
                let ea = self
                    .xr(rn)
                    .wrapping_add(self.xr(rm))
                    .wrapping_add(imm as u64);
                record = TraceRecord::memory(pc, word, ea);
                if w == MemWidth::B16 {
                    let lanes = self.vr(rd);
                    self.mem.write_le(ea, 8, lanes[0]);
                    self.mem.write_le(ea + 8, 8, lanes[1]);
                } else if rd as usize >= 33 {
                    let lanes = self.vr(rd);
                    self.mem.write_le(ea, w.bytes(), lanes[0]);
                } else {
                    self.mem.write_le(ea, w.bytes(), self.xr(rd));
                }
            }
            B => {
                let t = branch_to(self, self.idx as i64 + imm)?;
                next = t as usize;
                record = TraceRecord::branch(pc, word, true, self.program.pc_of(next));
            }
            Bcond => {
                let c = word.cond().ok_or(EmuError::BadInstruction { pc })?;
                if c.holds(self.flags) {
                    let t = branch_to(self, self.idx as i64 + imm)?;
                    next = t as usize;
                    record = TraceRecord::branch(pc, word, true, self.program.pc_of(next));
                } else {
                    record = TraceRecord::branch(pc, word, false, 0);
                }
            }
            Cbz | Cbnz => {
                let zero = self.xr(rn) == 0;
                let take = zero == (op == Cbz);
                if take {
                    let t = branch_to(self, self.idx as i64 + imm)?;
                    next = t as usize;
                    record = TraceRecord::branch(pc, word, true, self.program.pc_of(next));
                } else {
                    record = TraceRecord::branch(pc, word, false, 0);
                }
            }
            Br | Ret => {
                let target = self.xr(rn);
                let t = self
                    .program
                    .index_of(target)
                    .ok_or(EmuError::BadPc { pc: target })?;
                next = t;
                record = TraceRecord::branch(pc, word, true, target);
            }
            Bl => {
                self.xw(Reg::LR.index() as u8, pc + INST_BYTES);
                let t = branch_to(self, self.idx as i64 + imm)?;
                next = t as usize;
                record = TraceRecord::branch(pc, word, true, self.program.pc_of(next));
            }
            Blr => {
                let target = self.xr(rn);
                self.xw(Reg::LR.index() as u8, pc + INST_BYTES);
                let t = self
                    .program
                    .index_of(target)
                    .ok_or(EmuError::BadPc { pc: target })?;
                next = t;
                record = TraceRecord::branch(pc, word, true, target);
            }
        }
        self.idx = next;
        Ok(record)
    }
}

/// Runs `program` to completion and returns its trace.
///
/// # Errors
///
/// See [`Machine::run`].
pub fn record_trace(program: &Program, limit: u64) -> Result<TraceBuffer, EmuError> {
    let mut buf = TraceBuffer::new();
    let mut m = Machine::new(program);
    m.run(limit, &mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, Cond, Reg};

    fn run_prog(f: impl FnOnce(&mut Asm)) -> (Machine<'static>, TraceBuffer) {
        let mut a = Asm::new();
        f(&mut a);
        a.halt();
        let p = Box::leak(Box::new(a.finish()));
        let mut m = Machine::new(p);
        let mut buf = TraceBuffer::new();
        m.run(1_000_000, &mut buf).expect("program runs");
        (m, buf)
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        let (m, trace) = run_prog(|a| {
            a.movz(Reg::x(0), 10);
            a.movz(Reg::x(1), 0);
            let top = a.here();
            a.add(Reg::x(1), Reg::x(1), Reg::x(0));
            a.subi(Reg::x(0), Reg::x(0), 1);
            a.cbnz(Reg::x(0), top);
        });
        assert_eq!(m.reg(Reg::x(1)), 55);
        // 2 setup + 10 * 3 loop body.
        assert_eq!(trace.len(), 32);
        let s = trace.summary();
        assert_eq!(s.branches, 10);
        assert_eq!(s.taken_branches, 9);
    }

    #[test]
    fn memory_roundtrip_and_addressing() {
        let (m, trace) = run_prog(|a| {
            let data = a.data_u64s(&[0x1111, 0x2222, 0x3333]);
            a.mov64(Reg::x(1), data);
            a.movz(Reg::x(2), 8);
            a.ldr(
                racesim_isa::MemWidth::B8,
                Reg::x(3),
                Reg::x(1),
                Reg::x(2),
                0,
            ); // [x1+x2]
            a.ldr8(Reg::x(4), Reg::x(1), 16);
            a.add(Reg::x(5), Reg::x(3), Reg::x(4));
            a.str8(Reg::x(5), Reg::x(1), 0);
            a.ldr8(Reg::x(6), Reg::x(1), 0);
        });
        assert_eq!(m.reg(Reg::x(3)), 0x2222);
        assert_eq!(m.reg(Reg::x(4)), 0x3333);
        assert_eq!(m.reg(Reg::x(6)), 0x5555);
        assert_eq!(trace.summary().loads, 3);
        assert_eq!(trace.summary().stores, 1);
    }

    #[test]
    fn byte_and_word_widths() {
        let (m, _) = run_prog(|a| {
            let data = a.data_bytes(vec![0xAA, 0xBB, 0xCC, 0xDD, 0xEE], 8);
            a.mov64(Reg::x(1), data);
            a.ldr(racesim_isa::MemWidth::B1, Reg::x(2), Reg::x(1), Reg::XZR, 1);
            a.ldr(racesim_isa::MemWidth::B4, Reg::x(3), Reg::x(1), Reg::XZR, 0);
        });
        assert_eq!(m.reg(Reg::x(2)), 0xBB);
        assert_eq!(m.reg(Reg::x(3)), 0xDDCCBBAA);
    }

    #[test]
    fn conditionals_and_csel() {
        let (m, _) = run_prog(|a| {
            a.movz(Reg::x(1), 5);
            a.cmpi(Reg::x(1), 7);
            a.csel(Cond::Lt, Reg::x(2), Reg::x(1), Reg::XZR); // 5 < 7 -> x2 = 5
            a.csel(Cond::Ge, Reg::x(3), Reg::x(1), Reg::XZR); // else xzr -> 0
        });
        assert_eq!(m.reg(Reg::x(2)), 5);
        assert_eq!(m.reg(Reg::x(3)), 0);
    }

    #[test]
    fn floating_point_pipeline() {
        let (m, _) = run_prog(|a| {
            a.movz(Reg::x(1), 9);
            a.scvtf(Reg::v(0), Reg::x(1)); // 9.0
            a.fsqrt(Reg::v(1), Reg::v(0)); // 3.0
            a.fadd(Reg::v(2), Reg::v(1), Reg::v(0)); // 12.0
            a.fmul(Reg::v(3), Reg::v(2), Reg::v(1)); // 36.0
            a.fdiv(Reg::v(4), Reg::v(3), Reg::v(0)); // 4.0
            a.fcvtzs(Reg::x(2), Reg::v(4));
        });
        assert_eq!(m.freg(Reg::v(1)), 3.0);
        assert_eq!(m.reg(Reg::x(2)), 4);
    }

    #[test]
    fn vector_lanes() {
        let (m, _) = run_prog(|a| {
            let data = a.data_u64s(&[1.5f64.to_bits(), 2.5f64.to_bits()]);
            a.mov64(Reg::x(1), data);
            a.ldr(
                racesim_isa::MemWidth::B16,
                Reg::v(0),
                Reg::x(1),
                Reg::XZR,
                0,
            );
            a.vfadd(Reg::v(1), Reg::v(0), Reg::v(0)); // [3.0, 5.0]
            a.vfma(Reg::v(2), Reg::v(1), Reg::v(1)); // 0 + [9, 25]
        });
        let lanes = m.v[2];
        assert_eq!(f64::from_bits(lanes[0]), 9.0);
        assert_eq!(f64::from_bits(lanes[1]), 25.0);
    }

    #[test]
    fn calls_and_returns() {
        let (m, trace) = run_prog(|a| {
            let func = a.label();
            let done = a.label();
            a.movz(Reg::x(1), 1);
            a.bl(func);
            a.addi(Reg::x(1), Reg::x(1), 100); // runs after return
            a.b(done);
            a.bind(func);
            a.addi(Reg::x(1), Reg::x(1), 10);
            a.ret();
            a.bind(done);
        });
        assert_eq!(m.reg(Reg::x(1)), 111);
        assert_eq!(trace.summary().indirect_branches, 1); // the ret
    }

    #[test]
    fn indirect_branch_through_register() {
        let (m, _) = run_prog(|a| {
            let t = a.label();
            // Layout: movz(0) movz(1) br(2) poison(3) [t](4): jump to
            // base + 4 * INST_BYTES, skipping the poison write.
            a.movz(Reg::x(5), 0);
            a.movz(
                Reg::x(6),
                (racesim_isa::DEFAULT_CODE_BASE + 4 * INST_BYTES) as i64,
            );
            a.br(Reg::x(6));
            a.movz(Reg::x(5), 999); // skipped
            a.bind(t);
        });
        assert_ne!(m.reg(Reg::x(5)), 999);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let (m, _) = run_prog(|a| {
            a.movz(Reg::x(1), 42);
            a.udiv(Reg::x(2), Reg::x(1), Reg::XZR);
            a.sdiv(Reg::x(3), Reg::x(1), Reg::XZR);
        });
        assert_eq!(m.reg(Reg::x(2)), 0);
        assert_eq!(m.reg(Reg::x(3)), 0);
    }

    #[test]
    fn movk_patches_chunks() {
        let (m, _) = run_prog(|a| {
            a.mov64(Reg::x(1), 0xdead_beef_1234_5678);
        });
        assert_eq!(m.reg(Reg::x(1)), 0xdead_beef_1234_5678);
    }

    #[test]
    fn inst_limit_guards_infinite_loops() {
        let mut a = Asm::new();
        let top = a.here();
        a.b(top);
        let p = a.finish();
        let mut m = Machine::new(&p);
        let mut buf = TraceBuffer::new();
        let err = m.run(100, &mut buf).unwrap_err();
        assert_eq!(err, EmuError::InstLimit { limit: 100 });
    }

    #[test]
    fn falling_off_the_code_is_an_error() {
        let mut a = Asm::new();
        a.nop(); // no halt
        let p = a.finish();
        let mut m = Machine::new(&p);
        let mut buf = TraceBuffer::new();
        assert!(matches!(m.run(100, &mut buf), Err(EmuError::BadPc { .. })));
    }

    #[test]
    fn unmapped_memory_reads_zero() {
        let mem = PagedMem::new();
        assert_eq!(mem.read_le(0x1234_5678, 8), 0);
        assert_eq!(mem.mapped_pages(), 0);
    }
}
