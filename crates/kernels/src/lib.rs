//! # racesim-kernels
//!
//! Workloads: the targeted micro-benchmark suite, lmbench-style latency
//! probes and SPEC CPU2017 proxy workloads, together with the functional
//! front-end that records their instruction traces.
//!
//! The paper tunes against the `microbench` suite — "a set of 40
//! micro-benchmarks … classified into five categories: (1) control flow,
//! (2) data-parallel and floating-point operations, (3) execution with
//! stress on inter-instruction dependencies, (4) memory operations
//! stressing various levels of the hierarchy, and (5) store-intensive
//! operations" (Table I) — and validates on SPEC CPU2017 main-loop
//! regions (Table II). Neither is available here, so this crate
//! re-implements all 40 kernels for the racesim micro-ISA and provides
//! statistically profiled SPEC *proxies* with matching per-application
//! character (instruction mix, working set, branch predictability, ILP).
//!
//! The [`emu`] module is the DynamoRIO stand-in: a functional emulator
//! that executes assembled [`racesim_isa::Program`]s and records
//! SIFT-style traces, once per workload, exactly like the paper's
//! trace-generation flow.
//!
//! # Example
//!
//! ```
//! use racesim_kernels::{microbench_suite, Scale};
//!
//! let suite = microbench_suite(Scale::TINY);
//! assert_eq!(suite.len(), 40);
//! let trace = suite[0].trace().expect("kernels are self-contained");
//! assert!(trace.len() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod emu;
mod micro;
pub mod probes;
pub mod spec;
mod workload;

pub use micro::{microbench_suite, microbench_suite_initialized, table1_reference_counts};
pub use spec::{spec_suite, AppProfile};
pub use workload::{Category, Scale, Workload};
