//! Control-flow micro-benchmarks (Table I, 12 kernels).
//!
//! "The control flow benchmarks stress the branch unit in various
//! scenarios such as easy-to-predict branches, heavily biased branches,
//! randomized flow, branches with large flush penalty, indirect branches,
//! etc."

use super::helpers::{counted_loop, lcg_next, lcg_setup, LCG};
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, Cond, MemWidth, Reg};

const CAT: Category = Category::ControlFlow;

fn finish(name: &str, mut a: Asm, expected: u64) -> Workload {
    a.halt();
    Workload::new(name, CAT, a.finish(), expected)
}

/// `CCa`: heavily biased, always-taken conditional branch.
fn cca(scale: Scale) -> Workload {
    let target = scale.apply(82_000);
    let mut a = Asm::new();
    a.movz(Reg::x(1), 1);
    let body = 5;
    counted_loop(&mut a, target / body, |a| {
        a.cmpi(Reg::x(1), 1);
        let skip = a.label();
        a.bcond(Cond::Eq, skip); // always taken
        a.addi(Reg::x(9), Reg::x(9), 1); // never executes
        a.bind(skip);
        a.addi(Reg::x(2), Reg::x(2), 1);
    });
    finish("CCa", a, target)
}

/// `CCe`: easy-to-predict alternating pattern (T, N, T, N, …).
fn cce(scale: Scale) -> Workload {
    let target = scale.apply(657_000);
    let mut a = Asm::new();
    a.movz(Reg::x(1), 0);
    a.movz(Reg::x(3), 1);
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        a.eor(Reg::x(1), Reg::x(1), Reg::x(3)); // toggle
        a.cmpi(Reg::x(1), 1);
        let skip = a.label();
        a.bcond(Cond::Eq, skip);
        a.addi(Reg::x(9), Reg::x(9), 1);
        a.bind(skip);
    });
    finish("CCe", a, target)
}

/// `CCh`: hard, pseudo-randomly taken branch.
fn cch(scale: Scale) -> Workload {
    let target = scale.apply(2_600_000);
    let mut a = Asm::new();
    lcg_setup(&mut a, 0xC0);
    a.movz(Reg::x(3), 1);
    let body = 8;
    counted_loop(&mut a, target / body, |a| {
        lcg_next(a);
        a.lsr(Reg::x(4), LCG, 33);
        a.and(Reg::x(4), Reg::x(4), Reg::x(3));
        a.cmpi(Reg::x(4), 0);
        let skip = a.label();
        a.bcond(Cond::Eq, skip);
        a.addi(Reg::x(9), Reg::x(9), 1);
        a.bind(skip);
    });
    finish("CCh", a, target)
}

/// `CCh_st`: hard branch guarding a store.
fn cch_st(scale: Scale) -> Workload {
    let target = scale.apply(157_000);
    let mut a = Asm::new();
    let buf = a.reserve(4096, 64);
    lcg_setup(&mut a, 0xC5);
    a.movz(Reg::x(3), 1);
    a.mov64(Reg::x(6), buf);
    a.mov64(Reg::x(7), 4088);
    let body = 10;
    counted_loop(&mut a, target / body, |a| {
        lcg_next(a);
        a.lsr(Reg::x(4), LCG, 33);
        a.and(Reg::x(4), Reg::x(4), Reg::x(3));
        a.cmpi(Reg::x(4), 0);
        let skip = a.label();
        a.bcond(Cond::Eq, skip);
        a.lsr(Reg::x(5), LCG, 20);
        a.and(Reg::x(5), Reg::x(5), Reg::x(7));
        a.str(MemWidth::B8, Reg::x(4), Reg::x(6), Reg::x(5), 0);
        a.bind(skip);
    });
    finish("CCh_st", a, target)
}

/// `CCl`: tight nested loops — loop-exit branches dominate.
fn ccl(scale: Scale) -> Workload {
    let target = scale.apply(1_380_000);
    let mut a = Asm::new();
    let body = 15; // 1 + 4*(1+2) + 2
    counted_loop(&mut a, target / body, |a| {
        a.movz(Reg::x(10), 4);
        let inner = a.here();
        a.addi(Reg::x(2), Reg::x(2), 1);
        a.subi(Reg::x(10), Reg::x(10), 1);
        a.cbnz(Reg::x(10), inner);
    });
    finish("CCl", a, target)
}

/// `CCm`: a mix of branch biases (always, 7-in-8, random).
fn ccm(scale: Scale) -> Workload {
    let target = scale.apply(656_000);
    let mut a = Asm::new();
    lcg_setup(&mut a, 0xCC);
    a.movz(Reg::x(3), 7);
    a.movz(Reg::x(12), 1);
    let body = 14;
    counted_loop(&mut a, target / body, |a| {
        // Always taken.
        a.cmpi(Reg::x(12), 1);
        let s1 = a.label();
        a.bcond(Cond::Eq, s1);
        a.addi(Reg::x(9), Reg::x(9), 1);
        a.bind(s1);
        // Taken 7 of 8 iterations.
        a.addi(Reg::x(13), Reg::x(13), 1);
        a.and(Reg::x(14), Reg::x(13), Reg::x(3));
        a.cmpi(Reg::x(14), 0);
        let s2 = a.label();
        a.bcond(Cond::Ne, s2);
        a.addi(Reg::x(9), Reg::x(9), 1);
        a.bind(s2);
        // Random.
        lcg_next(a);
        a.lsr(Reg::x(4), LCG, 41);
        a.and(Reg::x(4), Reg::x(4), Reg::x(12));
        let s3 = a.label();
        a.cbnz(Reg::x(4), s3);
        a.addi(Reg::x(9), Reg::x(9), 1);
        a.bind(s3);
    });
    finish("CCm", a, target)
}

/// `CF1`: random two-way diamond with work on both sides — each
/// mispredict flushes a full pipeline of in-flight work.
fn cf1(scale: Scale) -> Workload {
    let target = scale.apply(1_270_000);
    let mut a = Asm::new();
    lcg_setup(&mut a, 0xF1);
    a.movz(Reg::x(3), 1);
    let body = 15;
    counted_loop(&mut a, target / body, |a| {
        lcg_next(a);
        a.lsr(Reg::x(4), LCG, 29);
        a.and(Reg::x(4), Reg::x(4), Reg::x(3));
        let else_side = a.label();
        let merge = a.label();
        a.cbz(Reg::x(4), else_side);
        for _ in 0..4 {
            a.addi(Reg::x(5), Reg::x(5), 1);
        }
        a.b(merge);
        a.bind(else_side);
        for _ in 0..4 {
            a.addi(Reg::x(6), Reg::x(6), 1);
        }
        a.bind(merge);
    });
    finish("CF1", a, target)
}

/// `CRd`: deep recursion (depth 32) — overflows the return-address stack.
fn crd(scale: Scale) -> Workload {
    let target = scale.apply(599_000);
    let mut a = Asm::new();
    let func = a.label();
    let per_call = 10u64; // per recursion level
    let iters = (target / (32 * per_call + 4)).max(2);
    counted_loop(&mut a, iters, |a| {
        a.movz(Reg::x(0), 32);
        a.bl(func);
    });
    a.halt();
    a.bind(func);
    // f(n): if n == 0 return; else f(n - 1)
    let leaf = a.label();
    a.cbz(Reg::x(0), leaf);
    a.subi(Reg::x(0), Reg::x(0), 1);
    a.subi(Reg::SP, Reg::SP, 16);
    a.str8(Reg::LR, Reg::SP, 0);
    a.bl(func);
    a.ldr8(Reg::LR, Reg::SP, 0);
    a.addi(Reg::SP, Reg::SP, 16);
    a.bind(leaf);
    a.ret();
    Workload::new("CRd", CAT, a.finish(), target)
}

/// `CRf`: frequent calls to a tiny leaf function.
fn crf(scale: Scale) -> Workload {
    let target = scale.apply(133_000);
    let mut a = Asm::new();
    let func = a.label();
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        a.bl(func);
        a.addi(Reg::x(2), Reg::x(2), 1);
    });
    a.halt();
    a.bind(func);
    a.addi(Reg::x(5), Reg::x(5), 1);
    a.ret();
    Workload::new("CRf", CAT, a.finish(), target)
}

/// `CRm`: indirect calls cycling over four targets through a function
/// table.
fn crm(scale: Scale) -> Workload {
    let target = scale.apply(399_000);
    let mut a = Asm::new();
    let fns: Vec<_> = (0..4).map(|_| a.label()).collect();
    let table = a.data_code_ptrs(&fns);
    a.mov64(Reg::x(10), table);
    a.movz(Reg::x(11), 0);
    a.movz(Reg::x(15), 3);
    let body = 11;
    counted_loop(&mut a, target / body, |a| {
        a.lsl(Reg::x(13), Reg::x(11), 3);
        a.ldr(MemWidth::B8, Reg::x(12), Reg::x(10), Reg::x(13), 0);
        a.blr(Reg::x(12));
        a.addi(Reg::x(11), Reg::x(11), 1);
        a.and(Reg::x(11), Reg::x(11), Reg::x(15));
    });
    a.halt();
    for (k, f) in fns.iter().enumerate() {
        a.bind(*f);
        a.addi(Reg::x(2 + k as u8), Reg::x(2 + k as u8), 1);
        a.ret();
    }
    Workload::new("CRm", CAT, a.finish(), target)
}

/// `CS1`: a 16-way case statement walked in a repeating cycle — "a case
/// statement that benefits from indirect branch support" (path history
/// predicts it; a BTB-only indirect scheme cannot).
fn cs1(scale: Scale) -> Workload {
    let target = scale.apply(58_000);
    let mut a = Asm::new();
    let cases: Vec<_> = (0..16).map(|_| a.label()).collect();
    let merge = a.label();
    let table = a.data_code_ptrs(&cases);
    a.mov64(Reg::x(10), table);
    a.movz(Reg::x(11), 0);
    a.movz(Reg::x(15), 15);
    let body = 10;
    let iters = (target / body).max(128);
    a.mov64(Reg::x(28), iters);
    let top = a.here();
    a.lsl(Reg::x(13), Reg::x(11), 3);
    a.ldr(MemWidth::B8, Reg::x(12), Reg::x(10), Reg::x(13), 0);
    a.br(Reg::x(12));
    for (k, c) in cases.iter().enumerate() {
        a.bind(*c);
        a.addi(Reg::x(2 + (k % 8) as u8), Reg::x(2 + (k % 8) as u8), 1);
        a.b(merge);
    }
    a.bind(merge);
    a.addi(Reg::x(11), Reg::x(11), 1);
    a.and(Reg::x(11), Reg::x(11), Reg::x(15));
    a.subi(Reg::x(28), Reg::x(28), 1);
    a.cbnz(Reg::x(28), top);
    finish("CS1", a, target)
}

/// `CS3`: a case statement with three pseudo-randomly selected hot
/// targets.
fn cs3(scale: Scale) -> Workload {
    let target = scale.apply(34_500_000);
    let mut a = Asm::new();
    let cases: Vec<_> = (0..4).map(|_| a.label()).collect();
    let merge = a.label();
    let table = a.data_code_ptrs(&cases);
    lcg_setup(&mut a, 0x53);
    a.mov64(Reg::x(10), table);
    a.movz(Reg::x(15), 3);
    let body = 12;
    let iters = (target / body).max(64);
    a.mov64(Reg::x(28), iters);
    let top = a.here();
    lcg_next(&mut a);
    a.lsr(Reg::x(11), LCG, 13);
    a.and(Reg::x(11), Reg::x(11), Reg::x(15));
    // Remap case 3 onto case 0: three hot targets.
    a.cmpi(Reg::x(11), 3);
    a.csel(Cond::Eq, Reg::x(11), Reg::XZR, Reg::x(11));
    a.lsl(Reg::x(13), Reg::x(11), 3);
    a.ldr(MemWidth::B8, Reg::x(12), Reg::x(10), Reg::x(13), 0);
    a.br(Reg::x(12));
    for (k, c) in cases.iter().enumerate() {
        a.bind(*c);
        a.addi(Reg::x(2 + k as u8), Reg::x(2 + k as u8), 1);
        a.b(merge);
    }
    a.bind(merge);
    a.subi(Reg::x(28), Reg::x(28), 1);
    a.cbnz(Reg::x(28), top);
    finish("CS3", a, target)
}

/// All 12 control-flow kernels.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        cca(scale),
        cce(scale),
        cch(scale),
        cch_st(scale),
        ccl(scale),
        ccm(scale),
        cf1(scale),
        crd(scale),
        crf(scale),
        crm(scale),
        cs1(scale),
        cs3(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken_ratio(w: &Workload) -> f64 {
        let s = w.trace().unwrap().summary();
        s.taken_branches as f64 / s.branches as f64
    }

    #[test]
    fn cca_is_heavily_biased_and_cch_is_not() {
        // CCa: the guarded branch is always taken, plus the loop branch.
        let r_a = taken_ratio(&cca(Scale::TINY));
        assert!(r_a > 0.95, "CCa: {r_a}");
        // CCh: its conditional is ~50/50 while the loop branch is taken.
        let r_h = taken_ratio(&cch(Scale::TINY));
        assert!(r_h > 0.6 && r_h < 0.9, "CCh: {r_h}");
    }

    #[test]
    fn crd_recursion_reaches_depth_32() {
        let w = crd(Scale::TINY);
        let t = w.trace().unwrap();
        let s = t.summary();
        // Each outer iteration: 32 calls and 33 rets... in fact 32 rets +
        // 1 leaf ret; just check plenty of indirect branches (rets).
        assert!(s.indirect_branches > 60, "{s:?}");
    }

    #[test]
    fn cs1_cycles_its_targets_deterministically() {
        let w = cs1(Scale::TINY);
        let t = w.trace().unwrap();
        // Collect indirect-branch targets in order.
        let targets: Vec<u64> = t
            .records()
            .iter()
            .filter(|r| r.is_branch() && r.taken())
            .filter_map(|r| r.target())
            .collect();
        assert!(!targets.is_empty());
        let s = t.summary();
        assert!(s.indirect_branches as usize >= 60);
    }

    #[test]
    fn cs3_uses_exactly_three_hot_targets() {
        let w = cs3(Scale::TINY);
        let t = w.trace().unwrap();
        // Indirect br targets only (the br is the only register branch).
        let mut counts = std::collections::HashMap::new();
        for r in t.records() {
            if r.is_branch() && r.taken() {
                if let Some(op) = r.word().opcode() {
                    if op == racesim_isa::Opcode::Br {
                        *counts.entry(r.target().unwrap()).or_insert(0u64) += 1;
                    }
                }
            }
        }
        assert_eq!(counts.len(), 3, "{counts:?}");
    }

    #[test]
    fn ccm_compiles_and_runs() {
        let w = ccm(Scale::TINY);
        let t = w.trace().unwrap();
        assert!(t.summary().branches > 100);
    }
}
