//! Data-parallel and floating-point micro-benchmarks (Table I, 5 kernels).
//!
//! "The data-parallel benchmarks evaluate cases with data parallel loops
//! that involve double and float operations and conversions."

use super::helpers::counted_loop;
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, MemWidth, Reg};

const CAT: Category = Category::DataParallel;

fn finish(name: &str, mut a: Asm, expected: u64) -> Workload {
    a.halt();
    Workload::new(name, CAT, a.finish(), expected)
}

fn fp_array(a: &mut Asm, elems: usize, seed: f64) -> u64 {
    let words: Vec<u64> = (0..elems)
        .map(|i| (seed + i as f64 * 0.5).to_bits())
        .collect();
    a.data_u64s(&words)
}

/// `DP1d`: independent scalar double operations over an array.
fn dp1d(scale: Scale) -> Workload {
    let target = scale.apply(5_200_000);
    let mut a = Asm::new();
    let arr = fp_array(&mut a, 1024, 1.0);
    a.mov64(Reg::x(1), arr);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), 1024 * 8 - 1);
    let body = 15;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..4u8 {
            a.ldr(MemWidth::B8, Reg::v(k), Reg::x(1), Reg::x(4), 8 * k as i64);
        }
        a.fadd(Reg::v(4), Reg::v(0), Reg::v(1));
        a.fmul(Reg::v(5), Reg::v(2), Reg::v(3));
        a.fadd(Reg::v(6), Reg::v(4), Reg::v(5));
        a.fmul(Reg::v(7), Reg::v(4), Reg::v(5));
        a.fadd(Reg::v(8), Reg::v(8), Reg::v(6));
        a.fadd(Reg::v(9), Reg::v(9), Reg::v(7));
        a.addi(Reg::x(4), Reg::x(4), 32);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("DP1d", a, target)
}

/// `DP1f`: the vector (two-lane) variant — "float" throughput doubled.
fn dp1f(scale: Scale) -> Workload {
    let target = scale.apply(5_200_000);
    let mut a = Asm::new();
    let arr = fp_array(&mut a, 1024, 2.0);
    a.mov64(Reg::x(1), arr);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), 1024 * 8 - 1);
    let body = 11;
    counted_loop(&mut a, target / body, |a| {
        a.ldr(MemWidth::B16, Reg::v(0), Reg::x(1), Reg::x(4), 0);
        a.ldr(MemWidth::B16, Reg::v(1), Reg::x(1), Reg::x(4), 16);
        a.vfadd(Reg::v(2), Reg::v(0), Reg::v(1));
        a.vfmul(Reg::v(3), Reg::v(0), Reg::v(1));
        a.vfadd(Reg::v(4), Reg::v(4), Reg::v(2));
        a.vfma(Reg::v(5), Reg::v(2), Reg::v(3));
        a.vadd(Reg::v(6), Reg::v(6), Reg::v(2));
        a.addi(Reg::x(4), Reg::x(4), 32);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("DP1f", a, target)
}

/// `DPcvt`: int ↔ double conversion stream.
fn dpcvt(scale: Scale) -> Workload {
    let target = scale.apply(36_700_000);
    let mut a = Asm::new();
    a.movz(Reg::x(2), 7);
    let body = 8;
    counted_loop(&mut a, target / body, |a| {
        a.scvtf(Reg::v(0), Reg::x(2));
        a.fadd(Reg::v(1), Reg::v(0), Reg::v(0));
        a.fcvtzs(Reg::x(3), Reg::v(1));
        a.scvtf(Reg::v(2), Reg::x(3));
        a.fcvtzs(Reg::x(4), Reg::v(2));
        a.add(Reg::x(2), Reg::x(2), Reg::x(4));
    });
    finish("DPcvt", a, target)
}

/// `DPT`: STREAM-triad with vector operations:
/// `a[i] = b[i] + s * c[i]` on 16-byte lanes.
fn dpt(scale: Scale) -> Workload {
    let target = scale.apply(542_000);
    let mut a = Asm::new();
    let elems = 2048usize;
    let b = fp_array(&mut a, elems, 1.0);
    let c = fp_array(&mut a, elems, 3.0);
    let out = a.reserve(elems as u64 * 8, 64);
    a.mov64(Reg::x(1), b);
    a.mov64(Reg::x(2), c);
    a.mov64(Reg::x(3), out);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), elems as u64 * 8 - 1);
    // Scalar s in v31 lanes.
    a.movz(Reg::x(6), 3);
    a.scvtf(Reg::v(31), Reg::x(6));
    let body = 8;
    counted_loop(&mut a, target / body, |a| {
        a.ldr(MemWidth::B16, Reg::v(0), Reg::x(1), Reg::x(4), 0);
        a.ldr(MemWidth::B16, Reg::v(1), Reg::x(2), Reg::x(4), 0);
        a.vfmul(Reg::v(2), Reg::v(1), Reg::v(31));
        a.vfadd(Reg::v(3), Reg::v(0), Reg::v(2));
        a.str(MemWidth::B16, Reg::v(3), Reg::x(3), Reg::x(4), 0);
        a.addi(Reg::x(4), Reg::x(4), 16);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("DPT", a, target)
}

/// `DPTd`: the scalar-double triad.
fn dptd(scale: Scale) -> Workload {
    let target = scale.apply(1_180_000);
    let mut a = Asm::new();
    let elems = 2048usize;
    let b = fp_array(&mut a, elems, 1.0);
    let c = fp_array(&mut a, elems, 3.0);
    let out = a.reserve(elems as u64 * 8, 64);
    a.mov64(Reg::x(1), b);
    a.mov64(Reg::x(2), c);
    a.mov64(Reg::x(3), out);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), elems as u64 * 8 - 1);
    a.movz(Reg::x(6), 3);
    a.scvtf(Reg::v(31), Reg::x(6));
    let body = 8;
    counted_loop(&mut a, target / body, |a| {
        a.ldr(MemWidth::B8, Reg::v(0), Reg::x(1), Reg::x(4), 0);
        a.ldr(MemWidth::B8, Reg::v(1), Reg::x(2), Reg::x(4), 0);
        a.fmul(Reg::v(2), Reg::v(1), Reg::v(31));
        a.fadd(Reg::v(3), Reg::v(0), Reg::v(2));
        a.str(MemWidth::B8, Reg::v(3), Reg::x(3), Reg::x(4), 0);
        a.addi(Reg::x(4), Reg::x(4), 8);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("DPTd", a, target)
}

/// All 5 data-parallel kernels.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        dp1d(scale),
        dp1f(scale),
        dpcvt(scale),
        dpt(scale),
        dptd(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_stores_correct_values() {
        let w = dptd(Scale::TINY);
        // Emulate and inspect memory: out[0] = b[0] + 3 * c[0] = 1 + 9.
        let mut m = crate::emu::Machine::new(&w.program);
        let mut buf = racesim_trace::TraceBuffer::new();
        m.run(w.inst_limit, &mut buf).unwrap();
        // Find the first store's ea and read the double back.
        let first_store = buf
            .records()
            .iter()
            .find(|r| r.ea().is_some() && r.word().opcode() == Some(racesim_isa::Opcode::Str))
            .unwrap();
        let bits = m.mem.read_le(first_store.ea().unwrap(), 8);
        assert_eq!(f64::from_bits(bits), 1.0 + 3.0 * 3.0);
    }

    #[test]
    fn dp_kernels_are_fp_dominated() {
        for w in all(Scale::TINY) {
            let s = w.trace().unwrap().summary();
            assert!(
                s.fp_simd * 6 > s.instructions,
                "{}: {} fp of {}",
                w.name,
                s.fp_simd,
                s.instructions
            );
        }
    }

    #[test]
    fn dpcvt_converges_numerically() {
        // x2 = x2 + fcvtzs(scvtf(fcvtzs(2 * x2))) stays finite and the
        // kernel halts (guards against emulator FP bugs).
        let w = dpcvt(Scale::TINY);
        assert!(w.trace().is_ok());
    }
}
