//! Execution-unit micro-benchmarks (Table I, 5 kernels).
//!
//! "The benchmarks focusing on the execution units involve integer and
//! floating-point operations that vary in complexity. Each of these
//! benchmarks involve chains of dependencies of variable length."

use super::helpers::counted_loop;
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, Reg};

const CAT: Category = Category::Execution;

fn finish(name: &str, mut a: Asm, expected: u64) -> Workload {
    a.halt();
    Workload::new(name, CAT, a.finish(), expected)
}

/// `ED1`: a single serial integer dependency chain (ILP = 1) — the
/// kernel whose untuned error reached 5.6x in the paper's Figure 4.
fn ed1(scale: Scale) -> Workload {
    let target = scale.apply(164_000);
    let mut a = Asm::new();
    a.movz(Reg::x(1), 1);
    let body = 10;
    counted_loop(&mut a, target / body, |a| {
        for _ in 0..8 {
            a.add(Reg::x(1), Reg::x(1), Reg::x(2));
        }
    });
    finish("ED1", a, target)
}

/// `EF`: a serial floating-point dependency chain.
fn ef(scale: Scale) -> Workload {
    let target = scale.apply(451_000);
    let mut a = Asm::new();
    a.movz(Reg::x(1), 1);
    a.scvtf(Reg::v(0), Reg::x(1));
    a.scvtf(Reg::v(1), Reg::x(1));
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        for _ in 0..4 {
            a.fadd(Reg::v(0), Reg::v(0), Reg::v(1));
        }
    });
    finish("EF", a, target)
}

/// `EI`: independent integer operations (maximum ILP).
fn ei(scale: Scale) -> Workload {
    let target = scale.apply(5_240_000);
    let mut a = Asm::new();
    let body = 10;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..8u8 {
            a.addi(Reg::x(1 + k), Reg::x(1 + k), 1);
        }
    });
    finish("EI", a, target)
}

/// `EM1`: a single serial multiply chain.
fn em1(scale: Scale) -> Workload {
    let target = scale.apply(65_000);
    let mut a = Asm::new();
    a.movz(Reg::x(1), 3);
    a.movz(Reg::x(2), 5);
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        for _ in 0..4 {
            a.mul(Reg::x(1), Reg::x(1), Reg::x(2));
        }
    });
    finish("EM1", a, target)
}

/// `EM5`: five interleaved multiply chains (ILP = 5).
fn em5(scale: Scale) -> Workload {
    let target = scale.apply(328_000);
    let mut a = Asm::new();
    for k in 0..5u8 {
        a.movz(Reg::x(1 + k), 3 + k as i64);
    }
    a.movz(Reg::x(9), 7);
    let body = 7;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..5u8 {
            a.mul(Reg::x(1 + k), Reg::x(1 + k), Reg::x(9));
        }
    });
    finish("EM5", a, target)
}

/// All 5 execution kernels.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![ed1(scale), ef(scale), ei(scale), em1(scale), em5(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_run_and_are_compute_bound() {
        for w in all(Scale::TINY) {
            let s = w.trace().unwrap().summary();
            assert_eq!(s.loads, 0, "{} has no loads", w.name);
            assert_eq!(s.stores, 0, "{} has no stores", w.name);
        }
    }

    #[test]
    fn ef_is_fp_and_ed1_is_int() {
        let s_ef = ef(Scale::TINY).trace().unwrap().summary();
        assert!(s_ef.fp_simd * 2 > s_ef.instructions);
        let s_ed = ed1(Scale::TINY).trace().unwrap().summary();
        assert_eq!(s_ed.fp_simd, 0);
    }
}
