//! Shared kernel-construction helpers.

use racesim_isa::{asm::Asm, Reg};

/// Loop counter register reserved by [`counted_loop`].
pub const CTR: Reg = Reg::x(28);
/// LCG state register reserved by [`lcg_setup`] / [`lcg_next`].
pub const LCG: Reg = Reg::x(20);
/// LCG multiplier register.
pub const LCG_A: Reg = Reg::x(21);
/// LCG increment register.
pub const LCG_C: Reg = Reg::x(22);

/// Emits `iters` repetitions of `body` using a counted loop on [`CTR`]
/// (2 instructions of overhead per iteration).
pub fn counted_loop(a: &mut Asm, iters: u64, body: impl FnOnce(&mut Asm)) {
    a.mov64(CTR, iters.max(1));
    let top = a.here();
    body(a);
    a.subi(CTR, CTR, 1);
    a.cbnz(CTR, top);
}

/// Initialises the in-register linear congruential generator
/// (Knuth's MMIX constants). Three registers are reserved.
pub fn lcg_setup(a: &mut Asm, seed: u64) {
    a.mov64(LCG, seed | 1);
    a.mov64(LCG_A, 6_364_136_223_846_793_005);
    a.mov64(LCG_C, 1_442_695_040_888_963_407);
}

/// Advances the LCG and leaves pseudo-random bits in [`LCG`]
/// (2 instructions).
pub fn lcg_next(a: &mut Asm) {
    a.mul(LCG, LCG, LCG_A);
    a.add(LCG, LCG, LCG_C);
}

/// Builds a pointer-chase cycle over `nodes` cache lines starting at a
/// fresh data region; returns the address of the first node. The
/// traversal order is a deterministic pseudo-random permutation so
/// hardware prefetchers cannot follow it.
pub fn build_chase(a: &mut Asm, nodes: usize, line: u64, seed: u64) -> u64 {
    assert!(nodes >= 2, "a chase needs at least two nodes");
    // Deterministic Fisher-Yates with an xorshift generator.
    let mut order: Vec<usize> = (0..nodes).collect();
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in (1..nodes).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    // Predict the blob's address: an empty reservation aligns the data
    // cursor without consuming space, so the following `data_bytes` with
    // the same alignment lands exactly there.
    let region = a.reserve(0, line);
    // node order[k] points at node order[k+1]; last points at first.
    let mut words = vec![0u64; (nodes as u64 * line / 8) as usize];
    for k in 0..nodes {
        let from = order[k];
        let to = order[(k + 1) % nodes];
        words[from * (line as usize / 8)] = region + to as u64 * line;
    }
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let addr = a.data_bytes(bytes, line);
    debug_assert_eq!(addr, region);
    region + (order[0] as u64 * line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::record_trace;

    #[test]
    fn counted_loop_executes_exactly_iters_times() {
        let mut a = Asm::new();
        a.movz(Reg::x(1), 0);
        counted_loop(&mut a, 17, |a| {
            a.addi(Reg::x(1), Reg::x(1), 1);
        });
        a.halt();
        let p = a.finish();
        let mut m = crate::emu::Machine::new(&p);
        let mut buf = racesim_trace::TraceBuffer::new();
        m.run(10_000, &mut buf).unwrap();
        assert_eq!(m.reg(Reg::x(1)), 17);
    }

    #[test]
    fn chase_visits_every_node_once_per_lap() {
        let mut a = Asm::new();
        let head = build_chase(&mut a, 16, 64, 42);
        a.mov64(Reg::x(1), head);
        counted_loop(&mut a, 32, |a| {
            a.ldr8(Reg::x(1), Reg::x(1), 0);
        });
        a.halt();
        let p = a.finish();
        let t = record_trace(&p, 100_000).unwrap();
        // 32 loads; after 2 laps of 16 the pointer returns to head.
        let s = t.summary();
        assert_eq!(s.loads, 32);
        let mut m = crate::emu::Machine::new(&p);
        let mut buf = racesim_trace::TraceBuffer::new();
        m.run(100_000, &mut buf).unwrap();
        assert_eq!(m.reg(Reg::x(1)), head, "cycle closes");
    }

    #[test]
    fn lcg_produces_varied_bits() {
        let mut a = Asm::new();
        lcg_setup(&mut a, 7);
        // x1 accumulates XOR of 8 successive outputs' bit 17.
        a.movz(Reg::x(1), 0);
        a.movz(Reg::x(2), 0);
        counted_loop(&mut a, 64, |a| {
            lcg_next(a);
            a.lsr(Reg::x(3), LCG, 17);
            a.and(Reg::x(3), Reg::x(3), Reg::x(4)); // x4 = 1 set below
            a.add(Reg::x(1), Reg::x(1), Reg::x(3));
        });
        a.halt();
        let mut p = a.finish();
        p.init_regs.push((Reg::x(4).index() as u8, 1));
        let mut m = crate::emu::Machine::new(&p);
        let mut buf = racesim_trace::TraceBuffer::new();
        m.run(10_000, &mut buf).unwrap();
        let ones = m.reg(Reg::x(1));
        assert!(ones > 16 && ones < 48, "bit 17 is roughly balanced: {ones}");
    }
}
