//! Memory-hierarchy micro-benchmarks (Table I, 15 kernels).
//!
//! "The benchmarks that stress the memory hierarchy involve access to data
//! sets that reside at various levels of the hierarchy, access with plenty
//! of conflict misses, linked list traversal at different cache levels or
//! in memory, stressing instruction cache misses, and load-store
//! dependencies."

use super::helpers::{build_chase, counted_loop, lcg_next, lcg_setup, LCG};
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, MemWidth, Reg};

const CAT: Category = Category::MemoryHierarchy;

fn finish(name: &str, a: Asm, expected: u64) -> Workload {
    let mut a = a;
    a.halt();
    Workload::new(name, CAT, a.finish(), expected)
}

/// `MC`: loads with plenty of conflict misses — a power-of-two stride that
/// maps every access to the same set under mask indexing (XOR/Mersenne
/// hashing spread it, which is exactly why the paper makes hashing
/// tunable).
fn mc(scale: Scale) -> Workload {
    let target = scale.apply(1_800_000);
    let mut a = Asm::new();
    // The harness initialises this array before measuring (unlike MM).
    let region = a.reserve_initialized(16 * 8192, 8192);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(3), 8192); // stride: 128 sets x 64B
    a.mov64(Reg::x(5), 16 * 8192 - 1);
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::x(4), 0);
        a.add(Reg::x(4), Reg::x(4), Reg::x(3));
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
        a.add(Reg::x(6), Reg::x(6), Reg::x(2));
    });
    finish("MC", a, target)
}

/// `MCS`: conflict misses with stores.
fn mcs(scale: Scale) -> Workload {
    let target = scale.apply(115_000);
    let mut a = Asm::new();
    let region = a.reserve(16 * 8192, 8192);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(3), 8192);
    a.mov64(Reg::x(5), 16 * 8192 - 1);
    let body = 5;
    counted_loop(&mut a, target / body, |a| {
        a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), 0);
        a.add(Reg::x(4), Reg::x(4), Reg::x(3));
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("MCS", a, target)
}

/// `MD`: dependent-load pointer chase resident in the L1D (8 KiB).
fn md(scale: Scale) -> Workload {
    let target = scale.apply(33_000);
    let mut a = Asm::new();
    let head = build_chase(&mut a, 128, 64, 0xD);
    a.mov64(Reg::x(1), head);
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        for _ in 0..4 {
            a.ldr8(Reg::x(1), Reg::x(1), 0);
        }
    });
    finish("MD", a, target)
}

/// Straight-line code block of `n` cheap instructions.
fn code_block(a: &mut Asm, n: usize) {
    for i in 0..n {
        a.addi(Reg::x(2 + (i % 8) as u8), Reg::x(2 + (i % 8) as u8), 1);
    }
}

/// `MI`: instruction footprint exceeding the L1I (48 KiB of code).
fn mi(scale: Scale) -> Workload {
    let target = scale.apply(22_000_000);
    let block = 12 * 1024; // 12K instructions = 48 KiB
    let mut a = Asm::new();
    let iters = (target / (block as u64 + 2)).max(2);
    counted_loop(&mut a, iters, |a| code_block(a, block));
    finish("MI", a, target)
}

/// `MIM`: bigger instruction footprint (80 KiB), misses L1I, hits L2.
fn mim(scale: Scale) -> Workload {
    let target = scale.apply(5_250_000);
    let block = 20 * 1024;
    let mut a = Asm::new();
    let iters = (target / (block as u64 + 2)).max(2);
    counted_loop(&mut a, iters, |a| code_block(a, block));
    finish("MIM", a, target)
}

/// `MIM2`: two distant 40 KiB code blocks visited alternately through
/// calls, defeating sequential line reuse.
fn mim2(scale: Scale) -> Workload {
    let target = scale.apply(214_000);
    let block = 10 * 1024;
    let mut a = Asm::new();
    let f1 = a.label();
    let f2 = a.label();
    let iters = (target / (2 * block as u64 + 6)).max(2);
    counted_loop(&mut a, iters, |a| {
        a.bl(f1);
        a.bl(f2);
    });
    a.halt();
    a.bind(f1);
    code_block(&mut a, block);
    a.ret();
    a.bind(f2);
    code_block(&mut a, block);
    a.ret();
    Workload::new("MIM2", CAT, a.finish(), target)
}

/// `MIP`: very large sequential instruction footprint (96 KiB) —
/// prefetch-friendly straight-line fetch.
fn mip(scale: Scale) -> Workload {
    let target = scale.apply(66_000_000);
    let block = 24 * 1024;
    let mut a = Asm::new();
    let iters = (target / (block as u64 + 2)).max(2);
    counted_loop(&mut a, iters, |a| code_block(a, block));
    finish("MIP", a, target)
}

/// `ML2`: pointer chase sized for the L2 (256 KiB).
fn ml2(scale: Scale) -> Workload {
    let target = scale.apply(131_000);
    let mut a = Asm::new();
    let head = build_chase(&mut a, 4096, 64, 0x12);
    a.mov64(Reg::x(1), head);
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        for _ in 0..4 {
            a.ldr8(Reg::x(1), Reg::x(1), 0);
        }
    });
    finish("ML2", a, target)
}

/// `ML2_BW_ld`: sequential load bandwidth over an L2-resident buffer.
fn ml2_bw_ld(scale: Scale) -> Workload {
    let target = scale.apply(3_150_000);
    let mut a = Asm::new();
    let size = 256 * 1024u64;
    // The harness initialises this buffer before measuring (unlike MM).
    let region = a.reserve_initialized(size, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), size - 1);
    let body = 12;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..8i64 {
            a.ldr(
                MemWidth::B8,
                Reg::x(6 + (k % 4) as u8),
                Reg::x(1),
                Reg::x(4),
                k * 8,
            );
        }
        a.addi(Reg::x(4), Reg::x(4), 64);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("ML2_BW_ld", a, target)
}

/// `ML2_BW_ldst`: mixed load/store bandwidth on the L2.
fn ml2_bw_ldst(scale: Scale) -> Workload {
    let target = scale.apply(107_000);
    let mut a = Asm::new();
    let size = 256 * 1024u64;
    let region = a.reserve(size, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), size - 1);
    let body = 12;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..4i64 {
            a.ldr(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), k * 16);
            a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), k * 16 + 8);
        }
        a.addi(Reg::x(4), Reg::x(4), 64);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("ML2_BW_ldst", a, target)
}

/// `ML2_BW_st`: sequential store bandwidth on the L2.
fn ml2_bw_st(scale: Scale) -> Workload {
    let target = scale.apply(8_400);
    let mut a = Asm::new();
    let size = 256 * 1024u64;
    let region = a.reserve(size, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), size - 1);
    let body = 12;
    counted_loop(&mut a, (target / body).max(16), |a| {
        for k in 0..8i64 {
            a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), k * 8);
        }
        a.addi(Reg::x(4), Reg::x(4), 64);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("ML2_BW_st", a, target)
}

/// `ML2_st`: strided stores across an L2-resident buffer.
fn ml2_st(scale: Scale) -> Workload {
    let target = scale.apply(164_000);
    let mut a = Asm::new();
    let size = 256 * 1024u64;
    let region = a.reserve(size, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(3), 192); // 3 lines
    a.mov64(Reg::x(5), size - 1);
    let body = 5;
    counted_loop(&mut a, target / body, |a| {
        a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), 0);
        a.add(Reg::x(4), Reg::x(4), Reg::x(3));
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("ML2_st", a, target)
}

/// `MM`: strided loads over an 8 MiB uninitialised array — misses every
/// cache level. One of the two kernels that "access an uninitialized
/// array" in the paper.
fn mm(scale: Scale) -> Workload {
    let target = scale.apply(1_050_000);
    let mut a = Asm::new();
    let size = 8 * 1024 * 1024u64;
    let region = a.reserve(size, 4096);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(3), 256);
    a.mov64(Reg::x(5), size - 1);
    let body = 6;
    counted_loop(&mut a, target / body, |a| {
        a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::x(4), 0);
        a.add(Reg::x(4), Reg::x(4), Reg::x(3));
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
        a.add(Reg::x(6), Reg::x(6), Reg::x(2));
    });
    finish("MM", a, target).with_uninit_data()
}

/// `MM_st`: strided stores over an 8 MiB region.
fn mm_st(scale: Scale) -> Workload {
    let target = scale.apply(1_970_000);
    let mut a = Asm::new();
    let size = 8 * 1024 * 1024u64;
    let region = a.reserve(size, 4096);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(3), 256);
    a.mov64(Reg::x(5), size - 1);
    let body = 5;
    counted_loop(&mut a, target / body, |a| {
        a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), 0);
        a.add(Reg::x(4), Reg::x(4), Reg::x(3));
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("MM_st", a, target)
}

/// `M_Dyn`: dynamically random accesses across a 16 MiB uninitialised
/// region — stresses the TLB and defeats every prefetcher.
fn m_dyn(scale: Scale) -> Workload {
    let target = scale.apply(1_500_000);
    let mut a = Asm::new();
    let size = 16 * 1024 * 1024u64;
    let region = a.reserve(size, 4096);
    lcg_setup(&mut a, 0xDEAD);
    a.mov64(Reg::x(1), region);
    a.mov64(Reg::x(5), size - 8);
    let body = 7;
    counted_loop(&mut a, target / body, |a| {
        lcg_next(a);
        a.lsr(Reg::x(4), LCG, 17);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
        a.ldr(MemWidth::B8, Reg::x(2), Reg::x(1), Reg::x(4), 0);
    });
    finish("M_Dyn", a, target).with_uninit_data()
}

/// All 15 memory-hierarchy kernels.
///
/// With `init_arrays`, the uninitialised-array kernels are replaced by
/// variants whose arrays count as initialised (the paper's fix).
pub fn all(scale: Scale, init_arrays: bool) -> Vec<Workload> {
    let mut v = vec![
        mc(scale),
        mcs(scale),
        md(scale),
        mi(scale),
        mim(scale),
        mim2(scale),
        mip(scale),
        ml2(scale),
        ml2_bw_ld(scale),
        ml2_bw_ldst(scale),
        ml2_bw_st(scale),
        ml2_st(scale),
        mm(scale),
        mm_st(scale),
        m_dyn(scale),
    ];
    if init_arrays {
        for w in &mut v {
            w.uninit_data = false;
            // Keep the static picture consistent with the fix: once the
            // arrays are initialised prior to simulation, no region is
            // uninitialised any more.
            w.program.mark_all_initialized();
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_chase_stays_in_l1_footprint() {
        let w = md(Scale::TINY);
        let t = w.trace().unwrap();
        let addrs: std::collections::HashSet<u64> = t
            .records()
            .iter()
            .filter_map(|r| r.ea())
            .map(|ea| ea >> 6)
            .collect();
        assert!(addrs.len() <= 128, "MD touches at most 128 lines");
    }

    #[test]
    fn mc_addresses_conflict_under_mask_indexing() {
        let w = mc(Scale::TINY);
        let t = w.trace().unwrap();
        let sets: std::collections::HashSet<u64> = t
            .records()
            .iter()
            .filter_map(|r| r.ea())
            .map(|ea| (ea >> 6) & 127) // 128-set L1D
            .collect();
        assert_eq!(sets.len(), 1, "all MC accesses land in one set");
    }

    #[test]
    fn mm_covers_many_pages() {
        let w = mm(Scale::TINY);
        assert!(w.uninit_data);
        let t = w.trace().unwrap();
        let pages: std::collections::HashSet<u64> = t
            .records()
            .iter()
            .filter_map(|r| r.ea())
            .map(|ea| ea >> 12)
            .collect();
        assert!(pages.len() > 4, "MM walks many pages: {}", pages.len());
    }

    #[test]
    fn mdyn_addresses_look_random() {
        let w = m_dyn(Scale::TINY);
        let t = w.trace().unwrap();
        let eas: Vec<u64> = t.records().iter().filter_map(|r| r.ea()).collect();
        assert!(eas.len() > 50);
        // Deltas should be wildly varied (no constant stride).
        let mut deltas = std::collections::HashSet::new();
        for w in eas.windows(2) {
            deltas.insert(w[1].wrapping_sub(w[0]));
        }
        assert!(
            deltas.len() > eas.len() / 2,
            "random walk has varied deltas"
        );
    }

    #[test]
    fn instruction_kernels_have_graded_footprints() {
        let pcs = |w: &Workload| w.trace().unwrap().summary().unique_pcs;
        let mi_pcs = pcs(&mi(Scale::TINY));
        let mim_pcs = pcs(&mim(Scale::TINY));
        let mip_pcs = pcs(&mip(Scale::TINY));
        assert!(mi_pcs > 8 * 1024, "{mi_pcs}");
        assert!(mim_pcs > mi_pcs);
        assert!(mip_pcs > mim_pcs);
    }
}
