//! The 40 targeted micro-benchmarks of Table I.
//!
//! Each kernel is a small assembly program that stresses one processor
//! component, re-implemented from the descriptions in the paper and the
//! `microbench` suite it cites (Vertical Research Group). The dynamic
//! instruction counts follow Table I, scaled by [`Scale`].

mod control;
mod dataparallel;
mod execution;
mod memory;
mod store;

pub(crate) mod helpers;

use crate::workload::{Scale, Workload};

/// The paper's Table I dynamic instruction counts (name, count), in the
/// paper's order.
pub fn table1_reference_counts() -> Vec<(&'static str, u64)> {
    vec![
        // Memory hierarchy.
        ("MC", 1_800_000),
        ("MCS", 115_000),
        ("MD", 33_000),
        ("MI", 22_000_000),
        ("MIM", 5_250_000),
        ("MIM2", 214_000),
        ("MIP", 66_000_000),
        ("ML2", 131_000),
        ("ML2_BW_ld", 3_150_000),
        ("ML2_BW_ldst", 107_000),
        ("ML2_BW_st", 8_400),
        ("ML2_st", 164_000),
        ("MM", 1_050_000),
        ("MM_st", 1_970_000),
        ("M_Dyn", 1_500_000),
        // Control flow.
        ("CCa", 82_000),
        ("CCe", 657_000),
        ("CCh", 2_600_000),
        ("CCh_st", 157_000),
        ("CCl", 1_380_000),
        ("CCm", 656_000),
        ("CF1", 1_270_000),
        ("CRd", 599_000),
        ("CRf", 133_000),
        ("CRm", 399_000),
        ("CS1", 58_000),
        ("CS3", 34_500_000),
        // Data parallel.
        ("DP1d", 5_200_000),
        ("DP1f", 5_200_000),
        ("DPcvt", 36_700_000),
        ("DPT", 542_000),
        ("DPTd", 1_180_000),
        // Execution.
        ("ED1", 164_000),
        ("EF", 451_000),
        ("EI", 5_240_000),
        ("EM1", 65_000),
        ("EM5", 328_000),
        // Store intensive.
        ("STL2", 4_000),
        ("STL2b", 1_120_000),
        ("STc", 400_000),
    ]
}

/// Builds the full 40-kernel suite at the given scale, with the two
/// memory-intensive kernels (`MM`, `M_Dyn`) accessing *uninitialised*
/// arrays, as the original suite does.
pub fn microbench_suite(scale: Scale) -> Vec<Workload> {
    suite_opts(scale, false)
}

/// Builds the suite with all arrays initialised prior to simulation — the
/// remedy the paper applies in Section IV-B ("Initializing the arrays
/// prior to simulation dwarfs the error for these micro-benchmarks").
pub fn microbench_suite_initialized(scale: Scale) -> Vec<Workload> {
    suite_opts(scale, true)
}

fn suite_opts(scale: Scale, init_arrays: bool) -> Vec<Workload> {
    let mut v = Vec::with_capacity(40);
    v.extend(memory::all(scale, init_arrays));
    v.extend(control::all(scale));
    v.extend(dataparallel::all(scale));
    v.extend(execution::all(scale));
    v.extend(store::all(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Category;
    use std::collections::HashSet;

    #[test]
    fn suite_has_40_uniquely_named_kernels() {
        let suite = microbench_suite(Scale::TINY);
        assert_eq!(suite.len(), 40);
        let names: HashSet<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), 40);
        let ref_names: HashSet<&str> = table1_reference_counts().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ref_names, "suite matches Table I naming");
    }

    #[test]
    fn category_partition_matches_table1() {
        let suite = microbench_suite(Scale::TINY);
        let count = |c: Category| suite.iter().filter(|w| w.category == c).count();
        assert_eq!(count(Category::MemoryHierarchy), 15);
        assert_eq!(count(Category::ControlFlow), 12);
        assert_eq!(count(Category::DataParallel), 5);
        assert_eq!(count(Category::Execution), 5);
        assert_eq!(count(Category::StoreIntensive), 3);
    }

    #[test]
    fn every_kernel_runs_to_completion_at_tiny_scale() {
        for w in microbench_suite(Scale::TINY) {
            let t = w
                .trace()
                .unwrap_or_else(|e| panic!("kernel {} failed: {e}", w.name));
            assert!(
                t.len() >= 256,
                "kernel {} produced only {} instructions",
                w.name,
                t.len()
            );
        }
    }

    #[test]
    fn dynamic_counts_track_table1_ordering() {
        // At a fixed scale, a kernel with a 10x larger Table-I target
        // should produce a larger trace (coarse sanity check on scaling).
        let suite = microbench_suite(Scale::divide_by(256));
        let get = |n: &str| {
            suite
                .iter()
                .find(|w| w.name == n)
                .unwrap()
                .trace()
                .unwrap()
                .len()
        };
        assert!(get("MIP") > get("MD"));
        assert!(get("CS3") > get("CS1"));
        assert!(get("DPcvt") > get("DPT"));
    }

    #[test]
    fn uninit_flags_follow_the_paper() {
        let suite = microbench_suite(Scale::TINY);
        let flagged: Vec<&str> = suite
            .iter()
            .filter(|w| w.uninit_data)
            .map(|w| w.name.as_str())
            .collect();
        assert_eq!(flagged, vec!["MM", "M_Dyn"]);
        let fixed = microbench_suite_initialized(Scale::TINY);
        assert!(fixed.iter().all(|w| !w.uninit_data));
    }

    #[test]
    fn kernels_have_expected_instruction_composition() {
        let suite = microbench_suite(Scale::TINY);
        let summary = |n: &str| {
            suite
                .iter()
                .find(|w| w.name == n)
                .unwrap()
                .trace()
                .unwrap()
                .summary()
        };

        // Memory kernels are load-heavy; store kernels are store-heavy.
        let md = summary("MD");
        assert!(md.loads * 4 > md.instructions, "MD is a load chase");
        let stc = summary("STc");
        assert!(stc.stores * 5 > stc.instructions, "STc is store-heavy");

        // Control kernels are branch-heavy.
        let cch = summary("CCh");
        assert!(cch.branches * 5 > cch.instructions);

        // CS1 exercises indirect branches.
        let cs1 = summary("CS1");
        assert!(cs1.indirect_branches > 100, "{:?}", cs1);

        // Data-parallel kernels are FP/SIMD heavy.
        let dp = summary("DP1d");
        assert!(dp.fp_simd * 3 > dp.instructions, "{dp:?}");

        // Instruction-cache kernels have big static footprints.
        let mi = summary("MI");
        assert!(
            mi.unique_pcs > 8192,
            "MI must exceed a 32KB L1I: {} pcs",
            mi.unique_pcs
        );
    }
}
