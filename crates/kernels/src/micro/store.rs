//! Store-intensive micro-benchmarks (Table I, 3 kernels).

use super::helpers::counted_loop;
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, MemWidth, Reg};

const CAT: Category = Category::StoreIntensive;

fn finish(name: &str, mut a: Asm, expected: u64) -> Workload {
    a.halt();
    Workload::new(name, CAT, a.finish(), expected)
}

/// `STL2`: a short, intense burst of stores over an L2-resident buffer —
/// at only 4 K dynamic instructions it exposes store-buffer sizing.
fn stl2(scale: Scale) -> Workload {
    let target = scale.apply(4_000);
    let mut a = Asm::new();
    let size = 128 * 1024u64;
    let region = a.reserve(size, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), size - 1);
    let body = 10;
    counted_loop(&mut a, (target / body).max(32), |a| {
        for k in 0..8i64 {
            a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), k * 64);
        }
        a.addi(Reg::x(4), Reg::x(4), 512);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("STL2", a, target)
}

/// `STL2b`: sustained byte-granularity stores (write-combining stress).
fn stl2b(scale: Scale) -> Workload {
    let target = scale.apply(1_120_000);
    let mut a = Asm::new();
    let size = 128 * 1024u64;
    let region = a.reserve(size, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), size - 1);
    let body = 12;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..8i64 {
            a.str(MemWidth::B1, Reg::x(6), Reg::x(1), Reg::x(4), k);
        }
        a.addi(Reg::x(4), Reg::x(4), 8);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("STL2b", a, target)
}

/// `STc`: store→load conflicts — each load reads the address stored one
/// instruction earlier (store-to-load forwarding stress).
fn stc(scale: Scale) -> Workload {
    let target = scale.apply(400_000);
    let mut a = Asm::new();
    let region = a.reserve(4096, 64);
    a.mov64(Reg::x(1), region);
    a.movz(Reg::x(4), 0);
    a.mov64(Reg::x(5), 4095);
    let body = 16;
    counted_loop(&mut a, target / body, |a| {
        for k in 0..6i64 {
            a.str(MemWidth::B8, Reg::x(6), Reg::x(1), Reg::x(4), k * 8);
            a.ldr(MemWidth::B8, Reg::x(7), Reg::x(1), Reg::x(4), k * 8);
        }
        a.addi(Reg::x(4), Reg::x(4), 64);
        a.and(Reg::x(4), Reg::x(4), Reg::x(5));
    });
    finish("STc", a, target)
}

/// All 3 store-intensive kernels.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![stl2(scale), stl2b(scale), stc(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stc_loads_see_stored_values() {
        let w = stc(Scale::TINY);
        let t = w.trace().unwrap();
        // Consecutive store/load pairs share their effective address.
        let recs = t.records();
        let mut pairs = 0;
        for win in recs.windows(2) {
            if let (Some(st), Some(ld)) = (win[0].ea(), win[1].ea()) {
                if win[0].word().opcode() == Some(racesim_isa::Opcode::Str)
                    && win[1].word().opcode() == Some(racesim_isa::Opcode::Ldr)
                {
                    assert_eq!(st, ld);
                    pairs += 1;
                }
            }
        }
        assert!(pairs > 10, "{pairs} forwarding pairs seen");
    }

    #[test]
    fn store_kernels_are_store_dominated() {
        for w in all(Scale::TINY) {
            let s = w.trace().unwrap().summary();
            assert!(
                s.stores * 3 > s.instructions,
                "{}: {} stores of {}",
                w.name,
                s.stores,
                s.instructions
            );
        }
    }
}
