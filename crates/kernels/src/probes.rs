//! lmbench-style latency probes (step 2 of the validation methodology).
//!
//! The paper: "we estimate the access time of the L1 data and instruction
//! caches in addition to the L2 cache using the lmbench micro-benchmarks,
//! and plug them into the timing models". The classic `lat_mem_rd` probe
//! is a dependent pointer chase over an array of growing size: while the
//! array fits a cache level, the per-load latency plateaus at that level's
//! load-to-use latency.

use crate::micro::helpers::{build_chase, counted_loop};
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, Reg};

/// A `lat_mem_rd`-style dependent pointer chase over `size_kb` KiB with
/// `line`-byte nodes.
///
/// The resulting workload executes `laps` full traversals; per-load
/// latency is `cycles / loads` once steady state is reached.
///
/// # Panics
///
/// Panics if `size_kb` is zero or smaller than two nodes.
pub fn lat_mem_rd(size_kb: u32, line: u64) -> Workload {
    assert!(size_kb > 0, "probe array must be non-empty");
    let nodes = (size_kb as u64 * 1024 / line).max(2) as usize;
    let mut a = Asm::new();
    let head = build_chase(&mut a, nodes, line, 0x11AB + size_kb as u64);
    a.mov64(Reg::x(1), head);
    // Enough laps for steady state, bounded for big arrays.
    let laps = (65_536 / nodes).clamp(4, 512) as u64;
    counted_loop(&mut a, laps * nodes as u64 / 4, |a| {
        for _ in 0..4 {
            a.ldr8(Reg::x(1), Reg::x(1), 0);
        }
    });
    a.halt();
    let expected = laps * nodes as u64 * 2;
    Workload::new(
        format!("lat_mem_rd_{size_kb}k"),
        Category::Probe,
        a.finish(),
        expected,
    )
}

/// The standard probe ladder used by the latency estimator: sizes chosen
/// to sit well inside L1, between L1 and L2, and beyond L2.
pub fn probe_ladder() -> Vec<Workload> {
    [4u32, 8, 16, 64, 128, 256, 2048, 4096]
        .iter()
        .map(|kb| lat_mem_rd(*kb, 64))
        .collect()
}

/// An instruction-side probe: straight-line code of `size_kb` KiB looped,
/// for estimating the L1I service behaviour.
pub fn lat_icache(size_kb: u32) -> Workload {
    let insts = (size_kb as usize * 1024) / racesim_isa::INST_BYTES as usize;
    let mut a = Asm::new();
    counted_loop(&mut a, 64, |a| {
        for i in 0..insts {
            a.addi(Reg::x(2 + (i % 4) as u8), Reg::x(2 + (i % 4) as u8), 1);
        }
    });
    a.halt();
    Workload::new(
        format!("lat_icache_{size_kb}k"),
        Category::Probe,
        a.finish(),
        64 * (insts as u64 + 2),
    )
}

/// Ignore-the-details scale marker: probes are fixed-size by design.
pub fn probe_scale() -> Scale {
    Scale::FULL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_run_and_chase_dependently() {
        let w = lat_mem_rd(8, 64);
        let t = w.trace().unwrap();
        let s = t.summary();
        assert!(s.loads * 2 > s.instructions, "{s:?}");
    }

    #[test]
    fn ladder_covers_l1_l2_mem() {
        let l = probe_ladder();
        assert!(l.len() >= 6);
        assert!(l.first().unwrap().name.contains("4k"));
        assert!(l.last().unwrap().name.contains("4096k"));
    }

    #[test]
    fn bigger_arrays_touch_more_lines() {
        let lines = |kb: u32| {
            lat_mem_rd(kb, 64)
                .trace()
                .unwrap()
                .records()
                .iter()
                .filter_map(|r| r.ea())
                .map(|ea| ea >> 6)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(lines(64) > lines(4));
    }
}
