//! SPEC CPU2017 proxy workloads (Table II substitution).
//!
//! The paper validates its tuned models on the main-loop regions of 11
//! SPEC CPU2017 benchmarks (Table II), simulating billions of
//! instructions. SPEC is not available here, so each application is
//! replaced by a *statistical proxy*: a generated program whose
//! instruction mix, working-set size, branch predictability, code
//! footprint and dependence structure follow the application's published
//! characterisation (e.g. Limaye & Adegbija, ISPASS 2018 — reference \[41\]
//! of the paper). Proxies are macro-scale, heterogeneous, and — crucially
//! for the methodology — *not used during tuning*, only for validation,
//! mirroring the paper's train/test split.

use crate::micro::helpers::{build_chase, lcg_next, lcg_setup, LCG};
use crate::workload::{Category, Scale, Workload};
use racesim_isa::{asm::Asm, MemWidth, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistical profile of one SPEC application's main-loop region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Benchmark name (Table II).
    pub name: &'static str,
    /// Region marker from Table II (file, line).
    pub region: &'static str,
    /// Dynamic instruction count of the paper's region.
    pub insn_count: u64,
    /// Instruction-mix weights (relative).
    pub w_int: u32,
    /// Multiply weight.
    pub w_mul: u32,
    /// Scalar FP weight.
    pub w_fp: u32,
    /// SIMD weight.
    pub w_simd: u32,
    /// Load weight.
    pub w_load: u32,
    /// Store weight.
    pub w_store: u32,
    /// Conditional-branch weight.
    pub w_branch: u32,
    /// Probability (0–100) that a conditional branch is data-random.
    pub branch_entropy: u32,
    /// Data working set, KiB.
    pub ws_kb: u32,
    /// Whether loads include a dependent pointer chase (mcf-style).
    pub pointer_chase: bool,
    /// Code footprint, KiB.
    pub icache_kb: u32,
    /// Independent dependence chains (ILP proxy, 1–8).
    pub ilp: u8,
}

/// The 11 applications of Table II.
pub fn profiles() -> Vec<AppProfile> {
    let base = AppProfile {
        name: "",
        region: "",
        insn_count: 0,
        w_int: 40,
        w_mul: 2,
        w_fp: 0,
        w_simd: 0,
        w_load: 25,
        w_store: 10,
        w_branch: 18,
        branch_entropy: 20,
        ws_kb: 1024,
        pointer_chase: false,
        icache_kb: 16,
        ilp: 4,
    };
    vec![
        AppProfile {
            name: "mcf",
            region: "psimplex.c:331",
            insn_count: 12_000_000_000,
            w_load: 38,
            w_store: 6,
            w_branch: 22,
            branch_entropy: 45,
            ws_kb: 16 * 1024,
            pointer_chase: true,
            ilp: 2,
            ..base
        },
        AppProfile {
            name: "povray",
            region: "povray.cpp:258",
            insn_count: 2_450_000_000,
            w_int: 25,
            w_fp: 30,
            w_simd: 4,
            w_load: 22,
            w_store: 8,
            w_branch: 12,
            branch_entropy: 12,
            ws_kb: 512,
            icache_kb: 48,
            ilp: 3,
            ..base
        },
        AppProfile {
            name: "omnetpp",
            region: "simulator/cmdenv.cc:268",
            insn_count: 10_800_000_000,
            w_load: 30,
            w_store: 12,
            w_branch: 22,
            branch_entropy: 35,
            ws_kb: 8 * 1024,
            pointer_chase: true,
            icache_kb: 64,
            ilp: 3,
            ..base
        },
        AppProfile {
            name: "xalancbmk",
            region: "XalanExe.cpp:842",
            insn_count: 443_000_000,
            w_load: 28,
            w_branch: 24,
            branch_entropy: 28,
            ws_kb: 4 * 1024,
            icache_kb: 96,
            ilp: 3,
            ..base
        },
        AppProfile {
            name: "deepsjeng",
            region: "epd.cpp:365",
            insn_count: 14_900_000_000,
            w_int: 45,
            w_mul: 3,
            w_load: 24,
            w_store: 8,
            w_branch: 20,
            branch_entropy: 38,
            ws_kb: 2 * 1024,
            icache_kb: 32,
            ilp: 4,
            ..base
        },
        AppProfile {
            name: "x264",
            region: "x264_src/x264.c:173",
            insn_count: 14_800_000_000,
            w_int: 28,
            w_simd: 22,
            w_load: 26,
            w_store: 12,
            w_branch: 10,
            branch_entropy: 10,
            ws_kb: 4 * 1024,
            icache_kb: 32,
            ilp: 6,
            ..base
        },
        AppProfile {
            name: "nab",
            region: "nabmd.c:127",
            insn_count: 14_200_000_000,
            w_int: 22,
            w_fp: 32,
            w_simd: 6,
            w_load: 24,
            w_store: 8,
            w_branch: 8,
            branch_entropy: 10,
            ws_kb: 2 * 1024,
            icache_kb: 24,
            ilp: 4,
            ..base
        },
        AppProfile {
            name: "leela",
            region: "Leela.cpp:62",
            insn_count: 10_300_000_000,
            w_int: 42,
            w_load: 24,
            w_store: 9,
            w_branch: 21,
            branch_entropy: 30,
            ws_kb: 1024,
            icache_kb: 32,
            ilp: 3,
            ..base
        },
        AppProfile {
            name: "imagick",
            region: "wang/mogrify.cpp:168",
            insn_count: 13_400_000_000,
            w_int: 20,
            w_fp: 24,
            w_simd: 14,
            w_load: 26,
            w_store: 10,
            w_branch: 6,
            branch_entropy: 8,
            ws_kb: 8 * 1024,
            icache_kb: 24,
            ilp: 6,
            ..base
        },
        AppProfile {
            name: "gcc",
            region: "toplev.c:2461",
            insn_count: 9_000_000_000,
            w_load: 27,
            w_store: 11,
            w_branch: 23,
            branch_entropy: 33,
            ws_kb: 8 * 1024,
            icache_kb: 128,
            ilp: 3,
            ..base
        },
        AppProfile {
            name: "xz",
            region: "spec_xz.c:229",
            insn_count: 10_800_000_000,
            w_int: 40,
            w_load: 30,
            w_store: 10,
            w_branch: 16,
            branch_entropy: 30,
            ws_kb: 16 * 1024,
            pointer_chase: true,
            icache_kb: 16,
            ilp: 2,
            ..base
        },
    ]
}

/// SPEC proxies run `insn_count / (divisor * SPEC_EXTRA_DIVISOR)`
/// instructions, because the paper's regions are billions of instructions
/// long.
pub const SPEC_EXTRA_DIVISOR: u64 = 16_384;

/// Builds the proxy workload for one profile at the given scale.
pub fn build_proxy(p: &AppProfile, scale: Scale) -> Workload {
    let target = (p.insn_count / SPEC_EXTRA_DIVISOR).max(1);
    let target = scale.apply(target).max(16_384);
    let mut rng = StdRng::seed_from_u64(
        p.name
            .bytes()
            .fold(0xCAFEu64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64)),
    );

    let mut a = Asm::new();
    // --- Data layout ----------------------------------------------------
    let ws_bytes = p.ws_kb as u64 * 1024;
    // SPEC applications initialise their working sets long before the
    // simulated region of interest.
    let array = a.reserve_initialized(ws_bytes, 4096);
    let chase_head = if p.pointer_chase {
        Some(build_chase(
            &mut a,
            ((ws_bytes / 2 / 64).min(32_768) as usize).max(16),
            64,
            rng.gen(),
        ))
    } else {
        None
    };

    // --- Code layout: several functions to hit the icache footprint ----
    const FN_OPS: usize = 400; // ~ops per function body
    let n_funcs = ((p.icache_kb as usize * 1024 / 4) / (FN_OPS * 2)).clamp(1, 64);
    let funcs: Vec<_> = (0..n_funcs).map(|_| a.label()).collect();

    lcg_setup(&mut a, rng.gen());
    a.mov64(Reg::x(1), array);
    a.mov64(Reg::x(5), ws_bytes - 16);
    if let Some(h) = chase_head {
        a.mov64(Reg::x(19), h);
    }
    a.movz(Reg::x(10), 1); // int-chain increment
    a.movz(Reg::x(11), 3); // multiplier
    a.movz(Reg::x(13), 1); // branch bit mask
    a.movz(Reg::x(16), 15); // bias mask
    a.movz(Reg::x(17), 2);
    a.scvtf(Reg::v(14), Reg::x(17));
    a.scvtf(Reg::v(15), Reg::x(10));

    let total_w = p.w_int + p.w_mul + p.w_fp + p.w_simd + p.w_load + p.w_store + p.w_branch;

    // Measure an average function body (same op distribution) so the
    // iteration count tracks the instruction target accurately.
    let fn_insts = {
        let mut scratch = Asm::new();
        let mut probe_rng = rng.clone();
        emit_body(&mut scratch, p, total_w, &mut probe_rng);
        scratch.len() as u64 + 1 // + ret
    };

    // Main loop: call every function once per iteration.
    let per_iter = n_funcs as u64 * (fn_insts + 1) + 2;
    let iters = (target / per_iter).max(2);
    a.mov64(Reg::x(28), iters);
    let top = a.here();
    for f in &funcs {
        a.bl(*f);
    }
    a.subi(Reg::x(28), Reg::x(28), 1);
    a.cbnz(Reg::x(28), top);
    a.halt();

    // --- Function bodies -------------------------------------------------
    for f in &funcs {
        a.bind(*f);
        emit_body(&mut a, p, total_w, &mut rng);
        a.ret();
    }

    // Big-footprint profiles execute at least two full iterations even
    // when that exceeds the nominal target; size the budget accordingly.
    let expected = target.max(iters * per_iter * 2);
    Workload::new(p.name, Category::SpecProxy, a.finish(), expected)
}

/// Emits one function body of ~`FN_OPS` weighted operations.
fn emit_body(a: &mut Asm, p: &AppProfile, total_w: u32, rng: &mut StdRng) {
    let ilp = p.ilp.clamp(1, 8);
    let mut chain = 0u8;
    let mut rotate = move || {
        let r = 2 + chain;
        chain = (chain + 1) % ilp;
        Reg::x(r)
    };
    let mut vchain = 0u8;
    let mut vrotate = move || {
        let r = vchain;
        vchain = (vchain + 1) % ilp;
        Reg::v(r)
    };

    for _ in 0..400 {
        let pick = rng.gen_range(0..total_w);
        let mut acc = p.w_int;
        if pick < acc {
            let r = rotate();
            a.add(r, r, Reg::x(10));
            continue;
        }
        acc += p.w_mul;
        if pick < acc {
            let r = rotate();
            a.mul(r, r, Reg::x(11));
            continue;
        }
        acc += p.w_fp;
        if pick < acc {
            let v = vrotate();
            if rng.gen_bool(0.5) {
                a.fadd(v, v, Reg::v(14));
            } else {
                a.fmul(v, v, Reg::v(15));
            }
            continue;
        }
        acc += p.w_simd;
        if pick < acc {
            let v = vrotate();
            if rng.gen_bool(0.5) {
                a.vfadd(v, v, Reg::v(14));
            } else {
                a.vfma(v, v, Reg::v(15));
            }
            continue;
        }
        acc += p.w_load;
        if pick < acc {
            if p.pointer_chase && rng.gen_bool(0.4) {
                a.ldr8(Reg::x(19), Reg::x(19), 0);
            } else {
                // Two loads off one random address within the working set.
                lcg_next(a);
                a.lsr(Reg::x(12), LCG, 13);
                a.and(Reg::x(12), Reg::x(12), Reg::x(5));
                a.ldr(MemWidth::B8, rotate(), Reg::x(1), Reg::x(12), 0);
                a.ldr(MemWidth::B8, rotate(), Reg::x(1), Reg::x(12), 8);
            }
            continue;
        }
        acc += p.w_store;
        if pick < acc {
            lcg_next(a);
            a.lsr(Reg::x(12), LCG, 21);
            a.and(Reg::x(12), Reg::x(12), Reg::x(5));
            a.str(MemWidth::B8, Reg::x(10), Reg::x(1), Reg::x(12), 0);
            continue;
        }
        // Branch: biased (counter-based) or random (LCG-based).
        let skip = a.label();
        if rng.gen_range(0..100) < p.branch_entropy {
            lcg_next(a);
            a.lsr(Reg::x(12), LCG, 37);
            a.and(Reg::x(12), Reg::x(12), Reg::x(13)); // x13 = 1
            a.cbnz(Reg::x(12), skip);
        } else {
            // Biased: taken unless the low bits of a slow counter align.
            a.addi(Reg::x(15), Reg::x(15), 1);
            a.and(Reg::x(12), Reg::x(15), Reg::x(16)); // x16 = 15
            a.cbnz(Reg::x(12), skip);
        }
        let r = rotate();
        a.add(r, r, Reg::x(10));
        a.bind(skip);
    }
}

/// Builds all 11 SPEC proxies at the given scale.
pub fn spec_suite(scale: Scale) -> Vec<Workload> {
    profiles().iter().map(|p| build_proxy(p, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_proxies_matching_table2() {
        let suite = spec_suite(Scale::TINY);
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "mcf",
                "povray",
                "omnetpp",
                "xalancbmk",
                "deepsjeng",
                "x264",
                "nab",
                "leela",
                "imagick",
                "gcc",
                "xz"
            ]
        );
    }

    #[test]
    fn proxies_run_and_follow_their_profiles() {
        let suite = spec_suite(Scale::TINY);
        let s = |n: &str| {
            suite
                .iter()
                .find(|w| w.name == n)
                .unwrap()
                .trace()
                .unwrap()
                .summary()
        };
        // povray/nab are FP-heavy; deepsjeng/leela are not.
        let povray = s("povray");
        assert!(povray.fp_simd * 10 > povray.instructions, "{povray:?}");
        let sjeng = s("deepsjeng");
        assert!(sjeng.fp_simd * 20 < sjeng.instructions, "{sjeng:?}");
        // mcf is load-heavy.
        let mcf = s("mcf");
        assert!(mcf.loads * 6 > mcf.instructions, "{mcf:?}");
        // gcc has a large code footprint.
        let gcc = s("gcc");
        assert!(gcc.unique_pcs > 10_000, "{gcc:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_proxy(&profiles()[0], Scale::TINY);
        let b = build_proxy(&profiles()[0], Scale::TINY);
        assert_eq!(a.program, b.program);
    }
}
