//! Workload descriptors.

use crate::emu::{record_trace, EmuError};
use racesim_isa::Program;
use racesim_trace::TraceBuffer;
use std::fmt;

/// The five micro-benchmark categories of the paper's Table I, plus the
/// SPEC proxies and latency probes this project adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Memory operations stressing various levels of the hierarchy.
    MemoryHierarchy,
    /// Control-flow benchmarks stressing the branch unit.
    ControlFlow,
    /// Data-parallel and floating-point operations.
    DataParallel,
    /// Execution-unit stress with inter-instruction dependencies.
    Execution,
    /// Store-intensive operations.
    StoreIntensive,
    /// SPEC CPU2017 proxy workloads (validation set).
    SpecProxy,
    /// lmbench-style latency probes (step 2 of the methodology).
    Probe,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::MemoryHierarchy => "memory",
            Category::ControlFlow => "control",
            Category::DataParallel => "data-parallel",
            Category::Execution => "execution",
            Category::StoreIntensive => "store",
            Category::SpecProxy => "spec",
            Category::Probe => "probe",
        })
    }
}

/// How far a workload's dynamic instruction count is scaled down from the
/// paper's Table I / Table II values.
///
/// The paper simulates the full counts (up to 66 M instructions per
/// micro-benchmark and billions for SPEC); scaling keeps tuning runs
/// tractable while preserving each kernel's behaviour, since every kernel
/// reaches steady state within a few thousand iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    divisor: u64,
}

impl Scale {
    /// The paper's full dynamic instruction counts.
    ///
    /// Note: at full scale the largest kernel (`MIP`, 66 M instructions)
    /// needs roughly 2.6 GiB for its in-memory trace; stream through
    /// [`racesim_trace::TraceWriter`] or choose a larger divisor on
    /// memory-constrained hosts.
    pub const FULL: Scale = Scale { divisor: 1 };
    /// 1/128 of the paper's counts — the default for benchmarking.
    pub const DEFAULT: Scale = Scale { divisor: 128 };
    /// 1/2048 of the paper's counts — for unit tests and CI.
    pub const TINY: Scale = Scale { divisor: 2048 };

    /// A custom divisor (>= 1).
    pub fn divide_by(divisor: u64) -> Scale {
        Scale {
            divisor: divisor.max(1),
        }
    }

    /// Scales a Table-I dynamic instruction target, with a floor that
    /// keeps even tiny kernels meaningful.
    pub fn apply(&self, target: u64) -> u64 {
        (target / self.divisor).max(512)
    }

    /// The divisor this scale applies (for recording a campaign's scale
    /// in a journal so a replay can reconstruct it).
    pub fn divisor(&self) -> u64 {
        self.divisor
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale::DEFAULT
    }
}

/// A runnable workload: a program plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (Table I / Table II naming).
    pub name: String,
    /// Category.
    pub category: Category,
    /// The program to execute.
    pub program: Program,
    /// Emulation budget (dynamic instructions) before declaring a runaway.
    pub inst_limit: u64,
    /// Whether the kernel deliberately reads uninitialised memory — the
    /// hazard the paper hit with "a couple memory-intensive
    /// micro-benchmarks \[that\] access an uninitialized array".
    pub uninit_data: bool,
}

impl Workload {
    /// Creates a workload with a limit comfortably above `expected_insts`.
    pub fn new(
        name: impl Into<String>,
        category: Category,
        program: Program,
        expected_insts: u64,
    ) -> Workload {
        Workload {
            name: name.into(),
            category,
            program,
            inst_limit: expected_insts.saturating_mul(4).max(1 << 16),
            uninit_data: false,
        }
    }

    /// Marks the workload as touching uninitialised data.
    pub fn with_uninit_data(mut self) -> Workload {
        self.uninit_data = true;
        self
    }

    /// Executes the workload and records its instruction trace.
    ///
    /// # Errors
    ///
    /// Propagates emulation failures (which indicate a kernel bug).
    pub fn trace(&self) -> Result<TraceBuffer, EmuError> {
        record_trace(&self.program, self.inst_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_applies_floor_and_divisor() {
        assert_eq!(Scale::FULL.apply(1000), 1000);
        assert_eq!(Scale::divide_by(10).apply(100_000), 10_000);
        assert_eq!(Scale::TINY.apply(4000), 512, "floor kicks in");
        assert_eq!(Scale::divide_by(0).apply(100), 512, "divisor clamped");
    }

    #[test]
    fn categories_display() {
        assert_eq!(Category::MemoryHierarchy.to_string(), "memory");
        assert_eq!(Category::SpecProxy.to_string(), "spec");
    }
}
