//! A single set-associative cache level.

use crate::config::{CacheConfig, Replacement};
use crate::hash::SetIndexer;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The block was present in the set.
    Hit {
        /// Whether the line had been brought in by the prefetcher and not
        /// yet demanded (a "useful prefetch" on first demand hit).
        was_prefetched: bool,
    },
    /// The block was found in the victim buffer and swapped back in.
    VictimHit,
    /// The block was absent and (optionally) allocated.
    Miss {
        /// Dirty victim block that must be written back, if any.
        writeback: Option<u64>,
    },
}

impl LookupOutcome {
    /// Whether the access hit in this cache (set or victim buffer).
    pub fn is_hit(&self) -> bool {
        !matches!(self, LookupOutcome::Miss { .. })
    }
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits (including victim-buffer hits).
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Hits served from the victim buffer.
    pub victim_hits: u64,
    /// Dirty evictions (writebacks to the next level).
    pub writebacks: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Demand hits on not-yet-touched prefetched lines.
    pub useful_prefetches: u64,
}

impl CacheStats {
    /// Demand miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    /// Timestamp of last use (LRU), or of insertion (FIFO).
    stamp: u64,
    /// Bit-PLRU recency bit.
    mru: bool,
}

#[derive(Debug, Clone, Copy)]
struct VictimEntry {
    tag: u64,
    dirty: bool,
    stamp: u64,
}

/// A set-associative cache with configurable replacement, hashing and a
/// victim buffer.
///
/// The cache operates on *block numbers* (addresses already divided by the
/// line size); the surrounding [`MemoryHierarchy`](crate::MemoryHierarchy)
/// handles byte addresses and timing.
#[derive(Debug, Clone)]
pub struct Cache {
    assoc: usize,
    replacement: Replacement,
    indexer: SetIndexer,
    ways: Vec<Way>, // num_sets * assoc, set-major
    victim: Vec<VictimEntry>,
    victim_cap: usize,
    clock: u64,
    rng: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Cache {
        let sets = cfg.num_sets();
        Cache {
            assoc: cfg.assoc as usize,
            replacement: cfg.replacement,
            indexer: SetIndexer::new(cfg.hash, sets),
            ways: vec![Way::default(); (sets * cfg.assoc) as usize],
            victim: Vec::new(),
            victim_cap: cfg.victim_entries as usize,
            clock: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: CacheStats::default(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let set = self.indexer.index_of(block) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*; deterministic across runs.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn choose_victim(&mut self, range: std::ops::Range<usize>) -> usize {
        // Invalid ways first.
        if let Some(i) = range.clone().find(|&i| !self.ways[i].valid) {
            return i;
        }
        match self.replacement {
            Replacement::Lru | Replacement::Fifo => range
                .clone()
                .min_by_key(|&i| self.ways[i].stamp)
                .expect("non-empty set"),
            Replacement::Random => {
                let r = self.next_rand() as usize % self.assoc;
                range.start + r
            }
            Replacement::PseudoLru => {
                // Bit-PLRU: evict the first way whose MRU bit is clear.
                range
                    .clone()
                    .find(|&i| !self.ways[i].mru)
                    .unwrap_or(range.start)
            }
        }
    }

    fn touch(&mut self, idx: usize, set: std::ops::Range<usize>) {
        self.clock += 1;
        match self.replacement {
            Replacement::Lru => self.ways[idx].stamp = self.clock,
            Replacement::Fifo | Replacement::Random => {}
            Replacement::PseudoLru => {
                self.ways[idx].mru = true;
                // If every way is now MRU, clear all others.
                if set.clone().all(|i| self.ways[i].mru) {
                    for i in set {
                        if i != idx {
                            self.ways[i].mru = false;
                        }
                    }
                }
            }
        }
    }

    fn victim_lookup(&mut self, block: u64) -> Option<VictimEntry> {
        let pos = self.victim.iter().position(|v| v.tag == block)?;
        Some(self.victim.remove(pos))
    }

    fn victim_insert(&mut self, tag: u64, dirty: bool) -> Option<u64> {
        if self.victim_cap == 0 {
            return dirty.then_some(tag);
        }
        self.clock += 1;
        self.victim.push(VictimEntry {
            tag,
            dirty,
            stamp: self.clock,
        });
        if self.victim.len() > self.victim_cap {
            let oldest = self
                .victim
                .iter()
                .enumerate()
                .min_by_key(|(_, v)| v.stamp)
                .map(|(i, _)| i)
                .expect("non-empty victim buffer");
            let evicted = self.victim.remove(oldest);
            return evicted.dirty.then_some(evicted.tag);
        }
        None
    }

    /// Performs a demand access for `block`.
    ///
    /// `is_write` marks the line dirty on hit or fill; `allocate` controls
    /// whether a missing block is installed (write-no-allocate stores pass
    /// `false`).
    pub fn access(&mut self, block: u64, is_write: bool, allocate: bool) -> LookupOutcome {
        self.stats.accesses += 1;
        let range = self.set_range(block);

        if let Some(idx) = range
            .clone()
            .find(|&i| self.ways[i].valid && self.ways[i].tag == block)
        {
            self.stats.hits += 1;
            let was_prefetched = self.ways[idx].prefetched;
            if was_prefetched {
                self.stats.useful_prefetches += 1;
                self.ways[idx].prefetched = false;
            }
            if is_write {
                self.ways[idx].dirty = true;
            }
            self.touch(idx, range);
            return LookupOutcome::Hit { was_prefetched };
        }

        // Victim buffer.
        if self.victim_cap > 0 {
            if let Some(v) = self.victim_lookup(block) {
                self.stats.hits += 1;
                self.stats.victim_hits += 1;
                // Swap back into the set.
                let idx = self.choose_victim(range.clone());
                let old = self.ways[idx];
                if old.valid {
                    // The displaced line goes to the victim buffer; its
                    // eviction (if any) is silent unless dirty.
                    if let Some(wb) = self.victim_insert(old.tag, old.dirty) {
                        self.stats.writebacks += 1;
                        let _ = wb;
                    }
                }
                self.clock += 1;
                self.ways[idx] = Way {
                    tag: block,
                    valid: true,
                    dirty: v.dirty || is_write,
                    prefetched: false,
                    stamp: self.clock,
                    mru: false,
                };
                self.touch(idx, range);
                return LookupOutcome::VictimHit;
            }
        }

        self.stats.misses += 1;
        if !allocate {
            return LookupOutcome::Miss { writeback: None };
        }
        let idx = self.choose_victim(range.clone());
        let old = self.ways[idx];
        let mut writeback = None;
        if old.valid {
            if let Some(wb) = self.victim_insert(old.tag, old.dirty) {
                self.stats.writebacks += 1;
                writeback = Some(wb);
            }
        }
        self.clock += 1;
        self.ways[idx] = Way {
            tag: block,
            valid: true,
            dirty: is_write,
            prefetched: false,
            stamp: self.clock,
            mru: false,
        };
        self.touch(idx, range);
        LookupOutcome::Miss { writeback }
    }

    /// Installs `block` as a prefetch, without touching demand statistics.
    ///
    /// Returns a dirty writeback block if the fill evicted one. A block
    /// already present is left untouched.
    pub fn fill_prefetch(&mut self, block: u64) -> Option<u64> {
        let range = self.set_range(block);
        if range
            .clone()
            .any(|i| self.ways[i].valid && self.ways[i].tag == block)
        {
            return None;
        }
        self.stats.prefetch_fills += 1;
        let idx = self.choose_victim(range.clone());
        let old = self.ways[idx];
        let mut writeback = None;
        if old.valid {
            if let Some(wb) = self.victim_insert(old.tag, old.dirty) {
                self.stats.writebacks += 1;
                writeback = Some(wb);
            }
        }
        self.clock += 1;
        self.ways[idx] = Way {
            tag: block,
            valid: true,
            dirty: false,
            prefetched: true,
            stamp: self.clock,
            mru: false,
        };
        writeback
    }

    /// Installs `block` silently: no statistics, no writeback tracking.
    ///
    /// Used to pre-warm caches (e.g. code footprints before timing starts,
    /// or the paper's "initializing the arrays prior to simulation" fix).
    pub fn prefill(&mut self, block: u64) {
        let range = self.set_range(block);
        if range
            .clone()
            .any(|i| self.ways[i].valid && self.ways[i].tag == block)
        {
            return;
        }
        let idx = self.choose_victim(range.clone());
        self.clock += 1;
        self.ways[idx] = Way {
            tag: block,
            valid: true,
            dirty: false,
            prefetched: false,
            stamp: self.clock,
            mru: false,
        };
        self.touch(idx, range);
    }

    /// Whether `block` is currently resident (no state change).
    pub fn contains(&self, block: u64) -> bool {
        let set = self.indexer.index_of(block) as usize;
        self.ways[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IndexHash, TagAccess};

    /// A 4-set cache: `assoc` must keep `4 * assoc * 64` a KiB multiple
    /// (assoc = 4, 8, …).
    fn tiny(assoc: u32, replacement: Replacement, victim: u32) -> Cache {
        let cfg = CacheConfig {
            size_kb: 4 * assoc * 64 / 1024,
            assoc,
            line_bytes: 64,
            latency: 1,
            replacement,
            hash: IndexHash::Mask,
            tag_access: TagAccess::Parallel,
            ports: 1,
            mshrs: 4,
            victim_entries: victim,
            write_allocate: true,
        };
        assert_eq!(cfg.num_sets(), 4);
        Cache::new(&cfg)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(4, Replacement::Lru, 0);
        assert!(!c.access(10, false, true).is_hit());
        assert!(c.access(10, false, true).is_hit());
        assert!(c.contains(10));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny(4, Replacement::Lru, 0);
        // Four blocks in the same set (stride 4 = num_sets).
        for b in [0u64, 4, 8, 12] {
            c.access(b, false, true);
        }
        // Touch 0 so 4 becomes LRU.
        c.access(0, false, true);
        // Insert a fifth conflicting block.
        c.access(16, false, true);
        assert!(c.contains(0), "recently used stays");
        assert!(!c.contains(4), "LRU evicted");
        assert!(c.contains(16));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = tiny(4, Replacement::Fifo, 0);
        for b in [0u64, 4, 8, 12] {
            c.access(b, false, true);
        }
        c.access(0, false, true); // touch; FIFO ignores this
        c.access(16, false, true);
        assert!(!c.contains(0), "oldest insertion evicted despite touch");
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny(4, Replacement::Lru, 0);
        c.access(0, true, true); // dirty
        for b in [4u64, 8, 12] {
            c.access(b, false, true);
        }
        let out = c.access(16, false, true);
        assert_eq!(out, LookupOutcome::Miss { writeback: Some(0) });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = tiny(4, Replacement::Lru, 0);
        for b in [0u64, 4, 8, 12] {
            c.access(b, false, true);
        }
        let out = c.access(16, false, true);
        assert_eq!(out, LookupOutcome::Miss { writeback: None });
    }

    #[test]
    fn no_allocate_leaves_cache_unchanged() {
        let mut c = tiny(4, Replacement::Lru, 0);
        let out = c.access(7, true, false);
        assert_eq!(out, LookupOutcome::Miss { writeback: None });
        assert!(!c.contains(7));
    }

    #[test]
    fn victim_buffer_catches_conflict_evictions() {
        let mut c = tiny(4, Replacement::Lru, 4);
        for b in [0u64, 4, 8, 12, 16] {
            c.access(b, false, true);
        }
        // Block 0 was evicted into the victim buffer.
        assert!(!c.contains(0));
        let out = c.access(0, false, true);
        assert_eq!(out, LookupOutcome::VictimHit);
        assert!(c.contains(0), "swapped back in");
        assert_eq!(c.stats().victim_hits, 1);
    }

    #[test]
    fn prefetch_fill_and_useful_prefetch_accounting() {
        let mut c = tiny(4, Replacement::Lru, 0);
        assert_eq!(c.fill_prefetch(20), None);
        assert_eq!(c.stats().prefetch_fills, 1);
        // Duplicate prefetch is a no-op.
        assert_eq!(c.fill_prefetch(20), None);
        assert_eq!(c.stats().prefetch_fills, 1);
        // First demand hit counts as useful.
        let out = c.access(20, false, true);
        assert_eq!(
            out,
            LookupOutcome::Hit {
                was_prefetched: true
            }
        );
        assert_eq!(c.stats().useful_prefetches, 1);
        // Second demand hit is an ordinary hit.
        let out = c.access(20, false, true);
        assert_eq!(
            out,
            LookupOutcome::Hit {
                was_prefetched: false
            }
        );
    }

    #[test]
    fn plru_and_random_always_find_a_victim() {
        for policy in [Replacement::PseudoLru, Replacement::Random] {
            let mut c = tiny(4, policy, 0);
            for b in 0..64u64 {
                c.access(b, false, true);
            }
            let s = c.stats();
            assert_eq!(s.accesses, 64);
            assert_eq!(s.misses, 64, "{policy:?}: all distinct blocks miss");
        }
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny(4, Replacement::Lru, 0);
        c.access(0, false, true);
        c.access(0, false, true);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().miss_rate(), 0.0);
    }
}
