//! Configuration types for the memory hierarchy.
//!
//! Every field here is a candidate for the validation methodology: fields
//! documented in technical reference manuals are set from public
//! information (step 1), latencies are estimated with lmbench-style probes
//! (step 2), and the rest — hashing, prefetchers, ports, MSHRs, victim
//! entries, tag access — are exactly the kind of undisclosed parameters the
//! racing tuner searches over (steps 3–4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cache replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Least recently used (true LRU).
    Lru,
    /// Tree-based pseudo-LRU.
    PseudoLru,
    /// Pseudo-random (xorshift).
    Random,
    /// First-in first-out.
    Fifo,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Replacement::Lru => "lru",
            Replacement::PseudoLru => "plru",
            Replacement::Random => "random",
            Replacement::Fifo => "fifo",
        };
        f.write_str(s)
    }
}

/// Set-index hashing scheme.
///
/// The paper: *"we implement mask-based, xor-based, and Mersenne modulo
/// address hashing for cache indexing"* (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexHash {
    /// Classic power-of-two bit selection.
    Mask,
    /// Upper tag bits XOR-folded into the index.
    Xor,
    /// Modulo by the largest prime not exceeding the set count
    /// (prime-number cache indexing, Kharbutli et al.).
    MersenneMod,
}

impl fmt::Display for IndexHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IndexHash::Mask => "mask",
            IndexHash::Xor => "xor",
            IndexHash::MersenneMod => "mersenne",
        };
        f.write_str(s)
    }
}

/// Whether tags and data are accessed in series or in parallel.
///
/// Serial access saves energy but adds a cycle to the hit latency; it is
/// one of the undisclosed parameters the paper tunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagAccess {
    /// Tags and data probed together: no extra latency.
    Parallel,
    /// Data array accessed only after tag match: +1 cycle on hits.
    Serial,
}

impl fmt::Display for TagAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TagAccess::Parallel => "parallel",
            TagAccess::Serial => "serial",
        })
    }
}

/// Which prefetcher a cache level uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherConfig {
    /// No prefetching.
    None,
    /// Prefetch the next sequential line on every miss.
    NextLine,
    /// PC-indexed stride prefetcher (Fu/Patel/Janssens style).
    Stride {
        /// Number of table entries (power of two).
        table_entries: u32,
        /// Prefetch distance, in strides ahead of the current access.
        degree: u8,
    },
    /// Global history buffer, delta-correlation flavour (Nesbit/Smith).
    Ghb {
        /// History buffer depth.
        buffer_entries: u32,
        /// Index-table entries (power of two).
        index_entries: u32,
        /// Number of deltas prefetched per trigger.
        degree: u8,
    },
}

impl PrefetcherConfig {
    /// A short name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PrefetcherConfig::None => "none",
            PrefetcherConfig::NextLine => "next-line",
            PrefetcherConfig::Stride { .. } => "stride",
            PrefetcherConfig::Ghb { .. } => "ghb",
        }
    }
}

impl fmt::Display for PrefetcherConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefetcherConfig::Stride {
                table_entries,
                degree,
            } => write!(f, "stride({table_entries}x, d{degree})"),
            PrefetcherConfig::Ghb {
                buffer_entries,
                index_entries,
                degree,
            } => write!(f, "ghb({buffer_entries}/{index_entries}, d{degree})"),
            other => f.write_str(other.kind_name()),
        }
    }
}

/// Where a prefetcher trains and prefetches into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchWhere {
    /// Train on L1D accesses, fill into L1D.
    L1,
    /// Train on L2 accesses, fill into L2.
    L2,
}

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in KiB.
    pub size_kb: u32,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Load-to-use latency of a hit, in cycles.
    pub latency: u64,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Set-index hashing.
    pub hash: IndexHash,
    /// Tag/data access organisation.
    pub tag_access: TagAccess,
    /// Accesses accepted per cycle (port count).
    pub ports: u32,
    /// Miss-status holding registers (outstanding misses).
    pub mshrs: u32,
    /// Fully-associative victim-cache entries (0 disables it).
    pub victim_entries: u32,
    /// Whether stores allocate on miss (write-allocate).
    pub write_allocate: bool,
}

impl CacheConfig {
    /// Number of sets implied by size, associativity and line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (not a power-of-two set
    /// count, or zero-sized).
    pub fn num_sets(&self) -> u32 {
        let bytes = self.size_kb as u64 * 1024;
        let set_bytes = self.assoc as u64 * self.line_bytes as u64;
        assert!(set_bytes > 0, "cache way must hold at least one line");
        let sets = bytes / set_bytes;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "cache geometry must give a power-of-two set count, got {sets}"
        );
        sets as u32
    }

    /// A 32 KiB, 4-way, 64 B-line cache with sensible defaults.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_kb: 32,
            assoc: 4,
            line_bytes: 64,
            latency: 3,
            replacement: Replacement::Lru,
            hash: IndexHash::Mask,
            tag_access: TagAccess::Parallel,
            ports: 1,
            mshrs: 4,
            victim_entries: 0,
            write_allocate: true,
        }
    }

    /// A 512 KiB, 16-way unified L2 with sensible defaults.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size_kb: 512,
            assoc: 16,
            line_bytes: 64,
            latency: 12,
            replacement: Replacement::Lru,
            hash: IndexHash::Mask,
            tag_access: TagAccess::Serial,
            ports: 1,
            mshrs: 8,
            victim_entries: 0,
            write_allocate: true,
        }
    }
}

/// Main-memory timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Flat access latency, in core cycles.
    pub latency: u64,
    /// Peak bandwidth, in bytes per core cycle.
    pub bytes_per_cycle: u32,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            latency: 160,
            bytes_per_cycle: 8,
        }
    }
}

/// TLB configuration (optional model component).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u32,
    /// Page-walk penalty on a miss, in cycles.
    pub miss_penalty: u64,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 48,
            page_bytes: 4096,
            miss_penalty: 30,
        }
    }
}

/// Full hierarchy configuration: split L1s, unified L2, DRAM, optional TLB
/// and an optional prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Data TLB; `None` leaves translation unmodelled.
    pub tlb: Option<TlbConfig>,
    /// Data prefetcher.
    pub prefetcher: PrefetcherConfig,
    /// Which level the prefetcher trains on and fills.
    pub prefetch_where: PrefetchWhere,
    /// Whether a hit on a prefetched line re-triggers the prefetcher
    /// (the paper lists "whether to prefetch after a prefetch hit" as a
    /// tunable boolean).
    pub prefetch_on_prefetch_hit: bool,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            dram: DramConfig::default(),
            tlb: None,
            prefetcher: PrefetcherConfig::None,
            prefetch_where: PrefetchWhere::L1,
            prefetch_on_prefetch_hit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_count_from_geometry() {
        let c = CacheConfig::l1_default();
        // 32 KiB / (4 ways * 64 B) = 128 sets.
        assert_eq!(c.num_sets(), 128);
        let l2 = CacheConfig::l2_default();
        // 512 KiB / (16 * 64) = 512 sets.
        assert_eq!(l2.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_sets_rejected() {
        let c = CacheConfig {
            size_kb: 48,
            assoc: 4,
            line_bytes: 64,
            ..CacheConfig::l1_default()
        };
        let _ = c.num_sets();
    }

    #[test]
    fn display_formats() {
        assert_eq!(Replacement::PseudoLru.to_string(), "plru");
        assert_eq!(IndexHash::MersenneMod.to_string(), "mersenne");
        assert_eq!(TagAccess::Serial.to_string(), "serial");
        assert_eq!(
            PrefetcherConfig::Stride {
                table_entries: 64,
                degree: 2
            }
            .to_string(),
            "stride(64x, d2)"
        );
        assert_eq!(PrefetcherConfig::None.to_string(), "none");
    }

    #[test]
    fn defaults_are_consistent() {
        let h = HierarchyConfig::default();
        assert_eq!(h.l1d.num_sets(), 128);
        assert!(h.tlb.is_none());
        assert_eq!(h.prefetcher.kind_name(), "none");
    }
}
