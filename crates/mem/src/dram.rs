//! Main-memory timing model.

use crate::config::DramConfig;

/// A flat-latency, bandwidth-regulated DRAM model.
///
/// Requests pay a fixed access latency plus queueing delay when the
/// configured bandwidth (bytes per core cycle) is oversubscribed. The
/// regulator is a simple leaky bucket over line-sized transfers, which is
/// what Sniper's high-abstraction DRAM model reduces to for single-core
/// studies.
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    cycles_per_line: u64,
    /// Cycle at which the channel becomes free.
    channel_free: u64,
    /// Total demand requests.
    accesses: u64,
    /// Total cycles of queueing delay suffered.
    queue_cycles: u64,
}

impl Dram {
    /// Creates a DRAM model for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth is zero.
    pub fn new(cfg: &DramConfig, line_bytes: u32) -> Dram {
        assert!(cfg.bytes_per_cycle > 0, "DRAM bandwidth must be non-zero");
        let cycles_per_line = (line_bytes as u64).div_ceil(cfg.bytes_per_cycle as u64);
        Dram {
            latency: cfg.latency,
            cycles_per_line: cycles_per_line.max(1),
            channel_free: 0,
            accesses: 0,
            queue_cycles: 0,
        }
    }

    /// Issues a line transfer at `cycle`; returns its completion cycle.
    pub fn access(&mut self, cycle: u64) -> u64 {
        self.accesses += 1;
        let start = cycle.max(self.channel_free);
        self.queue_cycles += start - cycle;
        self.channel_free = start + self.cycles_per_line;
        start + self.latency
    }

    /// Total requests serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total queueing delay across all requests, in cycles.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// The flat access latency, in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_access_pays_flat_latency() {
        let mut d = Dram::new(&DramConfig::default(), 64);
        assert_eq!(d.access(100), 100 + 160);
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    fn back_to_back_accesses_queue_on_bandwidth() {
        let cfg = DramConfig {
            latency: 100,
            bytes_per_cycle: 8,
        };
        // 64B line / 8 Bpc = 8 cycles per line.
        let mut d = Dram::new(&cfg, 64);
        let t1 = d.access(0);
        let t2 = d.access(0);
        let t3 = d.access(0);
        assert_eq!(t1, 100);
        assert_eq!(t2, 108, "second transfer waits for the channel");
        assert_eq!(t3, 116);
        assert_eq!(d.queue_cycles(), 8 + 16);
    }

    #[test]
    fn spaced_accesses_do_not_queue() {
        let cfg = DramConfig {
            latency: 100,
            bytes_per_cycle: 8,
        };
        let mut d = Dram::new(&cfg, 64);
        d.access(0);
        let t = d.access(1000);
        assert_eq!(t, 1100);
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    fn narrow_channel_serialises_harder() {
        let cfg = DramConfig {
            latency: 10,
            bytes_per_cycle: 1,
        };
        let mut d = Dram::new(&cfg, 64);
        let t1 = d.access(0);
        let t2 = d.access(0);
        assert_eq!(t1, 10);
        assert_eq!(t2, 74, "64 cycles of transfer before the second starts");
    }
}
