//! Set-index computation.

use crate::config::IndexHash;

/// Maps block addresses to set indices under a configured hashing scheme.
///
/// Built once per cache from its geometry; hot-path method is
/// [`SetIndexer::index_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetIndexer {
    scheme: IndexHash,
    num_sets: u32,
    set_bits: u32,
    prime: u32,
}

/// Largest prime `<= n` (n >= 2), by trial division — executed once at
/// construction time.
fn largest_prime_at_most(n: u32) -> u32 {
    fn is_prime(x: u32) -> bool {
        if x < 2 {
            return false;
        }
        if x.is_multiple_of(2) {
            return x == 2;
        }
        let mut d = 3u32;
        while (d as u64) * (d as u64) <= x as u64 {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 2;
        }
        true
    }
    let mut p = n;
    while !is_prime(p) {
        p -= 1;
    }
    p
}

impl SetIndexer {
    /// Creates an indexer for a cache with `num_sets` sets (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero or not a power of two, or is 1 with the
    /// Mersenne scheme (no prime available below 2).
    pub fn new(scheme: IndexHash, num_sets: u32) -> SetIndexer {
        assert!(
            num_sets > 0 && num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let prime = if num_sets >= 2 {
            largest_prime_at_most(num_sets)
        } else {
            1
        };
        if scheme == IndexHash::MersenneMod {
            assert!(num_sets >= 2, "Mersenne indexing needs at least 2 sets");
        }
        SetIndexer {
            scheme,
            num_sets,
            set_bits: num_sets.trailing_zeros(),
            prime,
        }
    }

    /// Number of sets this indexer can return (`< num_sets` are reachable
    /// for the Mersenne scheme, exactly `num_sets` otherwise).
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// The set index for a cache-block number (the address already shifted
    /// right by the line-offset bits).
    #[inline]
    pub fn index_of(&self, block: u64) -> u32 {
        match self.scheme {
            IndexHash::Mask => (block & (self.num_sets as u64 - 1)) as u32,
            IndexHash::Xor => {
                let lo = block & (self.num_sets as u64 - 1);
                let hi = (block >> self.set_bits) & (self.num_sets as u64 - 1);
                (lo ^ hi) as u32
            }
            IndexHash::MersenneMod => (block % self.prime as u64) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn primes() {
        assert_eq!(largest_prime_at_most(2), 2);
        assert_eq!(largest_prime_at_most(64), 61);
        assert_eq!(largest_prime_at_most(128), 127); // Mersenne prime!
        assert_eq!(largest_prime_at_most(512), 509);
        assert_eq!(largest_prime_at_most(1024), 1021);
    }

    #[test]
    fn mask_selects_low_bits() {
        let ix = SetIndexer::new(IndexHash::Mask, 128);
        assert_eq!(ix.index_of(0), 0);
        assert_eq!(ix.index_of(127), 127);
        assert_eq!(ix.index_of(128), 0);
        assert_eq!(ix.index_of(130), 2);
    }

    #[test]
    fn all_schemes_stay_in_range() {
        for scheme in [IndexHash::Mask, IndexHash::Xor, IndexHash::MersenneMod] {
            let ix = SetIndexer::new(scheme, 128);
            for block in (0..100_000u64).step_by(7) {
                assert!(ix.index_of(block) < 128, "{scheme:?} {block}");
            }
        }
    }

    #[test]
    fn xor_breaks_power_of_two_strides() {
        // A stride equal to (sets * line) maps every access to one set
        // under mask indexing, but spreads under xor.
        let mask = SetIndexer::new(IndexHash::Mask, 128);
        let xor = SetIndexer::new(IndexHash::Xor, 128);
        let blocks: Vec<u64> = (0..64u64).map(|i| i * 128).collect();
        let mask_sets: HashSet<u32> = blocks.iter().map(|b| mask.index_of(*b)).collect();
        let xor_sets: HashSet<u32> = blocks.iter().map(|b| xor.index_of(*b)).collect();
        assert_eq!(mask_sets.len(), 1, "mask: all conflict");
        assert!(xor_sets.len() >= 32, "xor spreads: {}", xor_sets.len());
    }

    #[test]
    fn mersenne_breaks_power_of_two_strides() {
        let ix = SetIndexer::new(IndexHash::MersenneMod, 128);
        let sets: HashSet<u32> = (0..64u64).map(|i| ix.index_of(i * 128)).collect();
        assert!(sets.len() >= 32, "mersenne spreads: {}", sets.len());
    }

    #[test]
    fn deterministic() {
        let ix = SetIndexer::new(IndexHash::Xor, 64);
        for b in 0..1000 {
            assert_eq!(ix.index_of(b), ix.index_of(b));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_set_count_panics() {
        let _ = SetIndexer::new(IndexHash::Mask, 96);
    }
}
