//! The assembled memory hierarchy and its timing.

use crate::cache::{Cache, CacheStats, LookupOutcome};
use crate::config::{HierarchyConfig, PrefetchWhere, TagAccess};
use crate::dram::Dram;
use crate::prefetch::{self, Prefetcher};
use crate::tlb::{Tlb, TlbStats};
use racesim_telemetry::PhaseTimer;
use std::time::Instant;

/// Kind of memory request issued by a core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Instruction fetch (L1I side).
    IFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// The hierarchy level that serviced a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// First-level cache (instruction or data).
    L1,
    /// Second-level cache.
    L2,
    /// Main memory.
    Mem,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::Mem => "mem",
        })
    }
}

/// Timing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total load-to-use latency from the issue cycle, including port
    /// queueing, TLB walks and MSHR stalls.
    pub latency: u64,
    /// Deepest level that had to service the request.
    pub level: Level,
}

impl AccessResult {
    /// The cycle the data is available, given the issue cycle.
    pub fn ready_at(&self, issue_cycle: u64) -> u64 {
        issue_cycle + self.latency
    }
}

/// Aggregate statistics of the whole hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HierarchyStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Data-TLB counters (zeroed when no TLB is modelled).
    pub tlb: TlbStats,
    /// DRAM requests (demand + writeback + prefetch).
    pub dram_accesses: u64,
    /// Total DRAM queueing cycles.
    pub dram_queue_cycles: u64,
}

/// Simple port-count bandwidth regulator.
#[derive(Debug, Clone, Copy)]
struct PortRegulator {
    ports: u32,
    cycle: u64,
    used: u32,
}

impl PortRegulator {
    fn new(ports: u32) -> PortRegulator {
        PortRegulator {
            ports: ports.max(1),
            cycle: 0,
            used: 0,
        }
    }

    /// Admits a request wanting to start at `at`; returns the actual start
    /// cycle (>= `at`).
    fn admit(&mut self, at: u64) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 1;
            return at;
        }
        // Request arrives at or before the regulator's current cycle: it
        // contends with whatever is already scheduled there.
        if self.used < self.ports {
            self.used += 1;
            self.cycle
        } else {
            self.cycle += 1;
            self.used = 1;
            self.cycle
        }
    }
}

/// Miss-status holding registers: bounds outstanding misses.
#[derive(Debug, Clone)]
struct MshrFile {
    completions: Vec<u64>,
    cap: usize,
}

impl MshrFile {
    fn new(cap: u32) -> MshrFile {
        MshrFile {
            completions: Vec::new(),
            cap: cap.max(1) as usize,
        }
    }

    /// Acquires an entry for a miss issued at `at` completing at
    /// `completion`; returns the stall (cycles the request must wait for a
    /// free entry).
    fn acquire(&mut self, at: u64, completion: u64) -> u64 {
        self.completions.retain(|&c| c > at);
        if self.completions.len() < self.cap {
            self.completions.push(completion);
            return 0;
        }
        let (idx, &earliest) = self
            .completions
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .expect("full MSHR file is non-empty");
        self.completions.swap_remove(idx);
        let stall = earliest - at;
        self.completions.push(completion + stall);
        stall
    }
}

/// The full memory hierarchy: split L1I/L1D, unified L2, DRAM, optional
/// data TLB and optional prefetcher.
///
/// Core models call [`MemoryHierarchy::access`] once per instruction fetch
/// line and once per data memory operation, passing the cycle at which the
/// request would issue; the result carries the full load-to-use latency
/// with all queueing included.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram: Dram,
    tlb: Option<Tlb>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    prefetch_where: PrefetchWhere,
    prefetch_on_prefetch_hit: bool,

    l1i_shift: u32,
    l1d_shift: u32,
    l2_shift: u32,
    l1i_lat: u64,
    l1d_lat: u64,
    l2_lat: u64,
    l1i_serial: u64,
    l1d_serial: u64,
    l2_serial: u64,
    l1d_write_allocate: bool,

    l1i_ports: PortRegulator,
    l1d_ports: PortRegulator,
    l2_ports: PortRegulator,
    l1d_mshrs: MshrFile,
    l2_mshrs: MshrFile,

    scratch_prefetch: Vec<u64>,
    prof: MemProf,
}

/// Pre-resolved self-profiler phases for the access paths. `on` keeps
/// the unprofiled hot path to a single branch; all timers are dead
/// no-ops until [`MemoryHierarchy::attach_profiler`] is called with an
/// enabled profiler.
#[derive(Debug, Default, Clone)]
struct MemProf {
    on: bool,
    l1: PhaseTimer,
    l2: PhaseTimer,
    dram: PhaseTimer,
    tlb: PhaseTimer,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent cache geometry (see
    /// [`CacheConfig::num_sets`](crate::CacheConfig::num_sets)).
    pub fn new(cfg: &HierarchyConfig) -> MemoryHierarchy {
        let serial = |t: TagAccess| match t {
            TagAccess::Parallel => 0,
            TagAccess::Serial => 1,
        };
        MemoryHierarchy {
            l1i: Cache::new(&cfg.l1i),
            l1d: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            dram: Dram::new(&cfg.dram, cfg.l2.line_bytes),
            tlb: cfg.tlb.as_ref().map(Tlb::new),
            prefetcher: prefetch::build(cfg.prefetcher),
            prefetch_where: cfg.prefetch_where,
            prefetch_on_prefetch_hit: cfg.prefetch_on_prefetch_hit,
            l1i_shift: cfg.l1i.line_bytes.trailing_zeros(),
            l1d_shift: cfg.l1d.line_bytes.trailing_zeros(),
            l2_shift: cfg.l2.line_bytes.trailing_zeros(),
            l1i_lat: cfg.l1i.latency,
            l1d_lat: cfg.l1d.latency,
            l2_lat: cfg.l2.latency,
            l1i_serial: serial(cfg.l1i.tag_access),
            l1d_serial: serial(cfg.l1d.tag_access),
            l2_serial: serial(cfg.l2.tag_access),
            l1d_write_allocate: cfg.l1d.write_allocate,
            l1i_ports: PortRegulator::new(cfg.l1i.ports),
            l1d_ports: PortRegulator::new(cfg.l1d.ports),
            l2_ports: PortRegulator::new(cfg.l2.ports),
            l1d_mshrs: MshrFile::new(cfg.l1d.mshrs),
            l2_mshrs: MshrFile::new(cfg.l2.mshrs),
            scratch_prefetch: Vec::with_capacity(prefetch::MAX_DEGREE),
            prof: MemProf::default(),
        }
    }

    /// Attaches the self-profiler. Subsequent accesses attribute their
    /// wall time and simulated latency cycles to `parent`'s `l1` / `l2`
    /// / `dram` children — keyed by the level that serviced the request
    /// — and TLB walk cycles to a `tlb` child. With a disabled `parent`
    /// this stays a no-op and the hot path keeps its single branch.
    pub fn attach_profiler(&mut self, parent: &PhaseTimer) {
        self.prof = MemProf {
            on: parent.is_enabled(),
            l1: parent.child("l1"),
            l2: parent.child("l2"),
            dram: parent.child("dram"),
            tlb: parent.child("tlb"),
        };
    }

    /// The line size of the L1 instruction cache, in bytes.
    pub fn l1i_line_bytes(&self) -> u64 {
        1 << self.l1i_shift
    }

    /// The line size of the L1 data cache, in bytes.
    pub fn l1d_line_bytes(&self) -> u64 {
        1 << self.l1d_shift
    }

    /// The L1I hit latency (including serial tag access), in cycles.
    ///
    /// Core models use this to separate the pipelined fetch-hit cost from
    /// genuine miss stalls.
    pub fn l1i_hit_latency(&self) -> u64 {
        self.l1i_lat + self.l1i_serial
    }

    /// The L1D hit latency (including serial tag access), in cycles.
    pub fn l1d_hit_latency(&self) -> u64 {
        self.l1d_lat + self.l1d_serial
    }

    /// Silently installs the code line containing `addr` into L1I and L2.
    ///
    /// No statistics or bandwidth are charged; use before timing starts to
    /// model an already-warm instruction footprint.
    pub fn prefill_code(&mut self, addr: u64) {
        self.l1i.prefill(addr >> self.l1i_shift);
        self.l2.prefill(addr >> self.l2_shift);
    }

    /// Silently installs the data line containing `addr` into L1D and L2.
    pub fn prefill_data(&mut self, addr: u64) {
        self.l1d.prefill(addr >> self.l1d_shift);
        self.l2.prefill(addr >> self.l2_shift);
    }

    /// Silently installs the data line containing `addr` into the L2 only
    /// (models lines left warm by kernel page zeroing, which fit the L2
    /// but not the L1).
    pub fn prefill_data_l2(&mut self, addr: u64) {
        self.l2.prefill(addr >> self.l2_shift);
    }

    /// Services an L2 (and possibly DRAM) fill for `addr` starting at
    /// `at`; returns the completion cycle.
    fn l2_fill(&mut self, addr: u64, at: u64) -> (u64, Level) {
        let block = addr >> self.l2_shift;
        let start = self.l2_ports.admit(at);
        match self.l2.access(block, false, true) {
            LookupOutcome::Hit { .. } => (start + self.l2_lat + self.l2_serial, Level::L2),
            LookupOutcome::VictimHit => (start + self.l2_lat + self.l2_serial + 2, Level::L2),
            LookupOutcome::Miss { writeback } => {
                let tag_time = start + self.l2_lat;
                let stall = self
                    .l2_mshrs
                    .acquire(tag_time, tag_time + self.dram.latency());
                let done = self.dram.access(tag_time + stall);
                if writeback.is_some() {
                    // Dirty L2 eviction: consumes DRAM bandwidth only.
                    self.dram.access(done);
                }
                (done, Level::Mem)
            }
        }
    }

    /// Charges an L1D dirty writeback to the L2 (bandwidth only).
    fn l1_writeback(&mut self, block_l1: u64, at: u64) {
        let addr = block_l1 << self.l1d_shift;
        let l2_block = addr >> self.l2_shift;
        let start = self.l2_ports.admit(at);
        if let LookupOutcome::Miss { writeback } = self.l2.access(l2_block, true, true) {
            let done = self.dram.access(start + self.l2_lat);
            if writeback.is_some() {
                self.dram.access(done);
            }
        }
    }

    fn run_prefetcher(&mut self, pc: u64, addr: u64, outcome: &LookupOutcome, at: u64) {
        let Some(pf) = self.prefetcher.as_mut() else {
            return;
        };
        let (shift, in_l1) = match self.prefetch_where {
            PrefetchWhere::L1 => (self.l1d_shift, true),
            PrefetchWhere::L2 => (self.l2_shift, false),
        };
        let block = addr >> shift;
        let hit = match outcome {
            LookupOutcome::Hit { was_prefetched } => {
                !(*was_prefetched && self.prefetch_on_prefetch_hit)
            }
            LookupOutcome::VictimHit => true,
            LookupOutcome::Miss { .. } => false,
        };
        self.scratch_prefetch.clear();
        pf.observe(pc, block, hit, &mut self.scratch_prefetch);
        let preds = std::mem::take(&mut self.scratch_prefetch);
        for &p in &preds {
            if in_l1 {
                // Fill L1D from L2: consumes an L2 port slot.
                let wb = self.l1d.fill_prefetch(p);
                let t = self.l2_ports.admit(at);
                let addr_p = p << self.l1d_shift;
                let l2_block = addr_p >> self.l2_shift;
                if let LookupOutcome::Miss { .. } = self.l2.access(l2_block, false, true) {
                    self.dram.access(t + self.l2_lat);
                }
                if let Some(dirty) = wb {
                    self.l1_writeback(dirty, at);
                }
            } else {
                // Fill L2 from DRAM.
                if self.l2.fill_prefetch(p).is_some() || !self.l2.contains(p) {
                    // Either we evicted something dirty or freshly filled:
                    // both consume a DRAM transfer.
                }
                self.dram.access(at);
            }
        }
        self.scratch_prefetch = preds;
    }

    /// Performs one memory access.
    ///
    /// * `op` — fetch, load or store;
    /// * `addr` — virtual byte address;
    /// * `pc` — program counter of the instruction (prefetcher training);
    /// * `cycle` — cycle at which the request issues.
    pub fn access(&mut self, op: MemOp, addr: u64, pc: u64, cycle: u64) -> AccessResult {
        if !self.prof.on {
            return self.access_inner(op, addr, pc, cycle);
        }
        let t0 = Instant::now();
        let result = self.access_inner(op, addr, pc, cycle);
        let ns = t0.elapsed().as_nanos() as u64;
        let timer = match result.level {
            Level::L1 => &self.prof.l1,
            Level::L2 => &self.prof.l2,
            Level::Mem => &self.prof.dram,
        };
        timer.add(1, ns);
        timer.add_cycles(result.latency);
        result
    }

    fn access_inner(&mut self, op: MemOp, addr: u64, pc: u64, cycle: u64) -> AccessResult {
        match op {
            MemOp::IFetch => {
                let block = addr >> self.l1i_shift;
                let start = self.l1i_ports.admit(cycle);
                let queued = start - cycle;
                match self.l1i.access(block, false, true) {
                    LookupOutcome::Hit { .. } => AccessResult {
                        latency: queued + self.l1i_lat + self.l1i_serial,
                        level: Level::L1,
                    },
                    LookupOutcome::VictimHit => AccessResult {
                        latency: queued + self.l1i_lat + self.l1i_serial + 2,
                        level: Level::L1,
                    },
                    LookupOutcome::Miss { .. } => {
                        // Instruction lines are never dirty; no writeback.
                        let (done, level) = self.l2_fill(addr, start + self.l1i_lat);
                        AccessResult {
                            latency: done - cycle,
                            level,
                        }
                    }
                }
            }
            MemOp::Load | MemOp::Store => {
                let is_store = op == MemOp::Store;
                let mut extra = 0;
                if let Some(tlb) = self.tlb.as_mut() {
                    extra += tlb.translate(addr);
                }
                if extra > 0 {
                    // A TLB walk happened; count it and its cycles (the
                    // wall time stays inside the overall access).
                    self.prof.tlb.add(1, 0);
                    self.prof.tlb.add_cycles(extra);
                }
                let block = addr >> self.l1d_shift;
                let start = self.l1d_ports.admit(cycle + extra);
                let allocate = !is_store || self.l1d_write_allocate;
                let outcome = self.l1d.access(block, is_store, allocate);
                let result = match outcome {
                    LookupOutcome::Hit { .. } => AccessResult {
                        latency: (start - cycle) + self.l1d_lat + self.l1d_serial,
                        level: Level::L1,
                    },
                    LookupOutcome::VictimHit => AccessResult {
                        latency: (start - cycle) + self.l1d_lat + self.l1d_serial + 2,
                        level: Level::L1,
                    },
                    LookupOutcome::Miss { writeback } => {
                        let tag_time = start + self.l1d_lat;
                        if let Some(dirty) = writeback {
                            self.l1_writeback(dirty, tag_time);
                        }
                        if is_store && !self.l1d_write_allocate {
                            // Write-through for this line: pay L2 bandwidth,
                            // but the store completes quickly locally.
                            let t = self.l2_ports.admit(tag_time);
                            let l2_block = addr >> self.l2_shift;
                            if let LookupOutcome::Miss { .. } = self.l2.access(l2_block, true, true)
                            {
                                self.dram.access(t + self.l2_lat);
                            }
                            AccessResult {
                                latency: (start - cycle) + self.l1d_lat,
                                level: Level::L2,
                            }
                        } else {
                            let stall =
                                self.l1d_mshrs.acquire(tag_time, tag_time + self.l2_lat + 1);
                            let (done, level) = self.l2_fill(addr, tag_time + stall);
                            AccessResult {
                                latency: done - cycle,
                                level,
                            }
                        }
                    }
                };
                if self.prefetch_where == PrefetchWhere::L1 {
                    self.run_prefetcher(pc, addr, &outcome, start);
                } else if !outcome.is_hit() {
                    // Train the L2 prefetcher on L1 misses (the L2 demand
                    // stream).
                    let l2_outcome = if result.level == Level::Mem {
                        LookupOutcome::Miss { writeback: None }
                    } else {
                        LookupOutcome::Hit {
                            was_prefetched: false,
                        }
                    };
                    self.run_prefetcher(pc, addr, &l2_outcome, start);
                }
                result
            }
        }
    }

    /// Statistics accumulated since construction or the last reset.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            tlb: self.tlb.as_ref().map(|t| t.stats()).unwrap_or_default(),
            dram_accesses: self.dram.accesses(),
            dram_queue_cycles: self.dram.queue_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, DramConfig, PrefetcherConfig, TlbConfig};

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig {
                size_kb: 1,
                assoc: 2,
                latency: 1,
                ..CacheConfig::l1_default()
            },
            l1d: CacheConfig {
                size_kb: 1,
                assoc: 2,
                latency: 2,
                mshrs: 2,
                ..CacheConfig::l1_default()
            },
            l2: CacheConfig {
                size_kb: 8,
                assoc: 4,
                latency: 10,
                ..CacheConfig::l2_default()
            },
            dram: DramConfig {
                latency: 100,
                bytes_per_cycle: 8,
            },
            tlb: None,
            prefetcher: PrefetcherConfig::None,
            prefetch_where: PrefetchWhere::L1,
            prefetch_on_prefetch_hit: false,
        }
    }

    #[test]
    fn latency_ladder_l1_l2_mem() {
        let mut m = MemoryHierarchy::new(&small_cfg());
        let cold = m.access(MemOp::Load, 0x4000, 0, 0);
        assert_eq!(cold.level, Level::Mem);
        // l1 tag (2) + l2 tag (10) + dram 100 = 112 plus serial L2 handled
        // inside l2_fill; exact value checked loosely:
        assert!(cold.latency >= 112, "got {}", cold.latency);

        let warm = m.access(MemOp::Load, 0x4000, 0, 200);
        assert_eq!(warm.level, Level::L1);
        assert_eq!(warm.latency, 2);

        // Evict from tiny L1D (1KiB/2way/64B = 8 sets): stride 512B maps
        // every line to L1 set 0, while spreading across four L2 sets so
        // 0x4000 survives in L2.
        for i in 1..=8u64 {
            m.access(MemOp::Load, 0x4000 + i * 512, 0, 1000 + i * 300);
        }
        let l2hit = m.access(MemOp::Load, 0x4000, 0, 20_000);
        assert_eq!(l2hit.level, Level::L2, "L1 evicted but L2 retains");
        assert!(l2hit.latency > warm.latency && l2hit.latency < cold.latency);
    }

    #[test]
    fn ifetch_uses_the_instruction_cache() {
        let mut m = MemoryHierarchy::new(&small_cfg());
        let a = m.access(MemOp::IFetch, 0x1000, 0, 0);
        assert_eq!(a.level, Level::Mem);
        let b = m.access(MemOp::IFetch, 0x1000, 0, 500);
        assert_eq!(b.level, Level::L1);
        assert_eq!(b.latency, 1);
        let s = m.stats();
        assert_eq!(s.l1i.accesses, 2);
        assert_eq!(s.l1d.accesses, 0);
    }

    #[test]
    fn stores_mark_lines_dirty_and_cause_writebacks() {
        let mut m = MemoryHierarchy::new(&small_cfg());
        m.access(MemOp::Store, 0x4000, 0, 0);
        // Conflict the set until 0x4000's line is evicted (8 sets, so
        // stride 8*64=512 maps to the same set).
        for i in 1..=4u64 {
            m.access(MemOp::Load, 0x4000 + i * 512, 0, i * 400);
        }
        assert!(m.stats().l1d.writebacks >= 1);
    }

    #[test]
    fn tlb_adds_walk_latency() {
        let mut cfg = small_cfg();
        cfg.tlb = Some(TlbConfig {
            entries: 4,
            page_bytes: 4096,
            miss_penalty: 25,
        });
        let mut with_tlb = MemoryHierarchy::new(&cfg);
        let mut without = MemoryHierarchy::new(&small_cfg());
        let a = with_tlb.access(MemOp::Load, 0x4000, 0, 0);
        let b = without.access(MemOp::Load, 0x4000, 0, 0);
        assert_eq!(a.latency, b.latency + 25);
        assert_eq!(with_tlb.stats().tlb.misses, 1);
    }

    #[test]
    fn port_contention_queues_same_cycle_accesses() {
        let mut m = MemoryHierarchy::new(&small_cfg()); // 1 port
        m.access(MemOp::Load, 0x4000, 0, 0);
        m.access(MemOp::Load, 0x4040, 0, 500); // warm both lines
        m.access(MemOp::Load, 0x4000, 0, 501);
        let t1 = m.access(MemOp::Load, 0x4000, 0, 1000);
        let t2 = m.access(MemOp::Load, 0x4040, 0, 1000);
        assert_eq!(t1.latency, 2);
        assert_eq!(t2.latency, 3, "second same-cycle access waits one cycle");
    }

    #[test]
    fn stride_prefetcher_converts_misses_to_prefetch_hits() {
        let mut cfg = small_cfg();
        cfg.prefetcher = PrefetcherConfig::Stride {
            table_entries: 16,
            degree: 2,
        };
        let mut with_pf = MemoryHierarchy::new(&cfg);
        let mut without = MemoryHierarchy::new(&small_cfg());
        let pc = 0x100;
        let mut miss_pf = 0;
        let mut miss_plain = 0;
        for i in 0..64u64 {
            let addr = 0x10_0000 + i * 64;
            let t = 2000 * i;
            if with_pf.access(MemOp::Load, addr, pc, t).level != Level::L1 {
                miss_pf += 1;
            }
            if without.access(MemOp::Load, addr, pc, t).level != Level::L1 {
                miss_plain += 1;
            }
        }
        assert!(
            miss_pf < miss_plain / 2,
            "prefetcher should hide most stream misses: {miss_pf} vs {miss_plain}"
        );
        assert!(with_pf.stats().l1d.useful_prefetches > 10);
    }

    #[test]
    fn mshr_pressure_stalls_bursts() {
        // 2 MSHRs; issue 6 misses in the same cycle: later ones stall.
        let mut m = MemoryHierarchy::new(&small_cfg());
        let base = 0x20_0000;
        let lat: Vec<u64> = (0..6u64)
            .map(|i| m.access(MemOp::Load, base + i * 4096, 0, 0).latency)
            .collect();
        assert!(
            lat[5] > lat[0],
            "limited MSHRs must delay the burst tail: {lat:?}"
        );
    }

    #[test]
    fn write_no_allocate_bypasses_l1_fill() {
        let mut cfg = small_cfg();
        cfg.l1d.write_allocate = false;
        let mut m = MemoryHierarchy::new(&cfg);
        m.access(MemOp::Store, 0x4000, 0, 0);
        // The line must not be in L1D: a subsequent load misses to L2.
        let r = m.access(MemOp::Load, 0x4000, 0, 1000);
        assert_eq!(r.level, Level::L2);
    }
}
