//! # racesim-mem
//!
//! Cache-hierarchy, TLB and DRAM timing models.
//!
//! This crate provides the memory-side substrate that the paper's Sniper-ARM
//! models configure: multi-level set-associative caches with configurable
//! size, associativity, line size, replacement policy, **index hashing**
//! (mask, XOR-folded, and Mersenne-prime modulo — the three schemes the
//! paper adds for cache indexing), ports, MSHRs, a victim cache, serial or
//! parallel tag/data access, and a pluggable **prefetcher zoo** (next-line,
//! PC-indexed stride, and GHB delta-correlation — the paper adds stride
//! \[38\] and GHB \[39\] prefetching as tunable options).
//!
//! The central type is [`MemoryHierarchy`]: core timing models call
//! [`MemoryHierarchy::access`] with a memory operation and a cycle, and get
//! back the load-to-use latency and the level that serviced the request.
//! Bandwidth is modelled with per-level port regulators, and misses consume
//! MSHRs.
//!
//! All structural parameters live in plain serde-serialisable config types
//! ([`HierarchyConfig`], [`CacheConfig`], …) so the tuning framework can
//! mutate them mechanically.
//!
//! # Example
//!
//! ```
//! use racesim_mem::{HierarchyConfig, MemoryHierarchy, MemOp};
//!
//! let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
//! let cold = mem.access(MemOp::Load, 0x8000, 0, 0);
//! let warm = mem.access(MemOp::Load, 0x8000, 0, cold.ready_at(0));
//! assert!(cold.latency > warm.latency, "second access hits in L1");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod dram;
mod hash;
mod hierarchy;
mod prefetch;
mod tlb;

pub use cache::{Cache, CacheStats, LookupOutcome};
pub use config::{
    CacheConfig, DramConfig, HierarchyConfig, IndexHash, PrefetchWhere, PrefetcherConfig,
    Replacement, TagAccess, TlbConfig,
};
pub use dram::Dram;
pub use hash::SetIndexer;
pub use hierarchy::{AccessResult, HierarchyStats, Level, MemOp, MemoryHierarchy};
pub use prefetch::{GhbPrefetcher, NextLinePrefetcher, Prefetcher, StridePrefetcher, MAX_DEGREE};
pub use tlb::{Tlb, TlbStats};
