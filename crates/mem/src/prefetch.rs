//! Hardware prefetcher models.
//!
//! The paper provides the tuning algorithm with "configurable prefetching
//! options including stride [38] and GHB [39] prefetching" — this module
//! implements those plus a simple next-line scheme, behind the
//! [`Prefetcher`] trait so the hierarchy can swap them by configuration.

use crate::config::PrefetcherConfig;

/// Maximum prefetches a single trigger may emit.
pub const MAX_DEGREE: usize = 8;

/// A hardware data prefetcher observing the demand stream of one cache.
///
/// Implementations receive every demand access (`pc`, block number and
/// hit/miss outcome) and append predicted *block numbers* to `out`.
pub trait Prefetcher: std::fmt::Debug + Send {
    /// Observes a demand access and appends prefetch candidates to `out`.
    fn observe(&mut self, pc: u64, block: u64, hit: bool, out: &mut Vec<u64>);

    /// Resets all training state.
    fn reset(&mut self);
}

/// Builds a boxed prefetcher from its configuration, or `None` for
/// [`PrefetcherConfig::None`].
pub fn build(cfg: PrefetcherConfig) -> Option<Box<dyn Prefetcher>> {
    match cfg {
        PrefetcherConfig::None => None,
        PrefetcherConfig::NextLine => Some(Box::new(NextLinePrefetcher)),
        PrefetcherConfig::Stride {
            table_entries,
            degree,
        } => Some(Box::new(StridePrefetcher::new(table_entries, degree))),
        PrefetcherConfig::Ghb {
            buffer_entries,
            index_entries,
            degree,
        } => Some(Box::new(GhbPrefetcher::new(
            buffer_entries,
            index_entries,
            degree,
        ))),
    }
}

/// Prefetches block `b + 1` on every demand miss.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLinePrefetcher;

impl Prefetcher for NextLinePrefetcher {
    fn observe(&mut self, _pc: u64, block: u64, hit: bool, out: &mut Vec<u64>) {
        if !hit {
            out.push(block + 1);
        }
    }

    fn reset(&mut self) {}
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc_tag: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// PC-indexed stride prefetcher (Fu, Patel and Janssens, MICRO 1992).
///
/// Each static load trains an entry with its last address and observed
/// stride; after two consecutive confirmations the prefetcher issues
/// `degree` blocks ahead along the stride.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    mask: u64,
    degree: u8,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with a power-of-two table size.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is zero or not a power of two, or the
    /// degree exceeds [`MAX_DEGREE`].
    pub fn new(table_entries: u32, degree: u8) -> StridePrefetcher {
        assert!(
            table_entries > 0 && table_entries.is_power_of_two(),
            "stride table size must be a power of two"
        );
        assert!(degree as usize <= MAX_DEGREE, "degree too large");
        StridePrefetcher {
            table: vec![StrideEntry::default(); table_entries as usize],
            mask: table_entries as u64 - 1,
            degree,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn observe(&mut self, pc: u64, block: u64, _hit: bool, out: &mut Vec<u64>) {
        let idx = ((pc >> 2) & self.mask) as usize;
        let e = &mut self.table[idx];
        if !e.valid || e.pc_tag != pc {
            *e = StrideEntry {
                pc_tag: pc,
                last_block: block,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let new_stride = block as i64 - e.last_block as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = new_stride;
            e.confidence = 0;
        }
        e.last_block = block;
        if e.confidence >= 2 {
            for k in 1..=self.degree as i64 {
                let pred = block as i64 + e.stride * k;
                if pred >= 0 {
                    out.push(pred as u64);
                }
            }
        }
    }

    fn reset(&mut self) {
        for e in &mut self.table {
            *e = StrideEntry::default();
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct GhbEntry {
    block: u64,
    /// Index (into the circular buffer's logical sequence) of the previous
    /// entry with the same index-table key; `u64::MAX` = none.
    prev: u64,
}

/// Global History Buffer prefetcher, G/DC (delta correlation) flavour
/// (Nesbit and Smith, HPCA 2004).
///
/// Misses are appended to a circular global history buffer; an index table
/// keyed by PC links entries of the same static load. On a trigger the
/// prefetcher walks the chain, computes the two most recent deltas, looks
/// for the same delta pair earlier in the chain, and replays the deltas
/// that followed it.
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    buffer: Vec<GhbEntry>,
    head: u64,              // monotone count of pushed entries
    index: Vec<(u64, u64)>, // (pc_tag, last_seq) per index-table slot
    index_mask: u64,
    degree: u8,
}

impl GhbPrefetcher {
    /// Creates a GHB prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `index_entries` is not a power of two, `buffer_entries`
    /// is zero, or the degree exceeds [`MAX_DEGREE`].
    pub fn new(buffer_entries: u32, index_entries: u32, degree: u8) -> GhbPrefetcher {
        assert!(buffer_entries > 0, "GHB buffer must be non-empty");
        assert!(
            index_entries > 0 && index_entries.is_power_of_two(),
            "GHB index size must be a power of two"
        );
        assert!(degree as usize <= MAX_DEGREE, "degree too large");
        GhbPrefetcher {
            buffer: vec![GhbEntry::default(); buffer_entries as usize],
            head: 0,
            index: vec![(u64::MAX, u64::MAX); index_entries as usize],
            index_mask: index_entries as u64 - 1,
            degree,
        }
    }

    fn entry(&self, seq: u64) -> Option<&GhbEntry> {
        if seq == u64::MAX || seq >= self.head || self.head - seq > self.buffer.len() as u64 {
            return None;
        }
        Some(&self.buffer[(seq % self.buffer.len() as u64) as usize])
    }

    /// Collects the chain of blocks for one PC, most recent first.
    fn chain(&self, mut seq: u64, max: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(max);
        while out.len() < max {
            let Some(e) = self.entry(seq) else { break };
            out.push(e.block);
            seq = e.prev;
        }
        out
    }
}

impl Prefetcher for GhbPrefetcher {
    fn observe(&mut self, pc: u64, block: u64, hit: bool, out: &mut Vec<u64>) {
        if hit {
            return;
        }
        let slot = ((pc >> 2) & self.index_mask) as usize;
        let (tag, last) = self.index[slot];
        let prev = if tag == pc { last } else { u64::MAX };
        let seq = self.head;
        let buf_len = self.buffer.len() as u64;
        self.buffer[(seq % buf_len) as usize] = GhbEntry { block, prev };
        self.head += 1;
        self.index[slot] = (pc, seq);

        // Delta correlation over this PC's miss chain.
        let chain = self.chain(seq, 16);
        if chain.len() < 4 {
            return;
        }
        let d1 = chain[0] as i64 - chain[1] as i64; // most recent delta
        let d2 = chain[1] as i64 - chain[2] as i64;
        // Find the same (d2, d1) pair earlier in the chain.
        for w in 2..chain.len() - 1 {
            let e1 = chain[w - 1] as i64 - chain[w] as i64;
            let e2 = chain[w] as i64 - chain[w + 1] as i64;
            if e1 == d1 && e2 == d2 {
                // Replay the deltas that followed the match.
                let mut predicted = block as i64;
                let mut emitted = 0u8;
                let mut j = w - 1;
                while emitted < self.degree && j >= 1 {
                    let delta = chain[j - 1] as i64 - chain[j] as i64;
                    predicted += delta;
                    if predicted >= 0 {
                        out.push(predicted as u64);
                        emitted += 1;
                    }
                    j -= 1;
                }
                return;
            }
        }
    }

    fn reset(&mut self) {
        self.head = 0;
        for e in &mut self.index {
            *e = (u64::MAX, u64::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_prefetches_on_miss_only() {
        let mut p = NextLinePrefetcher;
        let mut out = Vec::new();
        p.observe(0x100, 10, true, &mut out);
        assert!(out.is_empty());
        p.observe(0x100, 10, false, &mut out);
        assert_eq!(out, vec![11]);
    }

    #[test]
    fn stride_learns_constant_strides() {
        let mut p = StridePrefetcher::new(64, 2);
        let mut out = Vec::new();
        // Same pc, stride 3 blocks.
        for i in 0..5u64 {
            out.clear();
            p.observe(0x400, 100 + i * 3, false, &mut out);
        }
        assert_eq!(out, vec![100 + 4 * 3 + 3, 100 + 4 * 3 + 6]);
    }

    #[test]
    fn stride_does_not_fire_on_random_pattern() {
        let mut p = StridePrefetcher::new(64, 2);
        let mut out = Vec::new();
        for b in [5u64, 90, 17, 230, 44] {
            p.observe(0x400, b, false, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn stride_distinguishes_pcs() {
        let mut p = StridePrefetcher::new(64, 1);
        let mut out = Vec::new();
        // Interleave two PCs with different strides; both should train.
        for i in 0..6u64 {
            out.clear();
            p.observe(0x400, 10 + i * 2, false, &mut out);
            p.observe(0x404, 1000 + i * 5, false, &mut out);
        }
        assert!(out.contains(&(1000 + 5 * 5 + 5)));
    }

    #[test]
    fn ghb_replays_repeating_delta_patterns() {
        let mut p = GhbPrefetcher::new(64, 32, 2);
        let mut out = Vec::new();
        // Pattern of deltas +1, +2, +10 repeating: 0,1,3,13,14,16,26,...
        let mut b = 0u64;
        let deltas = [1u64, 2, 10];
        for i in 0..12 {
            out.clear();
            p.observe(0x800, b, false, &mut out);
            b += deltas[i % 3];
        }
        assert!(
            !out.is_empty(),
            "GHB should recognise the repeating delta pair"
        );
    }

    #[test]
    fn ghb_stays_quiet_without_history() {
        let mut p = GhbPrefetcher::new(64, 32, 2);
        let mut out = Vec::new();
        p.observe(0x800, 42, false, &mut out);
        p.observe(0x800, 50, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn build_dispatches_on_config() {
        assert!(build(PrefetcherConfig::None).is_none());
        assert!(build(PrefetcherConfig::NextLine).is_some());
        assert!(build(PrefetcherConfig::Stride {
            table_entries: 16,
            degree: 1
        })
        .is_some());
        assert!(build(PrefetcherConfig::Ghb {
            buffer_entries: 32,
            index_entries: 16,
            degree: 2
        })
        .is_some());
    }

    #[test]
    fn reset_clears_training() {
        let mut p = StridePrefetcher::new(16, 1);
        let mut out = Vec::new();
        for i in 0..5u64 {
            p.observe(0x40, i * 4, false, &mut out);
        }
        out.clear();
        p.reset();
        p.observe(0x40, 100, false, &mut out);
        assert!(out.is_empty(), "no prediction right after reset");
    }
}
