//! Translation lookaside buffer model.

use crate::config::TlbConfig;

/// Per-TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations that missed and paid a walk.
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate in `[0, 1]`; zero with no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative, true-LRU TLB.
///
/// The golden-reference hardware platform always models a TLB; the
/// user-facing simulator config may leave it out ([`None`] in
/// [`HierarchyConfig::tlb`](crate::HierarchyConfig::tlb)), which is one of
/// the deliberate abstraction gaps the validation methodology has to cope
/// with.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last-use stamp)
    capacity: usize,
    page_shift: u32,
    miss_penalty: u64,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or the capacity is 0.
    pub fn new(cfg: &TlbConfig) -> Tlb {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: Vec::with_capacity(cfg.entries as usize),
            capacity: cfg.entries as usize,
            page_shift: cfg.page_bytes.trailing_zeros(),
            miss_penalty: cfg.miss_penalty,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `addr`, returning the added latency (0 on a hit, the walk
    /// penalty on a miss).
    pub fn translate(&mut self, addr: u64) -> u64 {
        self.stats.accesses += 1;
        self.clock += 1;
        let page = addr >> self.page_shift;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            return 0;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("full TLB has entries");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        self.miss_penalty
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32) -> Tlb {
        Tlb::new(&TlbConfig {
            entries,
            page_bytes: 4096,
            miss_penalty: 30,
        })
    }

    #[test]
    fn hit_within_page() {
        let mut t = tlb(4);
        assert_eq!(t.translate(0x1000), 30, "cold miss");
        assert_eq!(t.translate(0x1ff8), 0, "same page hits");
        assert_eq!(t.translate(0x2000), 30, "next page misses");
        assert_eq!(t.stats().accesses, 3);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb(2);
        t.translate(0x1000); // page 1
        t.translate(0x2000); // page 2
        t.translate(0x1000); // touch page 1
        t.translate(0x3000); // evicts page 2
        assert_eq!(t.translate(0x1000), 0, "page 1 retained");
        assert_eq!(t.translate(0x2000), 30, "page 2 evicted");
    }

    #[test]
    fn miss_rate_reporting() {
        let mut t = tlb(16);
        for i in 0..8u64 {
            t.translate(i * 4096);
        }
        for i in 0..8u64 {
            t.translate(i * 4096);
        }
        assert!((t.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
