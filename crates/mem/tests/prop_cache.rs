//! Property tests on cache invariants.

use proptest::prelude::*;
use racesim_mem::{Cache, CacheConfig, IndexHash, Replacement};

fn cfg(replacement: Replacement, hash: IndexHash, victim: u32) -> CacheConfig {
    CacheConfig {
        size_kb: 1,
        assoc: 4,
        replacement,
        hash,
        victim_entries: victim,
        ..CacheConfig::l1_default()
    }
}

fn arb_policy() -> impl Strategy<Value = Replacement> {
    prop_oneof![
        Just(Replacement::Lru),
        Just(Replacement::PseudoLru),
        Just(Replacement::Random),
        Just(Replacement::Fifo),
    ]
}

fn arb_hash() -> impl Strategy<Value = IndexHash> {
    prop_oneof![
        Just(IndexHash::Mask),
        Just(IndexHash::Xor),
        Just(IndexHash::MersenneMod),
    ]
}

proptest! {
    /// accesses == hits + misses under every policy/hash combination and
    /// access mix; an access to a block leaves it resident (when
    /// allocating), so an immediate repeat hits.
    #[test]
    fn counters_and_residency(
        policy in arb_policy(),
        hash in arb_hash(),
        victim in prop_oneof![Just(0u32), Just(4u32)],
        blocks in proptest::collection::vec((0u64..4096, any::<bool>()), 1..300),
    ) {
        let mut c = Cache::new(&cfg(policy, hash, victim));
        for (b, w) in &blocks {
            c.access(*b, *w, true);
            // Immediately after an allocating access the block is present.
            prop_assert!(c.contains(*b), "{policy:?}/{hash:?} lost block {b}");
            let again = c.access(*b, false, true);
            prop_assert!(again.is_hit());
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, 2 * blocks.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.hits >= blocks.len() as u64, "every repeat hits");
    }

    /// Prefetch fills never corrupt demand counters, and prefilled blocks
    /// hit on first demand access.
    #[test]
    fn prefetch_fills_are_invisible_to_demand_counters(
        blocks in proptest::collection::vec(0u64..1024, 1..100),
    ) {
        let mut c = Cache::new(&cfg(Replacement::Lru, IndexHash::Mask, 0));
        for b in &blocks {
            c.fill_prefetch(*b);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, 0);
        prop_assert_eq!(s.hits, 0);
        prop_assert_eq!(s.misses, 0);
        prop_assert!(s.prefetch_fills as usize <= blocks.len());
        // The most recently prefetched block is still resident.
        let last = *blocks.last().unwrap();
        prop_assert!(c.contains(last));
        let out = c.access(last, false, true);
        prop_assert!(out.is_hit());
    }

    /// The same access sequence gives identical statistics twice
    /// (determinism even for the Random policy, which is seeded).
    #[test]
    fn deterministic_across_runs(
        policy in arb_policy(),
        blocks in proptest::collection::vec((0u64..512, any::<bool>()), 1..200),
    ) {
        let run = || {
            let mut c = Cache::new(&cfg(policy, IndexHash::Mask, 0));
            for (b, w) in &blocks {
                c.access(*b, *w, true);
            }
            c.stats()
        };
        prop_assert_eq!(run(), run());
    }
}
