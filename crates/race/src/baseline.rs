//! Baseline tuners for the ablation studies: random search and grid
//! search under the same budget accounting as the racing tuner.

use crate::cache::CostCache;
use crate::model::SamplingModel;
use crate::param::{Configuration, Domain, ParamSpace, Value};
use crate::tuner::{CostFn, TuneResult, Tuner, TunerSettings};
use racesim_stats::mean;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates a configuration on every instance (no early elimination).
fn full_eval(
    space: &ParamSpace,
    cfg: &Configuration,
    cost: &dyn CostFn,
    cache: &CostCache,
    n_instances: usize,
    budget: &mut u64,
) -> Option<f64> {
    let mut costs = Vec::with_capacity(n_instances);
    for inst in 0..n_instances {
        if let Some(c) = cache.get(cfg, inst) {
            costs.push(c);
            continue;
        }
        if *budget == 0 {
            return None;
        }
        let c = cost.cost(cfg, space, inst);
        cache.put(cfg, inst, c);
        *budget -= 1;
        costs.push(c);
    }
    Some(mean(&costs))
}

/// Uniform random sampling with full evaluation of every candidate.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    settings: TunerSettings,
}

impl RandomSearch {
    /// Creates a random-search baseline with the given settings (budget,
    /// seed; race-specific settings are ignored).
    pub fn new(settings: TunerSettings) -> RandomSearch {
        RandomSearch { settings }
    }
}

impl Tuner for RandomSearch {
    fn tune(&self, space: &ParamSpace, cost: &dyn CostFn, n_instances: usize) -> TuneResult {
        let mut rng = StdRng::seed_from_u64(self.settings.seed);
        let model = SamplingModel::new(space);
        let cache = CostCache::new();
        let mut budget = self.settings.budget;
        let mut best: Option<(Configuration, f64)> = None;
        let mut evals = 0u64;
        // Budget exhaustion ends the search; so does a long run of
        // duplicate samples (tiny spaces), which cost no budget.
        let mut free_rides = 0u32;
        while budget > 0 && free_rides < 1000 {
            let cfg = model.sample(space, &mut rng);
            let before = budget;
            let Some(score) = full_eval(space, &cfg, cost, &cache, n_instances, &mut budget) else {
                break;
            };
            if before == budget {
                free_rides += 1;
            } else {
                free_rides = 0;
            }
            evals += before - budget;
            if best.as_ref().map(|(_, c)| score < *c).unwrap_or(true) {
                best = Some((cfg, score));
            }
        }
        let (best, best_cost) = best.unwrap_or_else(|| (space.default_configuration(), f64::NAN));
        TuneResult {
            best: best.clone(),
            best_cost,
            elites: vec![(best, best_cost)],
            evals_used: evals,
            pruned: 0,
            history: Vec::new(),
            quarantined: Vec::new(),
            failed_configs: 0,
            retries: 0,
            aborted: false,
            static_eliminated: 0,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            warnings: Vec::new(),
        }
    }
}

/// Exhaustive scan over a coarsened grid, first-to-last value order,
/// stopping when the budget runs out. ("Evaluating all possible
/// permutations of configuration parameters is computationally
/// unfeasible" — this baseline demonstrates exactly that.)
#[derive(Debug, Clone)]
pub struct GridSearch {
    settings: TunerSettings,
}

impl GridSearch {
    /// Creates a grid-search baseline.
    pub fn new(settings: TunerSettings) -> GridSearch {
        GridSearch { settings }
    }

    fn advance(space: &ParamSpace, cfg: &mut Configuration) -> bool {
        // Odometer increment over all domains.
        for idx in (0..space.len()).rev() {
            let card = space.params()[idx].domain.cardinality();
            let cur = match cfg.value(idx) {
                Value::Cat(i) | Value::Int(i) => i as usize,
                Value::Flag(b) => usize::from(b),
            };
            let next = cur + 1;
            let wrapped = next >= card;
            let new = if wrapped { 0 } else { next };
            let v = match space.params()[idx].domain {
                Domain::Categorical(_) => Value::Cat(new as u16),
                Domain::Integer(_) => Value::Int(new as u16),
                Domain::Bool => Value::Flag(new == 1),
            };
            cfg.set_value(idx, v);
            if !wrapped {
                return true;
            }
        }
        false
    }
}

impl Tuner for GridSearch {
    fn tune(&self, space: &ParamSpace, cost: &dyn CostFn, n_instances: usize) -> TuneResult {
        let cache = CostCache::new();
        let mut budget = self.settings.budget;
        let mut evals = 0u64;
        let mut cfg = space.default_configuration();
        let mut best: Option<(Configuration, f64)> = None;
        loop {
            let before = budget;
            let Some(score) = full_eval(space, &cfg, cost, &cache, n_instances, &mut budget) else {
                break;
            };
            evals += before - budget;
            if best.as_ref().map(|(_, c)| score < *c).unwrap_or(true) {
                best = Some((cfg.clone(), score));
            }
            if !Self::advance(space, &mut cfg) {
                break;
            }
        }
        let (best, best_cost) = best.unwrap_or_else(|| (space.default_configuration(), f64::NAN));
        TuneResult {
            best: best.clone(),
            best_cost,
            elites: vec![(best, best_cost)],
            evals_used: evals,
            pruned: 0,
            history: Vec::new(),
            quarantined: Vec::new(),
            failed_configs: 0,
            retries: 0,
            aborted: false,
            static_eliminated: 0,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            warnings: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::RacingTuner;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[-4, -2, -1, 0, 1, 2, 4]);
        s.add_integer("y", &[-4, -2, -1, 0, 1, 2, 4]);
        s.add_bool("b");
        s
    }

    struct Bowl;
    impl CostFn for Bowl {
        fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
            let x = cfg.integer(space, "x") as f64;
            let y = cfg.integer(space, "y") as f64;
            let b = if cfg.flag(space, "b") { -0.5 } else { 0.0 };
            x * x + y * y + b + (instance % 5) as f64 * 0.1
        }
    }

    #[test]
    fn grid_search_visits_in_order_and_finds_optimum_with_enough_budget() {
        let s = space();
        let g = GridSearch::new(TunerSettings {
            budget: 7 * 7 * 2 * 10,
            ..TunerSettings::default()
        });
        let r = g.tune(&s, &Bowl, 10);
        assert_eq!(r.best.integer(&s, "x"), 0);
        assert_eq!(r.best.integer(&s, "y"), 0);
        assert!(r.best.flag(&s, "b"));
    }

    #[test]
    fn grid_search_with_tiny_budget_explores_a_corner_only() {
        let s = space();
        let g = GridSearch::new(TunerSettings {
            budget: 50,
            ..TunerSettings::default()
        });
        let r = g.tune(&s, &Bowl, 10);
        // 50 evals = 5 configs: the odometer has only moved b and y a bit,
        // so x is stuck at its first value (-4).
        assert_eq!(r.best.integer(&s, "x"), -4);
    }

    #[test]
    fn random_search_converges_slower_than_racing_at_equal_budget() {
        let s = space();
        let budget = 400u64;
        let racing = RacingTuner::new(TunerSettings {
            budget,
            seed: 5,
            ..TunerSettings::default()
        })
        .tune(&s, &Bowl, 10);
        let random = RandomSearch::new(TunerSettings {
            budget,
            seed: 5,
            ..TunerSettings::default()
        })
        .tune(&s, &Bowl, 10);
        assert!(
            racing.best_cost <= random.best_cost + 1e-9,
            "racing ({}) should beat or match random ({})",
            racing.best_cost,
            random.best_cost
        );
    }

    #[test]
    fn baselines_respect_budgets() {
        let s = space();
        for budget in [10u64, 100, 1000] {
            let r = RandomSearch::new(TunerSettings {
                budget,
                ..TunerSettings::default()
            })
            .tune(&s, &Bowl, 10);
            assert!(r.evals_used <= budget);
            let g = GridSearch::new(TunerSettings {
                budget,
                ..TunerSettings::default()
            })
            .tune(&s, &Bowl, 10);
            assert!(g.evals_used <= budget);
        }
    }
}
