//! Cost-evaluation cache.

use crate::param::Configuration;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A thread-safe memo of `(configuration, instance) → cost`.
///
/// Elite configurations survive across iterations and are re-raced; the
/// cache keeps the (deterministic) simulator from re-running them and the
/// budget accounting from double-charging them.
#[derive(Debug, Default)]
pub struct CostCache {
    map: Mutex<HashMap<(Configuration, usize), f64>>,
}

impl CostCache {
    /// Creates an empty cache.
    pub fn new() -> CostCache {
        CostCache::default()
    }

    /// Looks up a memoised cost.
    pub fn get(&self, cfg: &Configuration, instance: usize) -> Option<f64> {
        self.map.lock().get(&(cfg.clone(), instance)).copied()
    }

    /// Stores a cost.
    pub fn put(&self, cfg: &Configuration, instance: usize, cost: f64) {
        self.map.lock().insert((cfg.clone(), instance), cost);
    }

    /// Every memoised evaluation, sorted by (configuration, instance) so
    /// two caches with equal contents snapshot identically — the order a
    /// parallel race inserted them in must not leak into checkpoints.
    pub fn entries(&self) -> Vec<(Configuration, usize, f64)> {
        let mut out: Vec<(Configuration, usize, f64)> = self
            .map
            .lock()
            .iter()
            .map(|((cfg, inst), c)| (cfg.clone(), *inst, *c))
            .collect();
        out.sort_by(|a, b| (&a.0.values, a.1).cmp(&(&b.0.values, b.1)));
        out
    }

    /// Number of memoised evaluations.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpace;

    #[test]
    fn memoisation() {
        let mut s = ParamSpace::new();
        s.add_bool("x");
        let c = s.default_configuration();
        let cache = CostCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&c, 0), None);
        cache.put(&c, 0, 1.5);
        assert_eq!(cache.get(&c, 0), Some(1.5));
        assert_eq!(cache.get(&c, 1), None);
        assert_eq!(cache.len(), 1);
    }
}
