//! Cost-evaluation cache.

use crate::param::Configuration;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe memo of `(configuration, instance) → cost`.
///
/// Elite configurations survive across iterations and are re-raced; the
/// cache keeps the (deterministic) simulator from re-running them and the
/// budget accounting from double-charging them. Hit/miss counters track
/// how much work memoisation actually saved — [`CostCache::get`] counts,
/// [`CostCache::peek`] does not, so sites that re-read a value already
/// accounted for (the post-evaluation row fill in the race) don't inflate
/// the hit rate.
#[derive(Debug, Default)]
pub struct CostCache {
    map: Mutex<HashMap<(Configuration, usize), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CostCache {
    /// Creates an empty cache.
    pub fn new() -> CostCache {
        CostCache::default()
    }

    /// Looks up a memoised cost, counting the outcome as a hit or miss.
    pub fn get(&self, cfg: &Configuration, instance: usize) -> Option<f64> {
        let found = self.map.lock().get(&(cfg.clone(), instance)).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks up a memoised cost without touching the hit/miss counters.
    pub fn peek(&self, cfg: &Configuration, instance: usize) -> Option<f64> {
        self.map.lock().get(&(cfg.clone(), instance)).copied()
    }

    /// Stores a cost.
    pub fn put(&self, cfg: &Configuration, instance: usize, cost: f64) {
        self.map.lock().insert((cfg.clone(), instance), cost);
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Every memoised evaluation, sorted by (configuration, instance) so
    /// two caches with equal contents snapshot identically — the order a
    /// parallel race inserted them in must not leak into checkpoints.
    pub fn entries(&self) -> Vec<(Configuration, usize, f64)> {
        let mut out: Vec<(Configuration, usize, f64)> = self
            .map
            .lock()
            .iter()
            .map(|((cfg, inst), c)| (cfg.clone(), *inst, *c))
            .collect();
        out.sort_by(|a, b| (&a.0.values, a.1).cmp(&(&b.0.values, b.1)));
        out
    }

    /// Number of memoised evaluations.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpace;

    #[test]
    fn memoisation() {
        let mut s = ParamSpace::new();
        s.add_bool("x");
        let c = s.default_configuration();
        let cache = CostCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&c, 0), None);
        cache.put(&c, 0, 1.5);
        assert_eq!(cache.get(&c, 0), Some(1.5));
        assert_eq!(cache.get(&c, 1), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_and_miss_counters_track_get_but_not_peek() {
        let mut s = ParamSpace::new();
        s.add_bool("x");
        let c = s.default_configuration();
        let cache = CostCache::new();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        cache.get(&c, 0); // miss
        cache.put(&c, 0, 1.0);
        cache.get(&c, 0); // hit
        cache.get(&c, 1); // miss
        cache.peek(&c, 0); // uncounted
        cache.peek(&c, 1); // uncounted
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }
}
