//! Tuner checkpoints: crash-safe snapshots of the full racing state.
//!
//! A checkpoint is written atomically (temp file + rename) after every
//! completed iteration and captures *everything* the next iteration
//! depends on — the raw RNG state, the sampling model, the elites, the
//! budget, the cost cache, the instance quarantine and the run history —
//! so a run killed mid-flight and resumed from its checkpoint produces a
//! bit-identical result to an uninterrupted run with the same seed.
//!
//! The on-disk format is a line-oriented `key = value` text file (the
//! same INI-flavoured idiom as the simulator's config files; the
//! workspace's vendored `serde` is a no-op shim, so serialization is
//! hand-rolled). Floating-point values are stored as the 16-hex-digit
//! IEEE-754 bit pattern — exact round-tripping is a correctness
//! requirement, not a nicety.

use crate::param::{Configuration, Domain, ParamSpace, Value};
use crate::race::RaceLogEntry;
use crate::tuner::{IterationSummary, TunerSettings};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// Why a checkpoint could not be loaded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The file exists but does not parse as a checkpoint.
    Malformed(String),
    /// The checkpoint parses but belongs to a different run (seed,
    /// parameter space, or instance count differ).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The complete persisted state of a [`RacingTuner`](crate::RacingTuner)
/// run at an iteration boundary.
#[derive(Debug, Clone)]
pub struct TunerCheckpoint {
    /// The iteration the resumed run starts with.
    pub next_iteration: usize,
    /// Evaluation budget still available.
    pub budget_remaining: u64,
    /// Fresh evaluations consumed so far.
    pub evals_used: u64,
    /// Configurations rejected by the pruner so far.
    pub pruned: u64,
    /// Transient-fault retries so far.
    pub retries: u64,
    /// Configurations eliminated by evaluation failure so far.
    pub failed_configs: u64,
    /// The seed the run was started with.
    pub seed: u64,
    /// The instance count the run was started with.
    pub n_instances: usize,
    /// Fingerprint of the parameter space (see
    /// [`fingerprint`](Self::fingerprint)).
    pub space_fingerprint: u64,
    /// Raw xoshiro256++ state at the iteration boundary.
    pub rng_state: [u64; 4],
    /// Sampling-model perturbation width.
    pub spread: f64,
    /// Sampling-model weight vectors, one per parameter.
    pub weights: Vec<Vec<f64>>,
    /// Elite configurations with their mean costs, best first.
    pub elites: Vec<(Configuration, f64)>,
    /// Quarantined instances with reasons.
    pub quarantine: Vec<(usize, String)>,
    /// Memoised `(configuration, instance) → cost` entries.
    pub cache: Vec<(Configuration, usize, f64)>,
    /// Per-iteration summaries so far.
    pub history: Vec<IterationSummary>,
}

/// Formats an `f64` as its exact IEEE-754 bit pattern.
fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError::Malformed(format!("bad f64 bit pattern {s:?}")))
}

fn parse_u64(s: &str) -> Result<u64, CheckpointError> {
    s.parse()
        .map_err(|_| CheckpointError::Malformed(format!("bad integer {s:?}")))
}

fn parse_hex_u64(s: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(s, 16)
        .map_err(|_| CheckpointError::Malformed(format!("bad hex integer {s:?}")))
}

fn parse_usize(s: &str) -> Result<usize, CheckpointError> {
    s.parse()
        .map_err(|_| CheckpointError::Malformed(format!("bad index {s:?}")))
}

/// Encodes a configuration as a compact dotted code, e.g. `C0.I3.F1`.
fn encode_config(cfg: &Configuration, n_params: usize) -> String {
    (0..n_params)
        .map(|i| match cfg.value(i) {
            Value::Cat(k) => format!("C{k}"),
            Value::Int(k) => format!("I{k}"),
            Value::Flag(b) => format!("F{}", u8::from(b)),
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// Decodes a dotted configuration code against `space`, rejecting codes
/// whose arity, value kinds, or indices do not fit the space.
fn decode_config(space: &ParamSpace, code: &str) -> Result<Configuration, CheckpointError> {
    let parts: Vec<&str> = code.split('.').collect();
    if parts.len() != space.len() {
        return Err(CheckpointError::Malformed(format!(
            "configuration {code:?} has {} values, space has {} parameters",
            parts.len(),
            space.len()
        )));
    }
    let mut cfg = space.default_configuration();
    for (idx, part) in parts.iter().enumerate() {
        let (kind, rest) = part.split_at(1);
        let domain = &space.params()[idx].domain;
        let value = match (kind, domain) {
            ("C", Domain::Categorical(cs)) => {
                let k = parse_usize(rest)?;
                if k >= cs.len() {
                    return Err(CheckpointError::Malformed(format!(
                        "categorical index {k} out of range in {code:?}"
                    )));
                }
                Value::Cat(k as u16)
            }
            ("I", Domain::Integer(vs)) => {
                let k = parse_usize(rest)?;
                if k >= vs.len() {
                    return Err(CheckpointError::Malformed(format!(
                        "integer index {k} out of range in {code:?}"
                    )));
                }
                Value::Int(k as u16)
            }
            ("F", Domain::Bool) => Value::Flag(rest == "1"),
            _ => {
                return Err(CheckpointError::Malformed(format!(
                    "value {part:?} does not fit parameter {} in {code:?}",
                    space.params()[idx].name
                )))
            }
        };
        cfg.set_value(idx, value);
    }
    Ok(cfg)
}

/// Flattens a free-form reason onto one line so it cannot break the
/// line-oriented format.
fn one_line(reason: &str) -> String {
    reason.replace(['\n', '\r'], " ")
}

impl TunerCheckpoint {
    /// Format version written by [`render`](Self::render).
    pub const VERSION: u64 = 1;

    /// An FNV-1a fingerprint of the parameter space (names and domains),
    /// used to refuse resuming a checkpoint against a different space.
    pub fn fingerprint(space: &ParamSpace) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for p in space.params() {
            eat(p.name.as_bytes());
            eat(format!("{}", p.domain).as_bytes());
            eat(&[0]);
        }
        h
    }

    /// Checks that this checkpoint belongs to the run described by
    /// (`space`, `settings`, `n_instances`).
    pub fn validate(
        &self,
        space: &ParamSpace,
        settings: &TunerSettings,
        n_instances: usize,
    ) -> Result<(), CheckpointError> {
        if self.space_fingerprint != Self::fingerprint(space) {
            return Err(CheckpointError::Mismatch(
                "parameter space differs from the checkpointed run".to_string(),
            ));
        }
        if self.seed != settings.seed {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint seed {:#x} != settings seed {:#x}",
                self.seed, settings.seed
            )));
        }
        if self.n_instances != n_instances {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} instances, run has {n_instances}",
                self.n_instances
            )));
        }
        if self.weights.len() != space.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} weight vectors, space has {} parameters",
                self.weights.len(),
                space.len()
            )));
        }
        Ok(())
    }

    /// Renders the checkpoint as its on-disk text form.
    pub fn render(&self) -> String {
        let n = self.weights.len();
        let mut out = String::new();
        out.push_str("# racesim tuner checkpoint\n");
        out.push_str(&format!("version = {}\n\n", Self::VERSION));

        out.push_str("[tuner]\n");
        out.push_str(&format!("seed = {:016x}\n", self.seed));
        out.push_str(&format!("n_instances = {}\n", self.n_instances));
        out.push_str(&format!(
            "space_fingerprint = {:016x}\n",
            self.space_fingerprint
        ));
        out.push_str(&format!("next_iteration = {}\n", self.next_iteration));
        out.push_str(&format!("budget_remaining = {}\n", self.budget_remaining));
        out.push_str(&format!("evals_used = {}\n", self.evals_used));
        out.push_str(&format!("pruned = {}\n", self.pruned));
        out.push_str(&format!("retries = {}\n", self.retries));
        out.push_str(&format!("failed_configs = {}\n\n", self.failed_configs));

        out.push_str("[rng]\n");
        out.push_str(&format!(
            "state = {:016x} {:016x} {:016x} {:016x}\n\n",
            self.rng_state[0], self.rng_state[1], self.rng_state[2], self.rng_state[3]
        ));

        out.push_str("[model]\n");
        out.push_str(&format!("spread = {}\n", f64_hex(self.spread)));
        out.push_str(&format!("weights = {n}\n"));
        for (i, w) in self.weights.iter().enumerate() {
            if w.is_empty() {
                out.push_str(&format!("w{i} = -\n"));
            } else {
                let hexes: Vec<String> = w.iter().map(|&x| f64_hex(x)).collect();
                out.push_str(&format!("w{i} = {}\n", hexes.join(" ")));
            }
        }
        out.push('\n');

        out.push_str("[elites]\n");
        out.push_str(&format!("count = {}\n", self.elites.len()));
        for (i, (cfg, cost)) in self.elites.iter().enumerate() {
            out.push_str(&format!(
                "e{i} = {} {}\n",
                encode_config(cfg, n),
                f64_hex(*cost)
            ));
        }
        out.push('\n');

        out.push_str("[quarantine]\n");
        out.push_str(&format!("count = {}\n", self.quarantine.len()));
        for (i, (inst, reason)) in self.quarantine.iter().enumerate() {
            out.push_str(&format!("q{i} = {inst} {}\n", one_line(reason)));
        }
        out.push('\n');

        out.push_str("[cache]\n");
        out.push_str(&format!("count = {}\n", self.cache.len()));
        for (i, (cfg, inst, cost)) in self.cache.iter().enumerate() {
            out.push_str(&format!(
                "c{i} = {} {inst} {}\n",
                encode_config(cfg, n),
                f64_hex(*cost)
            ));
        }
        out.push('\n');

        out.push_str("[history]\n");
        out.push_str(&format!("count = {}\n", self.history.len()));
        for (i, h) in self.history.iter().enumerate() {
            out.push_str(&format!(
                "h{i} = {} {} {} {} {}\n",
                h.iteration,
                h.configs_raced,
                h.blocks_used,
                h.evals_used,
                f64_hex(h.best_cost)
            ));
            out.push_str(&format!("h{i}.events = {}\n", h.eliminations.len()));
            for (j, e) in h.eliminations.iter().enumerate() {
                match e {
                    RaceLogEntry::Eliminated {
                        config,
                        after_blocks,
                    } => out.push_str(&format!("h{i}.ev{j} = elim {config} {after_blocks}\n")),
                    RaceLogEntry::Failed {
                        config,
                        after_blocks,
                        reason,
                    } => out.push_str(&format!(
                        "h{i}.ev{j} = failed {config} {after_blocks} {}\n",
                        one_line(reason)
                    )),
                }
            }
        }
        out
    }

    /// Parses the on-disk text form against `space` (needed to decode
    /// configurations and validate their shape).
    pub fn parse(space: &ParamSpace, text: &str) -> Result<TunerCheckpoint, CheckpointError> {
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| CheckpointError::Malformed(format!("line without '=': {line:?}")))?;
            kv.insert(k.trim(), v.trim());
        }
        let get = |key: &str| -> Result<&str, CheckpointError> {
            kv.get(key)
                .copied()
                .ok_or_else(|| CheckpointError::Malformed(format!("missing key {key:?}")))
        };

        let version = parse_u64(get("version")?)?;
        if version != Self::VERSION {
            return Err(CheckpointError::Malformed(format!(
                "unsupported checkpoint version {version}"
            )));
        }

        let rng_words: Vec<&str> = get("state")?.split_whitespace().collect();
        if rng_words.len() != 4 {
            return Err(CheckpointError::Malformed(
                "rng state must have 4 words".to_string(),
            ));
        }
        let mut rng_state = [0u64; 4];
        for (slot, w) in rng_state.iter_mut().zip(&rng_words) {
            *slot = parse_hex_u64(w)?;
        }

        let n_weights = parse_usize(get("weights")?)?;
        let mut weights = Vec::with_capacity(n_weights);
        for i in 0..n_weights {
            let v = get(&format!("w{i}"))?;
            if v == "-" {
                weights.push(Vec::new());
            } else {
                weights.push(
                    v.split_whitespace()
                        .map(parse_f64_hex)
                        .collect::<Result<Vec<f64>, _>>()?,
                );
            }
        }

        // The `count` keys collide across sections in the flat map, so
        // the four lists are parsed in a second, section-aware pass (the
        // counts are implied by the lines present).
        let mut elites = Vec::new();
        let mut quarantine = Vec::new();
        let mut cache = Vec::new();
        let mut history: Vec<IterationSummary> = Vec::new();
        let mut section = String::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.starts_with('[') {
                section = line
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .to_string();
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = match line.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => continue,
            };
            match (section.as_str(), k) {
                ("elites", k) if k.starts_with('e') => {
                    let (code, cost) = v.split_once(' ').ok_or_else(|| {
                        CheckpointError::Malformed(format!("bad elite line {v:?}"))
                    })?;
                    elites.push((decode_config(space, code)?, parse_f64_hex(cost.trim())?));
                }
                ("quarantine", k) if k.starts_with('q') => {
                    let (inst, reason) = match v.split_once(' ') {
                        Some((i, r)) => (i, r.to_string()),
                        None => (v, String::new()),
                    };
                    quarantine.push((parse_usize(inst)?, reason));
                }
                ("cache", k) if k.starts_with('c') && k != "count" => {
                    let fields: Vec<&str> = v.split_whitespace().collect();
                    if fields.len() != 3 {
                        return Err(CheckpointError::Malformed(format!("bad cache line {v:?}")));
                    }
                    cache.push((
                        decode_config(space, fields[0])?,
                        parse_usize(fields[1])?,
                        parse_f64_hex(fields[2])?,
                    ));
                }
                ("history", k) if k.starts_with('h') => {
                    if k.ends_with(".events") {
                        continue; // implied by the ev lines
                    }
                    if let Some((_, ev)) = k.split_once(".ev") {
                        let _ = parse_usize(ev)?;
                        let h = history.last_mut().ok_or_else(|| {
                            CheckpointError::Malformed("event before history entry".to_string())
                        })?;
                        let fields: Vec<&str> = v.splitn(4, ' ').collect();
                        match fields.as_slice() {
                            ["elim", config, after] => {
                                h.eliminations.push(RaceLogEntry::Eliminated {
                                    config: parse_usize(config)?,
                                    after_blocks: parse_usize(after)?,
                                })
                            }
                            ["failed", config, after] => {
                                h.eliminations.push(RaceLogEntry::Failed {
                                    config: parse_usize(config)?,
                                    after_blocks: parse_usize(after)?,
                                    reason: String::new(),
                                })
                            }
                            ["failed", config, after, reason] => {
                                h.eliminations.push(RaceLogEntry::Failed {
                                    config: parse_usize(config)?,
                                    after_blocks: parse_usize(after)?,
                                    reason: (*reason).to_string(),
                                })
                            }
                            _ => {
                                return Err(CheckpointError::Malformed(format!(
                                    "bad history event {v:?}"
                                )))
                            }
                        }
                    } else {
                        let fields: Vec<&str> = v.split_whitespace().collect();
                        if fields.len() != 5 {
                            return Err(CheckpointError::Malformed(format!(
                                "bad history line {v:?}"
                            )));
                        }
                        history.push(IterationSummary {
                            iteration: parse_usize(fields[0])?,
                            configs_raced: parse_usize(fields[1])?,
                            blocks_used: parse_usize(fields[2])?,
                            evals_used: parse_u64(fields[3])?,
                            best_cost: parse_f64_hex(fields[4])?,
                            eliminations: Vec::new(),
                        });
                    }
                }
                _ => {}
            }
        }

        Ok(TunerCheckpoint {
            next_iteration: parse_usize(get("next_iteration")?)?,
            budget_remaining: parse_u64(get("budget_remaining")?)?,
            evals_used: parse_u64(get("evals_used")?)?,
            pruned: parse_u64(get("pruned")?)?,
            retries: parse_u64(get("retries")?)?,
            failed_configs: parse_u64(get("failed_configs")?)?,
            seed: parse_hex_u64(get("seed")?)?,
            n_instances: parse_usize(get("n_instances")?)?,
            space_fingerprint: parse_hex_u64(get("space_fingerprint")?)?,
            rng_state,
            spread: parse_f64_hex(get("spread")?)?,
            weights,
            elites,
            quarantine,
            cache,
            history,
        })
    }

    /// Writes the checkpoint to `path` atomically and durably: the text
    /// is written to a sibling `.tmp` file, fsync'd, and then renamed
    /// over `path`. A crash mid-write leaves at worst a stale `.tmp`
    /// next to the previous (still valid) checkpoint; a crash around the
    /// rename leaves either the old or the new file, never a mix. The
    /// parent directory is fsync'd too (best effort) so the rename
    /// itself survives power loss.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        use std::io::Write as _;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let io = |ctx: &Path| {
            let ctx = ctx.display().to_string();
            move |e: std::io::Error| CheckpointError::Io(format!("{ctx}: {e}"))
        };
        let mut f = fs::File::create(&tmp).map_err(io(&tmp))?;
        f.write_all(self.render().as_bytes()).map_err(io(&tmp))?;
        f.sync_all().map_err(io(&tmp))?;
        drop(f);
        fs::rename(&tmp, path).map_err(io(path))?;
        // Durability of the rename needs the directory entry flushed;
        // not all filesystems support opening a directory, so failures
        // here are ignored rather than surfaced.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and parses a checkpoint from `path`, decoding its
    /// configurations against `space`.
    pub fn read(path: &Path, space: &ParamSpace) -> Result<TunerCheckpoint, CheckpointError> {
        let text = fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        TunerCheckpoint::parse(space, &text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_categorical("predictor", &["bimodal", "gshare"]);
        s.add_integer("rob", &[32, 64, 128]);
        s.add_bool("prefetch");
        s
    }

    fn sample(space: &ParamSpace) -> TunerCheckpoint {
        let mut elite = space.default_configuration();
        elite.set_categorical(space, "predictor", "gshare");
        elite.set_integer(space, "rob", 128);
        TunerCheckpoint {
            next_iteration: 2,
            budget_remaining: 1234,
            evals_used: 766,
            pruned: 9,
            retries: 3,
            failed_configs: 1,
            seed: 0xBADC_AB1E,
            n_instances: 12,
            space_fingerprint: TunerCheckpoint::fingerprint(space),
            rng_state: [1, u64::MAX, 0xdead_beef, 42],
            spread: 0.36,
            weights: vec![vec![0.75, 0.25], Vec::new(), vec![0.1, 0.9]],
            elites: vec![(elite, 0.125)],
            quarantine: vec![(3, "transient fault persisted through 4 attempts".into())],
            // 0.1 is inexact in binary; its bit pattern must round-trip.
            cache: vec![(space.default_configuration(), 7, 0.1)],
            history: vec![IterationSummary {
                iteration: 0,
                configs_raced: 8,
                blocks_used: 6,
                evals_used: 40,
                best_cost: 0.5,
                eliminations: vec![
                    RaceLogEntry::Eliminated {
                        config: 4,
                        after_blocks: 5,
                    },
                    RaceLogEntry::Failed {
                        config: 2,
                        after_blocks: 3,
                        reason: "non-finite cost NaN".into(),
                    },
                ],
            }],
        }
    }

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let s = space();
        let cp = sample(&s);
        let text = cp.render();
        let back = TunerCheckpoint::parse(&s, &text).expect("parses");
        assert_eq!(back.render(), text, "round-trip is bit-exact");
        assert_eq!(back.rng_state, cp.rng_state);
        assert_eq!(back.spread.to_bits(), cp.spread.to_bits());
        assert_eq!(back.elites, cp.elites);
        assert_eq!(back.cache[0].2.to_bits(), cp.cache[0].2.to_bits());
        assert_eq!(back.quarantine, cp.quarantine);
        assert_eq!(back.history.len(), 1);
        assert_eq!(back.history[0].eliminations, cp.history[0].eliminations);
    }

    #[test]
    fn save_is_atomic_and_loads_back() {
        let s = space();
        let cp = sample(&s);
        let dir = std::env::temp_dir().join("racesim-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.txt");
        cp.save(&path).expect("saves");
        assert!(!path.with_extension("txt.tmp").exists(), "tmp file renamed");
        let back = TunerCheckpoint::read(&path, &s).expect("reads");
        assert_eq!(back.render(), cp.render());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validation_rejects_foreign_checkpoints() {
        let s = space();
        let cp = sample(&s);
        let st = TunerSettings {
            seed: 0xBADC_AB1E,
            ..TunerSettings::default()
        };
        assert!(cp.validate(&s, &st, 12).is_ok());
        assert!(matches!(
            cp.validate(&s, &st, 13),
            Err(CheckpointError::Mismatch(_))
        ));
        let other_seed = TunerSettings { seed: 1, ..st };
        assert!(matches!(
            cp.validate(&s, &other_seed, 12),
            Err(CheckpointError::Mismatch(_))
        ));
        let mut other_space = ParamSpace::new();
        other_space.add_bool("different");
        assert!(matches!(
            cp.validate(&other_space, &st, 12),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn corrupt_text_is_a_typed_error() {
        let s = space();
        assert!(matches!(
            TunerCheckpoint::parse(&s, "version = 99\n"),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            TunerCheckpoint::parse(&s, "not a checkpoint"),
            Err(CheckpointError::Malformed(_))
        ));
        let cp = sample(&s);
        let mangled = cp.render().replace("F0", "Z9");
        assert!(matches!(
            TunerCheckpoint::parse(&s, &mangled),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
