//! The failure taxonomy of fallible cost evaluations, plus the retry,
//! quarantine and watchdog machinery built on top of it.
//!
//! Real boards misbehave: runs hang, counters glitch, thermal and OS
//! interference produce outliers, and multi-hour campaigns die mid-flight.
//! Every evaluation failure is classified into one of two sides:
//!
//! * **Board-side** ([`EvalError::Transient`], [`EvalError::Instance`]) —
//!   the *instance* (benchmark measurement) is at fault. Transient faults
//!   are retried with bounded exponential backoff; persistent ones
//!   quarantine the instance so the race stops spending budget on it.
//! * **Config-side** ([`EvalError::Config`]) — the *configuration* is at
//!   fault (simulator panic, timeout, non-finite CPI). The configuration
//!   is eliminated from the race with a logged reason instead of poisoning
//!   the Friedman/rank statistics.

use crate::param::{Configuration, ParamSpace};
use crate::tuner::TryCostFn;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Why one cost evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A board-side fault that may clear on retry (bus glitch, perf
    /// counter multiplexing hiccup, OS interference spike).
    Transient(String),
    /// A persistent board-side fault: the instance cannot be measured.
    /// The racing layer quarantines the instance.
    Instance(String),
    /// A configuration-side fault: this candidate cannot be evaluated
    /// (simulator panic, watchdog timeout, non-finite cost). The racing
    /// layer eliminates the configuration.
    Config(String),
}

impl EvalError {
    /// The human-readable reason carried by the error.
    pub fn reason(&self) -> &str {
        match self {
            EvalError::Transient(r) | EvalError::Instance(r) | EvalError::Config(r) => r,
        }
    }

    /// Whether the fault is board-side (instance at fault) rather than
    /// config-side.
    pub fn is_board_side(&self) -> bool {
        matches!(self, EvalError::Transient(_) | EvalError::Instance(_))
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Transient(r) => write!(f, "transient fault: {r}"),
            EvalError::Instance(r) => write!(f, "instance fault: {r}"),
            EvalError::Config(r) => write!(f, "configuration fault: {r}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Bounded exponential backoff for transient evaluation faults.
///
/// An evaluation is attempted up to [`max_attempts`](Self::max_attempts)
/// times; attempt `k` (1-based) is preceded by a sleep of
/// `base_ms * factor^(k-2)` milliseconds, capped at
/// [`cap_ms`](Self::cap_ms). Non-transient errors are never retried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per evaluation, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Multiplicative backoff growth per retry.
    pub factor: f64,
    /// Upper bound on a single backoff sleep, in milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 25,
            factor: 2.0,
            cap_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries `max_attempts` times with no sleeping —
    /// what tests and pure-simulation cost functions want.
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_ms: 0,
            factor: 1.0,
            cap_ms: 0,
        }
    }

    /// The sleep to take before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_ms == 0 {
            return Duration::ZERO;
        }
        let exp = self.factor.powi(retry.saturating_sub(1) as i32);
        let ms = (self.base_ms as f64 * exp).min(self.cap_ms as f64);
        Duration::from_millis(ms.max(0.0) as u64)
    }
}

/// The set of quarantined instances: benchmark measurements a board
/// persistently fails to deliver. Shared across every race of a tuning
/// run so a dead instance is paid for at most once.
#[derive(Debug, Default)]
pub struct Quarantine {
    map: Mutex<BTreeMap<usize, String>>,
}

impl Quarantine {
    /// An empty quarantine set.
    pub fn new() -> Quarantine {
        Quarantine::default()
    }

    /// Whether `instance` is quarantined.
    pub fn contains(&self, instance: usize) -> bool {
        self.map.lock().contains_key(&instance)
    }

    /// Quarantines `instance` with a reason. The first reason wins.
    pub fn insert(&self, instance: usize, reason: impl Into<String>) {
        self.map
            .lock()
            .entry(instance)
            .or_insert_with(|| reason.into());
    }

    /// All quarantined instances with their reasons, ascending by index.
    pub fn entries(&self) -> Vec<(usize, String)> {
        self.map
            .lock()
            .iter()
            .map(|(i, r)| (*i, r.clone()))
            .collect()
    }

    /// Number of quarantined instances.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

/// A per-evaluation wall-clock watchdog.
///
/// Wraps a cost function so that every evaluation runs on its own thread
/// and is abandoned once `timeout` elapses, yielding
/// [`EvalError::Config`] (a hanging evaluation is a configuration fault:
/// the candidate drove the simulator into a state it cannot leave). The
/// abandoned thread is detached, not killed — it finishes (or hangs)
/// in the background, so the wrapped function must not hold locks the
/// caller needs.
pub struct Watchdog {
    inner: Arc<dyn TryCostFn + Send + Sync>,
    timeout: Duration,
}

impl fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Watchdog")
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

impl Watchdog {
    /// Wraps `inner` with a per-evaluation `timeout`.
    pub fn new(inner: Arc<dyn TryCostFn + Send + Sync>, timeout: Duration) -> Watchdog {
        Watchdog { inner, timeout }
    }
}

impl TryCostFn for Watchdog {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let (tx, rx) = mpsc::channel();
        let inner = Arc::clone(&self.inner);
        let cfg = cfg.clone();
        let space = space.clone();
        std::thread::spawn(move || {
            // A panic inside `inner` drops `tx` without sending; the
            // receiver sees a disconnect and reports a config fault.
            let _ = tx.send(inner.try_cost(&cfg, &space, instance));
        });
        match rx.recv_timeout(self.timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(EvalError::Config(format!(
                "evaluation exceeded the {}ms watchdog timeout",
                self.timeout.as_millis()
            ))),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(EvalError::Config("evaluation panicked".to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_ms: 10,
            factor: 2.0,
            cap_ms: 35,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35), "capped");
        assert_eq!(RetryPolicy::immediate(3).backoff(2), Duration::ZERO);
    }

    #[test]
    fn quarantine_keeps_first_reason() {
        let q = Quarantine::new();
        assert!(q.is_empty());
        q.insert(3, "hang");
        q.insert(3, "later excuse");
        q.insert(1, "dropped");
        assert!(q.contains(3));
        assert!(!q.contains(0));
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.entries(),
            vec![(1, "dropped".to_string()), (3, "hang".to_string())]
        );
    }

    #[test]
    fn watchdog_times_out_hanging_evaluations_and_passes_fast_ones() {
        struct Slow;
        impl TryCostFn for Slow {
            fn try_cost(
                &self,
                _: &Configuration,
                _: &ParamSpace,
                instance: usize,
            ) -> Result<f64, EvalError> {
                if instance == 0 {
                    std::thread::sleep(Duration::from_millis(200));
                }
                Ok(1.5)
            }
        }
        let mut space = ParamSpace::new();
        space.add_bool("x");
        let cfg = space.default_configuration();
        let dog = Watchdog::new(Arc::new(Slow), Duration::from_millis(25));
        match dog.try_cost(&cfg, &space, 0) {
            Err(EvalError::Config(r)) => assert!(r.contains("watchdog"), "{r}"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(dog.try_cost(&cfg, &space, 1), Ok(1.5));
    }

    #[test]
    fn watchdog_reports_panics_as_config_faults() {
        struct Explodes;
        impl TryCostFn for Explodes {
            fn try_cost(
                &self,
                _: &Configuration,
                _: &ParamSpace,
                _: usize,
            ) -> Result<f64, EvalError> {
                panic!("boom");
            }
        }
        let mut space = ParamSpace::new();
        space.add_bool("x");
        let cfg = space.default_configuration();
        let dog = Watchdog::new(Arc::new(Explodes), Duration::from_secs(5));
        match dog.try_cost(&cfg, &space, 0) {
            Err(EvalError::Config(r)) => assert!(r.contains("panicked"), "{r}"),
            other => panic!("expected panic report, got {other:?}"),
        }
    }
}
