//! # racesim-race
//!
//! A from-scratch Rust implementation of **iterated racing** — the
//! algorithm behind the `irace` R package (López-Ibáñez et al., 2016;
//! Birattari et al., GECCO 2002) that the paper uses to tune unknown
//! simulator parameters against hardware measurements.
//!
//! The three steps of Figure 2, exactly as the paper describes them:
//!
//! 1. **Sample** new configurations from per-parameter distributions
//!    (biased toward surviving "elite" configurations in later
//!    iterations);
//! 2. **Race** them across the benchmark instances, applying statistical
//!    tests after a warm-up number of instances to eliminate
//!    configurations "that perform worse than at least one other
//!    configuration";
//! 3. **Update** the sampling distributions toward the survivors, and
//!    repeat until the evaluation budget is exhausted.
//!
//! The implementation is deterministic under a seed, evaluates
//! configurations in parallel (the paper runs irace on a 24-context host),
//! and ships two baselines — [`RandomSearch`] and [`GridSearch`] — used by
//! the ablation benchmarks.
//!
//! # Example
//!
//! ```
//! use racesim_race::{CostFn, Configuration, ParamSpace, RacingTuner, Tuner, TunerSettings};
//!
//! // Recover x = 13 by racing over noisy "instances".
//! let mut space = ParamSpace::new();
//! space.add_integer("x", &[1, 5, 9, 13, 17, 21]);
//!
//! struct Quadratic;
//! impl CostFn for Quadratic {
//!     fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
//!         let x = cfg.integer(space, "x") as f64;
//!         (x - 13.0).powi(2) + (instance as f64 * 0.01)
//!     }
//! }
//!
//! let tuner = RacingTuner::new(TunerSettings {
//!     budget: 300,
//!     seed: 42,
//!     ..TunerSettings::default()
//! });
//! let result = tuner.tune(&space, &Quadratic, 10);
//! assert_eq!(result.best.integer(&space, "x"), 13);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod cache;
mod checkpoint;
mod error;
mod model;
mod param;
mod race;
pub mod replay;
mod tuner;

pub use baseline::{GridSearch, RandomSearch};
pub use cache::CostCache;
pub use checkpoint::{CheckpointError, TunerCheckpoint};
pub use error::{EvalError, Quarantine, RetryPolicy, Watchdog};
pub use model::SamplingModel;
pub use param::{Configuration, Domain, Param, ParamSpace, Value};
pub use race::{
    eval_with_retry, race, EliminationTest, EvalDispatch, RaceContext, RaceLogEntry, RaceResult,
    RaceSettings,
};
pub use replay::{
    compare, Divergence, EliminationRecord, EndRecord, IterationRecord, RecordedCampaign,
    ReplayReport, Verdict,
};
pub use tuner::{
    CostFn, IterationSummary, Pruner, RacingTuner, StaticBounds, TryCostFn, TuneResult, Tuner,
    TunerSettings,
};
