//! Per-parameter sampling distributions (step 1 and step 3 of Figure 2).

use crate::param::{Configuration, Domain, ParamSpace, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The sampling model: one discrete distribution per categorical/boolean
/// parameter, and a shrinking perturbation width for ordered integer
/// parameters (sampled around an elite parent).
///
/// "Each configuration parameter is associated with a sampling
/// distribution … Initial sampling assumes all values have equal weights.
/// As the algorithm starts finding winning configurations, it updates the
/// distributions associated with each parameter … biasing the weights to
/// increase the probability of selecting the right value."
#[derive(Debug, Clone)]
pub struct SamplingModel {
    /// Weights per parameter (categorical/bool; empty for integers).
    weights: Vec<Vec<f64>>,
    /// Relative perturbation width for integer parameters, in domain
    /// fraction; decays as iterations progress.
    pub spread: f64,
}

impl SamplingModel {
    /// A uniform model over the space.
    pub fn new(space: &ParamSpace) -> SamplingModel {
        let weights = space
            .params()
            .iter()
            .map(|p| match &p.domain {
                Domain::Categorical(cs) => vec![1.0; cs.len()],
                Domain::Bool => vec![1.0; 2],
                Domain::Integer(_) => Vec::new(),
            })
            .collect();
        SamplingModel {
            weights,
            spread: 1.0,
        }
    }

    /// The per-parameter weight vectors (empty for integer parameters),
    /// for exact checkpointing.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Rebuilds a model from checkpointed parts. The caller is
    /// responsible for `weights` matching the space the model will be
    /// used with (one vector per parameter, length = cardinality for
    /// categorical/bool, empty for integer).
    pub fn from_parts(weights: Vec<Vec<f64>>, spread: f64) -> SamplingModel {
        SamplingModel { weights, spread }
    }

    fn weighted_choice(rng: &mut StdRng, w: &[f64]) -> usize {
        let total: f64 = w.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (i, wi) in w.iter().enumerate() {
            if x < *wi {
                return i;
            }
            x -= wi;
        }
        w.len() - 1
    }

    /// Samples a configuration from scratch (first iteration).
    pub fn sample(&self, space: &ParamSpace, rng: &mut StdRng) -> Configuration {
        let mut c = space.default_configuration();
        for (idx, p) in space.params().iter().enumerate() {
            let v = match &p.domain {
                Domain::Categorical(_) => {
                    Value::Cat(Self::weighted_choice(rng, &self.weights[idx]) as u16)
                }
                Domain::Bool => Value::Flag(Self::weighted_choice(rng, &self.weights[idx]) == 1),
                Domain::Integer(vs) => Value::Int(rng.gen_range(0..vs.len()) as u16),
            };
            c.set_value(idx, v);
        }
        c
    }

    /// Samples a configuration around an elite `parent` (later
    /// iterations): categorical/bool values are resampled from the learned
    /// weights, integer values take a truncated, discretised normal step
    /// around the parent's value with the current [`spread`](Self::spread).
    pub fn sample_around(
        &self,
        space: &ParamSpace,
        parent: &Configuration,
        rng: &mut StdRng,
    ) -> Configuration {
        let mut c = parent.clone();
        for (idx, p) in space.params().iter().enumerate() {
            match &p.domain {
                Domain::Categorical(_) | Domain::Bool => {
                    // Keep the parent's value most of the time; otherwise
                    // resample from the learned distribution.
                    if rng.gen_bool((self.spread * 0.75).clamp(0.05, 0.9)) {
                        let i = Self::weighted_choice(rng, &self.weights[idx]);
                        let v = if matches!(p.domain, Domain::Bool) {
                            Value::Flag(i == 1)
                        } else {
                            Value::Cat(i as u16)
                        };
                        c.set_value(idx, v);
                    }
                }
                Domain::Integer(vs) => {
                    let cur = match parent.value(idx) {
                        Value::Int(i) => i as f64,
                        _ => 0.0,
                    };
                    let sd = (self.spread * vs.len() as f64 / 2.0).max(0.35);
                    // Box-Muller normal step.
                    let u1: f64 = rng.gen_range(1e-9..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let stepped = (cur + z * sd).round();
                    let clamped = stepped.clamp(0.0, (vs.len() - 1) as f64) as u16;
                    c.set_value(idx, Value::Int(clamped));
                }
            }
        }
        c
    }

    /// Biases the weights toward the elite configurations (step 3) and
    /// shrinks the integer perturbation width.
    pub fn update(&mut self, space: &ParamSpace, elites: &[&Configuration], learning_rate: f64) {
        if elites.is_empty() {
            return;
        }
        for (idx, p) in space.params().iter().enumerate() {
            let k = p.domain.cardinality();
            if matches!(p.domain, Domain::Integer(_)) {
                continue;
            }
            let mut freq = vec![0.0; k];
            for e in elites {
                let i = match e.value(idx) {
                    Value::Cat(i) => i as usize,
                    Value::Flag(b) => usize::from(b),
                    Value::Int(i) => i as usize,
                };
                freq[i] += 1.0 / elites.len() as f64;
            }
            let w = &mut self.weights[idx];
            let total: f64 = w.iter().sum();
            for (wi, fi) in w.iter_mut().zip(&freq) {
                *wi = (*wi / total) * (1.0 - learning_rate) + learning_rate * fi;
                // Keep a probability floor so no value is unreachable.
                *wi = wi.max(0.02 / k as f64);
            }
        }
        self.spread = (self.spread * 0.6).max(0.08);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_categorical("c", &["a", "b", "d"]);
        s.add_integer("n", &[1, 2, 4, 8, 16, 32]);
        s.add_bool("f");
        s
    }

    #[test]
    fn uniform_sampling_covers_the_space() {
        let s = space();
        let m = SamplingModel::new(&s);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_cat = std::collections::HashSet::new();
        let mut seen_int = std::collections::HashSet::new();
        for _ in 0..300 {
            let c = m.sample(&s, &mut rng);
            seen_cat.insert(c.categorical(&s, "c").to_string());
            seen_int.insert(c.integer(&s, "n"));
        }
        assert_eq!(seen_cat.len(), 3);
        assert_eq!(seen_int.len(), 6);
    }

    #[test]
    fn updates_concentrate_mass_on_elites() {
        let s = space();
        let mut m = SamplingModel::new(&s);
        let mut elite = s.default_configuration();
        elite.set_categorical(&s, "c", "b");
        elite.set_flag(&s, "f", true);
        for _ in 0..6 {
            m.update(&s, &[&elite], 0.5);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..200)
            .filter(|_| {
                let c = m.sample(&s, &mut rng);
                c.categorical(&s, "c") == "b" && c.flag(&s, "f")
            })
            .count();
        assert!(hits > 150, "mass concentrates: {hits}/200");
    }

    #[test]
    fn sampling_around_a_parent_stays_local_when_spread_is_small() {
        let s = space();
        let mut m = SamplingModel::new(&s);
        m.spread = 0.08;
        let mut parent = s.default_configuration();
        parent.set_integer(&s, "n", 8); // index 3
        let mut rng = StdRng::seed_from_u64(3);
        let mut far = 0;
        for _ in 0..200 {
            let c = m.sample_around(&s, &parent, &mut rng);
            let v = c.integer(&s, "n");
            if !(2..=32).contains(&v) {
                far += 1;
            }
        }
        assert!(far < 20, "small spread keeps neighbours close: {far}");
    }

    #[test]
    fn update_with_no_elites_is_a_noop() {
        let s = space();
        let mut m = SamplingModel::new(&s);
        let before = m.clone();
        m.update(&s, &[], 0.5);
        assert_eq!(format!("{before:?}"), format!("{m:?}"));
    }
}
